"""Governance-overhead benchmark: what does a budget cost when it never fires?

The design constraint on :mod:`repro.core.budget` (INTERNALS §10) is
that an *armed but never-violated* budget must be almost free: the
governed dispatch loop pays one local integer compare per dispatch plus
a full check every ``check_stride`` dispatches.  This harness measures
that directly — each ``BENCH_interp`` workload runs ungoverned and then
governed with an effectively unlimited budget at several strides — and
writes a schema-versioned JSON document (``ric-bench-budget/v1``).

``benchmarks/test_bench_budget.py`` gates the schema and asserts the
acceptance criterion: < 3% median overhead at the default stride.

Usage::

    PYTHONPATH=src python benchmarks/bench_budget.py out/BENCH_budget.json
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time

from repro.core.budget import DEFAULT_CHECK_STRIDE, ExecutionBudget
from repro.core.engine import Engine
from repro.harness.bench import bench_workloads

SCHEMA = "ric-bench-budget/v1"

#: Strides measured: tiny (worst case), mid, default, extra-large.
STRIDES = (64, 512, DEFAULT_CHECK_STRIDE, 8192)


def _time_run(scripts, name: str, seed: int, budget, iterations: int) -> dict:
    """Median/min wall-time of ``iterations`` fresh runs, plus dispatches."""
    times_ms = []
    dispatches = None
    engine = Engine(seed=seed)
    for _ in range(iterations):
        start = time.perf_counter()
        profile = engine.run(scripts, name=name, budget=budget)
        times_ms.append((time.perf_counter() - start) * 1000.0)
        dispatches = profile.counters.dispatches
    return {
        "wall_ms_median": statistics.median(times_ms),
        "wall_ms_min": min(times_ms),
        "dispatches": dispatches,
    }


def measure(
    workload_names=None, iterations: int = 7, seed: int = 1
) -> dict:
    """The full governed-vs-ungoverned comparison document."""
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    scripts_by_name = bench_workloads()
    names = list(workload_names or scripts_by_name)
    workloads = {}
    for name in names:
        scripts = scripts_by_name[name]
        ungoverned = _time_run(scripts, name, seed, None, iterations)
        governed = {}
        for stride in STRIDES:
            budget = ExecutionBudget(max_steps=10**12, check_stride=stride)
            blob = _time_run(scripts, name, seed, budget, iterations)
            # Counter-exactness is part of the contract, not just speed.
            assert blob["dispatches"] == ungoverned["dispatches"], (
                f"{name}: governed dispatches diverged at stride {stride}"
            )
            blob["overhead_frac"] = (
                blob["wall_ms_median"] / ungoverned["wall_ms_median"] - 1.0
                if ungoverned["wall_ms_median"] > 0
                else 0.0
            )
            governed[str(stride)] = blob
        workloads[name] = {"ungoverned": ungoverned, "governed": governed}
    overall = _aggregate(workloads)
    return {
        "schema": SCHEMA,
        "config": {
            "iterations": iterations,
            "seed": seed,
            "strides": list(STRIDES),
            "default_stride": DEFAULT_CHECK_STRIDE,
        },
        "workloads": workloads,
        "overall": overall,
    }


def _aggregate(workloads: dict) -> dict:
    """Median across workloads of the per-stride overhead fractions."""
    overall = {}
    for stride in STRIDES:
        fractions = [
            blob["governed"][str(stride)]["overhead_frac"]
            for blob in workloads.values()
        ]
        overall[str(stride)] = {
            "overhead_frac_median": statistics.median(fractions),
            "overhead_frac_max": max(fractions),
        }
    return overall


def validate_document(document: object) -> list[str]:
    """Structural schema gate; returns a list of problems (empty = valid)."""
    problems: list[str] = []
    if not isinstance(document, dict):
        return ["document is not an object"]
    if document.get("schema") != SCHEMA:
        problems.append(
            f"schema is {document.get('schema')!r}, expected {SCHEMA!r}"
        )
    config = document.get("config")
    if not isinstance(config, dict) or "default_stride" not in config:
        problems.append("config missing or lacks default_stride")
    workloads = document.get("workloads")
    if not isinstance(workloads, dict) or not workloads:
        problems.append("workloads missing or empty")
        return problems
    for name, blob in workloads.items():
        for side in ("ungoverned", "governed"):
            if side not in blob:
                problems.append(f"{name}: missing {side!r}")
        ungoverned = blob.get("ungoverned", {})
        for key in ("wall_ms_median", "wall_ms_min", "dispatches"):
            if not isinstance(ungoverned.get(key), (int, float)):
                problems.append(f"{name}: ungoverned.{key} not numeric")
        for stride, gov in blob.get("governed", {}).items():
            if not isinstance(gov.get("overhead_frac"), (int, float)):
                problems.append(
                    f"{name}: governed[{stride}].overhead_frac not numeric"
                )
    overall = document.get("overall")
    if not isinstance(overall, dict) or not overall:
        problems.append("overall missing or empty")
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("output", help="path for the JSON document")
    parser.add_argument("--iterations", type=int, default=7)
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args(argv)
    document = measure(iterations=args.iterations, seed=args.seed)
    with open(args.output, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    default = document["overall"][str(DEFAULT_CHECK_STRIDE)]
    print(
        f"bench_budget: median overhead at default stride "
        f"{DEFAULT_CHECK_STRIDE}: "
        f"{100 * default['overhead_frac_median']:.2f}% "
        f"(max {100 * default['overhead_frac_max']:.2f}%)",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
