"""Shared-store vs private-store misses-averted bench (``ric-bench-remote/v1``).

Quantifies what the record-cache daemon buys over per-process stores —
the §9 cross-process sharing claim as a number.  For every workload, two
client "processes" (distinct engines + distinct stores, a daemon thread
standing in for ``ric-serve``) play the same scenario under two store
topologies:

* **shared** — both clients talk to one ``RecordCacheDaemon``.  Client A
  runs the workload cold and publishes its records; client B's reuse run
  fetches them through the daemon and averts misses it never paid for.
* **private** — each client keeps its own isolated ``RecordStore``.
  Client A's records are invisible to client B, whose "reuse" run finds
  nothing and pays the full cold miss bill.

The gap (``misses_averted`` shared vs private, per workload and in
``totals``) is the sharing win.  Usage::

    PYTHONPATH=src python benchmarks/bench_remote.py BENCH_remote.json

The document is schema-versioned like the other ``ric-bench-*`` families
and gated by ``benchmarks/test_bench_remote.py``.
"""

from __future__ import annotations

import json
import platform
import tempfile
import typing
from pathlib import Path

from repro.core.engine import Engine
from repro.server.client import RemoteRecordStore
from repro.server.daemon import RecordCacheDaemon
from repro.ric.store import RecordStore
from repro.stats.profile import RunProfile

SCHEMA = "ric-bench-remote/v1"

#: Fields copied from a cold run's counters.
_COLD_FIELDS = ("ic_accesses", "ic_hits", "ic_misses")

#: Fields copied from each reuse run's counters.
_REUSE_FIELDS = (
    "ic_misses",
    "ic_hits_on_preloaded",
    "ric_preloads",
    "ric_remote_hits",
    "ric_remote_misses",
    "ric_remote_fallbacks",
)


def bench_workloads() -> dict[str, list[tuple[str, str]]]:
    """Same registry as the interp baseline (nine workloads)."""
    from repro.harness.bench import bench_workloads as _registry

    return _registry()


def _reuse_blob(profile: RunProfile) -> dict:
    blob = {name: getattr(profile.counters, name) for name in _REUSE_FIELDS}
    blob["misses_averted"] = profile.counters.ic_hits_on_preloaded
    return blob


def _warm_then_reuse(
    scripts: list, name: str, seed: int, warm_store, reuse_store
) -> RunProfile:
    """Client A (``warm_store``) extracts and publishes; a fresh client B
    (``reuse_store``) reuse-runs the same workload.  Whether B benefits
    depends entirely on whether the two stores share a backend."""
    warm_engine = Engine(seed=seed, record_store=warm_store)
    warm_engine.run(scripts, name=f"{name}-warm", use_store=True)
    warm_engine.publish_records()
    reuse_engine = Engine(seed=seed + 1, record_store=reuse_store)
    return reuse_engine.run(scripts, name=f"{name}-reuse", use_store=True)


def measure_remote(
    workload_names: typing.Sequence[str] | None = None,
    seed: int = 1,
    max_records: int = 256,
    max_bytes: int = 64 * 1024 * 1024,
) -> dict:
    """Run the shared-vs-private comparison and return the document."""
    scripts_by_name = bench_workloads()
    names = (
        list(workload_names) if workload_names is not None else list(scripts_by_name)
    )

    workloads: dict = {}
    with tempfile.TemporaryDirectory(prefix="ric-bench-remote-") as tmp:
        socket_path = str(Path(tmp) / "ricd.sock")
        with RecordCacheDaemon(
            socket_path, max_records=max_records, max_bytes=max_bytes
        ) as daemon:
            for name in names:
                scripts = scripts_by_name[name]
                cold_profile = Engine(seed=seed).run(scripts, name=f"{name}-cold")

                shared_warm = RemoteRecordStore(socket_path)
                shared_reuse = RemoteRecordStore(socket_path)
                shared = _warm_then_reuse(
                    scripts, name, seed, shared_warm, shared_reuse
                )
                shared_warm.close()
                shared_reuse.close()

                private = _warm_then_reuse(
                    scripts, name, seed, RecordStore(), RecordStore()
                )

                workloads[name] = {
                    "cold": {
                        field: getattr(cold_profile.counters, field)
                        for field in _COLD_FIELDS
                    },
                    "shared": _reuse_blob(shared),
                    "private": _reuse_blob(private),
                }
            daemon_stats = daemon.stats()

    totals = {
        "shared_misses_averted": sum(
            entry["shared"]["misses_averted"] for entry in workloads.values()
        ),
        "private_misses_averted": sum(
            entry["private"]["misses_averted"] for entry in workloads.values()
        ),
        "shared_remote_hits": sum(
            entry["shared"]["ric_remote_hits"] for entry in workloads.values()
        ),
    }
    return {
        "schema": SCHEMA,
        "generated_by": "benchmarks/bench_remote.py",
        "config": {
            "seed": seed,
            "max_records": max_records,
            "max_bytes": max_bytes,
        },
        "host": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "machine": platform.machine(),
        },
        "daemon": {
            "requests": daemon_stats["requests"],
            "puts_accepted": daemon_stats["puts_accepted"],
            "puts_rejected": daemon_stats["puts_rejected"],
        },
        "workloads": workloads,
        "totals": totals,
    }


def validate_remote_json(document: object) -> list[str]:
    """Structural schema gate; returns a list of problems (empty = valid)."""
    problems: list[str] = []
    if not isinstance(document, dict):
        return ["document is not an object"]
    if document.get("schema") != SCHEMA:
        problems.append(f"schema is {document.get('schema')!r}, expected {SCHEMA!r}")
    if not isinstance(document.get("config"), dict):
        problems.append("missing config object")
    totals = document.get("totals")
    if not isinstance(totals, dict) or not {
        "shared_misses_averted",
        "private_misses_averted",
    } <= set(totals):
        problems.append("totals: needs shared/private misses_averted")
    workloads = document.get("workloads")
    if not isinstance(workloads, dict) or not workloads:
        return problems + ["missing or empty workloads object"]
    for name, entry in workloads.items():
        if not isinstance(entry, dict):
            problems.append(f"{name}: entry is not an object")
            continue
        cold = entry.get("cold")
        if not isinstance(cold, dict):
            problems.append(f"{name}.cold: missing")
        else:
            for field in _COLD_FIELDS:
                if not isinstance(cold.get(field), int):
                    problems.append(f"{name}.cold.{field}: missing or non-integer")
        for mode in ("shared", "private"):
            blob = entry.get(mode)
            if not isinstance(blob, dict):
                problems.append(f"{name}.{mode}: missing")
                continue
            for field in (*_REUSE_FIELDS, "misses_averted"):
                if not isinstance(blob.get(field), int):
                    problems.append(f"{name}.{mode}.{field}: missing or non-integer")
    return problems


def write_remote_json(path: str, document: dict) -> None:
    """Persist the document (stable key order, trailing newline)."""
    problems = validate_remote_json(document)
    if problems:
        raise ValueError(
            f"refusing to write invalid bench document: {'; '.join(problems[:5])}"
        )
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("output", help="path for BENCH_remote.json")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--workload", action="append", help="limit to named workloads (repeatable)"
    )
    args = parser.parse_args(argv)
    document = measure_remote(workload_names=args.workload, seed=args.seed)
    write_remote_json(args.output, document)
    for name, entry in document["workloads"].items():
        print(
            f"{name:16s} cold {entry['cold']['ic_misses']:5d} misses | "
            f"shared averts {entry['shared']['misses_averted']:5d} "
            f"({entry['shared']['ric_remote_hits']} remote hits) | "
            f"private averts {entry['private']['misses_averted']:5d}"
        )
    totals = document["totals"]
    print(
        f"{'TOTAL':16s} shared averts {totals['shared_misses_averted']} "
        f"vs private {totals['private_misses_averted']}"
    )
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
