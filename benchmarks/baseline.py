"""Entry point for the interpreter perf baseline (BENCH_interp.json).

The measurement harness lives in :mod:`repro.harness.bench` so the
installed ``ric-run --bench-json`` command can reach it; this module is
the in-repo face of it::

    PYTHONPATH=src python benchmarks/baseline.py BENCH_interp.json
    # equivalently:
    ric-run --bench-json BENCH_interp.json

See ``docs/INTERNALS.md`` §8 for what the numbers mean and when to
regenerate them.
"""

from __future__ import annotations

import sys

from repro.harness.bench import (  # noqa: F401  (re-exported API)
    SCHEMA,
    bench_workloads,
    main,
    measure,
    validate_bench_json,
    write_bench_json,
)

if __name__ == "__main__":
    sys.exit(main())
