"""Schema gate for the shared-vs-private store bench (bench_remote.py).

Mirrors ``test_bench_smoke.py``: one workload, so it runs everywhere
fast; the point is that the harness produces a schema-valid document and
that the shared topology demonstrably averts misses the private one
cannot, not that the numbers are impressive.
"""

from __future__ import annotations

import json
import socket

import pytest

from bench_remote import (
    SCHEMA,
    measure_remote,
    validate_remote_json,
    write_remote_json,
)

pytestmark = pytest.mark.skipif(
    not hasattr(socket, "AF_UNIX"), reason="unix domain sockets unavailable"
)


@pytest.fixture(scope="module")
def document() -> dict:
    return measure_remote(workload_names=["synthetic"], seed=1)


def test_document_is_schema_valid(document):
    assert document["schema"] == SCHEMA
    assert validate_remote_json(document) == []


def test_shared_store_averts_misses_private_cannot(document):
    blob = document["workloads"]["synthetic"]
    assert blob["shared"]["misses_averted"] > 0
    assert blob["shared"]["ric_remote_hits"] > 0
    assert blob["shared"]["ic_misses"] < blob["cold"]["ic_misses"]
    # Client B's private store never saw client A's records: full bill.
    assert blob["private"]["misses_averted"] == 0
    assert blob["private"]["ric_remote_hits"] == 0
    assert blob["private"]["ic_misses"] == blob["cold"]["ic_misses"]


def test_totals_reflect_the_gap(document):
    totals = document["totals"]
    assert totals["shared_misses_averted"] > totals["private_misses_averted"]
    assert totals["shared_remote_hits"] > 0


def test_no_transport_degradation_during_bench(document):
    blob = document["workloads"]["synthetic"]
    assert blob["shared"]["ric_remote_fallbacks"] == 0


def test_daemon_saw_the_traffic(document):
    assert document["daemon"]["requests"] > 0
    assert document["daemon"]["puts_accepted"] > 0
    assert document["daemon"]["puts_rejected"] == 0


def test_write_round_trips(document, tmp_path):
    path = tmp_path / "bench_remote.json"
    write_remote_json(str(path), document)
    assert json.loads(path.read_text()) == document


def test_write_refuses_invalid_documents(tmp_path):
    with pytest.raises(ValueError, match="invalid bench document"):
        write_remote_json(str(tmp_path / "bad.json"), {"schema": "nope"})


def test_validator_reports_missing_modes():
    broken = {
        "schema": SCHEMA,
        "config": {},
        "totals": {"shared_misses_averted": 1, "private_misses_averted": 0},
        "workloads": {"w": {"cold": {}}},
    }
    problems = validate_remote_json(broken)
    assert any("w.shared" in p for p in problems)
    assert any("w.private" in p for p in problems)
