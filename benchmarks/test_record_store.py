"""Cross-application record sharing bench (paper §9's per-file claim).

Not a numbered paper exhibit; quantifies what the paper argues
qualitatively against snapshots: RIC information extracted while one
application runs a library transfers to a *different* application loading
the same file."""

from conftest import write_exhibit
from repro.core.engine import Engine
from repro.ric.serialize import record_size_bytes
from repro.ric.store import RecordStore
from repro.workloads import WORKLOADS

LIBRARY = WORKLOADS["handlebarslike"]

APP_A = [
    (LIBRARY.filename, LIBRARY.source),
    (
        "app_a.jsl",
        'var t = Handlebars.compile("<p>{{x}}</p>");'
        'console.log("a:", t({x: 1}) === "<p>1</p>");',
    ),
]
APP_B = [
    (LIBRARY.filename, LIBRARY.source),
    (
        "app_b.jsl",
        'var t2 = Handlebars.compile("[{{y}}]");'
        'console.log("b:", t2({y: 2}) === "[2]");',
    ),
]


def test_cross_application_sharing(exhibit_dir, tmp_path):
    # Application A runs and persists per-script records.
    engine_a = Engine(seed=41)
    engine_a.run(APP_A, name="app-a")
    store = RecordStore(directory=tmp_path)
    per_script = engine_a.extract_per_script_records()
    for filename, source in APP_A:
        if filename in per_script:
            store.put(filename, source, per_script[filename])

    # Application B (fresh engine = fresh addresses) picks the shared
    # library's record up from disk.
    engine_b = Engine(seed=97)
    fresh = RecordStore(directory=tmp_path)
    available = fresh.records_for(APP_B)
    conventional = engine_b.run(APP_B, name="app-b")
    ric = engine_b.run(APP_B, name="app-b", icrecord=available)

    saved = 1.0 - ric.total_instructions / conventional.total_instructions
    lib_record = per_script[LIBRARY.filename]
    lines = [
        "Cross-application record sharing (paper §9)",
        "=" * 50,
        f"shared library:           {LIBRARY.filename}",
        f"records found for app B:  {len(available)} (of {len(APP_B)} scripts)",
        f"library record size:      {record_size_bytes(lib_record) / 1024:.1f} KB",
        f"app B misses (conv/ric):  {conventional.counters.ic_misses} / "
        f"{ric.counters.ic_misses}",
        f"app B instruction saving: {100 * saved:.1f}%",
    ]
    write_exhibit(exhibit_dir, "record_store_sharing", "\n".join(lines))

    assert len(available) == 1  # only the shared library matched
    assert ric.console_output == conventional.console_output
    assert ric.counters.ic_misses < conventional.counters.ic_misses
    assert saved > 0


def test_per_script_extraction_benchmark(benchmark):
    engine = Engine(seed=41)
    engine.run(APP_A, name="app-a")
    records = benchmark(engine.extract_per_script_records)
    assert LIBRARY.filename in records
