"""§6: cross-website robustness — record on site A, reuse on site B.

Paper setup: two synthetic websites load the seven libraries in different
orders; RIC information generated on one is utilized on the other (global
object ICs disabled because they are order-sensitive)."""

from conftest import write_exhibit
from repro.core.engine import Engine
from repro.harness import experiments
from repro.workloads import website_b


def test_sec6_regenerate(exhibit_dir):
    result = experiments.section6_websites(seed=1)
    lines = [
        "Section 6: cross-website reuse (record from site A, reuse on site B)",
        "=" * 68,
        f"outputs match:        {result['outputs_match']}",
        f"miss-rate drop:       {result['miss_rate_drop_pp']:.2f} pp",
        f"instruction saving:   {100 * result['instruction_saving']:.1f}%",
        f"record stats:         {result['record_stats']}",
    ]
    write_exhibit(exhibit_dir, "sec6_websites", "\n".join(lines))

    assert result["outputs_match"]
    assert result["miss_rate_drop_pp"] > 0
    assert result["instruction_saving"] > 0


def test_sec6_reuse_run_benchmark(benchmark):
    """Times the full seven-library website-B RIC Reuse run."""
    from repro.workloads import website_a

    engine = Engine(seed=1)
    engine.run(website_a(), name="website-a")
    record = engine.extract_icrecord()
    scripts = website_b()

    profile = benchmark(engine.run, scripts, name="website-b", icrecord=record)
    assert profile.counters.ric_preloads > 0
