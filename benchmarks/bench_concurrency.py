"""Concurrency baseline: N isolated sessions over one warm artifact cache.

Measures what the executor layer is for: many simultaneous runs of the
nine workloads reusing one warmed :class:`~repro.core.artifacts
.ArtifactCache` (and one extracted ICRecord per workload), comparing
``EngineExecutor.run_many(jobs=1)`` against ``jobs=N`` on

* aggregate wall time and throughput (runs/second),
* speedup (jobs=N throughput over jobs=1 throughput),
* a per-session **counter parity** check: every concurrent session's
  counters must equal its sequential twin's bit-for-bit (same seeds,
  same artifacts) — concurrency must never change what a run computes,
* artifact-cache traffic (builds/hits/joins — the single-flight story).

Honesty note: the interpreter is pure CPython, so concurrent sessions
contend on the GIL; on a single-core host the expected speedup for this
CPU-bound work is ~1x, and the headroom the layer unlocks (true overlap
under free-threaded Python, multi-tenant isolation, one warm artifact
shared by every tenant) shows up in the isolation and parity columns,
not wall time.  The document therefore records ``cpus`` and
``gil_limited`` so readers can interpret the speedup column; run on a
multi-core free-threaded build to see the throughput scale.

Emitted JSON is schema-versioned (``ric-bench-concurrency/v1``);
``validate_concurrency_json`` is the gate used by
``benchmarks/test_bench_concurrency.py``.  Regenerate with::

    python benchmarks/bench_concurrency.py BENCH_concurrency.json
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
import typing

from repro.core.config import RICConfig
from repro.core.engine import Engine
from repro.core.executor import EngineExecutor, RunRequest
from repro.harness.bench import bench_workloads

SCHEMA = "ric-bench-concurrency/v1"


def _requests(
    name: str,
    scripts: "list[tuple[str, str]]",
    record,
    runs: int,
    seed_base: int,
) -> "list[RunRequest]":
    """One batch of identical reuse runs with pinned, distinct seeds (so
    a jobs=1 and a jobs=N batch are twin-for-twin comparable)."""
    return [
        RunRequest(
            scripts=scripts,
            name=f"{name}#{index}",
            icrecord=record,
            seed=seed_base + index,
        )
        for index in range(runs)
    ]


def measure(
    workload_names: "typing.Sequence[str] | None" = None,
    jobs: int = 4,
    runs_per_workload: int = 8,
    seed: int = 1,
    config: "RICConfig | None" = None,
) -> dict:
    """Run the concurrency baseline and return the BENCH document."""
    if jobs < 2:
        raise ValueError("jobs must be >= 2 (jobs=1 is the baseline)")
    if runs_per_workload < 1:
        raise ValueError("runs_per_workload must be >= 1")
    config = config or RICConfig()
    scripts_by_name = bench_workloads()
    names = (
        list(workload_names)
        if workload_names is not None
        else list(scripts_by_name)
    )

    workloads: dict = {}
    for name in names:
        scripts = scripts_by_name[name]
        engine = Engine(config=config, seed=seed)
        executor = EngineExecutor(engine)

        # Warm: one solo run fills the artifact cache and yields the
        # record every measured session reuses (the paper's artifact).
        engine.run(scripts, name=f"{name}-warm")
        record = engine.extract_icrecord()

        start = time.perf_counter()
        sequential = executor.run_many(
            _requests(name, scripts, record, runs_per_workload, seed_base=100),
            jobs=1,
        )
        wall_jobs1 = time.perf_counter() - start

        start = time.perf_counter()
        concurrent = executor.run_many(
            _requests(name, scripts, record, runs_per_workload, seed_base=100),
            jobs=jobs,
        )
        wall_jobsn = time.perf_counter() - start

        matches = all(
            seq.ok
            and conc.ok
            and seq.profile.counters.as_dict() == conc.profile.counters.as_dict()
            for seq, conc in zip(sequential, concurrent)
        )

        throughput_1 = runs_per_workload / wall_jobs1 if wall_jobs1 > 0 else 0.0
        throughput_n = runs_per_workload / wall_jobsn if wall_jobsn > 0 else 0.0
        cache = engine.artifacts.stats()
        workloads[name] = {
            "runs": runs_per_workload,
            "jobs": jobs,
            "wall_s_jobs1": wall_jobs1,
            "wall_s_jobsN": wall_jobsn,
            "throughput_jobs1": throughput_1,
            "throughput_jobsN": throughput_n,
            "speedup": (throughput_n / throughput_1) if throughput_1 else 0.0,
            "counters_match": matches,
            "artifact_cache": {
                "builds": cache.builds,
                "hits": cache.hits,
                "joins": cache.joins,
            },
        }

    return {
        "schema": SCHEMA,
        "generated_by": "benchmarks/bench_concurrency.py",
        "config": {
            "jobs": jobs,
            "runs_per_workload": runs_per_workload,
            "seed": seed,
            "interp_fastpaths": config.interp_fastpaths,
        },
        "host": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "machine": platform.machine(),
            "cpus": os.cpu_count(),
            # CPython with the GIL cannot overlap CPU-bound sessions;
            # flag it so the speedup column is read correctly.  (The
            # probe exists only on free-threaded-capable builds, 3.13+.)
            "gil_limited": _gil_limited(),
        },
        "workloads": workloads,
    }


def _gil_limited() -> bool:
    probe = getattr(sys, "_is_gil_enabled", None)
    return True if probe is None else bool(probe())


def validate_concurrency_json(document: object) -> "list[str]":
    """Structural schema check; returns a list of problems (empty = valid)."""
    problems: list[str] = []
    if not isinstance(document, dict):
        return ["document is not an object"]
    if document.get("schema") != SCHEMA:
        problems.append(
            f"schema is {document.get('schema')!r}, expected {SCHEMA!r}"
        )
    if not isinstance(document.get("config"), dict):
        problems.append("missing config object")
    host = document.get("host")
    if not isinstance(host, dict) or "cpus" not in host:
        problems.append("missing host.cpus")
    workloads = document.get("workloads")
    if not isinstance(workloads, dict) or not workloads:
        return problems + ["missing or empty workloads object"]
    for name, blob in workloads.items():
        if not isinstance(blob, dict):
            problems.append(f"{name}: entry is not an object")
            continue
        for field in (
            "runs",
            "jobs",
            "wall_s_jobs1",
            "wall_s_jobsN",
            "throughput_jobs1",
            "throughput_jobsN",
            "speedup",
            "counters_match",
            "artifact_cache",
        ):
            if field not in blob:
                problems.append(f"{name}.{field}: missing")
        if blob.get("counters_match") is not True:
            problems.append(f"{name}.counters_match: not true")
        cache = blob.get("artifact_cache")
        if isinstance(cache, dict):
            for field in ("builds", "hits", "joins"):
                if not isinstance(cache.get(field), int):
                    problems.append(f"{name}.artifact_cache.{field}: missing")
    return problems


def write_concurrency_json(path: str, document: dict) -> None:
    """Persist the document (stable key order, trailing newline)."""
    problems = validate_concurrency_json(document)
    if problems:
        raise ValueError(
            "refusing to write invalid bench document: "
            + "; ".join(problems[:5])
        )
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")


def main(argv: "list[str] | None" = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("output", help="path for BENCH_concurrency.json")
    parser.add_argument("--jobs", type=int, default=4)
    parser.add_argument("--runs", type=int, default=8)
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args(argv)
    document = measure(
        jobs=args.jobs, runs_per_workload=args.runs, seed=args.seed
    )
    write_concurrency_json(args.output, document)
    for name, blob in document["workloads"].items():
        print(
            f"{name:16s} jobs=1 {blob['throughput_jobs1']:7.2f} runs/s | "
            f"jobs={blob['jobs']} {blob['throughput_jobsN']:7.2f} runs/s | "
            f"speedup {blob['speedup']:.2f}x | "
            f"parity {'ok' if blob['counters_match'] else 'BROKEN'}"
        )
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
