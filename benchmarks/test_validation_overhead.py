"""Robustness-hardening cost: record-load integrity overhead.

The hardened load path (checksum verify + structural validation, see
docs/INTERNALS.md "Failure modes & degradation") must stay cheap enough
that persisting trust never erodes the §7.3 story: the structural
validation pass is budgeted at <10% of a full record load.
"""

import statistics
import time

from conftest import write_exhibit
from repro.core.engine import Engine
from repro.harness.reporting import render_table
from repro.ric.serialize import load_icrecord, record_size_bytes, save_icrecord
from repro.ric.validate import validate_record
from repro.workloads import WORKLOADS


def _median_seconds(fn, reps: int = 50) -> float:
    times = []
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return statistics.median(times)


def test_validation_overhead_under_10pct_of_load(tmp_path, exhibit_dir):
    engine = Engine(seed=1)
    engine.run(WORKLOADS["reactlike"].scripts(), name="reactlike")
    record = engine.extract_icrecord()
    path = tmp_path / "reactlike.icrecord.json"
    save_icrecord(record, path)

    loaded = load_icrecord(path)
    load_us = _median_seconds(lambda: load_icrecord(path)) * 1e6
    validate_us = _median_seconds(lambda: validate_record(loaded)) * 1e6
    ratio = validate_us / load_us

    text = render_table(
        "Record-load integrity overhead (reactlike)",
        [
            ("Metric", "metric"),
            ("Value", "value"),
        ],
        [
            {"metric": "record size (bytes)", "value": record_size_bytes(record)},
            {"metric": "full load (us, median)", "value": load_us},
            {"metric": "validate_record (us, median)", "value": validate_us},
            {"metric": "validate/load ratio", "value": ratio},
        ],
    )
    write_exhibit(exhibit_dir, "validation_overhead", text)

    assert validate_record(loaded) == []
    assert ratio < 0.10, f"validation is {100 * ratio:.1f}% of load time"
