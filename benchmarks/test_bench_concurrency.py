"""Smoke/validation gate for the concurrency benchmark.

Gates on what the benchmark *guarantees* — schema validity and counter
parity between concurrent and sequential batches — not on the speedup
ratio: the interpreter is CPU-bound pure Python, so wall-clock scaling
is a property of the host (core count, free-threading), and CI hosts
commonly have one core and a GIL.  The honest host metadata
(``cpus``, ``gil_limited``) is part of the schema for exactly that
reason.
"""

from benchmarks.bench_concurrency import (
    SCHEMA,
    measure,
    validate_concurrency_json,
)
from repro.harness.bench import bench_workloads


def test_measure_produces_valid_parity_checked_document():
    document = measure(
        workload_names=["underscorelike"],
        jobs=2,
        runs_per_workload=3,
        seed=7,
    )
    assert validate_concurrency_json(document) == []
    assert document["schema"] == SCHEMA
    blob = document["workloads"]["underscorelike"]
    assert blob["counters_match"] is True
    # Single-flight over the batch: the warm run built each artifact
    # once; all six measured sessions were hits or joins.
    assert blob["artifact_cache"]["builds"] == len(
        bench_workloads()["underscorelike"]
    )
    assert isinstance(document["host"]["gil_limited"], bool)


def test_validator_rejects_broken_documents():
    assert validate_concurrency_json([]) == ["document is not an object"]
    assert any(
        "schema" in problem
        for problem in validate_concurrency_json({"schema": "nope"})
    )
    document = measure(
        workload_names=["underscorelike"],
        jobs=2,
        runs_per_workload=1,
        seed=7,
    )
    document["workloads"]["underscorelike"]["counters_match"] = False
    assert any(
        "counters_match" in problem
        for problem in validate_concurrency_json(document)
    )
