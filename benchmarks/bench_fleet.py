"""Sharded record-store fleet bench (``ric-bench-fleet/v1``).

Quantifies what the consistent-hash fleet buys — and what a shard
failure costs — as numbers.  A fleet of N in-process ``ricd`` shards
(replication R) is warmed with K tenant records, then a Zipfian access
trace plays against it through a :class:`ShardedRecordStore`:

* **healthy** phase — the first half of the trace with all shards up;
* **degraded** phase — the second half after the primary owner of the
  hottest key is abruptly killed mid-run (:func:`kill_shard` — the
  harness SIGKILL).

Per phase the bench reports the store hit rate, misses averted (every
remote hit is a cold extraction somebody else paid for), replica
failovers, local fallbacks, and p50/p99 GET latency.  The headline
claim: with R >= 2 the degraded hit rate stays at 1.0 — the kill shows
up only in the failover counter and the latency tail.  Usage::

    PYTHONPATH=src python benchmarks/bench_fleet.py BENCH_fleet.json

The document is schema-versioned like the other ``ric-bench-*``
families and gated by ``benchmarks/test_bench_fleet.py``.
"""

from __future__ import annotations

import json
import platform
import random
import tempfile
import time
import typing
from pathlib import Path

from repro.bytecode.cache import source_hash
from repro.core.engine import Engine
from repro.faults import kill_shard
from repro.ric.store import RecordStore
from repro.server.daemon import RecordCacheDaemon
from repro.server.sharding import HashRing, ShardedRecordStore

SCHEMA = "ric-bench-fleet/v1"

#: Per-phase integer fields every document must carry.
_PHASE_INT_FIELDS = ("accesses", "hits", "misses", "failovers", "fallbacks")

#: Per-phase float fields (rates and latency percentiles).
_PHASE_FLOAT_FIELDS = ("hit_rate", "p50_ms", "p99_ms")

#: One representative tenant script; each tenant key reuses its record
#: under a distinct filename (the route key is filename:source_hash, so
#: filenames alone spread the keys around the ring).
_TENANT_SOURCE = """
function Counter() { this.n = 0; }
Counter.prototype.bump = function () { this.n = this.n + 1; return this.n; };
var c = new Counter();
for (var i = 0; i < 10; i = i + 1) { c.bump(); }
console.log("tenant:", c.n);
"""


def _tenant_filename(rank: int) -> str:
    return f"tenant-{rank:03d}.jsl"


def zipfian_trace(
    keys: int, accesses: int, s: float, seed: int
) -> "list[int]":
    """``accesses`` key ranks drawn from a Zipf(s) popularity curve —
    rank 0 hottest — with a seeded RNG so runs are replayable."""
    weights = [1.0 / (rank + 1) ** s for rank in range(keys)]
    rng = random.Random(seed)
    return rng.choices(range(keys), weights=weights, k=accesses)


def _percentile(sorted_samples: "list[float]", fraction: float) -> float:
    if not sorted_samples:
        return 0.0
    index = min(
        len(sorted_samples) - 1, int(fraction * (len(sorted_samples) - 1))
    )
    return sorted_samples[index]


def _play_phase(
    store: ShardedRecordStore, trace: "list[int]"
) -> "tuple[dict, dict]":
    """Run one phase of the trace; returns (phase blob, raw stats after)."""
    before = store.stats_snapshot()
    latencies: "list[float]" = []
    hits = 0
    for rank in trace:
        started = time.perf_counter()
        record = store.get(_tenant_filename(rank), _TENANT_SOURCE)
        latencies.append((time.perf_counter() - started) * 1000.0)
        if record is not None:
            hits += 1
    after = store.stats_snapshot()
    latencies.sort()
    blob = {
        "accesses": len(trace),
        "hits": hits,
        "misses": len(trace) - hits,
        "failovers": after["failovers"] - before["failovers"],
        "fallbacks": after["fallbacks"] - before["fallbacks"],
        "hit_rate": (hits / len(trace)) if trace else 0.0,
        "p50_ms": round(_percentile(latencies, 0.50), 3),
        "p99_ms": round(_percentile(latencies, 0.99), 3),
    }
    return blob, after


def measure_fleet(
    shards: int = 3,
    replication: int = 2,
    keys: int = 32,
    accesses: int = 400,
    zipf_s: float = 1.1,
    seed: int = 1,
) -> dict:
    """Run the healthy/degraded fleet comparison and return the document."""
    trace = zipfian_trace(keys, accesses, zipf_s, seed)
    split = len(trace) // 2

    with tempfile.TemporaryDirectory(prefix="ric-bench-fleet-") as tmp:
        daemons = []
        for i in range(shards):
            daemon = RecordCacheDaemon(
                Path(tmp) / f"shard{i}.sock",
                directory=Path(tmp) / f"records{i}",
            )
            daemon.start()
            daemons.append(daemon)
        endpoints = [str(daemon.socket_path) for daemon in daemons]
        try:
            # One engine extracts the tenant record; the fleet is warmed
            # by publishing it under every tenant's filename.
            engine = Engine(seed=seed)
            engine.run(
                [("tenant.jsl", _TENANT_SOURCE)], name="extract-tenant"
            )
            record = engine.extract_per_script_records()["tenant.jsl"]

            store = ShardedRecordStore(
                endpoints,
                fallback=RecordStore(directory=Path(tmp) / "local"),
                replication=replication,
                timeout_s=0.4,
                retries=0,
                retry_after_s=0.5,
            )
            for rank in range(keys):
                store.put(_tenant_filename(rank), _TENANT_SOURCE, record)

            healthy, _ = _play_phase(store, trace[:split])

            # Kill the primary owner of the hottest key mid-run: the
            # worst single-shard loss this trace can suffer.
            ring = HashRing(endpoints)
            victim = ring.primary(
                f"{_tenant_filename(0)}:{source_hash(_TENANT_SOURCE)}"
            )
            for daemon in daemons:
                if str(daemon.socket_path) == victim:
                    kill_shard(daemon)

            degraded, stats = _play_phase(store, trace[split:])
            epoch = store.epoch_clock.value
            store.close()
        finally:
            for daemon in daemons:
                daemon.stop()

    return {
        "schema": SCHEMA,
        "generated_by": "benchmarks/bench_fleet.py",
        "config": {
            "shards": shards,
            "replication": replication,
            "keys": keys,
            "accesses": accesses,
            "zipf_s": zipf_s,
            "seed": seed,
        },
        "host": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "machine": platform.machine(),
        },
        "fleet": {
            "killed_shard": victim,
            "epoch": epoch,
            "client_retries": stats["retries"],
            "client_proto_mismatch": stats["proto_mismatch"],
        },
        "phases": {"healthy": healthy, "degraded": degraded},
        "totals": {
            "misses_averted": healthy["hits"] + degraded["hits"],
            "hit_rate": round(
                (healthy["hits"] + degraded["hits"]) / max(1, accesses), 4
            ),
            "failovers": healthy["failovers"] + degraded["failovers"],
        },
    }


def validate_fleet_json(document: object) -> "list[str]":
    """Structural schema gate; returns a list of problems (empty = valid)."""
    problems: "list[str]" = []
    if not isinstance(document, dict):
        return ["document is not an object"]
    if document.get("schema") != SCHEMA:
        problems.append(
            f"schema is {document.get('schema')!r}, expected {SCHEMA!r}"
        )
    config = document.get("config")
    if not isinstance(config, dict):
        problems.append("missing config object")
    elif not {"shards", "replication", "keys", "accesses"} <= set(config):
        problems.append("config: needs shards/replication/keys/accesses")
    fleet = document.get("fleet")
    if not isinstance(fleet, dict) or "killed_shard" not in fleet:
        problems.append("fleet: needs killed_shard")
    totals = document.get("totals")
    if not isinstance(totals, dict) or not {
        "misses_averted",
        "hit_rate",
        "failovers",
    } <= set(totals):
        problems.append("totals: needs misses_averted/hit_rate/failovers")
    phases = document.get("phases")
    if not isinstance(phases, dict):
        return problems + ["missing phases object"]
    for phase in ("healthy", "degraded"):
        blob = phases.get(phase)
        if not isinstance(blob, dict):
            problems.append(f"phases.{phase}: missing")
            continue
        for field in _PHASE_INT_FIELDS:
            if not isinstance(blob.get(field), int):
                problems.append(f"phases.{phase}.{field}: missing or non-integer")
        for field in _PHASE_FLOAT_FIELDS:
            if not isinstance(blob.get(field), (int, float)):
                problems.append(f"phases.{phase}.{field}: missing or non-numeric")
    return problems


def write_fleet_json(path: str, document: dict) -> None:
    """Persist the document (stable key order, trailing newline)."""
    problems = validate_fleet_json(document)
    if problems:
        raise ValueError(
            f"refusing to write invalid bench document: {'; '.join(problems[:5])}"
        )
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")


def main(argv: "typing.Sequence[str] | None" = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("output", help="path for BENCH_fleet.json")
    parser.add_argument("--shards", type=int, default=3)
    parser.add_argument("--replication", type=int, default=2)
    parser.add_argument("--keys", type=int, default=32)
    parser.add_argument("--accesses", type=int, default=400)
    parser.add_argument("--zipf-s", type=float, default=1.1)
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args(list(argv) if argv is not None else None)
    document = measure_fleet(
        shards=args.shards,
        replication=args.replication,
        keys=args.keys,
        accesses=args.accesses,
        zipf_s=args.zipf_s,
        seed=args.seed,
    )
    write_fleet_json(args.output, document)
    for phase in ("healthy", "degraded"):
        blob = document["phases"][phase]
        print(
            f"{phase:9s} hit rate {blob['hit_rate']:6.1%} | "
            f"p50 {blob['p50_ms']:7.3f} ms  p99 {blob['p99_ms']:7.3f} ms | "
            f"{blob['failovers']:3d} failovers  {blob['fallbacks']:3d} fallbacks"
        )
    totals = document["totals"]
    print(
        f"{'TOTAL':9s} {totals['misses_averted']} misses averted "
        f"({totals['hit_rate']:.1%}) with shard "
        f"{document['fleet']['killed_shard']} killed mid-run"
    )
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
