"""Table 1: IC statistics during initialization — the reuse opportunity.

Paper shape: every library sees each hidden class at several object access
sites (misses/HC between 2.4 and 6.5, average 4.8), and a substantial
fraction of generated handlers is context-independent (38-82%, average
~60%)."""

from conftest import write_exhibit
from repro.harness import experiments
from repro.harness.reporting import render_table


def test_table1_regenerate(measurements, exhibit_dir):
    rows = experiments.table1_ic_statistics(measurements)
    text = render_table(
        "Table 1: IC statistics during library initialization",
        [
            ("Library", "library"),
            ("#HiddenCls", "hidden_classes"),
            ("#ICMisses", "ic_misses"),
            ("Misses/HC", "misses_per_hc"),
            ("%CI-Handlers", "ci_handler_pct"),
        ],
        rows,
        paper=experiments.PAPER_TABLE1,
    )
    write_exhibit(exhibit_dir, "table1_ic_stats", text)

    libraries = rows[:-1]
    average = rows[-1]

    # Shape assertions (never absolute values):
    # 1. every hidden class misses at more than one site on average
    for row in libraries:
        assert row["misses_per_hc"] > 1.0, row["library"]
    # 2. a substantial share of handlers is reusable
    assert 40.0 <= average["ci_handler_pct"] <= 80.0
    # 3. React-like tops both hidden-class and miss counts, as in the paper
    assert max(libraries, key=lambda r: r["hidden_classes"])["library"] == "reactlike"
    assert max(libraries, key=lambda r: r["ic_misses"])["library"] == "reactlike"


def test_table1_extraction_benchmark(measurements, benchmark):
    """Times the statistic computation over the session measurements."""
    rows = benchmark(experiments.table1_ic_statistics, measurements)
    assert len(rows) == 8
