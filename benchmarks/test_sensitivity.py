"""Sensitivity analysis (extension bench): RIC benefit vs misses-per-HC.

Not a paper exhibit.  Validates the mechanism behind Table 1: the paper
attributes RIC's opportunity to each hidden class being encountered at
several object access sites (misses/HC ≈ 4.8 on average).  Sweeping that
quantity on generated synthetic libraries shows the benefit is monotone in
it — every added read pass adds one avertable Dependent miss per hidden
class while the Triggering misses stay fixed."""

from conftest import write_exhibit
from repro.harness.experiments import sensitivity_sweep


def test_sensitivity_regenerate(exhibit_dir):
    rows = sensitivity_sweep(sites_per_shape_values=(1, 2, 4, 6, 8))
    lines = [
        "Sensitivity: RIC benefit vs sites-per-shape (misses per hidden class)",
        "=" * 70,
        f"{'sites/shape':>12s} {'misses/HC':>10s} {'init miss%':>11s} "
        f"{'RIC miss%':>10s} {'norm instr':>11s} {'miss redu.':>10s}",
    ]
    for row in rows:
        lines.append(
            f"{row['sites_per_shape']:12d} {row['misses_per_hc']:10.1f} "
            f"{row['initial_miss_pct']:11.1f} {row['ric_miss_pct']:10.1f} "
            f"{row['normalized_instructions']:11.3f} "
            f"{row['miss_reduction_fraction']:10.2f}"
        )
    write_exhibit(exhibit_dir, "sensitivity_sweep", "\n".join(lines))

    # misses/HC actually tracks the knob...
    ratios = [row["misses_per_hc"] for row in rows]
    assert all(a < b for a, b in zip(ratios, ratios[1:]))
    # ...and RIC's benefit is monotone in it, on both metrics.
    reductions = [row["miss_reduction_fraction"] for row in rows]
    assert all(a <= b for a, b in zip(reductions, reductions[1:]))
    normalized = [row["normalized_instructions"] for row in rows]
    assert all(a >= b for a, b in zip(normalized, normalized[1:]))


def test_sweep_point_benchmark(benchmark):
    """Times one sweep point's full protocol."""
    from repro.core.engine import Engine
    from repro.workloads.synthetic import generated_scripts

    scripts = generated_scripts(shapes=12, sites_per_shape=4)

    def one_point():
        return Engine(seed=1).measure_workload(scripts, name="synthetic")

    measurement = benchmark(one_point)
    assert measurement.ric.counters.ic_misses < measurement.conventional.counters.ic_misses
