"""Shared fixtures for the benchmark suite.

Each ``test_*`` module regenerates one of the paper's tables or figures.
The expensive full-protocol measurement over all seven workloads runs once
per session; rendered exhibits are written to ``benchmarks/out/``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.harness import experiments

OUTPUT_DIR = Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def measurements():
    """Initial -> extract -> Conventional -> RIC over all seven workloads."""
    return experiments.measure_all_workloads(seed=1)


@pytest.fixture(scope="session")
def exhibit_dir() -> Path:
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


def write_exhibit(exhibit_dir: Path, name: str, text: str) -> None:
    """Persist a rendered exhibit and echo it for -s runs."""
    (exhibit_dir / f"{name}.txt").write_text(text + "\n")
    print("\n" + text)
