"""Schema gate + acceptance criterion for the governance-overhead bench.

The criterion from the execution-governance work: an armed but
never-violated budget costs < 3% median wall-time overhead at the
default check stride across the BENCH_interp workloads.  Timing noise
on shared CI boxes is real, so the suite measures a median over
several iterations and asserts against a modest margin above the 3%
design target rather than a razor's edge.
"""

from __future__ import annotations

import pytest

from repro.core.budget import DEFAULT_CHECK_STRIDE

from bench_budget import SCHEMA, measure, validate_document

#: The design target; the assertion allows measurement noise on top.
DESIGN_TARGET_FRAC = 0.03
NOISE_MARGIN_FRAC = 0.04


@pytest.fixture(scope="module")
def document() -> dict:
    return measure(iterations=5, seed=1)


def test_document_is_schema_valid(document):
    assert document["schema"] == SCHEMA
    assert validate_document(document) == []


def test_schema_gate_catches_damage(document):
    import copy

    broken = copy.deepcopy(document)
    broken["schema"] = "ric-bench-budget/v0"
    assert validate_document(broken)
    del broken["schema"]
    assert validate_document(broken)
    gutted = copy.deepcopy(document)
    gutted["workloads"] = {}
    assert validate_document(gutted)


def test_governed_dispatches_match_ungoverned(document):
    for name, blob in document["workloads"].items():
        for stride, gov in blob["governed"].items():
            assert gov["dispatches"] == blob["ungoverned"]["dispatches"], (
                f"{name} stride {stride}"
            )


def test_default_stride_overhead_under_target(document):
    overall = document["overall"][str(DEFAULT_CHECK_STRIDE)]
    measured = overall["overhead_frac_median"]
    assert measured < DESIGN_TARGET_FRAC + NOISE_MARGIN_FRAC, (
        f"median governance overhead at stride {DEFAULT_CHECK_STRIDE} "
        f"is {100 * measured:.2f}%, design target is "
        f"{100 * DESIGN_TARGET_FRAC:.0f}%"
    )


def test_larger_strides_never_explode(document):
    """Overhead must not grow with stride (amortization sanity)."""
    for stride, blob in document["overall"].items():
        assert blob["overhead_frac_median"] < 0.25, (
            f"stride {stride} overhead {blob['overhead_frac_median']:.2%}"
        )
