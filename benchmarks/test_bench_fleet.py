"""Schema gate for the sharded-fleet bench (bench_fleet.py).

Mirrors ``test_bench_remote.py``: a tiny configuration so it runs
everywhere fast; the point is that the harness produces a schema-valid
document and that killing one shard mid-run demonstrably costs nothing
but failovers — not that the numbers are impressive.
"""

from __future__ import annotations

import json
import socket

import pytest

from bench_fleet import (
    SCHEMA,
    measure_fleet,
    validate_fleet_json,
    write_fleet_json,
    zipfian_trace,
)

pytestmark = pytest.mark.skipif(
    not hasattr(socket, "AF_UNIX"), reason="unix domain sockets unavailable"
)


@pytest.fixture(scope="module")
def document() -> dict:
    return measure_fleet(shards=3, replication=2, keys=8, accesses=60, seed=1)


def test_document_is_schema_valid(document):
    assert document["schema"] == SCHEMA
    assert validate_fleet_json(document) == []


def test_healthy_phase_serves_everything_remotely(document):
    healthy = document["phases"]["healthy"]
    assert healthy["hit_rate"] == 1.0
    assert healthy["failovers"] == 0
    assert healthy["fallbacks"] == 0


def test_shard_kill_costs_failovers_not_hits(document):
    degraded = document["phases"]["degraded"]
    # R=2: the surviving replica keeps the hit rate at 1.0 ...
    assert degraded["hit_rate"] == 1.0
    assert degraded["fallbacks"] == 0
    # ... and the kill is visible only as failovers (the hottest key's
    # primary is the victim, so the Zipfian trace must hop).
    assert degraded["failovers"] > 0
    assert document["fleet"]["killed_shard"]


def test_latency_percentiles_are_ordered(document):
    for phase in document["phases"].values():
        assert 0.0 <= phase["p50_ms"] <= phase["p99_ms"]


def test_totals_aggregate_phases(document):
    totals = document["totals"]
    phases = document["phases"]
    assert (
        totals["misses_averted"]
        == phases["healthy"]["hits"] + phases["degraded"]["hits"]
    )
    assert totals["hit_rate"] == 1.0
    assert totals["failovers"] == phases["degraded"]["failovers"]


def test_zipfian_trace_is_seeded_and_skewed():
    trace = zipfian_trace(keys=8, accesses=500, s=1.1, seed=7)
    assert trace == zipfian_trace(keys=8, accesses=500, s=1.1, seed=7)
    assert trace != zipfian_trace(keys=8, accesses=500, s=1.1, seed=8)
    # Rank 0 is the hottest key by a wide margin.
    assert trace.count(0) > trace.count(7)


def test_write_round_trips(document, tmp_path):
    path = tmp_path / "bench_fleet.json"
    write_fleet_json(str(path), document)
    assert json.loads(path.read_text()) == document


def test_write_refuses_invalid_documents(tmp_path):
    with pytest.raises(ValueError, match="invalid bench document"):
        write_fleet_json(str(tmp_path / "bad.json"), {"schema": "nope"})


def test_validator_reports_missing_phases():
    broken = {
        "schema": SCHEMA,
        "config": {"shards": 3, "replication": 2, "keys": 8, "accesses": 60},
        "fleet": {"killed_shard": "x"},
        "totals": {"misses_averted": 1, "hit_rate": 1.0, "failovers": 0},
        "phases": {"healthy": {}},
    }
    problems = validate_fleet_json(broken)
    assert any("phases.degraded" in p for p in problems)
    assert any("phases.healthy.hits" in p for p in problems)
