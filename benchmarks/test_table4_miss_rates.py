"""Table 4: IC miss rates in the Initial and (RIC) Reuse runs.

Paper shape: RIC substantially reduces the miss rate on every library
(49.2% -> 24.1% average in the paper); the residual misses are dominated by
the "Other" bucket (mostly triggering sites), with small "Handler" and
"Global" contributions."""

from conftest import write_exhibit
from repro.harness import experiments
from repro.harness.reporting import render_table


def test_table4_regenerate(measurements, exhibit_dir):
    rows = experiments.table4_miss_rates(measurements)
    text = render_table(
        "Table 4: IC miss rate, Initial vs RIC Reuse (with attribution)",
        [
            ("Library", "library"),
            ("Initial%", "initial_miss_pct"),
            ("Reuse%", "reuse_miss_pct"),
            ("Handler%", "handler_pct"),
            ("Global%", "global_pct"),
            ("Other%", "other_pct"),
        ],
        rows,
        paper=experiments.PAPER_TABLE4,
    )
    write_exhibit(exhibit_dir, "table4_miss_rates", text)

    libraries = rows[:-1]
    average = rows[-1]

    # 1. RIC reduces the miss rate for every library.
    for row in libraries:
        assert row["reuse_miss_pct"] < row["initial_miss_pct"], row["library"]
    # 2. Average reduction is substantial (paper: halved).
    assert average["reuse_miss_pct"] < 0.8 * average["initial_miss_pct"]
    # 3. "Other" dominates the residual breakdown.
    assert average["other_pct"] > average["handler_pct"]
    assert average["other_pct"] > average["global_pct"]
    # 4. The three components account exactly for the Reuse rate.
    for row in libraries:
        total = row["handler_pct"] + row["global_pct"] + row["other_pct"]
        assert abs(total - row["reuse_miss_pct"]) < 1e-6


def test_table4_reuse_run_benchmark(measurements, benchmark):
    """Times a RIC Reuse run of the average-case workload."""
    from repro.core.engine import Engine
    from repro.workloads import WORKLOADS

    scripts = WORKLOADS["angularlike"].scripts()
    engine = Engine(seed=1)
    engine.run(scripts, name="angularlike")
    record = engine.extract_icrecord()

    profile = benchmark(engine.run, scripts, name="angularlike", icrecord=record)
    assert profile.counters.ic_hits_on_preloaded > 0
