"""Figure 1: conflicting trends — user page-load expectations vs website
JavaScript complexity (published survey data, reproduced as-is)."""

from conftest import write_exhibit
from repro.harness import experiments
from repro.harness.reporting import render_series


def test_fig1_regenerate(exhibit_dir, benchmark):
    trends = benchmark(experiments.figure1_trends)
    text = render_series(
        "Figure 1: page-load-time expectations vs website JS complexity",
        {
            "Expected page load time (s)": trends["expected_page_load_time_s"],
            "# JavaScript requests (top 1000 sites)": trends["js_requests_top1000"],
        },
    )
    write_exhibit(exhibit_dir, "fig1_trends", text)

    load_times = trends["expected_page_load_time_s"]
    requests = trends["js_requests_top1000"]
    # The paper's point: expectations shrink while complexity grows.
    assert load_times[0][1] == 8.0 and load_times[-1][1] == 2.0
    assert requests[0][1] == 12 and requests[-1][1] == 28
