"""Figure 8: dynamic instruction count of the Reuse runs, Conventional vs
RIC, normalized to Conventional.

Paper shape: RIC saves instructions on every library (15% on average), and
the saving roughly tracks the per-library IC-miss-rate reduction."""

from conftest import write_exhibit
from repro.harness import experiments
from repro.harness.reporting import render_bars


def test_fig8_regenerate(measurements, exhibit_dir):
    rows = experiments.figure8_instruction_counts(measurements)
    text = render_bars(
        "Figure 8: RIC Reuse instruction count, normalized to Conventional",
        rows,
        value_key="ric",
    )
    write_exhibit(exhibit_dir, "fig8_instructions", text)

    libraries = rows[:-1]
    average = rows[-1]

    for row in libraries:
        assert row["ric"] < 1.0, row["library"]
    assert 0.75 <= average["ric"] <= 0.95  # paper: 0.85

    # Correlation claim: instruction savings roughly track miss-rate drops.
    table4 = {r["library"]: r for r in experiments.table4_miss_rates(measurements)}
    savings = {r["library"]: 1.0 - r["ric"] for r in libraries}
    drops = {
        name: table4[name]["initial_miss_pct"] - table4[name]["reuse_miss_pct"]
        for name in savings
    }
    best_saver = max(savings, key=savings.get)
    top3_droppers = sorted(drops, key=drops.get, reverse=True)[:3]
    assert best_saver in top3_droppers


def test_fig8_conventional_vs_ric_benchmark(measurements, benchmark):
    rows = benchmark(experiments.figure8_instruction_counts, measurements)
    assert rows[-1]["library"] == "Average"
