"""Smoke test for the perf baseline harness (run with
``PYTHONPATH=src python -m pytest benchmarks/``).

Kept tiny — one workload, one iteration — so it can run anywhere without
distorting anyone's benchmarking; the point is that the harness still
produces a schema-valid document, not that the numbers are good.
"""

from __future__ import annotations

import json

import pytest

from repro.harness.bench import (
    SCHEMA,
    bench_workloads,
    measure,
    validate_bench_json,
    write_bench_json,
)


@pytest.fixture(scope="module")
def document() -> dict:
    return measure(workload_names=["synthetic"], iterations=1, seed=1)


def test_document_is_schema_valid(document):
    assert document["schema"] == SCHEMA
    assert validate_bench_json(document) == []


def test_reuse_beats_cold_on_misses(document):
    blob = document["workloads"]["synthetic"]
    assert blob["reuse"]["ic_misses"] < blob["cold"]["ic_misses"]
    assert blob["reuse"]["ric_preloads"] > 0


def test_polyshapes_reuse_beats_cold(document):
    """The polymorphic tier sweep must profit from record reuse too: the
    preloaded slot lists swallow the POLY-tier misses the cold run pays."""
    doc = measure(workload_names=["polyshapes"], iterations=1, seed=1)
    blob = doc["workloads"]["polyshapes"]
    assert blob["reuse"]["ic_misses"] < blob["cold"]["ic_misses"]
    assert blob["reuse"]["ric_preloads"] > 0
    assert blob["cold"]["ic_hits_poly"] > 0
    assert blob["reuse"]["ic_hits_poly"] > 0
    assert blob["cold"]["ic_mega_transitions"] > 0


def test_counter_fields_are_integers(document):
    for mode in ("cold", "reuse"):
        blob = document["workloads"]["synthetic"][mode]
        for field in ("dispatches", "ic_accesses", "ic_hits", "ic_misses"):
            assert isinstance(blob[field], int) and blob[field] >= 0
        assert blob["dispatches"] > 0


def test_write_round_trips(document, tmp_path):
    path = tmp_path / "bench.json"
    write_bench_json(str(path), document)
    assert json.loads(path.read_text()) == document


def test_write_refuses_invalid_documents(tmp_path):
    with pytest.raises(ValueError, match="invalid bench document"):
        write_bench_json(str(tmp_path / "bad.json"), {"schema": "nope"})


def test_validator_reports_missing_modes():
    broken = {"schema": SCHEMA, "config": {}, "workloads": {"w": {"cold": {}}}}
    problems = validate_bench_json(broken)
    assert any("w.reuse" in p for p in problems)


def test_bench_workload_registry_has_all_ten():
    workloads = bench_workloads()
    assert len(workloads) == 10
    assert "synthetic" in workloads
    assert "polyshapes" in workloads
    assert "typedarith" in workloads


def test_typedarith_quickened_reuse_beats_unquickened():
    """The specialization smoke gate: on the type-stable workload the
    quickened reuse run executes typed opcodes without a single deopt,
    pays less modeled cost than generic reuse, and still books fewer IC
    misses than cold."""
    from repro.core.config import RICConfig

    doc = measure(workload_names=["typedarith"], iterations=1, seed=1)
    blob = doc["workloads"]["typedarith"]
    assert blob["reuse"]["specialized_hits"] > 0
    assert blob["reuse"]["deopts"] == 0
    assert blob["cold"]["specialized_hits"] == 0
    assert blob["reuse"]["ic_misses"] < blob["cold"]["ic_misses"]

    generic = measure(
        workload_names=["typedarith"],
        iterations=1,
        seed=1,
        config=RICConfig(specialize=False),
    )
    generic_blob = generic["workloads"]["typedarith"]
    assert generic_blob["reuse"]["specialized_hits"] == 0
    assert blob["reuse"]["ic_misses"] == generic_blob["reuse"]["ic_misses"]
    quickened_cost = sum(blob["reuse"]["instructions"].values())
    generic_cost = sum(generic_blob["reuse"]["instructions"].values())
    assert quickened_cost < generic_cost


def test_checked_in_baseline_is_valid():
    """BENCH_interp.json at the repo root must track the current schema."""
    from pathlib import Path

    path = Path(__file__).resolve().parent.parent / "BENCH_interp.json"
    assert path.exists(), "BENCH_interp.json missing from the repo root"
    doc = json.loads(path.read_text())
    assert validate_bench_json(doc) == []
    assert len(doc["workloads"]) == 10
    for name, entry in doc["workloads"].items():
        assert entry["reuse"]["ic_misses"] < entry["cold"]["ic_misses"], name
    # The polymorphic sweep must actually exercise the tier machine: POLY
    # slot hits in both modes, and the cold run crossing into MEGA.
    poly = doc["workloads"]["polyshapes"]
    assert poly["cold"]["ic_hits_poly"] > 0
    assert poly["reuse"]["ic_hits_poly"] > 0
    assert poly["cold"]["ic_mega_transitions"] > 0
    # The type-stable showcase must show the quickening win: typed hits
    # on reuse, none cold (there is no feedback to spend yet), no deopts.
    typed = doc["workloads"]["typedarith"]
    assert typed["reuse"]["specialized_hits"] > 0
    assert typed["reuse"]["deopts"] == 0
    assert typed["cold"]["specialized_hits"] == 0
