"""Figure 9: execution time of the Reuse runs, Conventional vs RIC.

Paper shape: RIC reduces initialization time on every library (17% on
average), slightly more than the instruction saving because eliminated
IC-miss-handling instructions carry cache misses.  In this reproduction the
primary metric is the modeled time (documented CPI per instruction
category); host wall-clock is reported alongside."""

from conftest import write_exhibit
from repro.harness import experiments
from repro.harness.reporting import render_table


def test_fig9_regenerate(measurements, exhibit_dir):
    rows = experiments.figure9_execution_times(measurements)
    text = render_table(
        "Figure 9: Reuse execution time (modeled ms), Conventional vs RIC",
        [
            ("Library", "library"),
            ("Conv (ms)", "conventional_ms"),
            ("RIC (ms)", "ric_ms"),
            ("Normalized", "normalized"),
            ("WallConv(ms)", "wall_conventional_ms"),
            ("WallRIC(ms)", "wall_ric_ms"),
        ],
        rows,
    )
    write_exhibit(exhibit_dir, "fig9_time", text)

    libraries = rows[:-1]
    average = rows[-1]

    for row in libraries:
        assert row["ric_ms"] < row["conventional_ms"], row["library"]
    assert average["normalized"] < 0.95

    # Paper §7.2: time saving slightly exceeds the instruction saving.
    instruction_rows = experiments.figure8_instruction_counts(measurements)
    assert average["normalized"] < instruction_rows[-1]["ric"]


def test_fig9_wall_clock_benchmark(benchmark):
    """Real wall-clock benchmark of Conventional vs RIC on one workload;
    pytest-benchmark reports the RIC run's host time."""
    from repro.core.engine import Engine
    from repro.workloads import WORKLOADS

    scripts = WORKLOADS["camanlike"].scripts()
    engine = Engine(seed=1)
    engine.run(scripts, name="camanlike")
    record = engine.extract_icrecord()

    profile = benchmark(engine.run, scripts, name="camanlike", icrecord=record)
    assert profile.counters.ric_preloads > 0
