"""Figure 5: instruction breakdown during library initialization.

Paper shape: IC miss handling accounts for a substantial fraction of
initialization instructions (36% on average in the paper's V8 runs)."""

from conftest import write_exhibit
from repro.core.engine import Engine
from repro.harness import experiments
from repro.harness.reporting import render_stacked_fraction
from repro.workloads import WORKLOADS


def test_fig5_regenerate(measurements, exhibit_dir):
    rows = experiments.figure5_instruction_breakdown(measurements)
    text = render_stacked_fraction(
        "Figure 5: instruction breakdown during initialization "
        "(# = IC miss handling)",
        rows,
        part_key="ic_miss_handling",
    )
    write_exhibit(exhibit_dir, "fig5_breakdown", text)

    average = rows[-1]["ic_miss_handling"]
    assert 0.15 <= average <= 0.60  # paper: 0.36
    for row in rows[:-1]:
        assert row["ic_miss_handling"] > 0.0, row["library"]


def test_fig5_initial_run_benchmark(benchmark):
    """Times the measured quantity itself: one Initial run of the
    highest-miss workload."""
    scripts = WORKLOADS["reactlike"].scripts()

    def initial_run():
        return Engine(seed=1).run(scripts, name="reactlike")

    profile = benchmark(initial_run)
    assert profile.counters.ic_misses > 0
