"""§7.3: RIC overheads — extraction time and ICRecord memory.

Paper shape: extraction is cheap (6-30 ms, and off the critical path) and
the ICRecord is small relative to the workload heap (11-118 KB vs
2.6-5.6 MB, about 1%)."""

from conftest import write_exhibit
from repro.harness import experiments
from repro.harness.reporting import render_table
from repro.ric.extraction import extract_icrecord


def test_sec73_regenerate(measurements, exhibit_dir):
    rows = experiments.section73_overheads(measurements)
    text = render_table(
        "Section 7.3: RIC overheads (extraction time, ICRecord memory)",
        [
            ("Library", "library"),
            ("Extract(ms)", "extraction_ms"),
            ("ICRec(KB)", "icrecord_kb"),
            ("Heap(KB)", "heap_kb"),
            ("Overhead%", "overhead_pct"),
        ],
        rows,
    )
    write_exhibit(exhibit_dir, "sec73_overheads", text)

    libraries = rows[:-1]
    for row in libraries:
        # Small record relative to heap (paper: ~1%; assert < 5%).
        assert row["overhead_pct"] < 5.0, row["library"]
        # Record sizes land in the paper's KB ballpark.
        assert 1.0 <= row["icrecord_kb"] <= 200.0, row["library"]
    average = rows[-1]
    assert average["extraction_ms"] < 500.0


def test_sec73_extraction_benchmark(benchmark):
    """Times the extraction phase itself on the largest workload."""
    from repro.core.engine import Engine
    from repro.workloads import WORKLOADS

    engine = Engine(seed=1)
    engine.run(WORKLOADS["reactlike"].scripts(), name="reactlike")
    runtime = engine.last_run.runtime
    feedback = engine.last_run.feedback

    record = benchmark(extract_icrecord, runtime, feedback)
    assert record.num_hidden_classes > 0
