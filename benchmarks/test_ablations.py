"""Ablation benches for the design choices DESIGN.md §6 calls out.

Not a paper exhibit; quantifies what each of RIC's two ideas (Table 2)
contributes, what validation costs, and how the §9 snapshot baseline
compares."""

from conftest import write_exhibit
from repro.baselines.snapshot import SnapshotBaseline
from repro.core.config import RICConfig
from repro.core.engine import Engine
from repro.workloads import WORKLOADS

SCRIPTS = WORKLOADS["angularlike"].scripts()

CONFIGS = [
    ("conventional", None),
    ("full-ric", RICConfig()),
    ("linking-only", RICConfig(enable_handler_reuse=False)),
    ("no-linking", RICConfig(enable_linking=False)),
    ("naive-unvalidated", RICConfig(validate=False)),
]


def run_variant(config: RICConfig | None):
    engine = Engine(config=config or RICConfig(), seed=31)
    engine.run(SCRIPTS, name="ablate")
    record = engine.extract_icrecord()
    if config is None:
        return engine.run(SCRIPTS, name="ablate")
    return engine.run(SCRIPTS, name="ablate", icrecord=record)


def test_ablation_table(exhibit_dir):
    rows = []
    for label, config in CONFIGS:
        profile = run_variant(config)
        rows.append(
            (
                label,
                profile.counters.ic_misses,
                profile.total_instructions,
                profile.counters.ric_preloads,
            )
        )
    lines = ["Ablations (angular-like Reuse run)", "=" * 50]
    lines.append(f"{'variant':20s} {'misses':>8s} {'instructions':>13s} {'preloads':>9s}")
    for label, misses, instructions, preloads in rows:
        lines.append(f"{label:20s} {misses:8d} {instructions:13d} {preloads:9d}")
    write_exhibit(exhibit_dir, "ablations", "\n".join(lines))

    by_label = {row[0]: row for row in rows}
    conventional = by_label["conventional"]
    full = by_label["full-ric"]
    linking_only = by_label["linking-only"]
    no_linking = by_label["no-linking"]

    # Full RIC wins on both metrics.
    assert full[1] < conventional[1] and full[2] < conventional[2]
    # Linking-only averts the same misses but costs more instructions.
    assert linking_only[1] == full[1]
    assert linking_only[2] > full[2]
    # No linking = no preloads = conventional behaviour.
    assert no_linking[3] == 0
    assert no_linking[1] == conventional[1]


def test_snapshot_baseline_comparison(exhibit_dir):
    engine = Engine(seed=31)
    profile = engine.run(SCRIPTS, name="snap")
    record = engine.extract_icrecord()
    snapshot = SnapshotBaseline.capture(engine, SCRIPTS)
    ric = engine.run(SCRIPTS, name="snap", icrecord=record)

    from repro.ric.serialize import record_size_bytes

    lines = [
        "Snapshot baseline vs RIC (angular-like)",
        "=" * 50,
        f"snapshot size:        {snapshot.size_bytes / 1024:.1f} KB (whole-app state)",
        f"icrecord size:        {record_size_bytes(record) / 1024:.1f} KB (per-script, shareable)",
        f"snapshot re-executes: nothing (frozen state)",
        f"ric re-executes:      everything ({ric.counters.ic_misses} residual misses)",
    ]
    write_exhibit(exhibit_dir, "snapshot_vs_ric", "\n".join(lines))
    assert snapshot.console_output == profile.console_output


def test_full_protocol_benchmark(benchmark):
    """Wall-clock of one complete measure_workload protocol."""

    def protocol():
        return Engine(seed=31).measure_workload(SCRIPTS, name="ablate")

    measurement = benchmark(protocol)
    assert measurement.ric.counters.ic_misses <= measurement.conventional.counters.ic_misses
