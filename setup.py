"""Compatibility shim so `pip install -e .` works on environments whose
setuptools predates PEP 660 wheel-less editable installs."""
from setuptools import setup

setup()
