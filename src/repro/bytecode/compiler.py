"""AST -> bytecode compiler for jsl.

The compiler is deliberately deterministic: the same source always produces
the same bytecode, the same constant pools and — critically — the same
feedback-slot numbering and site keys.  That determinism is what makes the
code cache (paper §8.1) and the TOAST site identifiers (paper §5.1) valid
across executions.

Scoping model: jsl uses function-level scoping (``var`` semantics) for all
declaration kinds.  Each function gets a flat list of local slots; free
variables are resolved at compile time to ``(depth, index)`` pairs walking
the lexical chain; anything unresolved is a global-object access, compiled
to a global IC site.
"""

from __future__ import annotations

from repro.bytecode.code import CodeObject, FeedbackSlotInfo, SiteKind
from repro.bytecode.opcodes import BINOP_BY_SPELLING, UNOP_BY_SPELLING, BinOp, Op
from repro.lang import ast_nodes as ast
from repro.lang.errors import JSLCompileError, SourcePosition


class _Scope:
    """Compile-time scope for one function (or the script top level)."""

    def __init__(self, parent: "_Scope | None", is_global: bool):
        self.parent = parent
        self.is_global = is_global
        self.locals: dict[str, int] = {}
        self.local_names: list[str] = []
        self._temp_counter = 0

    def declare(self, name: str) -> int:
        """Declare a local (idempotent), returning its slot index."""
        if name in self.locals:
            return self.locals[name]
        index = len(self.local_names)
        self.locals[name] = index
        self.local_names.append(name)
        return index

    def new_temp(self) -> int:
        """Allocate a compiler-internal temp slot."""
        name = f"%t{self._temp_counter}"
        self._temp_counter += 1
        return self.declare(name)

    def resolve(self, name: str) -> tuple[str, int, int]:
        """Resolve ``name`` -> ("local", idx, 0) | ("env", depth, idx) |
        ("global", 0, 0)."""
        if not self.is_global and name in self.locals:
            return ("local", self.locals[name], 0)
        depth = 1
        scope = self.parent
        while scope is not None:
            if not scope.is_global and name in scope.locals:
                return ("env", depth, scope.locals[name])
            depth += 1
            scope = scope.parent
        return ("global", 0, 0)


class _LoopContext:
    """Patch lists for break/continue targets of the innermost loop.

    ``entry_try_depth`` records how many try regions were open when the loop
    started; break/continue from a deeper try nesting would leave stale VM
    try handlers installed, so the compiler rejects them.
    """

    def __init__(self, entry_try_depth: int = 0) -> None:
        self.break_jumps: list[int] = []
        self.continue_jumps: list[int] = []
        self.entry_try_depth = entry_try_depth


class _FunctionCompiler:
    """Compiles one function body into a :class:`CodeObject`."""

    def __init__(
        self,
        name: str,
        params: list[str],
        position: SourcePosition,
        filename: str,
        scope: _Scope,
    ):
        self.code = CodeObject(
            name=name, filename=filename, params=list(params), position=position
        )
        self.scope = scope
        self.loops: list[_LoopContext] = []
        self.finally_depth = 0
        self.try_depth = 0
        #: Position attributed to instructions emitted next (statement-level).
        self.current_position = position
        self._site_keys_used: set[str] = set()
        self._const_index: dict[object, int] = {}
        self._name_index: dict[str, int] = {}

    # -- emission helpers ----------------------------------------------------

    def emit(self, op: Op, a: int = 0, b: int = 0) -> int:
        self.code.instructions.append((int(op), a, b))
        self.code.positions.append(
            (self.current_position.line, self.current_position.column)
        )
        return len(self.code.instructions) - 1

    def patch(self, pc: int, target: int) -> None:
        op, _, b = self.code.instructions[pc]
        self.code.instructions[pc] = (op, target, b)

    def here(self) -> int:
        return len(self.code.instructions)

    def const(self, value: object) -> int:
        key = (type(value).__name__, value) if not isinstance(value, CodeObject) else None
        if key is not None and key in self._const_index:
            return self._const_index[key]
        index = len(self.code.constants)
        self.code.constants.append(value)
        if key is not None:
            self._const_index[key] = index
        return index

    def name(self, text: str) -> int:
        if text in self._name_index:
            return self._name_index[text]
        index = len(self.code.names)
        self.code.names.append(text)
        self._name_index[text] = index
        return index

    def feedback(self, kind: SiteKind, position: SourcePosition, name: str | None) -> int:
        info = FeedbackSlotInfo(kind=kind, position=position, name=name)
        # Site keys must be unique within the whole program; a position+kind
        # collision (possible only for pathological one-token sources) gets a
        # deterministic suffix.
        key = info.site_key
        if key in self._site_keys_used:
            suffix = 2
            while True:
                candidate = FeedbackSlotInfo(
                    kind=kind,
                    position=SourcePosition(
                        position.filename,
                        position.line,
                        position.column + 10_000 * suffix,
                    ),
                    name=name,
                )
                if candidate.site_key not in self._site_keys_used:
                    info = candidate
                    key = candidate.site_key
                    break
                suffix += 1
        self._site_keys_used.add(key)
        self.code.feedback_slots.append(info)
        return len(self.code.feedback_slots) - 1

    def finish(self) -> CodeObject:
        self.emit(Op.LOAD_UNDEFINED)
        self.emit(Op.RETURN)
        self.code.local_names = list(self.scope.local_names)
        return self.code


class Compiler:
    """Compiles a parsed :class:`~repro.lang.ast_nodes.Program`."""

    def __init__(self, filename: str = "<script>"):
        self.filename = filename

    # -- entry points --------------------------------------------------------

    def compile_program(self, program: ast.Program) -> CodeObject:
        scope = _Scope(parent=None, is_global=True)
        fn = _FunctionCompiler(
            name="<toplevel>",
            params=[],
            position=program.position,
            filename=self.filename,
            scope=scope,
        )
        self._hoist_into(fn, program.body, toplevel=True)
        for statement in program.body:
            self._stmt(fn, statement)
        return fn.finish()

    # -- hoisting --------------------------------------------------------------

    def _hoist_into(
        self, fn: _FunctionCompiler, body: list[ast.Statement], toplevel: bool
    ) -> None:
        """Hoist declarations: at top level everything becomes a global
        property; inside a function, locals.  Function declarations are also
        compiled (and bound) up front, mirroring JS hoisting."""
        declared = _collect_declarations(body)
        for name, position in declared.vars:
            if toplevel:
                slot = fn.feedback(SiteKind.GLOBAL_STORE, position, name)
                fn.emit(Op.DECLARE_GLOBAL, fn.name(name), slot)
            else:
                fn.scope.declare(name)
        for decl in declared.functions:
            if not toplevel:
                fn.scope.declare(decl.name)
        for decl in declared.functions:
            code = self._compile_function(
                fn, decl.name, decl.params, decl.body, decl.position
            )
            fn.emit(Op.MAKE_FUNCTION, fn.const(code))
            if toplevel:
                slot = fn.feedback(SiteKind.GLOBAL_STORE, decl.position, decl.name)
                fn.emit(Op.DECLARE_GLOBAL, fn.name(decl.name), slot)
                slot2 = fn.feedback(SiteKind.GLOBAL_STORE, decl.position, decl.name)
                fn.emit(Op.STORE_GLOBAL, fn.name(decl.name), slot2)
                fn.emit(Op.POP)
            else:
                fn.emit(Op.STORE_LOCAL, fn.scope.locals[decl.name])

    def _compile_function(
        self,
        parent: _FunctionCompiler,
        name: str | None,
        params: list[str],
        body: ast.Block,
        position: SourcePosition,
    ) -> CodeObject:
        scope = _Scope(parent=parent.scope, is_global=False)
        fn = _FunctionCompiler(
            name=name or "<anonymous>",
            params=params,
            position=position,
            filename=self.filename,
            scope=scope,
        )
        for param in params:
            scope.declare(param)
        self._hoist_into(fn, body.statements, toplevel=False)
        for statement in body.statements:
            self._stmt(fn, statement)
        return fn.finish()

    # -- statements --------------------------------------------------------------

    def _stmt(self, fn: _FunctionCompiler, node: ast.Statement) -> None:
        fn.current_position = node.position
        if isinstance(node, ast.ExpressionStatement):
            self._expr(fn, node.expression)
            fn.emit(Op.POP)
        elif isinstance(node, ast.VariableDeclaration):
            self._var_declaration(fn, node)
        elif isinstance(node, ast.FunctionDeclaration):
            pass  # handled during hoisting
        elif isinstance(node, ast.Block):
            for statement in node.statements:
                self._stmt(fn, statement)
        elif isinstance(node, ast.If):
            self._if(fn, node)
        elif isinstance(node, ast.While):
            self._while(fn, node)
        elif isinstance(node, ast.DoWhile):
            self._do_while(fn, node)
        elif isinstance(node, ast.For):
            self._for(fn, node)
        elif isinstance(node, ast.ForIn):
            self._for_in(fn, node)
        elif isinstance(node, ast.Return):
            if self.in_finally(fn):
                raise JSLCompileError(
                    "return inside a finally-protected region is not supported",
                    node.position,
                )
            if node.value is not None:
                self._expr(fn, node.value)
            else:
                fn.emit(Op.LOAD_UNDEFINED)
            fn.emit(Op.RETURN)
        elif isinstance(node, ast.Break):
            if not fn.loops:
                raise JSLCompileError("break outside of loop", node.position)
            if fn.try_depth != fn.loops[-1].entry_try_depth:
                raise JSLCompileError(
                    "break across a try region is not supported", node.position
                )
            fn.loops[-1].break_jumps.append(fn.emit(Op.JUMP))
        elif isinstance(node, ast.Continue):
            if not fn.loops:
                raise JSLCompileError("continue outside of loop", node.position)
            if fn.try_depth != fn.loops[-1].entry_try_depth:
                raise JSLCompileError(
                    "continue across a try region is not supported", node.position
                )
            fn.loops[-1].continue_jumps.append(fn.emit(Op.JUMP))
        elif isinstance(node, ast.Throw):
            self._expr(fn, node.value)
            fn.emit(Op.THROW)
        elif isinstance(node, ast.Try):
            self._try(fn, node)
        elif isinstance(node, ast.Switch):
            self._switch(fn, node)
        else:  # pragma: no cover - parser produces no other statement kinds
            raise JSLCompileError(
                f"cannot compile statement {type(node).__name__}", node.position
            )

    @staticmethod
    def in_finally(fn: _FunctionCompiler) -> bool:
        return fn.finally_depth > 0

    def _var_declaration(self, fn: _FunctionCompiler, node: ast.VariableDeclaration) -> None:
        for declarator in node.declarators:
            if declarator.init is None:
                continue
            self._expr(fn, declarator.init)
            self._store_identifier(fn, declarator.name, declarator.position)
            fn.emit(Op.POP)

    def _store_identifier(
        self, fn: _FunctionCompiler, name: str, position: SourcePosition
    ) -> None:
        """Store TOS into ``name``; leaves the value on the stack."""
        where, a, b = fn.scope.resolve(name)
        if where == "local":
            fn.emit(Op.DUP)
            fn.emit(Op.STORE_LOCAL, a)
        elif where == "env":
            fn.emit(Op.DUP)
            fn.emit(Op.STORE_ENV, a, b)
        else:
            slot = fn.feedback(SiteKind.GLOBAL_STORE, position, name)
            fn.emit(Op.STORE_GLOBAL, fn.name(name), slot)

    def _if(self, fn: _FunctionCompiler, node: ast.If) -> None:
        self._expr(fn, node.test)
        jump_else = fn.emit(Op.JUMP_IF_FALSE)
        self._stmt(fn, node.consequent)
        if node.alternate is not None:
            jump_end = fn.emit(Op.JUMP)
            fn.patch(jump_else, fn.here())
            self._stmt(fn, node.alternate)
            fn.patch(jump_end, fn.here())
        else:
            fn.patch(jump_else, fn.here())

    def _while(self, fn: _FunctionCompiler, node: ast.While) -> None:
        loop = _LoopContext(fn.try_depth)
        fn.loops.append(loop)
        start = fn.here()
        self._expr(fn, node.test)
        jump_end = fn.emit(Op.JUMP_IF_FALSE)
        self._stmt(fn, node.body)
        for pc in loop.continue_jumps:
            fn.patch(pc, start)
        fn.emit(Op.JUMP, start)
        end = fn.here()
        fn.patch(jump_end, end)
        for pc in loop.break_jumps:
            fn.patch(pc, end)
        fn.loops.pop()

    def _do_while(self, fn: _FunctionCompiler, node: ast.DoWhile) -> None:
        loop = _LoopContext(fn.try_depth)
        fn.loops.append(loop)
        start = fn.here()
        self._stmt(fn, node.body)
        test_pc = fn.here()
        for pc in loop.continue_jumps:
            fn.patch(pc, test_pc)
        self._expr(fn, node.test)
        fn.emit(Op.JUMP_IF_TRUE, start)
        end = fn.here()
        for pc in loop.break_jumps:
            fn.patch(pc, end)
        fn.loops.pop()

    def _for(self, fn: _FunctionCompiler, node: ast.For) -> None:
        if node.init is not None:
            self._stmt(fn, node.init)
        loop = _LoopContext(fn.try_depth)
        fn.loops.append(loop)
        start = fn.here()
        jump_end = None
        if node.test is not None:
            self._expr(fn, node.test)
            jump_end = fn.emit(Op.JUMP_IF_FALSE)
        self._stmt(fn, node.body)
        update_pc = fn.here()
        for pc in loop.continue_jumps:
            fn.patch(pc, update_pc)
        if node.update is not None:
            self._expr(fn, node.update)
            fn.emit(Op.POP)
        fn.emit(Op.JUMP, start)
        end = fn.here()
        if jump_end is not None:
            fn.patch(jump_end, end)
        for pc in loop.break_jumps:
            fn.patch(pc, end)
        fn.loops.pop()

    def _for_in(self, fn: _FunctionCompiler, node: ast.ForIn) -> None:
        self._expr(fn, node.obj)
        fn.emit(Op.FOR_IN_PREP)
        loop = _LoopContext(fn.try_depth)
        fn.loops.append(loop)
        start = fn.here()
        next_pc = fn.emit(Op.FOR_IN_NEXT)
        self._store_identifier(fn, node.var_name, node.position)
        fn.emit(Op.POP)
        self._stmt(fn, node.body)
        for pc in loop.continue_jumps:
            fn.patch(pc, start)
        fn.emit(Op.JUMP, start)
        done = fn.here()
        fn.patch(next_pc, done)
        for pc in loop.break_jumps:
            fn.patch(pc, done)
        fn.emit(Op.POP)  # drop the iterator
        fn.loops.pop()

    def _try(self, fn: _FunctionCompiler, node: ast.Try) -> None:
        """Compile try/catch/finally.

        The finally block is duplicated on the normal and exceptional paths
        (a standard bytecode scheme).  Exceptions raised *inside* catch or
        finally are not re-protected by this same try — matching the usual
        semantics.  ``return``/``break``/``continue`` crossing a finally are
        rejected at compile time (documented jsl restriction).
        """
        has_finally = node.finally_block is not None
        if has_finally:
            fn.finally_depth += 1
        fn.try_depth += 1
        setup_pc = fn.emit(Op.SETUP_TRY)
        for statement in node.block.statements:
            self._stmt(fn, statement)
        fn.emit(Op.POP_TRY)
        fn.try_depth -= 1
        if has_finally:
            for statement in node.finally_block.statements:  # type: ignore[union-attr]
                self._stmt(fn, statement)
        jump_end = fn.emit(Op.JUMP)
        fn.patch(setup_pc, fn.here())
        # Exception path: the thrown value is on the stack here.
        if node.catch_block is not None:
            where, a, b = fn.scope.resolve(node.catch_param or "")
            if where == "local":
                fn.emit(Op.STORE_LOCAL, a)
            elif where == "env":
                fn.emit(Op.STORE_ENV, a, b)
            else:
                slot = fn.feedback(
                    SiteKind.GLOBAL_STORE, node.position, node.catch_param or "?"
                )
                fn.emit(Op.STORE_GLOBAL, fn.name(node.catch_param or "?"), slot)
                fn.emit(Op.POP)
            for statement in node.catch_block.statements:
                self._stmt(fn, statement)
            if has_finally:
                for statement in node.finally_block.statements:  # type: ignore[union-attr]
                    self._stmt(fn, statement)
        else:
            # try/finally without catch: run finally, then rethrow the value
            # that is still sitting on the stack.
            for statement in node.finally_block.statements:  # type: ignore[union-attr]
                self._stmt(fn, statement)
            fn.emit(Op.THROW)
        fn.patch(jump_end, fn.here())
        if has_finally:
            fn.finally_depth -= 1

    def _switch(self, fn: _FunctionCompiler, node: ast.Switch) -> None:
        temp = fn.scope.new_temp()
        self._expr(fn, node.discriminant)
        fn.emit(Op.STORE_LOCAL, temp)
        loop = _LoopContext(fn.try_depth)  # reuse break patching machinery
        fn.loops.append(loop)
        case_jumps: list[tuple[int, int]] = []  # (jump pc, case index)
        default_index: int | None = None
        for index, case in enumerate(node.cases):
            if case.test is None:
                default_index = index
                continue
            fn.emit(Op.LOAD_LOCAL, temp)
            self._expr(fn, case.test)
            fn.emit(Op.BINARY, int(BinOp.STRICT_EQ))
            case_jumps.append((fn.emit(Op.JUMP_IF_TRUE), index))
        default_jump = fn.emit(Op.JUMP)
        case_starts: dict[int, int] = {}
        for index, case in enumerate(node.cases):
            case_starts[index] = fn.here()
            for statement in case.body:
                self._stmt(fn, statement)
        end = fn.here()
        for pc, index in case_jumps:
            fn.patch(pc, case_starts[index])
        fn.patch(default_jump, case_starts[default_index] if default_index is not None else end)
        for pc in loop.break_jumps:
            fn.patch(pc, end)
        if loop.continue_jumps:
            raise JSLCompileError("continue inside switch but outside loop", node.position)
        fn.loops.pop()

    # -- expressions --------------------------------------------------------------

    def _expr(self, fn: _FunctionCompiler, node: ast.Expression) -> None:
        method = getattr(self, "_expr_" + type(node).__name__, None)
        if method is None:  # pragma: no cover
            raise JSLCompileError(
                f"cannot compile expression {type(node).__name__}", node.position
            )
        method(fn, node)

    def _expr_NumberLiteral(self, fn: _FunctionCompiler, node: ast.NumberLiteral) -> None:
        fn.emit(Op.LOAD_CONST, fn.const(node.value))

    def _expr_StringLiteral(self, fn: _FunctionCompiler, node: ast.StringLiteral) -> None:
        fn.emit(Op.LOAD_CONST, fn.const(node.value))

    def _expr_BooleanLiteral(self, fn: _FunctionCompiler, node: ast.BooleanLiteral) -> None:
        fn.emit(Op.LOAD_TRUE if node.value else Op.LOAD_FALSE)

    def _expr_NullLiteral(self, fn: _FunctionCompiler, node: ast.NullLiteral) -> None:
        fn.emit(Op.LOAD_NULL)

    def _expr_UndefinedLiteral(self, fn: _FunctionCompiler, node: ast.UndefinedLiteral) -> None:
        fn.emit(Op.LOAD_UNDEFINED)

    def _expr_ThisExpression(self, fn: _FunctionCompiler, node: ast.ThisExpression) -> None:
        fn.emit(Op.LOAD_THIS)

    def _expr_Identifier(self, fn: _FunctionCompiler, node: ast.Identifier) -> None:
        where, a, b = fn.scope.resolve(node.name)
        if where == "local":
            fn.emit(Op.LOAD_LOCAL, a)
        elif where == "env":
            fn.emit(Op.LOAD_ENV, a, b)
        else:
            slot = fn.feedback(SiteKind.GLOBAL_LOAD, node.position, node.name)
            fn.emit(Op.LOAD_GLOBAL, fn.name(node.name), slot)

    def _expr_ArrayLiteral(self, fn: _FunctionCompiler, node: ast.ArrayLiteral) -> None:
        for element in node.elements:
            self._expr(fn, element)
        fn.emit(Op.MAKE_ARRAY, len(node.elements))

    def _expr_ObjectLiteral(self, fn: _FunctionCompiler, node: ast.ObjectLiteral) -> None:
        fn.emit(Op.MAKE_OBJECT)
        for prop in node.properties:
            if _is_canonical_index(prop.key):
                # Numeric keys are element properties (JS semantics), so
                # they go through the keyed-store path, not the layout.
                fn.emit(Op.DUP)
                fn.emit(Op.LOAD_CONST, fn.const(float(prop.key)))
                self._expr(fn, prop.value)
                slot = fn.feedback(SiteKind.KEYED_STORE, prop.position, None)
                fn.emit(Op.SET_INDEX, slot)
                fn.emit(Op.POP)
                continue
            self._expr(fn, prop.value)
            slot = fn.feedback(SiteKind.NAMED_STORE, prop.position, prop.key)
            fn.emit(Op.OBJ_LIT_PROP, fn.name(prop.key), slot)

    def _expr_FunctionExpression(self, fn: _FunctionCompiler, node: ast.FunctionExpression) -> None:
        code = self._compile_function(fn, node.name, node.params, node.body, node.position)
        fn.emit(Op.MAKE_FUNCTION, fn.const(code))

    def _expr_MemberAccess(self, fn: _FunctionCompiler, node: ast.MemberAccess) -> None:
        self._expr(fn, node.obj)
        slot = fn.feedback(SiteKind.NAMED_LOAD, node.position, node.prop)
        fn.emit(Op.GET_PROP, fn.name(node.prop), slot)

    def _expr_IndexAccess(self, fn: _FunctionCompiler, node: ast.IndexAccess) -> None:
        self._expr(fn, node.obj)
        self._expr(fn, node.index)
        slot = fn.feedback(SiteKind.KEYED_LOAD, node.position, None)
        fn.emit(Op.GET_INDEX, slot)

    def _expr_Call(self, fn: _FunctionCompiler, node: ast.Call) -> None:
        callee = node.callee
        if isinstance(callee, ast.MemberAccess):
            self._expr(fn, callee.obj)
            fn.emit(Op.DUP)
            slot = fn.feedback(SiteKind.NAMED_LOAD, callee.position, callee.prop)
            fn.emit(Op.GET_PROP, fn.name(callee.prop), slot)
            for arg in node.args:
                self._expr(fn, arg)
            fn.emit(Op.CALL_METHOD, len(node.args))
        elif isinstance(callee, ast.IndexAccess):
            self._expr(fn, callee.obj)
            fn.emit(Op.DUP)
            self._expr(fn, callee.index)
            slot = fn.feedback(SiteKind.KEYED_LOAD, callee.position, None)
            fn.emit(Op.GET_INDEX, slot)
            for arg in node.args:
                self._expr(fn, arg)
            fn.emit(Op.CALL_METHOD, len(node.args))
        else:
            self._expr(fn, callee)
            for arg in node.args:
                self._expr(fn, arg)
            fn.emit(Op.CALL, len(node.args))

    def _expr_New(self, fn: _FunctionCompiler, node: ast.New) -> None:
        self._expr(fn, node.callee)
        for arg in node.args:
            self._expr(fn, arg)
        fn.emit(Op.NEW, len(node.args))

    def _expr_Assignment(self, fn: _FunctionCompiler, node: ast.Assignment) -> None:
        target = node.target
        if node.op == "=":
            if isinstance(target, ast.Identifier):
                self._expr(fn, node.value)
                self._store_identifier(fn, target.name, target.position)
            elif isinstance(target, ast.MemberAccess):
                self._expr(fn, target.obj)
                self._expr(fn, node.value)
                slot = fn.feedback(SiteKind.NAMED_STORE, target.position, target.prop)
                fn.emit(Op.SET_PROP, fn.name(target.prop), slot)
            elif isinstance(target, ast.IndexAccess):
                self._expr(fn, target.obj)
                self._expr(fn, target.index)
                self._expr(fn, node.value)
                slot = fn.feedback(SiteKind.KEYED_STORE, target.position, None)
                fn.emit(Op.SET_INDEX, slot)
            else:  # pragma: no cover - parser validates targets
                raise JSLCompileError("invalid assignment target", node.position)
            return
        self._compound_assignment(fn, node)

    def _compound_assignment(self, fn: _FunctionCompiler, node: ast.Assignment) -> None:
        target = node.target
        binop = int(BINOP_BY_SPELLING[node.op])
        if isinstance(target, ast.Identifier):
            self._expr_Identifier(fn, target)
            self._expr(fn, node.value)
            fn.emit(Op.BINARY, binop)
            self._store_identifier(fn, target.name, target.position)
        elif isinstance(target, ast.MemberAccess):
            temp_obj = fn.scope.new_temp()
            self._expr(fn, target.obj)
            fn.emit(Op.STORE_LOCAL, temp_obj)
            fn.emit(Op.LOAD_LOCAL, temp_obj)
            fn.emit(Op.LOAD_LOCAL, temp_obj)
            load_slot = fn.feedback(SiteKind.NAMED_LOAD, target.position, target.prop)
            fn.emit(Op.GET_PROP, fn.name(target.prop), load_slot)
            self._expr(fn, node.value)
            fn.emit(Op.BINARY, binop)
            store_slot = fn.feedback(SiteKind.NAMED_STORE, target.position, target.prop)
            fn.emit(Op.SET_PROP, fn.name(target.prop), store_slot)
        elif isinstance(target, ast.IndexAccess):
            temp_obj = fn.scope.new_temp()
            temp_idx = fn.scope.new_temp()
            self._expr(fn, target.obj)
            fn.emit(Op.STORE_LOCAL, temp_obj)
            self._expr(fn, target.index)
            fn.emit(Op.STORE_LOCAL, temp_idx)
            fn.emit(Op.LOAD_LOCAL, temp_obj)
            fn.emit(Op.LOAD_LOCAL, temp_idx)
            fn.emit(Op.LOAD_LOCAL, temp_obj)
            fn.emit(Op.LOAD_LOCAL, temp_idx)
            load_slot = fn.feedback(SiteKind.KEYED_LOAD, target.position, None)
            fn.emit(Op.GET_INDEX, load_slot)
            self._expr(fn, node.value)
            fn.emit(Op.BINARY, binop)
            store_slot = fn.feedback(SiteKind.KEYED_STORE, target.position, None)
            fn.emit(Op.SET_INDEX, store_slot)
        else:  # pragma: no cover
            raise JSLCompileError("invalid assignment target", node.position)

    def _expr_Binary(self, fn: _FunctionCompiler, node: ast.Binary) -> None:
        self._expr(fn, node.left)
        self._expr(fn, node.right)
        fn.emit(Op.BINARY, int(BINOP_BY_SPELLING[node.op]))

    def _expr_Logical(self, fn: _FunctionCompiler, node: ast.Logical) -> None:
        self._expr(fn, node.left)
        if node.op == "&&":
            jump = fn.emit(Op.JUMP_IF_FALSE_KEEP)
        else:
            jump = fn.emit(Op.JUMP_IF_TRUE_KEEP)
        fn.emit(Op.POP)
        self._expr(fn, node.right)
        fn.patch(jump, fn.here())

    def _expr_Unary(self, fn: _FunctionCompiler, node: ast.Unary) -> None:
        self._expr(fn, node.operand)
        fn.emit(Op.UNARY, int(UNOP_BY_SPELLING[node.op]))

    def _expr_Update(self, fn: _FunctionCompiler, node: ast.Update) -> None:
        operand = node.operand
        binop = int(BinOp.ADD if node.op == "++" else BinOp.SUB)
        one = fn.const(1.0)
        if isinstance(operand, ast.Identifier):
            if node.prefix:
                self._expr_Identifier(fn, operand)
                fn.emit(Op.LOAD_CONST, one)
                fn.emit(Op.BINARY, binop)
                self._store_identifier(fn, operand.name, operand.position)
            else:
                temp_old = fn.scope.new_temp()
                self._expr_Identifier(fn, operand)
                fn.emit(Op.UNARY, int(UnOpPLUS))
                fn.emit(Op.STORE_LOCAL, temp_old)
                fn.emit(Op.LOAD_LOCAL, temp_old)
                fn.emit(Op.LOAD_CONST, one)
                fn.emit(Op.BINARY, binop)
                self._store_identifier(fn, operand.name, operand.position)
                fn.emit(Op.POP)
                fn.emit(Op.LOAD_LOCAL, temp_old)
        elif isinstance(operand, ast.MemberAccess):
            temp_obj = fn.scope.new_temp()
            temp_old = fn.scope.new_temp()
            self._expr(fn, operand.obj)
            fn.emit(Op.STORE_LOCAL, temp_obj)
            fn.emit(Op.LOAD_LOCAL, temp_obj)
            load_slot = fn.feedback(SiteKind.NAMED_LOAD, operand.position, operand.prop)
            fn.emit(Op.GET_PROP, fn.name(operand.prop), load_slot)
            fn.emit(Op.UNARY, int(UnOpPLUS))
            fn.emit(Op.STORE_LOCAL, temp_old)
            fn.emit(Op.LOAD_LOCAL, temp_obj)
            fn.emit(Op.LOAD_LOCAL, temp_old)
            fn.emit(Op.LOAD_CONST, one)
            fn.emit(Op.BINARY, binop)
            store_slot = fn.feedback(SiteKind.NAMED_STORE, operand.position, operand.prop)
            fn.emit(Op.SET_PROP, fn.name(operand.prop), store_slot)
            if node.prefix:
                pass  # new value already on the stack
            else:
                fn.emit(Op.POP)
                fn.emit(Op.LOAD_LOCAL, temp_old)
        elif isinstance(operand, ast.IndexAccess):
            temp_obj = fn.scope.new_temp()
            temp_idx = fn.scope.new_temp()
            temp_old = fn.scope.new_temp()
            self._expr(fn, operand.obj)
            fn.emit(Op.STORE_LOCAL, temp_obj)
            self._expr(fn, operand.index)
            fn.emit(Op.STORE_LOCAL, temp_idx)
            fn.emit(Op.LOAD_LOCAL, temp_obj)
            fn.emit(Op.LOAD_LOCAL, temp_idx)
            load_slot = fn.feedback(SiteKind.KEYED_LOAD, operand.position, None)
            fn.emit(Op.GET_INDEX, load_slot)
            fn.emit(Op.UNARY, int(UnOpPLUS))
            fn.emit(Op.STORE_LOCAL, temp_old)
            fn.emit(Op.LOAD_LOCAL, temp_obj)
            fn.emit(Op.LOAD_LOCAL, temp_idx)
            fn.emit(Op.LOAD_LOCAL, temp_old)
            fn.emit(Op.LOAD_CONST, one)
            fn.emit(Op.BINARY, binop)
            store_slot = fn.feedback(SiteKind.KEYED_STORE, operand.position, None)
            fn.emit(Op.SET_INDEX, store_slot)
            if not node.prefix:
                fn.emit(Op.POP)
                fn.emit(Op.LOAD_LOCAL, temp_old)
        else:  # pragma: no cover
            raise JSLCompileError("invalid update target", node.position)

    def _expr_Conditional(self, fn: _FunctionCompiler, node: ast.Conditional) -> None:
        self._expr(fn, node.test)
        jump_else = fn.emit(Op.JUMP_IF_FALSE)
        self._expr(fn, node.consequent)
        jump_end = fn.emit(Op.JUMP)
        fn.patch(jump_else, fn.here())
        self._expr(fn, node.alternate)
        fn.patch(jump_end, fn.here())

    def _expr_Delete(self, fn: _FunctionCompiler, node: ast.Delete) -> None:
        target = node.target
        if isinstance(target, ast.MemberAccess):
            self._expr(fn, target.obj)
            fn.emit(Op.DELETE_PROP, fn.name(target.prop))
        else:
            assert isinstance(target, ast.IndexAccess)
            self._expr(fn, target.obj)
            self._expr(fn, target.index)
            fn.emit(Op.DELETE_INDEX)

    def _expr_TypeOf(self, fn: _FunctionCompiler, node: ast.TypeOf) -> None:
        operand = node.operand
        if isinstance(operand, ast.Identifier):
            where, a, b = fn.scope.resolve(operand.name)
            if where == "global":
                # `typeof undeclared` must not throw.
                slot = fn.feedback(SiteKind.GLOBAL_LOAD, operand.position, operand.name)
                fn.emit(Op.LOAD_GLOBAL_SOFT, fn.name(operand.name), slot)
                fn.emit(Op.TYPEOF)
                return
        self._expr(fn, operand)
        fn.emit(Op.TYPEOF)

    def _expr_Sequence(self, fn: _FunctionCompiler, node: ast.Sequence) -> None:
        for index, expression in enumerate(node.expressions):
            self._expr(fn, expression)
            if index != len(node.expressions) - 1:
                fn.emit(Op.POP)


# Imported late to keep the operator tables near their uses.
from repro.bytecode.opcodes import UnOp as _UnOp  # noqa: E402

UnOpPLUS = _UnOp.PLUS


class _Declarations:
    def __init__(self) -> None:
        self.vars: list[tuple[str, SourcePosition]] = []
        self.functions: list[ast.FunctionDeclaration] = []
        self._seen_vars: set[str] = set()

    def add_var(self, name: str, position: SourcePosition) -> None:
        if name not in self._seen_vars:
            self._seen_vars.add(name)
            self.vars.append((name, position))


def _is_canonical_index(key: str) -> bool:
    """True for object-literal keys that are canonical array indices."""
    return key.isdigit() and (key == "0" or not key.startswith("0"))


def _collect_declarations(body: list[ast.Statement]) -> _Declarations:
    """Gather hoisted var/function declarations without entering nested
    functions (JS function-scoping)."""
    declared = _Declarations()

    def walk(node: ast.Statement) -> None:
        if isinstance(node, ast.VariableDeclaration):
            for declarator in node.declarators:
                declared.add_var(declarator.name, declarator.position)
        elif isinstance(node, ast.FunctionDeclaration):
            declared.functions.append(node)
        elif isinstance(node, ast.Block):
            for statement in node.statements:
                walk(statement)
        elif isinstance(node, ast.If):
            walk(node.consequent)
            if node.alternate is not None:
                walk(node.alternate)
        elif isinstance(node, (ast.While, ast.DoWhile)):
            walk(node.body)
        elif isinstance(node, ast.For):
            if node.init is not None:
                walk(node.init)
            walk(node.body)
        elif isinstance(node, ast.ForIn):
            if node.declares:
                declared.add_var(node.var_name, node.position)
            walk(node.body)
        elif isinstance(node, ast.Try):
            for statement in node.block.statements:
                walk(statement)
            if node.catch_param is not None:
                declared.add_var(node.catch_param, node.position)
            if node.catch_block is not None:
                for statement in node.catch_block.statements:
                    walk(statement)
            if node.finally_block is not None:
                for statement in node.finally_block.statements:
                    walk(statement)
        elif isinstance(node, ast.Switch):
            for case in node.cases:
                for statement in case.body:
                    walk(statement)

    for statement in body:
        walk(statement)
    return declared


def compile_source(source: str, filename: str = "<script>") -> CodeObject:
    """Parse and compile jsl ``source`` into a top-level :class:`CodeObject`."""
    from repro.lang.parser import parse

    program = parse(source, filename)
    return Compiler(filename).compile_program(program)
