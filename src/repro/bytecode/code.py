"""Compiled-code containers: :class:`CodeObject` and feedback-slot metadata.

A :class:`CodeObject` is the context-independent compilation artifact: it is
what the code cache persists across executions (paper §8.1).  All
context-dependent feedback (the ``ICVector``) lives outside of it, in
per-execution state — that separation is exactly what lets V8 (and us) cache
bytecode while still rebuilding IC state every run, which RIC then fixes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.lang.errors import SourcePosition


class SiteKind(enum.Enum):
    """What sort of object access a feedback slot belongs to.

    The distinction matters to RIC: NAMED_* sites are eligible for
    linking/preloading; GLOBAL_* sites are excluded (paper §6 disables RIC
    for global objects); KEYED_* sites are excluded because the accessed
    property is not determined by the site.
    """

    NAMED_LOAD = "named_load"
    NAMED_STORE = "named_store"
    KEYED_LOAD = "keyed_load"
    KEYED_STORE = "keyed_store"
    GLOBAL_LOAD = "global_load"
    GLOBAL_STORE = "global_store"


@dataclass(frozen=True)
class FeedbackSlotInfo:
    """Static metadata for one object access site.

    ``position`` is the stable cross-execution identity of the site (paper
    §5.1: file name + line + position in line).  ``name`` is the accessed
    property for named/global sites, ``None`` for keyed sites.
    """

    kind: SiteKind
    position: SourcePosition
    name: str | None

    @property
    def site_key(self) -> str:
        """The stable string key used by the TOAST and HCVT.

        Includes the site kind so that e.g. the load and store halves of a
        compound assignment (same source position) stay distinct."""
        return f"{self.position}:{self.kind.value}"

    @property
    def reusable(self) -> bool:
        """Whether RIC may link/preload this site at all."""
        return self.kind in (SiteKind.NAMED_LOAD, SiteKind.NAMED_STORE)


@dataclass
class CodeObject:
    """Bytecode plus pools for one jsl function (or the script top level)."""

    name: str
    filename: str
    params: list[str]
    position: SourcePosition
    instructions: list[tuple[int, int, int]] = field(default_factory=list)
    #: (line, column) per instruction — the statement each op belongs to;
    #: drives positioned runtime errors and guest stack traces.
    positions: list[tuple[int, int]] = field(default_factory=list)
    constants: list[object] = field(default_factory=list)
    names: list[str] = field(default_factory=list)
    local_names: list[str] = field(default_factory=list)
    feedback_slots: list[FeedbackSlotInfo] = field(default_factory=list)
    #: Stable identity of this function across executions: the declaration
    #: position.  Used to key constructor hidden classes in the TOAST.
    decl_key: str = ""
    #: Specialization side table, populated only on quickened clones
    #: (repro/specialize/quicken.py): GET_PROP_SLOT/SET_PROP_SLOT carry an
    #: index into this list, each entry a ``(name_index, offset)`` pair —
    #: the original name-pool operand (for deopt back to the generic
    #: opcode) and the monomorphic field offset the guard authorizes.
    #: Always empty on compiler/optimizer output and on cached bytecode;
    #: quickened clones never enter the code cache.
    spec_table: list[tuple[int, int]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.decl_key:
            self.decl_key = f"{self.position}#{self.name}"

    @property
    def num_locals(self) -> int:
        return len(self.local_names)

    def position_at(self, pc: int) -> SourcePosition:
        """Source position of the instruction at ``pc``."""
        if 0 <= pc < len(self.positions):
            line, column = self.positions[pc]
            return SourcePosition(self.filename, line, column)
        return self.position

    def iter_code_objects(self):
        """Yield this code object and, recursively, every nested one."""
        yield self
        for constant in self.constants:
            if isinstance(constant, CodeObject):
                yield from constant.iter_code_objects()

    def __repr__(self) -> str:
        return (
            f"<CodeObject {self.name!r} at {self.position} "
            f"ops={len(self.instructions)} slots={len(self.feedback_slots)}>"
        )
