"""Bytecode layer: instruction set, compiler, code objects and code cache."""

from repro.bytecode.cache import CodeCache, code_from_json, code_to_json, source_hash
from repro.bytecode.code import CodeObject, FeedbackSlotInfo, SiteKind
from repro.bytecode.compiler import Compiler, compile_source
from repro.bytecode.disasm import disassemble
from repro.bytecode.opcodes import BinOp, Op, UnOp
from repro.bytecode.optimizer import OptimizeResult, optimize_code

__all__ = [
    "BinOp",
    "CodeCache",
    "CodeObject",
    "Compiler",
    "FeedbackSlotInfo",
    "Op",
    "OptimizeResult",
    "optimize_code",
    "SiteKind",
    "UnOp",
    "code_from_json",
    "code_to_json",
    "compile_source",
    "disassemble",
    "source_hash",
]
