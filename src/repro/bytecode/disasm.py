"""Bytecode disassembler, used by tests and for debugging workloads."""

from __future__ import annotations

from repro.bytecode.code import CodeObject
from repro.bytecode.opcodes import BinOp, Op, UnOp

_NAME_OPS = {
    Op.LOAD_GLOBAL,
    Op.STORE_GLOBAL,
    Op.DECLARE_GLOBAL,
    Op.LOAD_GLOBAL_SOFT,
    Op.GET_PROP,
    Op.SET_PROP,
    Op.OBJ_LIT_PROP,
    Op.DELETE_PROP,
}

_JUMP_OPS = {
    Op.JUMP,
    Op.JUMP_IF_FALSE,
    Op.JUMP_IF_TRUE,
    Op.JUMP_IF_FALSE_KEEP,
    Op.JUMP_IF_TRUE_KEEP,
    Op.SETUP_TRY,
    Op.FOR_IN_NEXT,
}

#: Typed arithmetic (quickened) opcodes: operand `a` is the BinOp, as in
#: the generic BINARY they specialize.
_TYPED_ARITH_OPS = {Op.ADD_INT, Op.ADD_NUM, Op.SUB_NUM, Op.MUL_NUM}

#: Typed fused compare-and-branch: operands as in CMP_JUMP_IF_*.
_TYPED_CMP_OPS = {
    Op.CMP_INT_JUMP_IF_FALSE,
    Op.CMP_INT_JUMP_IF_TRUE,
    Op.CMP_NUM_JUMP_IF_FALSE,
    Op.CMP_NUM_JUMP_IF_TRUE,
}


def disassemble(code: CodeObject, recursive: bool = False, indent: str = "") -> str:
    """Render ``code`` as human-readable text."""
    lines = [f"{indent}=== {code.name} ({code.filename}) ==="]
    if code.local_names:
        lines.append(f"{indent}locals: {', '.join(code.local_names)}")
    for pc, (op_int, a, b) in enumerate(code.instructions):
        op = Op(op_int)
        detail = ""
        if op in _NAME_OPS:
            detail = f" name={code.names[a]!r}"
            if op is not Op.DELETE_PROP:
                detail += f" fb={b}"
        elif op is Op.LOAD_CONST:
            constant = code.constants[a]
            if isinstance(constant, CodeObject):
                detail = f" <code {constant.name}>"
            else:
                detail = f" {constant!r}"
        elif op is Op.MAKE_FUNCTION:
            constant = code.constants[a]
            detail = f" <code {getattr(constant, 'name', '?')}>"
        elif op in (Op.CMP_JUMP_IF_FALSE, Op.CMP_JUMP_IF_TRUE):
            detail = f" {BinOp(b).name} -> {a}"
        elif op in _TYPED_CMP_OPS:
            detail = f" {BinOp(b).name} -> {a}"
        elif op in _TYPED_ARITH_OPS:
            detail = f" {BinOp(a).name}"
        elif op in (Op.GET_PROP_SLOT, Op.SET_PROP_SLOT):
            name_index, offset = code.spec_table[a]
            detail = f" name={code.names[name_index]!r} slot={offset} fb={b}"
        elif op is Op.INC_LOCAL_CONST:
            local = code.local_names[a] if a < len(code.local_names) else a
            detail = f" {local} += {code.constants[b]!r}"
        elif op in _JUMP_OPS:
            detail = f" -> {a}"
        elif op is Op.BINARY:
            detail = f" {BinOp(a).name}"
        elif op is Op.UNARY:
            detail = f" {UnOp(a).name}"
        elif op in (Op.LOAD_LOCAL, Op.STORE_LOCAL):
            detail = f" {code.local_names[a] if a < len(code.local_names) else a}"
        elif op in (Op.LOAD_ENV, Op.STORE_ENV):
            detail = f" depth={a} slot={b}"
        elif op in (Op.CALL, Op.CALL_METHOD, Op.NEW, Op.MAKE_ARRAY):
            detail = f" n={a}"
        elif op in (Op.GET_INDEX, Op.SET_INDEX):
            detail = f" fb={a}"
        lines.append(f"{indent}{pc:5d}  {op.name}{detail}")
    if recursive:
        for constant in code.constants:
            if isinstance(constant, CodeObject):
                lines.append("")
                lines.append(disassemble(constant, recursive=True, indent=indent + "  "))
    return "\n".join(lines)
