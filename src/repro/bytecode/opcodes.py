"""Instruction set of the jsl stack VM.

The VM is a classic stack machine.  Each instruction is a ``(opcode, a, b)``
triple; the meaning of the ``a`` / ``b`` operands is per-opcode (documented
next to each opcode below).  Object access sites — the unit the paper's IC
machinery works on — are the ``GET_PROP`` / ``SET_PROP`` / ``OBJ_LIT_PROP`` /
``GET_INDEX`` / ``SET_INDEX`` / ``LOAD_GLOBAL`` / ``STORE_GLOBAL`` /
``DECLARE_GLOBAL`` instructions; each carries a feedback-slot index into the
function's :class:`~repro.ic.icvector.ICVector`.
"""

from __future__ import annotations

import enum


class Op(enum.IntEnum):
    """Opcodes.  Operand meanings:

    ========================= ============================ ==================
    opcode                    a                            b
    ========================= ============================ ==================
    LOAD_CONST                constant-pool index          —
    LOAD_UNDEFINED/NULL/...   —                            —
    LOAD_LOCAL / STORE_LOCAL  local slot index             —
    LOAD_ENV / STORE_ENV      hops up the env chain        slot index
    LOAD_GLOBAL               name-pool index              feedback slot
    STORE_GLOBAL              name-pool index              feedback slot
    DECLARE_GLOBAL            name-pool index              feedback slot
    GET_PROP                  name-pool index              feedback slot
    SET_PROP                  name-pool index              feedback slot
    OBJ_LIT_PROP              name-pool index              feedback slot
    GET_INDEX                 feedback slot                —
    SET_INDEX                 feedback slot                —
    DELETE_PROP               name-pool index              —
    DELETE_INDEX              —                            —
    MAKE_FUNCTION             constant-pool index (code)   —
    MAKE_OBJECT               —                            —
    MAKE_ARRAY                element count                —
    CALL                      argument count               —
    CALL_METHOD               argument count               —
    NEW                       argument count               —
    JUMP / JUMP_IF_*          target pc                    —
    BINARY                    BinOp value                  —
    UNARY                     UnOp value                   —
    SETUP_TRY                 catch target pc              —
    FOR_IN_NEXT               jump-when-done target pc     —
    INC_LOCAL_CONST           local slot index             constant-pool index
    CMP_JUMP_IF_FALSE         target pc                    BinOp value
    CMP_JUMP_IF_TRUE          target pc                    BinOp value
    ADD_INT / ADD_NUM         BinOp value (always ADD)     —
    SUB_NUM / MUL_NUM         BinOp value (SUB / MUL)      —
    CMP_INT_JUMP_IF_FALSE     target pc                    BinOp value
    CMP_INT_JUMP_IF_TRUE      target pc                    BinOp value
    CMP_NUM_JUMP_IF_FALSE     target pc                    BinOp value
    CMP_NUM_JUMP_IF_TRUE      target pc                    BinOp value
    GET_PROP_SLOT             spec-table index             feedback slot
    SET_PROP_SLOT             spec-table index             feedback slot
    ========================= ============================ ==================
    """

    # Constants / simple pushes.
    LOAD_CONST = 1
    LOAD_UNDEFINED = 2
    LOAD_NULL = 3
    LOAD_TRUE = 4
    LOAD_FALSE = 5
    LOAD_THIS = 6

    # Variables.
    LOAD_LOCAL = 10
    STORE_LOCAL = 11
    LOAD_ENV = 12
    STORE_ENV = 13
    LOAD_GLOBAL = 14
    STORE_GLOBAL = 15
    DECLARE_GLOBAL = 16
    LOAD_GLOBAL_SOFT = 17  # like LOAD_GLOBAL but yields undefined if absent

    # Object access sites (IC-carrying).
    GET_PROP = 20
    SET_PROP = 21
    OBJ_LIT_PROP = 22
    GET_INDEX = 23
    SET_INDEX = 24
    DELETE_PROP = 25
    DELETE_INDEX = 26

    # Allocation.
    MAKE_FUNCTION = 30
    MAKE_OBJECT = 31
    MAKE_ARRAY = 32

    # Calls.
    CALL = 40
    CALL_METHOD = 41
    NEW = 42
    RETURN = 43

    # Control flow.
    JUMP = 50
    JUMP_IF_FALSE = 51
    JUMP_IF_TRUE = 52
    JUMP_IF_FALSE_KEEP = 53  # for `&&`: leaves the tested value on the stack
    JUMP_IF_TRUE_KEEP = 54  # for `||`
    THROW = 55
    SETUP_TRY = 56
    POP_TRY = 57
    FOR_IN_PREP = 58
    FOR_IN_NEXT = 59

    # Operators.
    BINARY = 60
    UNARY = 61
    TYPEOF = 62

    # Stack manipulation.
    POP = 70
    DUP = 71
    SWAP = 72
    DUP2 = 73  # duplicates the top two entries: a b -> a b a b

    # Fused superinstructions.  The compiler never emits these; the
    # peephole optimizer (bytecode/optimizer.py) collapses hot
    # multi-instruction idioms into them, so a loop body pays one
    # dispatch where it paid several.
    INC_LOCAL_CONST = 80  # locals[a] = locals[a] + consts[b]; no stack effect
    CMP_JUMP_IF_FALSE = 81  # pop rhs, lhs; jump to a unless BinOp(b) holds
    CMP_JUMP_IF_TRUE = 82  # pop rhs, lhs; jump to a if BinOp(b) holds

    # Type-specialized (quickened) opcodes.  Neither the compiler nor the
    # optimizer emits these; the quickening pass (repro/specialize/) rewrites
    # generic opcodes into them at artifact-build time, driven by the
    # ``site_feedback`` section of a persisted ICRecord.  Every one carries
    # an inline guard and deoptimizes — rewriting itself back to its generic
    # form in place — the first time the guard fails.
    ADD_INT = 90  # both operands integral numbers, else deopt to BINARY
    ADD_NUM = 91  # both operands numbers, else deopt to BINARY
    SUB_NUM = 92
    MUL_NUM = 93
    CMP_INT_JUMP_IF_FALSE = 94  # typed CMP_JUMP_IF_FALSE (integral operands)
    CMP_INT_JUMP_IF_TRUE = 95
    CMP_NUM_JUMP_IF_FALSE = 96  # typed CMP_JUMP_IF_FALSE (numeric operands)
    CMP_NUM_JUMP_IF_TRUE = 97
    GET_PROP_SLOT = 98  # direct-offset load via spec_table[a], else deopt
    SET_PROP_SLOT = 99  # direct-offset overwrite store, else deopt


class BinOp(enum.IntEnum):
    """Binary operators for the BINARY opcode."""

    ADD = 1
    SUB = 2
    MUL = 3
    DIV = 4
    MOD = 5
    EQ = 6
    NEQ = 7
    STRICT_EQ = 8
    STRICT_NEQ = 9
    LT = 10
    GT = 11
    LE = 12
    GE = 13
    BIT_AND = 14
    BIT_OR = 15
    BIT_XOR = 16
    SHL = 17
    SHR = 18
    USHR = 19
    IN = 20
    INSTANCEOF = 21


class UnOp(enum.IntEnum):
    """Unary operators for the UNARY opcode."""

    NEG = 1
    PLUS = 2
    NOT = 3
    BIT_NOT = 4


#: jsl spelling -> BinOp, used by the compiler.
BINOP_BY_SPELLING: dict[str, BinOp] = {
    "+": BinOp.ADD,
    "-": BinOp.SUB,
    "*": BinOp.MUL,
    "/": BinOp.DIV,
    "%": BinOp.MOD,
    "==": BinOp.EQ,
    "!=": BinOp.NEQ,
    "===": BinOp.STRICT_EQ,
    "!==": BinOp.STRICT_NEQ,
    "<": BinOp.LT,
    ">": BinOp.GT,
    "<=": BinOp.LE,
    ">=": BinOp.GE,
    "&": BinOp.BIT_AND,
    "|": BinOp.BIT_OR,
    "^": BinOp.BIT_XOR,
    "<<": BinOp.SHL,
    ">>": BinOp.SHR,
    ">>>": BinOp.USHR,
    "in": BinOp.IN,
    "instanceof": BinOp.INSTANCEOF,
}

#: jsl spelling -> UnOp.
UNOP_BY_SPELLING: dict[str, UnOp] = {
    "-": UnOp.NEG,
    "+": UnOp.PLUS,
    "!": UnOp.NOT,
    "~": UnOp.BIT_NOT,
}
