"""Code cache: persist compiled bytecode across executions (paper §8.1).

V8 lets the host cache the bytecode result of parsing+compiling a script so
that re-executions skip the frontend entirely; both the paper's Conventional
and RIC configurations run on top of this.  Our cache serializes
:class:`~repro.bytecode.code.CodeObject` trees to a JSON-compatible form,
keyed by the script's filename and a content hash, and can round-trip them
through disk.
"""

from __future__ import annotations

import hashlib
import json
import threading
from pathlib import Path

from repro.bytecode.code import CodeObject, FeedbackSlotInfo, SiteKind
from repro.lang.errors import SourcePosition

#: Bump when the serialized form changes; mismatching entries are ignored.
#: v5: the optimizer emits fused superinstructions, so cached streams
#: from earlier versions would execute unfused and skew dispatch counts.
CACHE_FORMAT_VERSION = 5


def source_hash(source: str) -> str:
    """Content hash used to key and invalidate cache entries."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()[:16]


def _position_to_json(position: SourcePosition) -> list:
    return [position.filename, position.line, position.column]


def _position_from_json(data: list) -> SourcePosition:
    return SourcePosition(data[0], data[1], data[2])


def code_to_json(code: CodeObject) -> dict:
    """Serialize one code object (recursively) to plain JSON data."""
    constants = []
    for constant in code.constants:
        if isinstance(constant, CodeObject):
            constants.append({"kind": "code", "value": code_to_json(constant)})
        elif isinstance(constant, float):
            constants.append({"kind": "num", "value": constant})
        elif isinstance(constant, str):
            constants.append({"kind": "str", "value": constant})
        else:  # pragma: no cover - the compiler emits only the above
            raise TypeError(f"unserializable constant: {constant!r}")
    return {
        "name": code.name,
        "filename": code.filename,
        "params": code.params,
        "position": _position_to_json(code.position),
        "decl_key": code.decl_key,
        "instructions": [list(instruction) for instruction in code.instructions],
        "positions": [list(position) for position in code.positions],
        "constants": constants,
        "names": code.names,
        "local_names": code.local_names,
        "feedback_slots": [
            [slot.kind.value, _position_to_json(slot.position), slot.name]
            for slot in code.feedback_slots
        ],
    }


def code_from_json(data: dict) -> CodeObject:
    """Inverse of :func:`code_to_json`."""
    constants: list[object] = []
    for entry in data["constants"]:
        if entry["kind"] == "code":
            constants.append(code_from_json(entry["value"]))
        else:
            constants.append(entry["value"])
    code = CodeObject(
        name=data["name"],
        filename=data["filename"],
        params=list(data["params"]),
        position=_position_from_json(data["position"]),
        instructions=[tuple(instruction) for instruction in data["instructions"]],
        positions=[tuple(position) for position in data["positions"]],
        constants=constants,
        names=list(data["names"]),
        local_names=list(data["local_names"]),
        feedback_slots=[
            FeedbackSlotInfo(
                kind=SiteKind(kind), position=_position_from_json(position), name=name
            )
            for kind, position, name in data["feedback_slots"]
        ],
        decl_key=data["decl_key"],
    )
    return code


class CodeCache:
    """In-memory code cache with optional disk persistence.

    The cache models the V8 host API: the embedder asks for a script's
    compiled form; on a hit the frontend is skipped.  ``hits``/``misses``
    are exposed so benchmarks can assert the Reuse run never re-compiles.

    Thread-safety contract: the cache is shared by every concurrent
    :class:`~repro.core.session.RunSession` of an engine, so lookups,
    insertions and the hit/miss counters are atomic under one lock.  The
    cached :class:`~repro.bytecode.code.CodeObject` trees themselves are
    immutable after the optimizer runs (the VM threads them into
    per-VM caches, never in place), so handing one instance to many
    sessions is safe.
    """

    def __init__(self, cache_dir: str | Path | None = None):
        self._entries: dict[str, CodeObject] = {}
        self._cache_dir = Path(cache_dir) if cache_dir is not None else None
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        if self._cache_dir is not None:
            self._cache_dir.mkdir(parents=True, exist_ok=True)

    @staticmethod
    def _key(filename: str, source: str) -> str:
        return f"{filename}:{source_hash(source)}"

    def lookup(self, filename: str, source: str) -> CodeObject | None:
        """Return the cached code for (filename, source) or None."""
        key = self._key(filename, source)
        with self._lock:
            code = self._entries.get(key)
            if code is None and self._cache_dir is not None:
                code = self._load_from_disk(key)
                if code is not None:
                    self._entries[key] = code
            if code is None:
                self.misses += 1
                return None
            self.hits += 1
            return code

    def note_hit(self) -> None:
        """Count a frontend-skip served *above* this cache.

        The :class:`~repro.core.artifacts.ArtifactCache` satisfies warm
        requests without consulting the code cache at all; it reports them
        here so ``hits``/``misses`` keep meaning "runs that skipped the
        frontend" exactly as before the artifact layer existed.
        """
        with self._lock:
            self.hits += 1

    def store(self, filename: str, source: str, code: CodeObject) -> None:
        key = self._key(filename, source)
        with self._lock:
            self._entries[key] = code
            if self._cache_dir is not None:
                self._store_to_disk(key, code)

    # -- disk persistence ----------------------------------------------------

    def _disk_path(self, key: str) -> Path:
        assert self._cache_dir is not None
        digest = hashlib.sha256(key.encode("utf-8")).hexdigest()[:24]
        return self._cache_dir / f"{digest}.jslcache.json"

    def _store_to_disk(self, key: str, code: CodeObject) -> None:
        payload = {
            "version": CACHE_FORMAT_VERSION,
            "key": key,
            "code": code_to_json(code),
        }
        self._disk_path(key).write_text(json.dumps(payload))

    def _load_from_disk(self, key: str) -> CodeObject | None:
        path = self._disk_path(key)
        if not path.exists():
            return None
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if payload.get("version") != CACHE_FORMAT_VERSION or payload.get("key") != key:
            return None
        return code_from_json(payload["code"])
