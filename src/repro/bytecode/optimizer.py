"""Peephole bytecode optimizer: folding, jump threading, superinstructions.

Runs after compilation, before caching (both the optimized form and its
determinism survive the code cache).  Three classic passes:

* **constant folding** — ``LOAD_CONST a; LOAD_CONST b; BINARY op`` (and the
  unary form) collapse to a single ``LOAD_CONST`` when ``op`` is pure and
  the operands are literals.  Folding replicates the VM's exact semantics
  via the shared :mod:`repro.runtime.values` coercions; a property test
  (tests/test_optimizer.py) cross-checks folded results against
  unoptimized execution.
* **jump threading** — a jump whose target is an unconditional ``JUMP``
  lands directly on the final destination (chains collapse transitively).
* **superinstruction fusion** — the two hottest loop idioms collapse into
  single fused opcodes: the local-increment statement
  (``LOAD_LOCAL s; LOAD_CONST k; BINARY ADD; DUP; STORE_LOCAL s; POP``
  → ``INC_LOCAL_CONST``) and compare+branch
  (``BINARY <cmp>; JUMP_IF_FALSE/TRUE t`` → ``CMP_JUMP_IF_FALSE/TRUE``).
  A fused instruction pays one ``DISPATCH`` where the window paid
  several; everything else about its accounting and semantics is the
  plain sequence's, so fused and unfused code differ only in dispatch
  count (see ``cost_model.FUSED_*`` and tests/test_optimizer.py).  Fusion
  runs last so windows are matched against final (folded, threaded)
  instruction streams.

Rewriting is jump-target-safe: a pattern is only rewritten when no jump
lands *inside* it, and all targets are remapped through the compaction
map.  Feedback-slot numbering — the identity RIC depends on — is never
touched (no fused window contains an IC site).
"""

from __future__ import annotations

from repro.bytecode.code import CodeObject
from repro.bytecode.opcodes import BinOp, Op, UnOp
from repro.runtime.values import (
    loose_equals,
    strict_equals,
    to_boolean,
    to_int32,
    to_number,
    to_string,
    to_uint32,
)

#: Opcodes that push a literal; value derivation below.
_CONST_PUSH_OPS = {
    int(Op.LOAD_CONST),
    int(Op.LOAD_TRUE),
    int(Op.LOAD_FALSE),
}

_JUMP_OPS = {
    int(Op.JUMP),
    int(Op.JUMP_IF_FALSE),
    int(Op.JUMP_IF_TRUE),
    int(Op.JUMP_IF_FALSE_KEEP),
    int(Op.JUMP_IF_TRUE_KEEP),
    int(Op.SETUP_TRY),
    int(Op.FOR_IN_NEXT),
    int(Op.CMP_JUMP_IF_FALSE),
    int(Op.CMP_JUMP_IF_TRUE),
    # Typed (quickened) variants never reach the optimizer — quickening
    # runs on already-optimized, cached code — but keep them retargetable
    # so a hypothetical re-optimization of a quickened tree stays sound.
    int(Op.CMP_INT_JUMP_IF_FALSE),
    int(Op.CMP_INT_JUMP_IF_TRUE),
    int(Op.CMP_NUM_JUMP_IF_FALSE),
    int(Op.CMP_NUM_JUMP_IF_TRUE),
}

#: Comparison operators eligible for compare+branch fusion.  All are
#: pure (no guest-visible coercion side effects, never throw), so
#: evaluating the comparison inside the fused handler is indistinguishable
#: from the BINARY;JUMP_IF_* pair.
_FUSABLE_CMP_BINOPS = {
    int(BinOp.EQ),
    int(BinOp.NEQ),
    int(BinOp.STRICT_EQ),
    int(BinOp.STRICT_NEQ),
    int(BinOp.LT),
    int(BinOp.GT),
    int(BinOp.LE),
    int(BinOp.GE),
}

#: Binary operators safe to fold (pure; no runtime or object semantics).
_FOLDABLE_BINOPS = {
    BinOp.ADD,
    BinOp.SUB,
    BinOp.MUL,
    BinOp.DIV,
    BinOp.MOD,
    BinOp.EQ,
    BinOp.NEQ,
    BinOp.STRICT_EQ,
    BinOp.STRICT_NEQ,
    BinOp.LT,
    BinOp.GT,
    BinOp.LE,
    BinOp.GE,
    BinOp.BIT_AND,
    BinOp.BIT_OR,
    BinOp.BIT_XOR,
    BinOp.SHL,
    BinOp.SHR,
    BinOp.USHR,
}


def fold_binary(op: int, left: object, right: object) -> object:
    """Pure-subset mirror of the VM's BINARY semantics (see
    ``VM._binary``); only called for :data:`_FOLDABLE_BINOPS`."""
    if op == BinOp.ADD:
        if isinstance(left, str) or isinstance(right, str):
            return to_string(left) + to_string(right)
        return to_number(left) + to_number(right)
    if op == BinOp.SUB:
        return to_number(left) - to_number(right)
    if op == BinOp.MUL:
        return to_number(left) * to_number(right)
    if op == BinOp.DIV:
        divisor = to_number(right)
        dividend = to_number(left)
        if divisor == 0.0:
            if dividend == 0.0 or dividend != dividend:
                return float("nan")
            return float("inf") if dividend > 0 else float("-inf")
        return dividend / divisor
    if op == BinOp.MOD:
        divisor = to_number(right)
        dividend = to_number(left)
        if divisor == 0.0 or dividend != dividend or divisor != divisor:
            return float("nan")
        return float(dividend - divisor * int(dividend / divisor))
    if op == BinOp.EQ:
        return loose_equals(left, right)
    if op == BinOp.NEQ:
        return not loose_equals(left, right)
    if op == BinOp.STRICT_EQ:
        return strict_equals(left, right)
    if op == BinOp.STRICT_NEQ:
        return not strict_equals(left, right)
    if op in (BinOp.LT, BinOp.GT, BinOp.LE, BinOp.GE):
        if isinstance(left, str) and isinstance(right, str):
            a, b = left, right
        else:
            a, b = to_number(left), to_number(right)
            if a != a or b != b:
                return False
        if op == BinOp.LT:
            return a < b
        if op == BinOp.GT:
            return a > b
        if op == BinOp.LE:
            return a <= b
        return a >= b
    if op == BinOp.BIT_AND:
        return float(to_int32(left) & to_int32(right))
    if op == BinOp.BIT_OR:
        return float(to_int32(left) | to_int32(right))
    if op == BinOp.BIT_XOR:
        return float(to_int32(left) ^ to_int32(right))
    if op == BinOp.SHL:
        shifted = (to_int32(left) << (to_uint32(right) & 31)) & 0xFFFFFFFF
        if shifted >= 0x80000000:
            shifted -= 0x100000000
        return float(shifted)
    if op == BinOp.SHR:
        return float(to_int32(left) >> (to_uint32(right) & 31))
    if op == BinOp.USHR:
        return float(to_uint32(left) >> (to_uint32(right) & 31))
    raise AssertionError(f"unfoldable op {op}")  # pragma: no cover


def fold_unary(op: int, operand: object) -> object:
    """Mirror of ``VM._unary``."""
    if op == UnOp.NEG:
        return -to_number(operand)
    if op == UnOp.PLUS:
        return to_number(operand)
    if op == UnOp.NOT:
        return not to_boolean(operand)
    if op == UnOp.BIT_NOT:
        return float(~to_int32(operand))
    raise AssertionError(f"unfoldable unary {op}")  # pragma: no cover


def _const_value(instruction: tuple, constants: list) -> object | None:
    """The literal value pushed by a const-push instruction (or sentinel)."""
    op, a, _ = instruction
    if op == Op.LOAD_CONST:
        value = constants[a]
        if isinstance(value, (float, str)) and not isinstance(value, bool):
            return value
        return _NOT_CONST
    if op == Op.LOAD_TRUE:
        return True
    if op == Op.LOAD_FALSE:
        return False
    return _NOT_CONST


_NOT_CONST = object()


class OptimizeResult:
    """Per-code-object optimization statistics."""

    def __init__(self) -> None:
        self.binary_folds = 0
        self.unary_folds = 0
        self.threaded_jumps = 0
        self.fused_inc_locals = 0
        self.fused_cmp_jumps = 0

    @property
    def total(self) -> int:
        return (
            self.binary_folds
            + self.unary_folds
            + self.threaded_jumps
            + self.fused_inc_locals
            + self.fused_cmp_jumps
        )

    def __repr__(self) -> str:
        return (
            f"<OptimizeResult folds={self.binary_folds}+{self.unary_folds} "
            f"threads={self.threaded_jumps} "
            f"fused={self.fused_inc_locals}+{self.fused_cmp_jumps}>"
        )


def optimize_code(code: CodeObject) -> OptimizeResult:
    """Optimize ``code`` and all nested functions, in place."""
    result = OptimizeResult()
    for nested in code.iter_code_objects():
        _optimize_one(nested, result)
    return result


def _optimize_one(code: CodeObject, result: OptimizeResult) -> None:
    changed = True
    while changed:
        changed = _fold_constants(code, result)
    _thread_jumps(code, result)
    # Fusion runs last: folding has already canonicalized constant
    # operands and threading has finalized every jump target, so the
    # windows matched here are the ones the VM would actually execute.
    _fuse_superinstructions(code, result)


def _jump_targets(code: CodeObject) -> set[int]:
    return {
        a
        for op, a, _ in code.instructions
        if op in _JUMP_OPS
    }


def _fold_constants(code: CodeObject, result: OptimizeResult) -> bool:
    instructions = code.instructions
    targets = _jump_targets(code)
    new_instructions: list[tuple[int, int, int]] = []
    new_positions: list[tuple[int, int]] = []
    pc_map: list[int] = []  # old pc -> new pc
    constants = code.constants
    folded = False

    def intern_const(value: object) -> tuple[int, int, int]:
        if value is True:
            return (int(Op.LOAD_TRUE), 0, 0)
        if value is False:
            return (int(Op.LOAD_FALSE), 0, 0)
        constants.append(value)
        return (int(Op.LOAD_CONST), len(constants) - 1, 0)

    index = 0
    count = len(instructions)
    while index < count:
        pc_map.append(len(new_instructions))
        instruction = instructions[index]
        op = instruction[0]

        # Binary fold: [const, const, BINARY] with no jump landing inside.
        if (
            op in _CONST_PUSH_OPS
            and index + 2 < count
            and instructions[index + 1][0] in _CONST_PUSH_OPS
            and instructions[index + 2][0] == Op.BINARY
            and instructions[index + 2][1] in _FOLDABLE_BINOPS
            and (index + 1) not in targets
            and (index + 2) not in targets
        ):
            left = _const_value(instruction, constants)
            right = _const_value(instructions[index + 1], constants)
            if left is not _NOT_CONST and right is not _NOT_CONST:
                value = fold_binary(instructions[index + 2][1], left, right)
                new_instructions.append(intern_const(value))
                new_positions.append(code.positions[index])
                pc_map.extend([len(new_instructions) - 1] * 2)
                index += 3
                result.binary_folds += 1
                folded = True
                continue

        # Unary fold: [const, UNARY].
        if (
            op in _CONST_PUSH_OPS
            and index + 1 < count
            and instructions[index + 1][0] == Op.UNARY
            and (index + 1) not in targets
        ):
            operand = _const_value(instruction, constants)
            if operand is not _NOT_CONST:
                value = fold_unary(instructions[index + 1][1], operand)
                new_instructions.append(intern_const(value))
                new_positions.append(code.positions[index])
                pc_map.append(len(new_instructions) - 1)
                index += 2
                result.unary_folds += 1
                folded = True
                continue

        new_instructions.append(instruction)
        new_positions.append(code.positions[index])
        index += 1

    if not folded:
        return False

    pc_map.append(len(new_instructions))  # end-of-code jump targets
    code.instructions = [
        (op, pc_map[a] if op in _JUMP_OPS else a, b)
        for op, a, b in new_instructions
    ]
    code.positions = new_positions
    return True


def _thread_jumps(code: CodeObject, result: OptimizeResult) -> None:
    instructions = code.instructions

    def final_target(target: int, hops: int = 0) -> int:
        if hops > len(instructions):
            return target  # defensive: cycles cannot happen, but cap anyway
        if target < len(instructions) and instructions[target][0] == Op.JUMP:
            return final_target(instructions[target][1], hops + 1)
        return target

    for index, (op, a, b) in enumerate(instructions):
        if op in _JUMP_OPS:
            resolved = final_target(a)
            if resolved != a:
                instructions[index] = (op, resolved, b)
                result.threaded_jumps += 1


def _fuse_superinstructions(code: CodeObject, result: OptimizeResult) -> None:
    """Collapse hot multi-instruction idioms into single fused opcodes.

    Two windows, matched in one left-to-right scan:

    * ``LOAD_LOCAL s; LOAD_CONST k; BINARY ADD; DUP; STORE_LOCAL s; POP``
      — the statement form of ``s = s + k`` / ``s += k`` / ``s++`` the
      compiler emits — becomes ``INC_LOCAL_CONST s, k`` (zero net stack
      effect, like the window).
    * ``BINARY <cmp>; JUMP_IF_FALSE/TRUE t`` — a loop or ``if``
      condition — becomes ``CMP_JUMP_IF_FALSE/TRUE t, <cmp>``.

    A window fuses only when no jump lands on any instruction after its
    first (landing *on* the window start is fine: it maps to the fused
    instruction).  The constant operand is restricted to number/string
    literals so the fused ADD can never observe guest objects' coercion
    hooks mid-window; comparison fusion is restricted to the pure
    :data:`_FUSABLE_CMP_BINOPS`.  Both make the fused handler
    throw-free, so try/catch can never need to unwind mid-window.
    """
    instructions = code.instructions
    targets = _jump_targets(code)
    constants = code.constants
    new_instructions: list[tuple[int, int, int]] = []
    new_positions: list[tuple[int, int]] = []
    pc_map: list[int] = []  # old pc -> new pc
    fused = False

    index = 0
    count = len(instructions)
    while index < count:
        pc_map.append(len(new_instructions))
        op, a, b = instructions[index]

        if (
            op == Op.LOAD_LOCAL
            and index + 5 < count
            and instructions[index + 1][0] == Op.LOAD_CONST
            and instructions[index + 2][0] == Op.BINARY
            and instructions[index + 2][1] == BinOp.ADD
            and instructions[index + 3][0] == Op.DUP
            and instructions[index + 4][0] == Op.STORE_LOCAL
            and instructions[index + 4][1] == a
            and instructions[index + 5][0] == Op.POP
            and all(index + offset not in targets for offset in range(1, 6))
            and isinstance(constants[instructions[index + 1][1]], (float, str))
        ):
            new_instructions.append(
                (int(Op.INC_LOCAL_CONST), a, instructions[index + 1][1])
            )
            new_positions.append(code.positions[index])
            pc_map.extend([len(new_instructions) - 1] * 5)
            index += 6
            result.fused_inc_locals += 1
            fused = True
            continue

        if (
            op == Op.BINARY
            and a in _FUSABLE_CMP_BINOPS
            and index + 1 < count
            and instructions[index + 1][0]
            in (Op.JUMP_IF_FALSE, Op.JUMP_IF_TRUE)
            and (index + 1) not in targets
        ):
            jump_op = instructions[index + 1][0]
            fused_op = (
                Op.CMP_JUMP_IF_FALSE
                if jump_op == Op.JUMP_IF_FALSE
                else Op.CMP_JUMP_IF_TRUE
            )
            new_instructions.append(
                (int(fused_op), instructions[index + 1][1], a)
            )
            new_positions.append(code.positions[index])
            pc_map.append(len(new_instructions) - 1)
            index += 2
            result.fused_cmp_jumps += 1
            fused = True
            continue

        new_instructions.append(instructions[index])
        new_positions.append(code.positions[index])
        index += 1

    if not fused:
        return

    pc_map.append(len(new_instructions))  # end-of-code jump targets
    code.instructions = [
        (op, pc_map[a] if op in _JUMP_OPS else a, b)
        for op, a, b in new_instructions
    ]
    code.positions = new_positions
