"""Hidden classes (V8 "maps", Self "maps", paper §2.2).

A hidden class describes the layout of a set of structurally identical
objects: which property lives at which slot offset, plus the prototype
pointer and the transition table that maps "add property P" to the next
hidden class (Figure 2 of the paper).

Context dependence (paper §3.2): the *layout* is context-independent, but a
hidden class's ``address``, its ``prototype`` pointer, and the addresses in
its transition table are all per-execution heap addresses.  This is exactly
why hidden classes themselves are never persisted by RIC — only validated
against across runs.
"""

from __future__ import annotations

import typing

from repro.runtime.heap import Heap

if typing.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.objects import JSObject


class HiddenClass:
    """One hidden class.  Create only through :class:`HiddenClassRegistry`."""

    __slots__ = (
        "address",
        "layout",
        "transitions",
        "prototype",
        "is_dictionary",
        "creation_kind",
        "creation_key",
        "incoming",
        "transition_property",
        "index",
    )

    def __init__(
        self,
        address: int,
        prototype: "JSObject | None",
        creation_kind: str,
        creation_key: str,
        index: int,
        incoming: "HiddenClass | None" = None,
        transition_property: str | None = None,
        is_dictionary: bool = False,
    ):
        self.address = address
        #: property name -> slot offset (insertion-ordered).
        self.layout: dict[str, int] = {}
        #: property name -> next hidden class (Figure 2's "Next Hidden Class").
        self.transitions: dict[str, HiddenClass] = {}
        self.prototype = prototype
        self.is_dictionary = is_dictionary
        #: "builtin" (created deterministically at startup), "ctor" (a
        #: function's initial map) or "site" (created by a transitioning
        #: object access site).
        self.creation_kind = creation_kind
        #: The stable cross-execution key: a builtin name, a constructor key,
        #: or the triggering site's key.
        self.creation_key = creation_key
        self.incoming = incoming
        self.transition_property = transition_property
        #: Creation-order index within this execution.
        self.index = index

    @property
    def property_count(self) -> int:
        return len(self.layout)

    def offset_of(self, name: str) -> int | None:
        return self.layout.get(name)

    def __repr__(self) -> str:
        keys = ",".join(self.layout)
        return (
            f"<HiddenClass #{self.index} @{self.address:#x} "
            f"[{keys}] from {self.creation_kind}:{self.creation_key}>"
        )


class HiddenClassRegistry:
    """Creates and tracks every hidden class of one execution.

    The registry is the source of the paper's Table 1 "# of Diff. Hidden
    Classes" statistic, and its creation hooks are where RIC's reuse-run
    validation engages (builtin creation and transitioning sites).
    """

    __slots__ = ("_heap", "all_classes", "on_created")

    def __init__(self, heap: Heap):
        self._heap = heap
        self.all_classes: list[HiddenClass] = []
        #: Hook invoked with every newly created hidden class.
        self.on_created: typing.Callable[[HiddenClass], None] | None = None

    def _new(self, **kwargs) -> HiddenClass:
        address = self._heap.allocate("hidden_class")
        hc = HiddenClass(address=address, index=len(self.all_classes), **kwargs)
        self.all_classes.append(hc)
        if self.on_created is not None:
            self.on_created(hc)
        return hc

    def create_root(
        self,
        creation_kind: str,
        creation_key: str,
        prototype: "JSObject | None",
        layout: dict[str, int] | None = None,
    ) -> HiddenClass:
        """Create a root hidden class (builtin or constructor initial map)."""
        hc = self._new(
            prototype=prototype,
            creation_kind=creation_kind,
            creation_key=creation_key,
        )
        if layout:
            hc.layout.update(layout)
        return hc

    def create_dictionary(self, prototype: "JSObject | None") -> HiddenClass:
        """The hidden class of an object demoted to dictionary mode.

        Dictionary-mode objects are uncacheable by the IC (paper's V8 does
        the same for objects with out-of-object dictionaries)."""
        return self._new(
            prototype=prototype,
            creation_kind="builtin",
            creation_key="builtin:Dictionary",
            is_dictionary=True,
        )

    def transition(
        self, incoming: HiddenClass, prop: str, site_key: str
    ) -> tuple[HiddenClass, bool]:
        """Follow (or create) the transition for adding ``prop``.

        Returns ``(hidden_class, created)``.  ``created`` is True when a new
        hidden class had to be made — i.e. when ``site_key`` became a
        Triggering site for it (paper §4).
        """
        existing = incoming.transitions.get(prop)
        if existing is not None:
            return existing, False
        hc = self._new(
            prototype=incoming.prototype,
            creation_kind="site",
            creation_key=site_key,
            incoming=incoming,
            transition_property=prop,
        )
        hc.layout.update(incoming.layout)
        hc.layout[prop] = len(hc.layout)
        incoming.transitions[prop] = hc
        return hc, True

    def count(self) -> int:
        return len(self.all_classes)
