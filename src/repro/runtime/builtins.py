"""Built-in objects, installed deterministically at runtime startup.

Built-ins (Object, Array, Math, console, ...) are created in a fixed order
before any guest code runs, so their hidden classes are "deterministic in
every execution" — which is why the paper marks them validated immediately
at startup of a Reuse run (§4) and gives them incoming-less TOAST entries
(§5.1).  Every built-in hidden class here carries a stable
``builtin:<name>`` creation key for exactly that purpose.

Native functions have the signature ``native(vm, this_value, args)`` and
may call back into guest code through ``vm.call_value`` (e.g. forEach).
"""

from __future__ import annotations

import json as _json
import math
import time
import typing

from repro.lang.errors import JSLTypeError
from repro.runtime.context import Runtime
from repro.runtime.objects import JSArray, JSFunction, JSObject
from repro.runtime.values import (
    NULL,
    UNDEFINED,
    number_to_string,
    to_boolean,
    to_number,
    to_property_key,
    to_string,
)

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.interpreter.vm import VM

#: Global-object property order; fixed so the global hidden class layout is
#: identical in every execution.
GLOBAL_LAYOUT = [
    "globalThis",
    "Object",
    "Function",
    "Array",
    "String",
    "Number",
    "Math",
    "JSON",
    "console",
    "Date",
    "Error",
    "TypeError",
    "RangeError",
    "isNaN",
    "isFinite",
    "parseInt",
    "parseFloat",
    "NaN",
    "Infinity",
]


def install_builtins(runtime: Runtime) -> None:
    """Create every built-in object and wire up the global object."""
    registry = runtime.hidden_classes

    # --- root hidden classes (order matters and is part of the contract) ---
    hc_object_prototype = registry.create_root(
        "builtin",
        "builtin:Object.prototype",
        prototype=None,
        layout={"hasOwnProperty": 0, "toString": 1, "isPrototypeOf": 2},
    )
    runtime.object_prototype = runtime.new_object(hc_object_prototype)

    hc_function_prototype = registry.create_root(
        "builtin",
        "builtin:Function.prototype",
        prototype=runtime.object_prototype,
        layout={"call": 0, "apply": 1, "bind": 2},
    )
    runtime.function_prototype = runtime.new_object(hc_function_prototype)

    runtime.function_hc = registry.create_root(
        "builtin",
        "builtin:Function",
        prototype=runtime.function_prototype,
        layout={"prototype": 0, "name": 1, "length": 2},
    )
    runtime.native_function_hc = runtime.function_hc

    runtime.prototype_root_hc = registry.create_root(
        "builtin",
        "builtin:PrototypeRoot",
        prototype=runtime.object_prototype,
        layout={"constructor": 0},
    )

    runtime.empty_object_hc = registry.create_root(
        "builtin",
        "builtin:EmptyObject",
        prototype=runtime.object_prototype,
        layout={},
    )

    array_methods = [
        "push",
        "pop",
        "shift",
        "unshift",
        "join",
        "indexOf",
        "lastIndexOf",
        "slice",
        "concat",
        "forEach",
        "map",
        "filter",
        "reduce",
        "reverse",
        "some",
        "every",
        "find",
        "sort",
    ]
    hc_array_prototype = registry.create_root(
        "builtin",
        "builtin:Array.prototype",
        prototype=runtime.object_prototype,
        layout={name: index for index, name in enumerate(array_methods)},
    )
    runtime.array_prototype = runtime.new_object(hc_array_prototype)

    runtime.array_hc = registry.create_root(
        "builtin",
        "builtin:ArrayRoot",
        prototype=runtime.array_prototype,
        layout={},
    )

    hc_error_prototype = registry.create_root(
        "builtin",
        "builtin:Error.prototype",
        prototype=runtime.object_prototype,
        layout={"name": 0, "toString": 1},
    )
    runtime.error_prototype = runtime.new_object(hc_error_prototype)

    math_members = [
        "abs",
        "floor",
        "ceil",
        "round",
        "sqrt",
        "pow",
        "min",
        "max",
        "random",
        "PI",
        "E",
        "log",
        "exp",
        "sin",
        "cos",
        "atan2",
        "trunc",
        "sign",
    ]
    hc_math = registry.create_root(
        "builtin",
        "builtin:Math",
        prototype=runtime.object_prototype,
        layout={name: index for index, name in enumerate(math_members)},
    )

    hc_json = registry.create_root(
        "builtin",
        "builtin:JSON",
        prototype=runtime.object_prototype,
        layout={"stringify": 0, "parse": 1},
    )

    hc_console = registry.create_root(
        "builtin",
        "builtin:console",
        prototype=runtime.object_prototype,
        layout={"log": 0, "warn": 1, "error": 2},
    )

    hc_global = registry.create_root(
        "builtin",
        "builtin:global",
        prototype=runtime.object_prototype,
        layout={name: index for index, name in enumerate(GLOBAL_LAYOUT)},
    )

    # --- native helpers -----------------------------------------------------

    def native(name: str, fn, prototype: JSObject | None = None, ctor: bool = False, arity: int = 0) -> JSFunction:
        return runtime.new_native_function(
            name, fn, prototype=prototype, native_ctor=ctor, arity=arity
        )

    # --- Object -----------------------------------------------------------------

    def object_ctor(vm: "VM", this: object, args: list) -> object:
        if args and isinstance(args[0], JSObject):
            return args[0]
        return vm.runtime.new_object()

    object_fn = native("Object", object_ctor, prototype=runtime.object_prototype, ctor=True, arity=1)

    def object_keys(vm: "VM", this: object, args: list) -> object:
        target = args[0] if args else UNDEFINED
        if not isinstance(target, JSObject):
            raise JSLTypeError("Object.keys called on non-object")
        names = target.own_property_names()
        vm.charge_native(len(names))
        return vm.runtime.new_array([str(name) for name in names])

    def object_assign(vm: "VM", this: object, args: list) -> object:
        if not args or not isinstance(args[0], JSObject):
            raise JSLTypeError("Object.assign target must be an object")
        target = args[0]
        for source in args[1:]:
            if not isinstance(source, JSObject):
                continue
            names = source.own_property_names()
            vm.charge_native(len(names))
            for name in names:
                value = vm.get_property_slow(source, name)
                vm.set_property_native(target, name, value, "native:Object.assign")
        return target

    # Extend Object's function layout with the statics via the normal
    # transition machinery (stable native site keys).
    def object_get_prototype_of(vm: "VM", this: object, args: list) -> object:
        target = args[0] if args else UNDEFINED
        if not isinstance(target, JSObject):
            raise JSLTypeError("Object.getPrototypeOf called on non-object")
        prototype = target.hidden_class.prototype
        return prototype if prototype is not None else NULL

    _object_create_counter = [0]

    def object_create(vm: "VM", this: object, args: list) -> object:
        """Object.create(proto): a fresh object with the given prototype.

        Each call site sequence gets a deterministic creation key (a per-run
        counter), so RIC can validate these roots across executions of a
        deterministic program."""
        prototype_arg = args[0] if args else UNDEFINED
        if prototype_arg is NULL:
            prototype = None
        elif isinstance(prototype_arg, JSObject):
            prototype = prototype_arg
        else:
            raise JSLTypeError("Object prototype may only be an Object or null")
        count = _object_create_counter[0]
        _object_create_counter[0] += 1
        hc = vm.runtime.hidden_classes.create_root(
            creation_kind="ctor",
            creation_key=f"ctor:Object.create:{count}",
            prototype=prototype,
        )
        vm.charge_native()
        return vm.runtime.new_object(hc)

    _set_native_member(runtime, object_fn, "keys", native("keys", object_keys, arity=1))
    _set_native_member(runtime, object_fn, "assign", native("assign", object_assign, arity=2))
    _set_native_member(
        runtime,
        object_fn,
        "getPrototypeOf",
        native("getPrototypeOf", object_get_prototype_of, arity=1),
    )
    _set_native_member(runtime, object_fn, "create", native("create", object_create, arity=1))

    # --- Object.prototype methods ---------------------------------------------

    def has_own_property(vm: "VM", this: object, args: list) -> object:
        if not isinstance(this, JSObject):
            return False
        key = to_property_key(args[0]) if args else "undefined"
        vm.charge_native()
        if isinstance(this, JSArray):
            index = _array_index(key)
            if index is not None:
                return 0 <= index < len(this.array_elements)
        if this.in_dictionary_mode:
            assert this.dict_properties is not None
            return key in this.dict_properties
        if key in this.hidden_class.layout:
            return True
        if this.elements is not None:
            index = _array_index(key)
            if index is not None:
                return index in this.elements
        return False

    def object_to_string(vm: "VM", this: object, args: list) -> object:
        return to_string(this)

    def is_prototype_of(vm: "VM", this: object, args: list) -> object:
        if not args or not isinstance(args[0], JSObject) or not isinstance(this, JSObject):
            return False
        current = args[0].hidden_class.prototype
        while current is not None:
            if current is this:
                return True
            current = current.hidden_class.prototype
        return False

    runtime.object_prototype.slots[0] = native("hasOwnProperty", has_own_property, arity=1)
    runtime.object_prototype.slots[1] = native("toString", object_to_string)
    runtime.object_prototype.slots[2] = native("isPrototypeOf", is_prototype_of, arity=1)

    # --- Function.prototype methods ------------------------------------------

    def function_call(vm: "VM", this: object, args: list) -> object:
        if not isinstance(this, JSFunction):
            raise JSLTypeError("Function.prototype.call on non-function")
        bound_this = args[0] if args else UNDEFINED
        return vm.call_value(this, bound_this, list(args[1:]))

    def function_apply(vm: "VM", this: object, args: list) -> object:
        if not isinstance(this, JSFunction):
            raise JSLTypeError("Function.prototype.apply on non-function")
        bound_this = args[0] if args else UNDEFINED
        call_args: list = []
        if len(args) > 1 and isinstance(args[1], JSArray):
            call_args = list(args[1].array_elements)
        return vm.call_value(this, bound_this, call_args)

    def function_bind(vm: "VM", this: object, args: list) -> object:
        if not isinstance(this, JSFunction):
            raise JSLTypeError("Function.prototype.bind on non-function")
        target = this
        bound_this = args[0] if args else UNDEFINED
        bound_args = list(args[1:])

        def bound(vm2: "VM", _ignored_this: object, call_args: list) -> object:
            return vm2.call_value(target, bound_this, bound_args + list(call_args))

        return vm.runtime.new_native_function(
            f"bound {target.fn_name}", bound, arity=0
        )

    runtime.function_prototype.slots[0] = native("call", function_call, arity=1)
    runtime.function_prototype.slots[1] = native("apply", function_apply, arity=2)
    runtime.function_prototype.slots[2] = native("bind", function_bind, arity=1)

    # --- Array ------------------------------------------------------------------

    def array_ctor(vm: "VM", this: object, args: list) -> object:
        if len(args) == 1 and isinstance(args[0], float):
            array = vm.runtime.new_array()
            array.set_length(int(args[0]))
            return array
        return vm.runtime.new_array(list(args))

    array_fn = native("Array", array_ctor, prototype=runtime.array_prototype, ctor=True, arity=1)

    def array_is_array(vm: "VM", this: object, args: list) -> object:
        return bool(args) and isinstance(args[0], JSArray)

    _set_native_member(runtime, array_fn, "isArray", native("isArray", array_is_array, arity=1))

    proto = runtime.array_prototype

    def _require_array(this: object, operation: str) -> JSArray:
        if not isinstance(this, JSArray):
            raise JSLTypeError(f"Array.prototype.{operation} called on non-array")
        return this

    def array_push(vm: "VM", this: object, args: list) -> object:
        array = _require_array(this, "push")
        vm.charge_native(len(args))
        array.array_elements.extend(args)
        return array.length

    def array_pop(vm: "VM", this: object, args: list) -> object:
        array = _require_array(this, "pop")
        vm.charge_native()
        if not array.array_elements:
            return UNDEFINED
        return array.array_elements.pop()

    def array_shift(vm: "VM", this: object, args: list) -> object:
        array = _require_array(this, "shift")
        vm.charge_native(len(array.array_elements))
        if not array.array_elements:
            return UNDEFINED
        return array.array_elements.pop(0)

    def array_unshift(vm: "VM", this: object, args: list) -> object:
        array = _require_array(this, "unshift")
        vm.charge_native(len(array.array_elements))
        array.array_elements[0:0] = args
        return array.length

    def array_join(vm: "VM", this: object, args: list) -> object:
        array = _require_array(this, "join")
        separator = to_string(args[0]) if args else ","
        vm.charge_native(len(array.array_elements))
        return separator.join(
            "" if element is UNDEFINED or element is NULL else to_string(element)
            for element in array.array_elements
        )

    def array_index_of(vm: "VM", this: object, args: list) -> object:
        array = _require_array(this, "indexOf")
        needle = args[0] if args else UNDEFINED
        vm.charge_native(len(array.array_elements))
        from repro.runtime.values import strict_equals

        for index, element in enumerate(array.array_elements):
            if strict_equals(element, needle):
                return float(index)
        return -1.0

    def array_slice(vm: "VM", this: object, args: list) -> object:
        array = _require_array(this, "slice")
        length = len(array.array_elements)
        start = int(to_number(args[0])) if args else 0
        end = int(to_number(args[1])) if len(args) > 1 and args[1] is not UNDEFINED else length
        if start < 0:
            start += length
        if end < 0:
            end += length
        start = max(0, min(start, length))
        end = max(0, min(end, length))
        vm.charge_native(max(0, end - start))
        return vm.runtime.new_array(array.array_elements[start:end])

    def array_concat(vm: "VM", this: object, args: list) -> object:
        array = _require_array(this, "concat")
        elements = list(array.array_elements)
        for arg in args:
            if isinstance(arg, JSArray):
                elements.extend(arg.array_elements)
            else:
                elements.append(arg)
        vm.charge_native(len(elements))
        return vm.runtime.new_array(elements)

    def array_for_each(vm: "VM", this: object, args: list) -> object:
        array = _require_array(this, "forEach")
        callback = args[0] if args else UNDEFINED
        if not isinstance(callback, JSFunction):
            raise JSLTypeError("forEach callback is not a function")
        vm.charge_native(len(array.array_elements))
        for index, element in enumerate(list(array.array_elements)):
            vm.call_value(callback, UNDEFINED, [element, float(index), array])
        return UNDEFINED

    def array_map(vm: "VM", this: object, args: list) -> object:
        array = _require_array(this, "map")
        callback = args[0] if args else UNDEFINED
        if not isinstance(callback, JSFunction):
            raise JSLTypeError("map callback is not a function")
        vm.charge_native(len(array.array_elements))
        result = [
            vm.call_value(callback, UNDEFINED, [element, float(index), array])
            for index, element in enumerate(list(array.array_elements))
        ]
        return vm.runtime.new_array(result)

    def array_filter(vm: "VM", this: object, args: list) -> object:
        array = _require_array(this, "filter")
        callback = args[0] if args else UNDEFINED
        if not isinstance(callback, JSFunction):
            raise JSLTypeError("filter callback is not a function")
        vm.charge_native(len(array.array_elements))
        result = [
            element
            for index, element in enumerate(list(array.array_elements))
            if to_boolean(
                vm.call_value(callback, UNDEFINED, [element, float(index), array])
            )
        ]
        return vm.runtime.new_array(result)

    def array_reduce(vm: "VM", this: object, args: list) -> object:
        array = _require_array(this, "reduce")
        callback = args[0] if args else UNDEFINED
        if not isinstance(callback, JSFunction):
            raise JSLTypeError("reduce callback is not a function")
        elements = list(array.array_elements)
        vm.charge_native(len(elements))
        if len(args) > 1:
            accumulator = args[1]
            start = 0
        else:
            if not elements:
                raise JSLTypeError("reduce of empty array with no initial value")
            accumulator = elements[0]
            start = 1
        for index in range(start, len(elements)):
            accumulator = vm.call_value(
                callback, UNDEFINED, [accumulator, elements[index], float(index), array]
            )
        return accumulator

    def array_reverse(vm: "VM", this: object, args: list) -> object:
        array = _require_array(this, "reverse")
        vm.charge_native(len(array.array_elements))
        array.array_elements.reverse()
        return array

    def array_last_index_of(vm: "VM", this: object, args: list) -> object:
        array = _require_array(this, "lastIndexOf")
        needle = args[0] if args else UNDEFINED
        vm.charge_native(len(array.array_elements))
        from repro.runtime.values import strict_equals

        for index in range(len(array.array_elements) - 1, -1, -1):
            if strict_equals(array.array_elements[index], needle):
                return float(index)
        return -1.0

    def array_some(vm: "VM", this: object, args: list) -> object:
        array = _require_array(this, "some")
        callback = args[0] if args else UNDEFINED
        if not isinstance(callback, JSFunction):
            raise JSLTypeError("some callback is not a function")
        vm.charge_native(len(array.array_elements))
        for index, element in enumerate(list(array.array_elements)):
            if to_boolean(vm.call_value(callback, UNDEFINED, [element, float(index), array])):
                return True
        return False

    def array_every(vm: "VM", this: object, args: list) -> object:
        array = _require_array(this, "every")
        callback = args[0] if args else UNDEFINED
        if not isinstance(callback, JSFunction):
            raise JSLTypeError("every callback is not a function")
        vm.charge_native(len(array.array_elements))
        for index, element in enumerate(list(array.array_elements)):
            if not to_boolean(vm.call_value(callback, UNDEFINED, [element, float(index), array])):
                return False
        return True

    def array_find(vm: "VM", this: object, args: list) -> object:
        array = _require_array(this, "find")
        callback = args[0] if args else UNDEFINED
        if not isinstance(callback, JSFunction):
            raise JSLTypeError("find callback is not a function")
        vm.charge_native(len(array.array_elements))
        for index, element in enumerate(list(array.array_elements)):
            if to_boolean(vm.call_value(callback, UNDEFINED, [element, float(index), array])):
                return element
        return UNDEFINED

    def array_sort(vm: "VM", this: object, args: list) -> object:
        """In-place sort: default JS string ordering, or a comparator."""
        import functools

        array = _require_array(this, "sort")
        comparator = args[0] if args else UNDEFINED
        vm.charge_native(len(array.array_elements) * 2)
        if isinstance(comparator, JSFunction):
            def compare(a: object, b: object) -> int:
                result = to_number(vm.call_value(comparator, UNDEFINED, [a, b]))
                if result != result:  # NaN -> treat as equal (JS impl-defined)
                    return 0
                return -1 if result < 0 else (1 if result > 0 else 0)

            array.array_elements.sort(key=functools.cmp_to_key(compare))
        else:
            # Default sort compares ToString of elements; undefined sorts last.
            def default_key(value: object):
                return (value is UNDEFINED, to_string(value))

            array.array_elements.sort(key=default_key)
        return array

    # Install by layout name (never positionally — the layout is the truth).
    for name, fn in [
        ("push", array_push),
        ("pop", array_pop),
        ("shift", array_shift),
        ("unshift", array_unshift),
        ("join", array_join),
        ("indexOf", array_index_of),
        ("lastIndexOf", array_last_index_of),
        ("slice", array_slice),
        ("concat", array_concat),
        ("forEach", array_for_each),
        ("map", array_map),
        ("filter", array_filter),
        ("reduce", array_reduce),
        ("reverse", array_reverse),
        ("some", array_some),
        ("every", array_every),
        ("find", array_find),
        ("sort", array_sort),
    ]:
        proto.slots[hc_array_prototype.layout[name]] = native(name, fn, arity=1)

    # --- String / Number --------------------------------------------------------

    def string_ctor(vm: "VM", this: object, args: list) -> object:
        return to_string(args[0]) if args else ""

    string_fn = native("String", string_ctor, ctor=True, arity=1)

    def string_from_char_code(vm: "VM", this: object, args: list) -> object:
        return "".join(chr(int(to_number(arg))) for arg in args)

    _set_native_member(
        runtime, string_fn, "fromCharCode", native("fromCharCode", string_from_char_code, arity=1)
    )

    def number_ctor(vm: "VM", this: object, args: list) -> object:
        return to_number(args[0]) if args else 0.0

    number_fn = native("Number", number_ctor, ctor=True, arity=1)

    def number_is_integer(vm: "VM", this: object, args: list) -> object:
        value = args[0] if args else UNDEFINED
        return (
            isinstance(value, float)
            and not isinstance(value, bool)
            and math.isfinite(value)
            and value == int(value)
        )

    _set_native_member(
        runtime, number_fn, "isInteger", native("isInteger", number_is_integer, arity=1)
    )

    # --- Math ---------------------------------------------------------------------

    math_object = runtime.new_object(hc_math)

    def math_unary(name: str, fn) -> JSFunction:
        def impl(vm: "VM", this: object, args: list) -> object:
            vm.charge_native()
            return float(fn(to_number(args[0]) if args else float("nan")))

        return native(name, impl, arity=1)

    def math_pow(vm: "VM", this: object, args: list) -> object:
        vm.charge_native()
        base = to_number(args[0]) if args else float("nan")
        exponent = to_number(args[1]) if len(args) > 1 else float("nan")
        return float(base**exponent)

    def math_min(vm: "VM", this: object, args: list) -> object:
        vm.charge_native(len(args))
        numbers = [to_number(arg) for arg in args]
        return min(numbers) if numbers else float("inf")

    def math_max(vm: "VM", this: object, args: list) -> object:
        vm.charge_native(len(args))
        numbers = [to_number(arg) for arg in args]
        return max(numbers) if numbers else float("-inf")

    def math_random(vm: "VM", this: object, args: list) -> object:
        return vm.runtime.rng.random()

    def _js_round(value: float) -> float:
        return math.floor(value + 0.5)

    math_object.slots[0] = math_unary("abs", abs)
    math_object.slots[1] = math_unary("floor", math.floor)
    math_object.slots[2] = math_unary("ceil", math.ceil)
    math_object.slots[3] = math_unary("round", _js_round)
    math_object.slots[4] = math_unary("sqrt", lambda value: math.sqrt(value) if value >= 0 else float("nan"))
    math_object.slots[5] = native("pow", math_pow, arity=2)
    math_object.slots[6] = native("min", math_min, arity=2)
    math_object.slots[7] = native("max", math_max, arity=2)
    math_object.slots[8] = native("random", math_random)
    math_object.slots[9] = math.pi
    math_object.slots[10] = math.e

    def math_atan2(vm: "VM", this: object, args: list) -> object:
        vm.charge_native()
        y = to_number(args[0]) if args else float("nan")
        x = to_number(args[1]) if len(args) > 1 else float("nan")
        return math.atan2(y, x)

    def _js_sign(value: float) -> float:
        if value != value:
            return float("nan")
        if value > 0:
            return 1.0
        if value < 0:
            return -1.0
        return value  # preserves +-0

    math_object.slots[11] = math_unary(
        "log", lambda v: math.log(v) if v > 0 else (float("-inf") if v == 0 else float("nan"))
    )
    math_object.slots[12] = math_unary("exp", math.exp)
    math_object.slots[13] = math_unary("sin", math.sin)
    math_object.slots[14] = math_unary("cos", math.cos)
    math_object.slots[15] = native("atan2", math_atan2, arity=2)
    math_object.slots[16] = math_unary("trunc", math.trunc)
    # sign must preserve NaN, so it bypasses the float() wrap of math_unary.

    def math_sign(vm: "VM", this: object, args: list) -> object:
        vm.charge_native()
        return _js_sign(to_number(args[0]) if args else float("nan"))

    math_object.slots[17] = native("sign", math_sign, arity=1)

    # --- JSON -----------------------------------------------------------------------

    def json_stringify(vm: "VM", this: object, args: list) -> object:
        value = args[0] if args else UNDEFINED
        result = _stringify(vm, value)
        return result if result is not None else UNDEFINED

    def json_parse(vm: "VM", this: object, args: list) -> object:
        text = to_string(args[0]) if args else ""
        try:
            data = _json.loads(text)
        except _json.JSONDecodeError as error:
            raise JSLTypeError(f"JSON.parse: {error}") from error
        return _revive(vm, data)

    json_object = runtime.new_object(hc_json)
    json_object.slots[0] = native("stringify", json_stringify, arity=1)
    json_object.slots[1] = native("parse", json_parse, arity=1)

    # --- console --------------------------------------------------------------------

    def make_console_writer(level: str):
        def impl(vm: "VM", this: object, args: list) -> object:
            vm.charge_native(len(args))
            message = " ".join(to_string(arg) for arg in args)
            vm.runtime.console_output.append(
                message if level == "log" else f"[{level}] {message}"
            )
            return UNDEFINED

        return impl

    console_object = runtime.new_object(hc_console)
    console_object.slots[0] = native("log", make_console_writer("log"), arity=1)
    console_object.slots[1] = native("warn", make_console_writer("warn"), arity=1)
    console_object.slots[2] = native("error", make_console_writer("error"), arity=1)

    # --- Date -----------------------------------------------------------------------

    def date_ctor(vm: "VM", this: object, args: list) -> object:
        if isinstance(this, JSObject):
            vm.set_property_native(
                this, "time", vm.runtime_time_ms(), "native:Date"
            )
            return UNDEFINED
        return to_string(vm.runtime_time_ms())

    date_fn = native("Date", date_ctor, prototype=runtime.object_prototype, ctor=True)

    def date_now(vm: "VM", this: object, args: list) -> object:
        return vm.runtime_time_ms()

    _set_native_member(runtime, date_fn, "now", native("now", date_now))

    # --- Errors ----------------------------------------------------------------------

    def error_to_string(vm: "VM", this: object, args: list) -> object:
        if not isinstance(this, JSObject):
            return "Error"
        name = vm.get_property_slow(this, "name")
        message = vm.get_property_slow(this, "message")
        name_text = to_string(name) if name is not UNDEFINED else "Error"
        if message is UNDEFINED:
            return name_text
        return f"{name_text}: {to_string(message)}"

    runtime.error_prototype.slots[0] = "Error"
    runtime.error_prototype.slots[1] = native("toString", error_to_string)

    def make_error_ctor(name: str) -> JSFunction:
        def impl(vm: "VM", this: object, args: list) -> object:
            if isinstance(this, JSObject):
                message = to_string(args[0]) if args else ""
                vm.set_property_native(this, "message", message, f"native:{name}")
                if name != "Error":
                    vm.set_property_native(this, "name", name, f"native:{name}")
                return UNDEFINED
            raise JSLTypeError(f"{name} must be called with new")

        return native(name, impl, prototype=runtime.error_prototype, ctor=True, arity=1)

    error_fn = make_error_ctor("Error")
    type_error_fn = make_error_ctor("TypeError")
    range_error_fn = make_error_ctor("RangeError")

    # --- free functions ----------------------------------------------------------------

    def global_is_nan(vm: "VM", this: object, args: list) -> object:
        return math.isnan(to_number(args[0]) if args else float("nan"))

    def global_is_finite(vm: "VM", this: object, args: list) -> object:
        return math.isfinite(to_number(args[0]) if args else float("nan"))

    def global_parse_int(vm: "VM", this: object, args: list) -> object:
        text = to_string(args[0]).strip() if args else ""
        radix = int(to_number(args[1])) if len(args) > 1 and args[1] is not UNDEFINED else 10
        if radix == 0:
            radix = 10
        sign = 1
        if text[:1] in "+-":
            if text[0] == "-":
                sign = -1
            text = text[1:]
        if radix == 16 and text[:2].lower() == "0x":
            text = text[2:]
        digits = ""
        valid = "0123456789abcdefghijklmnopqrstuvwxyz"[:radix]
        for char in text.lower():
            if char not in valid:
                break
            digits += char
        if not digits:
            return float("nan")
        return float(sign * int(digits, radix))

    def global_parse_float(vm: "VM", this: object, args: list) -> object:
        text = to_string(args[0]).strip() if args else ""
        matched = ""
        seen_dot = seen_exp = False
        for index, char in enumerate(text):
            if char.isdigit():
                matched += char
            elif char == "." and not seen_dot and not seen_exp:
                matched += char
                seen_dot = True
            elif char in "eE" and matched and not seen_exp:
                matched += char
                seen_exp = True
            elif char in "+-" and (index == 0 or matched[-1:] in "eE"):
                matched += char
            else:
                break
        try:
            return float(matched)
        except ValueError:
            return float("nan")

    # --- primitive methods (strings / numbers) -------------------------------------------

    def string_method(name: str, impl_fn) -> None:
        def impl(vm: "VM", this: object, args: list) -> object:
            vm.charge_native()
            return impl_fn(vm, to_string(this), args)

        runtime.string_methods[name] = native(name, impl, arity=1)

    string_method("charAt", lambda vm, s, a: s[int(to_number(a[0]))] if a and 0 <= int(to_number(a[0])) < len(s) else "")
    string_method("charCodeAt", lambda vm, s, a: float(ord(s[int(to_number(a[0]))])) if a and 0 <= int(to_number(a[0])) < len(s) else float("nan"))
    string_method(
        "indexOf",
        lambda vm, s, a: float(
            s.find(
                to_string(a[0]),
                int(to_number(a[1])) if len(a) > 1 and a[1] is not UNDEFINED else 0,
            )
        )
        if a
        else -1.0,
    )
    string_method("lastIndexOf", lambda vm, s, a: float(s.rfind(to_string(a[0]))) if a else -1.0)
    string_method("toUpperCase", lambda vm, s, a: s.upper())
    string_method("toLowerCase", lambda vm, s, a: s.lower())
    string_method("trim", lambda vm, s, a: s.strip())
    string_method("toString", lambda vm, s, a: s)

    def _string_slice(vm: "VM", s: str, args: list) -> str:
        start = int(to_number(args[0])) if args else 0
        end = int(to_number(args[1])) if len(args) > 1 and args[1] is not UNDEFINED else len(s)
        if start < 0:
            start += len(s)
        if end < 0:
            end += len(s)
        start = max(0, min(start, len(s)))
        end = max(0, min(end, len(s)))
        return s[start:end] if start < end else ""

    string_method("slice", _string_slice)

    def _string_substring(vm: "VM", s: str, args: list) -> str:
        start = int(to_number(args[0])) if args else 0
        end = int(to_number(args[1])) if len(args) > 1 and args[1] is not UNDEFINED else len(s)
        start = max(0, min(start, len(s)))
        end = max(0, min(end, len(s)))
        if start > end:
            start, end = end, start
        return s[start:end]

    string_method("substring", _string_substring)

    def _string_split(vm: "VM", s: str, args: list) -> object:
        if not args or args[0] is UNDEFINED:
            return vm.runtime.new_array([s])
        separator = to_string(args[0])
        parts = list(s) if separator == "" else s.split(separator)
        return vm.runtime.new_array(list(parts))

    string_method("split", _string_split)
    string_method(
        "replace",
        lambda vm, s, a: s.replace(to_string(a[0]), to_string(a[1]), 1) if len(a) > 1 else s,
    )
    string_method("concat", lambda vm, s, a: s + "".join(to_string(x) for x in a))
    string_method("startsWith", lambda vm, s, a: s.startswith(to_string(a[0])) if a else False)
    string_method("endsWith", lambda vm, s, a: s.endswith(to_string(a[0])) if a else False)
    string_method("includes", lambda vm, s, a: to_string(a[0]) in s if a else False)
    string_method(
        "repeat",
        lambda vm, s, a: s * max(0, int(to_number(a[0]))) if a else "",
    )
    string_method(
        "padStart",
        lambda vm, s, a: s.rjust(
            int(to_number(a[0])) if a else 0,
            (to_string(a[1]) or " ")[0] if len(a) > 1 and a[1] is not UNDEFINED else " ",
        ),
    )
    string_method(
        "padEnd",
        lambda vm, s, a: s.ljust(
            int(to_number(a[0])) if a else 0,
            (to_string(a[1]) or " ")[0] if len(a) > 1 and a[1] is not UNDEFINED else " ",
        ),
    )

    def number_method(name: str, impl_fn) -> None:
        def impl(vm: "VM", this: object, args: list) -> object:
            vm.charge_native()
            return impl_fn(vm, to_number(this), args)

        runtime.number_methods[name] = native(name, impl, arity=1)

    number_method("toString", lambda vm, n, a: number_to_string(n))
    number_method(
        "toFixed",
        lambda vm, n, a: f"{n:.{int(to_number(a[0])) if a else 0}f}",
    )

    # --- wire the global object ---------------------------------------------------------

    global_object = runtime.new_object(hc_global)
    runtime.global_object = global_object
    values: dict[str, object] = {
        "globalThis": global_object,
        "Object": object_fn,
        "Function": native("Function", lambda vm, this, args: UNDEFINED),
        "Array": array_fn,
        "String": string_fn,
        "Number": number_fn,
        "Math": math_object,
        "JSON": json_object,
        "console": console_object,
        "Date": date_fn,
        "Error": error_fn,
        "TypeError": type_error_fn,
        "RangeError": range_error_fn,
        "isNaN": native("isNaN", global_is_nan, arity=1),
        "isFinite": native("isFinite", global_is_finite, arity=1),
        "parseInt": native("parseInt", global_parse_int, arity=2),
        "parseFloat": native("parseFloat", global_parse_float, arity=2),
        "NaN": float("nan"),
        "Infinity": float("inf"),
    }
    for name, index in hc_global.layout.items():
        global_object.slots[index] = values[name]


def _set_native_member(
    runtime: Runtime, obj: JSObject, name: str, value: object
) -> None:
    """Attach a static member to a builtin function object via the normal
    transition machinery (stable ``native:`` site keys)."""
    runtime.define_own_property(obj, name, value, f"native:member:{name}")


def _array_index(key: str) -> int | None:
    if key.isdigit() and (key == "0" or not key.startswith("0")):
        return int(key)
    return None


def _stringify(vm: "VM", value: object, depth: int = 0) -> str | None:
    """Minimal JSON.stringify over guest values; returns None for
    undefined/functions (JSON semantics)."""
    if depth > 64:
        raise JSLTypeError("JSON.stringify: structure too deep")
    if value is UNDEFINED:
        return None
    if value is NULL:
        return "null"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        if math.isnan(value) or math.isinf(value):
            return "null"
        return number_to_string(value)
    if isinstance(value, str):
        return _json.dumps(value)
    if isinstance(value, JSFunction):
        return None
    if isinstance(value, JSArray):
        parts = [
            _stringify(vm, element, depth + 1) or "null"
            for element in value.array_elements
        ]
        return "[" + ",".join(parts) + "]"
    if isinstance(value, JSObject):
        parts = []
        for name in value.own_property_names():
            member = vm.get_property_slow(value, name)
            text = _stringify(vm, member, depth + 1)
            if text is not None:
                parts.append(f"{_json.dumps(name)}:{text}")
        return "{" + ",".join(parts) + "}"
    return None


def _revive(vm: "VM", data: object) -> object:
    """Convert parsed-JSON Python data into guest values."""
    if data is None:
        return NULL
    if isinstance(data, bool):
        return data
    if isinstance(data, (int, float)):
        return float(data)
    if isinstance(data, str):
        return data
    if isinstance(data, list):
        return vm.runtime.new_array([_revive(vm, item) for item in data])
    assert isinstance(data, dict)
    obj = vm.runtime.new_object()
    for key, item in data.items():
        vm.set_property_native(obj, str(key), _revive(vm, item), "native:JSON.parse")
    return obj
