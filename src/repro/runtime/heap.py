"""Simulated heap with per-execution address randomization.

The paper's core premise is that IC state cannot simply be persisted because
it embeds heap addresses (of hidden classes and prototype objects) that
differ between executions (§3.2).  Real engines get this from ASLR and
allocation nondeterminism; we make it explicit: every :class:`Heap` draws a
random base address, so the "same" hidden class lands at a different address
in every run.  Any scheme that naively replays recorded ``HCAddr`` values is
therefore guaranteed to break — which is what RIC's validation protocol is
for, and what our unsoundness tests demonstrate.

The heap also does coarse byte accounting so §7.3's memory comparison
(ICRecord size vs. heap usage) can be reproduced.
"""

from __future__ import annotations

import random

#: Sizes (bytes) charged per allocation kind; coarse V8-like figures.
ALLOCATION_SIZES = {
    "object": 48,
    "function": 96,
    "array": 64,
    "hidden_class": 80,
    "property_slot": 8,
    "element": 8,
    "handler": 40,
    "string": 24,
}

#: Alignment of simulated allocations.
_ALIGN = 16

#: Baseline footprint of a fresh isolate: builtins, startup snapshot,
#: internal tables.  A fresh V8 isolate occupies on the order of 1-2 MB
#: before any user script runs; the paper's §7.3 heap figures (2.6-5.6 MB)
#: include this.  Charged once at heap construction.
BASELINE_ISOLATE_BYTES = 1_400_000


class Heap:
    """Allocates monotonically increasing, run-randomized addresses."""

    __slots__ = (
        "_next_address",
        "bytes_allocated",
        "allocation_count",
        "allocations_by_kind",
    )

    def __init__(self, seed: int | None = None):
        rng = random.Random(seed)
        # A 47-bit user-space-style base, 4 KiB aligned.
        self._next_address = (rng.getrandbits(34) << 12) | 0x10000000000
        self.bytes_allocated = BASELINE_ISOLATE_BYTES
        self.allocation_count = 0
        self.allocations_by_kind: dict[str, int] = {}

    def allocate(self, kind: str, extra_bytes: int = 0) -> int:
        """Reserve an address for an allocation of ``kind``.

        Returns the (simulated) address.  ``extra_bytes`` accounts for
        variable-size payloads such as property backing stores.
        """
        size = ALLOCATION_SIZES.get(kind, 32) + extra_bytes
        size = (size + _ALIGN - 1) // _ALIGN * _ALIGN
        address = self._next_address
        self._next_address += size
        self.bytes_allocated += size
        self.allocation_count += 1
        self.allocations_by_kind[kind] = self.allocations_by_kind.get(kind, 0) + 1
        return address

    def charge(self, kind: str, nbytes: int) -> None:
        """Account for growth of an existing allocation (e.g. slot array)."""
        self.bytes_allocated += nbytes
        self.allocations_by_kind[kind] = self.allocations_by_kind.get(kind, 0)
