"""Runtime object model: heap, hidden classes, objects, values, builtins."""

from repro.runtime.context import LookupResult, Runtime
from repro.runtime.heap import Heap
from repro.runtime.hidden_class import HiddenClass, HiddenClassRegistry
from repro.runtime.objects import JSArray, JSFunction, JSObject
from repro.runtime.values import (
    NULL,
    UNDEFINED,
    loose_equals,
    number_to_string,
    strict_equals,
    to_boolean,
    to_number,
    to_property_key,
    to_string,
    type_of,
)

__all__ = [
    "NULL",
    "UNDEFINED",
    "Heap",
    "HiddenClass",
    "HiddenClassRegistry",
    "JSArray",
    "JSFunction",
    "JSObject",
    "LookupResult",
    "Runtime",
    "loose_equals",
    "number_to_string",
    "strict_equals",
    "to_boolean",
    "to_number",
    "to_property_key",
    "to_string",
    "type_of",
]
