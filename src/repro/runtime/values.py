"""Guest value model and coercions.

jsl values map onto Python values where possible — numbers are ``float``,
strings are ``str``, booleans are ``bool`` — with singleton sentinels for
``undefined`` and ``null`` and :class:`~repro.runtime.objects.JSObject` for
everything heap-allocated.  Keeping primitives as Python natives keeps the
interpreter loop fast; only objects participate in hidden classes and IC.
"""

from __future__ import annotations

import math


class _Undefined:
    """The single ``undefined`` value."""

    __slots__ = ()

    _instance: "_Undefined | None" = None

    def __new__(cls) -> "_Undefined":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "undefined"

    def __bool__(self) -> bool:
        return False


class _Null:
    """The single ``null`` value."""

    __slots__ = ()

    _instance: "_Null | None" = None

    def __new__(cls) -> "_Null":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "null"

    def __bool__(self) -> bool:
        return False


UNDEFINED = _Undefined()
NULL = _Null()


def is_nullish(value: object) -> bool:
    """True for ``undefined`` and ``null``."""
    return value is UNDEFINED or value is NULL


def to_boolean(value: object) -> bool:
    """JS ToBoolean."""
    if value is UNDEFINED or value is NULL:
        return False
    if isinstance(value, bool):
        return value
    if isinstance(value, float):
        return not (value == 0.0 or math.isnan(value))
    if isinstance(value, str):
        return bool(value)
    return True  # objects are always truthy


def to_number(value: object) -> float:
    """JS ToNumber (objects coerce through their primitive hint; we use
    their string form, which suffices for the workloads)."""
    if isinstance(value, bool):
        return 1.0 if value else 0.0
    if isinstance(value, float):
        return value
    if value is UNDEFINED:
        return float("nan")
    if value is NULL:
        return 0.0
    if isinstance(value, str):
        text = value.strip()
        if not text:
            return 0.0
        try:
            if text.lower().startswith(("0x", "-0x", "+0x")):
                return float(int(text, 16))
            return float(text)
        except ValueError:
            return float("nan")
    return float("nan")  # objects: simplified (no valueOf protocol)


def number_to_string(value: float) -> str:
    """JS Number-to-string: integral floats print without the '.0'."""
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "Infinity" if value > 0 else "-Infinity"
    if value == int(value) and abs(value) < 1e21:
        return str(int(value))
    return repr(value)


def to_string(value: object) -> str:
    """JS ToString."""
    if value is UNDEFINED:
        return "undefined"
    if value is NULL:
        return "null"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        return number_to_string(value)
    if isinstance(value, str):
        return value
    return value.js_to_string()  # type: ignore[attr-defined]


def to_int32(value: object) -> int:
    """JS ToInt32 (for bitwise operators)."""
    number = to_number(value)
    if math.isnan(number) or math.isinf(number):
        return 0
    result = int(number) & 0xFFFFFFFF
    if result >= 0x80000000:
        result -= 0x100000000
    return result


def to_uint32(value: object) -> int:
    """JS ToUint32 (for >>>)."""
    number = to_number(value)
    if math.isnan(number) or math.isinf(number):
        return 0
    return int(number) & 0xFFFFFFFF


def to_property_key(value: object) -> str:
    """Convert an arbitrary keyed-access subscript to a property key."""
    if isinstance(value, float):
        return number_to_string(value)
    return to_string(value)


def type_of(value: object) -> str:
    """JS typeof."""
    if value is UNDEFINED:
        return "undefined"
    if value is NULL:
        return "object"  # the famous JS quirk, preserved
    if isinstance(value, bool):
        return "boolean"
    if isinstance(value, float):
        return "number"
    if isinstance(value, str):
        return "string"
    if getattr(value, "is_callable", False):
        return "function"
    return "object"


def strict_equals(a: object, b: object) -> bool:
    """JS ``===``."""
    if isinstance(a, bool) or isinstance(b, bool):
        # bool must not compare equal to numbers under ===
        return a is b if (isinstance(a, bool) and isinstance(b, bool)) else False
    if isinstance(a, float) and isinstance(b, float):
        return a == b  # NaN != NaN falls out naturally
    if isinstance(a, str) and isinstance(b, str):
        return a == b
    return a is b


def loose_equals(a: object, b: object) -> bool:
    """JS ``==`` (simplified object-coercion: via ToString for objects)."""
    if is_nullish(a) and is_nullish(b):
        return True
    if is_nullish(a) or is_nullish(b):
        return False
    if isinstance(a, bool):
        return loose_equals(to_number(a), b)
    if isinstance(b, bool):
        return loose_equals(a, to_number(b))
    if isinstance(a, float) and isinstance(b, float):
        return a == b
    if isinstance(a, str) and isinstance(b, str):
        return a == b
    if isinstance(a, float) and isinstance(b, str):
        return a == to_number(b)
    if isinstance(a, str) and isinstance(b, float):
        return to_number(a) == b
    if isinstance(a, (float, str)) and not isinstance(b, (float, str)):
        return loose_equals(a, to_string(b))
    if isinstance(b, (float, str)) and not isinstance(a, (float, str)):
        return loose_equals(to_string(a), b)
    return a is b
