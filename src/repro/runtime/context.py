"""Per-execution runtime context: heap, hidden classes, global object.

A :class:`Runtime` is created fresh for every execution (Initial, Reuse —
each gets its own heap with its own randomized addresses).  It owns the
slow-path property machinery that the IC miss handler and the native
builtins share.
"""

from __future__ import annotations

import random
import typing
from dataclasses import dataclass

from repro.runtime.heap import Heap
from repro.runtime.hidden_class import HiddenClass, HiddenClassRegistry
from repro.runtime.objects import JSArray, JSFunction, JSObject
from repro.runtime.values import UNDEFINED

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.bytecode.code import CodeObject


@dataclass
class LookupResult:
    """Outcome of a full (runtime slow path) named-property lookup.

    ``kind`` is one of:

    * ``"field"`` — own fast property; ``offset`` valid.
    * ``"dict"`` — own property of a dictionary-mode object.
    * ``"array_length"`` — the virtual ``length`` of an array.
    * ``"proto_field"`` — fast property found on ``holder`` up the chain;
      ``chain`` holds the (object, hidden class) hops that must stay valid.
    * ``"proto_dict"`` — found up the chain on a dictionary-mode holder.
    * ``"absent"`` — not found anywhere; ``chain`` covers the whole walk.
    """

    kind: str
    value: object
    holder: JSObject | None = None
    offset: int | None = None
    chain: tuple[tuple[JSObject, HiddenClass], ...] = ()
    #: Prototype hops walked — feeds the lookup cost model.
    hops: int = 0


class Runtime:
    """All mutable state of one guest execution."""

    __slots__ = (
        "heap",
        "hidden_classes",
        "rng",
        "console_output",
        "global_object",
        "empty_object_hc",
        "function_hc",
        "native_function_hc",
        "prototype_root_hc",
        "array_hc",
        "object_prototype",
        "function_prototype",
        "array_prototype",
        "error_prototype",
        "string_methods",
        "number_methods",
    )

    def __init__(self, seed: int | None = None):
        rng = random.Random(seed)
        self.heap = Heap(seed=rng.getrandbits(64))
        self.hidden_classes = HiddenClassRegistry(self.heap)
        self.rng = random.Random(rng.getrandbits(64))
        self.console_output: list[str] = []

        # Filled by repro.runtime.builtins.install_builtins().
        self.global_object: JSObject = None  # type: ignore[assignment]
        self.empty_object_hc: HiddenClass = None  # type: ignore[assignment]
        self.function_hc: HiddenClass = None  # type: ignore[assignment]
        self.native_function_hc: HiddenClass = None  # type: ignore[assignment]
        self.prototype_root_hc: HiddenClass = None  # type: ignore[assignment]
        self.array_hc: HiddenClass = None  # type: ignore[assignment]
        self.object_prototype: JSObject = None  # type: ignore[assignment]
        self.function_prototype: JSObject = None  # type: ignore[assignment]
        self.array_prototype: JSObject = None  # type: ignore[assignment]
        self.error_prototype: JSObject = None  # type: ignore[assignment]
        #: Native methods reachable on string/number primitives (the VM
        #: resolves these without IC participation; primitives have no
        #: hidden classes in this model).
        self.string_methods: dict[str, JSFunction] = {}
        self.number_methods: dict[str, JSFunction] = {}

    # -- allocation helpers ---------------------------------------------------

    def new_object(self, hidden_class: HiddenClass | None = None) -> JSObject:
        hc = hidden_class if hidden_class is not None else self.empty_object_hc
        address = self.heap.allocate("object", extra_bytes=8 * len(hc.layout))
        return JSObject(hc, address)

    def new_array(self, elements: list[object] | None = None) -> JSArray:
        address = self.heap.allocate("array")
        array = JSArray(self.array_hc, address)
        if elements:
            array.array_elements.extend(elements)
            self.heap.charge("element", 8 * len(elements))
        return array

    def new_function(self, code: "CodeObject", env: object) -> JSFunction:
        """Create a guest (interpreted) function with its prototype object."""
        address = self.heap.allocate("function")
        fn = JSFunction(
            self.function_hc, address, fn_name=code.name, code=code, env=env
        )
        prototype = self.new_object(self.prototype_root_hc)
        prototype.slots[self.prototype_root_hc.layout["constructor"]] = fn
        fn.slots = [UNDEFINED] * len(self.function_hc.layout)
        fn.slots[self.function_hc.layout["prototype"]] = prototype
        fn.slots[self.function_hc.layout["name"]] = code.name
        fn.slots[self.function_hc.layout["length"]] = float(len(code.params))
        return fn

    def new_native_function(
        self,
        name: str,
        native: typing.Callable,
        prototype: JSObject | None = None,
        native_ctor: bool = False,
        arity: int = 0,
    ) -> JSFunction:
        address = self.heap.allocate("function")
        fn = JSFunction(
            self.function_hc,
            address,
            fn_name=name,
            native=native,
            native_ctor=native_ctor,
        )
        fn.slots = [UNDEFINED] * len(self.function_hc.layout)
        if prototype is not None:
            fn.slots[self.function_hc.layout["prototype"]] = prototype
        fn.slots[self.function_hc.layout["name"]] = name
        fn.slots[self.function_hc.layout["length"]] = float(arity)
        return fn

    # -- slow-path property machinery ------------------------------------------

    def lookup_property(self, obj: JSObject, name: str) -> LookupResult:
        """Full lookup along the prototype chain (the runtime slow path the
        IC exists to avoid)."""
        chain: list[tuple[JSObject, HiddenClass]] = []
        current: JSObject | None = obj
        hops = 0
        while current is not None:
            if isinstance(current, JSArray) and name == "length":
                return LookupResult(
                    kind="array_length", value=current.length, holder=current, hops=hops
                )
            if current.in_dictionary_mode:
                assert current.dict_properties is not None
                if name in current.dict_properties:
                    kind = "dict" if current is obj else "proto_dict"
                    return LookupResult(
                        kind=kind,
                        value=current.dict_properties[name],
                        holder=current,
                        chain=tuple(chain),
                        hops=hops,
                    )
            else:
                offset = current.hidden_class.layout.get(name)
                if offset is not None:
                    if current is obj:
                        return LookupResult(
                            kind="field",
                            value=current.slots[offset],
                            holder=current,
                            offset=offset,
                            hops=hops,
                        )
                    return LookupResult(
                        kind="proto_field",
                        value=current.slots[offset],
                        holder=current,
                        offset=offset,
                        chain=tuple(chain),
                        hops=hops,
                    )
            prototype = current.hidden_class.prototype
            if prototype is not None:
                chain.append((prototype, prototype.hidden_class))
            current = prototype
            hops += 1
        return LookupResult(kind="absent", value=UNDEFINED, chain=tuple(chain), hops=hops)

    def define_own_property(
        self, obj: JSObject, name: str, value: object, site_key: str
    ) -> tuple[HiddenClass | None, bool]:
        """Create or update an *own* property, transitioning if needed.

        Returns ``(outgoing_hidden_class, created)`` where ``created`` is
        True when a brand-new hidden class was made (i.e. ``site_key``
        triggered it).  Dictionary-mode objects return ``(None, False)``.
        """
        if obj.in_dictionary_mode:
            assert obj.dict_properties is not None
            obj.dict_properties[name] = value
            return None, False
        offset = obj.hidden_class.layout.get(name)
        if offset is not None:
            obj.slots[offset] = value
            return None, False
        if len(obj.hidden_class.layout) >= 64:
            self.to_dictionary(obj)
            assert obj.dict_properties is not None
            obj.dict_properties[name] = value
            return None, False
        outgoing, created = self.hidden_classes.transition(
            obj.hidden_class, name, site_key
        )
        obj.slots.append(value)
        obj.hidden_class = outgoing
        obj.invalidate_shape_dependents()
        self.heap.charge("property_slot", 8)
        if isinstance(obj, JSFunction) and name == "prototype":
            obj.invalidate_constructor_hc()
        return outgoing, created

    def to_dictionary(self, obj: JSObject) -> None:
        """Demote ``obj`` to dictionary mode (after delete / growth)."""
        properties = {
            name: obj.slots[offset]
            for name, offset in obj.hidden_class.layout.items()
        }
        obj.dict_properties = properties
        obj.hidden_class = self.hidden_classes.create_dictionary(
            obj.hidden_class.prototype
        )
        obj.slots = []
        obj.invalidate_shape_dependents()

    def delete_property(self, obj: JSObject, name: str) -> bool:
        """JS delete semantics; demotes fast objects to dictionary mode."""
        index = _element_index(name)
        if index is not None:
            if isinstance(obj, JSArray) and 0 <= index < len(obj.array_elements):
                obj.array_elements[index] = UNDEFINED
                return True
            if obj.elements is not None and index in obj.elements:
                del obj.elements[index]
                return True
            return True
        if not obj.in_dictionary_mode:
            if name not in obj.hidden_class.layout:
                return True  # deleting a missing property succeeds
            self.to_dictionary(obj)
        assert obj.dict_properties is not None
        obj.dict_properties.pop(name, None)
        return True

    def constructor_hidden_class(self, fn: JSFunction) -> HiddenClass:
        """The initial hidden class for objects built by ``new fn()``
        (Figure 2's Constructor HC), created lazily and invalidated when
        ``fn.prototype`` is reassigned."""
        if fn.constructor_hc is not None:
            return fn.constructor_hc
        prototype_value = fn.get_own("prototype")[1]
        prototype = (
            prototype_value
            if isinstance(prototype_value, JSObject)
            else self.object_prototype
        )
        generation = fn.ctor_generation
        fn.ctor_generation += 1
        hc = self.hidden_classes.create_root(
            creation_kind="ctor",
            creation_key=f"ctor:{fn.decl_key}:{generation}",
            prototype=prototype,
        )
        fn.constructor_hc = hc
        return hc


def _element_index(name: str) -> int | None:
    if name.isdigit() and (name == "0" or not name.startswith("0")):
        return int(name)
    return None
