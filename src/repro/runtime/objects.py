"""Guest heap objects: plain objects, functions and arrays.

Objects store named properties in a flat ``slots`` list whose offsets are
described by the object's hidden class — the "fast properties"
representation the IC depends on.  ``delete`` (or pathological growth)
demotes an object to dictionary mode, after which the IC treats it as
uncacheable, mirroring V8.
"""

from __future__ import annotations

import typing

from repro.runtime.hidden_class import HiddenClass
from repro.runtime.values import UNDEFINED, number_to_string

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.bytecode.code import CodeObject

#: Own property count beyond which an object is demoted to dictionary mode.
DICTIONARY_THRESHOLD = 64


class ValidityCell:
    """V8-style prototype validity cell.

    Handlers that depend on an object's *shape staying put* (prototype-chain
    loads) embed the object's current validity cell instead of re-walking
    the chain; any shape change (transition, dictionary demotion)
    invalidates the cell, and the handler falls back to the runtime.
    """

    __slots__ = ("valid",)

    def __init__(self) -> None:
        self.valid = True


class JSObject:
    """A guest object with hidden-class-described fast properties."""

    __slots__ = (
        "hidden_class",
        "slots",
        "elements",
        "dict_properties",
        "address",
        "validity_cell",
    )

    is_callable = False

    def __init__(self, hidden_class: HiddenClass, address: int):
        self.hidden_class = hidden_class
        #: Fast property storage, indexed by hidden-class layout offsets.
        self.slots: list[object] = [UNDEFINED] * len(hidden_class.layout)
        #: Sparse integer-indexed properties.
        self.elements: dict[int, object] | None = None
        #: Slow storage once in dictionary mode; None while fast.
        self.dict_properties: dict[str, object] | None = None
        self.address = address
        #: Lazily created when this object is embedded in a prototype-chain
        #: handler; invalidated whenever the object's shape changes.
        self.validity_cell: ValidityCell | None = None

    # -- property primitives (used by the runtime slow path & handlers) ----

    @property
    def in_dictionary_mode(self) -> bool:
        return self.dict_properties is not None

    def dependent_validity_cell(self) -> ValidityCell:
        """The cell a prototype-chain handler should embed for this object."""
        if self.validity_cell is None:
            self.validity_cell = ValidityCell()
        return self.validity_cell

    def invalidate_shape_dependents(self) -> None:
        """Called on any shape change; kills handlers embedding this cell."""
        if self.validity_cell is not None:
            self.validity_cell.valid = False
            self.validity_cell = None

    def get_own(self, name: str) -> tuple[bool, object]:
        """Own named-property lookup: (found, value)."""
        if self.dict_properties is not None:
            if name in self.dict_properties:
                return True, self.dict_properties[name]
            return False, UNDEFINED
        offset = self.hidden_class.layout.get(name)
        if offset is None:
            return False, UNDEFINED
        return True, self.slots[offset]

    def set_existing(self, offset: int, value: object) -> None:
        self.slots[offset] = value

    def append_slot(self, value: object) -> None:
        self.slots.append(value)

    def own_property_names(self) -> list[str]:
        """Enumerable own names: integer elements first (ascending), then
        named properties in insertion order — JS enumeration order."""
        names: list[str] = []
        if isinstance(self, JSArray):
            names.extend(str(i) for i in range(len(self.array_elements)))
        elif self.elements:
            names.extend(str(i) for i in sorted(self.elements))
        if self.dict_properties is not None:
            names.extend(self.dict_properties.keys())
        else:
            names.extend(self.hidden_class.layout.keys())
        return names

    def get_element(self, index: int) -> tuple[bool, object]:
        if self.elements is not None and index in self.elements:
            return True, self.elements[index]
        return False, UNDEFINED

    def set_element(self, index: int, value: object) -> None:
        if self.elements is None:
            self.elements = {}
        self.elements[index] = value

    def js_to_string(self) -> str:
        return "[object Object]"

    def __repr__(self) -> str:
        mode = "dict" if self.in_dictionary_mode else "fast"
        return f"<JSObject @{self.address:#x} {mode} hc=#{self.hidden_class.index}>"


class JSFunction(JSObject):
    """A guest function: interpreted (``code`` + ``env``) or native."""

    __slots__ = (
        "code",
        "env",
        "native",
        "fn_name",
        "constructor_hc",
        "native_ctor",
        "ctor_generation",
    )

    is_callable = True

    def __init__(
        self,
        hidden_class: HiddenClass,
        address: int,
        fn_name: str,
        code: "CodeObject | None" = None,
        env: object | None = None,
        native: typing.Callable | None = None,
        native_ctor: bool = False,
    ):
        super().__init__(hidden_class, address)
        self.code = code
        self.env = env
        self.native = native
        self.fn_name = fn_name
        #: Cached initial hidden class for objects constructed by this
        #: function (Figure 2's "Constructor HC"); invalidated when the
        #: function's ``prototype`` property is reassigned.
        self.constructor_hc: HiddenClass | None = None
        #: Native constructors (e.g. Error) initialise `this` themselves.
        self.native_ctor = native_ctor
        #: How many constructor hidden classes this function has had; part
        #: of their stable cross-execution key (bumped on prototype swap).
        self.ctor_generation = 0

    @property
    def decl_key(self) -> str:
        """Stable cross-execution identity of this function."""
        if self.code is not None:
            return self.code.decl_key
        return f"native:{self.fn_name}"

    def invalidate_constructor_hc(self) -> None:
        self.constructor_hc = None

    def js_to_string(self) -> str:
        if self.native is not None:
            return f"function {self.fn_name}() {{ [native code] }}"
        return f"function {self.fn_name}() {{ ... }}"

    def __repr__(self) -> str:
        flavor = "native" if self.native is not None else "jsl"
        return f"<JSFunction {self.fn_name!r} {flavor} @{self.address:#x}>"


class JSArray(JSObject):
    """A guest array with dense element storage and a virtual ``length``."""

    __slots__ = ("array_elements",)

    def __init__(self, hidden_class: HiddenClass, address: int):
        super().__init__(hidden_class, address)
        self.array_elements: list[object] = []

    @property
    def length(self) -> float:
        return float(len(self.array_elements))

    def get_element(self, index: int) -> tuple[bool, object]:
        if 0 <= index < len(self.array_elements):
            return True, self.array_elements[index]
        if self.elements is not None and index in self.elements:
            return True, self.elements[index]
        return False, UNDEFINED

    def set_element(self, index: int, value: object) -> None:
        if index == len(self.array_elements):
            self.array_elements.append(value)
            return
        if 0 <= index < len(self.array_elements):
            self.array_elements[index] = value
            return
        # Sparse write beyond the dense tail; grow with undefined-holes when
        # close, otherwise fall back to the sparse store.
        if index < len(self.array_elements) + 32:
            while len(self.array_elements) < index:
                self.array_elements.append(UNDEFINED)
            self.array_elements.append(value)
        else:
            super().set_element(index, value)

    def set_length(self, new_length: int) -> None:
        current = len(self.array_elements)
        if new_length < current:
            del self.array_elements[new_length:]
        else:
            self.array_elements.extend([UNDEFINED] * (new_length - current))

    def js_to_string(self) -> str:
        from repro.runtime.values import to_string

        return ",".join(
            "" if element is UNDEFINED else to_string(element)
            for element in self.array_elements
        )

    def __repr__(self) -> str:
        return f"<JSArray len={len(self.array_elements)} @{self.address:#x}>"


def number_key_to_index(key: str) -> int | None:
    """If ``key`` is a canonical array index ("0", "42"), return it."""
    if key.isdigit() and (key == "0" or not key.startswith("0")):
        return int(key)
    return None


def canonical_index_key(index: int) -> str:
    return number_to_string(float(index))
