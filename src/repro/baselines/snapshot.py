"""Heap-snapshot baseline (paper §9: Oh & Moon, and V8 custom snapshots).

The snapshot approach captures the heap after initialization and restores
it instead of re-executing — fast, but with the two limitations the paper
calls out against RIC:

1. **Application-specific**: a snapshot keys the *entire* script list; two
   applications sharing one library cannot share snapshot state, whereas an
   ICRecord is per-script.
2. **Unsound under nondeterminism**: any init-time `Date.now()` / I/O value
   is frozen into the snapshot; a real re-execution would observe fresh
   values.  RIC re-executes the code (only accelerating its ICs), so it
   never has this problem.

Our snapshot serializes the user-visible global state (global properties
added by the scripts, plus console output) to a JSON-like form and
"restores" by replaying it without running any guest code.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.bytecode.cache import source_hash
from repro.core.engine import Engine, Scripts
from repro.runtime.builtins import GLOBAL_LAYOUT
from repro.runtime.context import Runtime
from repro.runtime.objects import JSArray, JSFunction, JSObject
from repro.runtime.values import NULL, UNDEFINED, number_to_string


@dataclass
class Snapshot:
    """A captured post-initialization state."""

    #: Identity of the exact script list (order-sensitive!).
    key: str
    console_output: list[str]
    #: JSON-encoded user globals (functions appear as markers).
    globals_json: str
    size_bytes: int

    def restore(self) -> "RestoredState":
        """Reconstruct the user-visible state without executing anything."""
        return RestoredState(
            console_output=list(self.console_output),
            globals=json.loads(self.globals_json),
        )


@dataclass
class RestoredState:
    """What a snapshot restore yields."""

    console_output: list[str]
    globals: dict


class SnapshotBaseline:
    """Capture/restore driver used by the ablation benchmarks."""

    @staticmethod
    def script_key(scripts: Scripts | str) -> str:
        if isinstance(scripts, str):
            scripts = [("<script>", scripts)]
        return "|".join(f"{name}:{source_hash(src)}" for name, src in scripts)

    @staticmethod
    def capture(engine: Engine, scripts: Scripts | str) -> Snapshot:
        """Serialize the last run's user-visible global state."""
        session = engine.last_run
        if session is None:
            raise RuntimeError("run the workload before capturing a snapshot")
        runtime = session.runtime
        globals_data = serialize_user_globals(runtime)
        globals_json = json.dumps(globals_data)
        console = list(runtime.console_output)
        return Snapshot(
            key=SnapshotBaseline.script_key(scripts),
            console_output=console,
            globals_json=globals_json,
            size_bytes=len(globals_json.encode("utf-8"))
            + sum(len(line) for line in console),
        )

    @staticmethod
    def matches(snapshot: Snapshot, scripts: Scripts | str) -> bool:
        """Snapshots only apply to the identical script list, in order."""
        return snapshot.key == SnapshotBaseline.script_key(scripts)


def serialize_user_globals(runtime: Runtime) -> dict:
    """JSON-ify globals the scripts added (not the builtins).

    The output is canonical and address-free (functions become name
    markers, cycles become ``<cycle>`` markers), so two executions of the
    same program — cold or RIC-reused — must produce byte-identical
    serializations.  The differential suite uses this as its
    heap-observable-state oracle.
    """
    global_object = runtime.global_object
    builtin_names = set(GLOBAL_LAYOUT)
    data: dict = {}
    names = (
        list(global_object.dict_properties)
        if global_object.dict_properties is not None
        else list(global_object.hidden_class.layout)
    )
    for name in names:
        if name in builtin_names:
            continue
        found, value = global_object.get_own(name)
        if found:
            data[name] = _serialize_value(value, depth=0, seen=set())
    return data


def _serialize_value(value: object, depth: int, seen: set) -> object:
    if depth > 24:
        return {"<truncated>": True}
    if value is UNDEFINED:
        return {"<undefined>": True}
    if value is NULL:
        return None
    if isinstance(value, bool) or isinstance(value, str):
        return value
    if isinstance(value, float):
        if value != value or value in (float("inf"), float("-inf")):
            return {"<number>": number_to_string(value)}
        return value
    if isinstance(value, JSFunction):
        return {"<function>": value.fn_name}
    if isinstance(value, JSArray):
        if id(value) in seen:
            return {"<cycle>": True}
        seen = seen | {id(value)}
        return [
            _serialize_value(element, depth + 1, seen)
            for element in value.array_elements
        ]
    if isinstance(value, JSObject):
        if id(value) in seen:
            return {"<cycle>": True}
        seen = seen | {id(value)}
        out = {}
        for name in value.own_property_names():
            found, member = value.get_own(name)
            if not found and value.elements is not None and name.isdigit():
                found, member = value.get_element(int(name))
            if found:
                out[name] = _serialize_value(member, depth + 1, seen)
        return {"<object>": out}
    return {"<host>": repr(value)}
