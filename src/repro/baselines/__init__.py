"""Comparison baselines from the paper's related-work discussion (§9)."""

from repro.baselines.snapshot import RestoredState, Snapshot, SnapshotBaseline

__all__ = ["RestoredState", "Snapshot", "SnapshotBaseline"]
