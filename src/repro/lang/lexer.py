"""Hand-written scanner for jsl source code.

The lexer is a single pass over the source text producing a list of
:class:`~repro.lang.tokens.Token`.  It tracks line and column so every token
(and hence every object access site) gets a stable
:class:`~repro.lang.errors.SourcePosition`.
"""

from __future__ import annotations

from repro.lang.errors import JSLSyntaxError, SourcePosition
from repro.lang.tokens import KEYWORDS, Token, TokenKind

_ESCAPES = {
    "n": "\n",
    "t": "\t",
    "r": "\r",
    "b": "\b",
    "f": "\f",
    "v": "\v",
    "0": "\0",
    "\\": "\\",
    "'": "'",
    '"': '"',
    "`": "`",
    "\n": "",  # line continuation
}

# Multi-character operators, longest first so maximal munch works.
_OPERATORS = [
    (">>>", TokenKind.USHR),
    ("===", TokenKind.STRICT_EQ),
    ("!==", TokenKind.STRICT_NEQ),
    ("<<", TokenKind.SHL),
    (">>", TokenKind.SHR),
    ("==", TokenKind.EQ),
    ("!=", TokenKind.NEQ),
    ("<=", TokenKind.LE),
    (">=", TokenKind.GE),
    ("&&", TokenKind.AND),
    ("||", TokenKind.OR),
    ("++", TokenKind.PLUS_PLUS),
    ("--", TokenKind.MINUS_MINUS),
    ("+=", TokenKind.PLUS_ASSIGN),
    ("-=", TokenKind.MINUS_ASSIGN),
    ("*=", TokenKind.STAR_ASSIGN),
    ("/=", TokenKind.SLASH_ASSIGN),
    ("%=", TokenKind.PERCENT_ASSIGN),
    ("(", TokenKind.LPAREN),
    (")", TokenKind.RPAREN),
    ("{", TokenKind.LBRACE),
    ("}", TokenKind.RBRACE),
    ("[", TokenKind.LBRACKET),
    ("]", TokenKind.RBRACKET),
    (";", TokenKind.SEMICOLON),
    (",", TokenKind.COMMA),
    (".", TokenKind.DOT),
    (":", TokenKind.COLON),
    ("?", TokenKind.QUESTION),
    ("=", TokenKind.ASSIGN),
    ("+", TokenKind.PLUS),
    ("-", TokenKind.MINUS),
    ("*", TokenKind.STAR),
    ("/", TokenKind.SLASH),
    ("%", TokenKind.PERCENT),
    ("<", TokenKind.LT),
    (">", TokenKind.GT),
    ("!", TokenKind.NOT),
    ("&", TokenKind.BIT_AND),
    ("|", TokenKind.BIT_OR),
    ("^", TokenKind.BIT_XOR),
    ("~", TokenKind.BIT_NOT),
]


class Lexer:
    """Tokenizes one jsl source file."""

    def __init__(self, source: str, filename: str = "<script>"):
        self._source = source
        self._filename = filename
        self._pos = 0
        self._line = 1
        self._col = 1

    def tokenize(self) -> list[Token]:
        """Scan the whole input and return its tokens, ending with EOF."""
        tokens: list[Token] = []
        while True:
            token = self._next_token()
            tokens.append(token)
            if token.kind is TokenKind.EOF:
                return tokens

    # -- internals ---------------------------------------------------------

    def _position(self) -> SourcePosition:
        return SourcePosition(self._filename, self._line, self._col)

    def _peek(self, offset: int = 0) -> str:
        index = self._pos + offset
        if index >= len(self._source):
            return ""
        return self._source[index]

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self._pos >= len(self._source):
                return
            if self._source[self._pos] == "\n":
                self._line += 1
                self._col = 1
            else:
                self._col += 1
            self._pos += 1

    def _skip_trivia(self) -> None:
        """Skip whitespace and comments."""
        while self._pos < len(self._source):
            char = self._peek()
            if char in " \t\r\n":
                self._advance()
            elif char == "/" and self._peek(1) == "/":
                while self._pos < len(self._source) and self._peek() != "\n":
                    self._advance()
            elif char == "/" and self._peek(1) == "*":
                start = self._position()
                self._advance(2)
                while not (self._peek() == "*" and self._peek(1) == "/"):
                    if self._pos >= len(self._source):
                        raise JSLSyntaxError("unterminated block comment", start)
                    self._advance()
                self._advance(2)
            else:
                return

    def _next_token(self) -> Token:
        self._skip_trivia()
        position = self._position()
        char = self._peek()

        if not char:
            return Token(TokenKind.EOF, None, position)
        if char.isdigit() or (char == "." and self._peek(1).isdigit()):
            return self._scan_number(position)
        if char.isalpha() or char in "_$":
            return self._scan_identifier(position)
        if char in "'\"":
            return self._scan_string(position)

        for spelling, kind in _OPERATORS:
            if self._source.startswith(spelling, self._pos):
                self._advance(len(spelling))
                return Token(kind, spelling, position)

        raise JSLSyntaxError(f"unexpected character {char!r}", position)

    def _scan_number(self, position: SourcePosition) -> Token:
        start = self._pos
        if self._peek() == "0" and self._peek(1) in ("x", "X"):
            self._advance(2)
            if not self._is_hex_digit(self._peek()):
                raise JSLSyntaxError("malformed hex literal", position)
            while self._is_hex_digit(self._peek()):
                self._advance()
            text = self._source[start:self._pos]
            return Token(TokenKind.NUMBER, float(int(text, 16)), position)

        while self._peek().isdigit():
            self._advance()
        if self._peek() == "." and self._peek(1).isdigit():
            self._advance()
            while self._peek().isdigit():
                self._advance()
        elif self._peek() == ".":
            # Trailing dot as in `1.` is a valid JS number.
            next_char = self._peek(1)
            if next_char and (next_char.isalpha() or next_char in "_$"):
                pass  # `1.toString` style: leave the dot for member access
            else:
                self._advance()
        if self._peek() and self._peek() in "eE":
            self._advance()
            if self._peek() and self._peek() in "+-":
                self._advance()
            if not self._peek().isdigit():
                raise JSLSyntaxError("malformed exponent", position)
            while self._peek().isdigit():
                self._advance()
        text = self._source[start:self._pos]
        return Token(TokenKind.NUMBER, float(text), position)

    @staticmethod
    def _is_hex_digit(char: str) -> bool:
        return bool(char) and char in "0123456789abcdefABCDEF"

    def _scan_four_hex(self, position: SourcePosition) -> int:
        """Consume exactly four hex digits (the payload of a \\u escape)."""
        digits = "".join(self._peek(i) for i in range(4))
        if len(digits) != 4 or not all(self._is_hex_digit(d) for d in digits):
            raise JSLSyntaxError("malformed unicode escape", position)
        self._advance(4)
        return int(digits, 16)

    def _scan_identifier(self, position: SourcePosition) -> Token:
        start = self._pos
        while True:
            char = self._peek()
            if not char or not (char.isalnum() or char in "_$"):
                break
            self._advance()
        text = self._source[start:self._pos]
        keyword = KEYWORDS.get(text)
        if keyword is not None:
            return Token(keyword, text, position)
        return Token(TokenKind.IDENT, text, position)

    def _scan_string(self, position: SourcePosition) -> Token:
        quote = self._peek()
        self._advance()
        parts: list[str] = []
        while True:
            char = self._peek()
            if not char or char == "\n":
                raise JSLSyntaxError("unterminated string literal", position)
            if char == quote:
                self._advance()
                return Token(TokenKind.STRING, "".join(parts), position)
            if char == "\\":
                self._advance()
                escape = self._peek()
                if escape == "u":
                    self._advance()
                    code_unit = self._scan_four_hex(position)
                    # Combine UTF-16 surrogate pairs (𐀀 etc.) into
                    # the astral code point, matching JS string semantics.
                    if 0xD800 <= code_unit <= 0xDBFF and (
                        self._peek() == "\\" and self._peek(1) == "u"
                    ):
                        mark_pos, mark_col = self._pos, self._col
                        self._advance(2)
                        low = self._scan_four_hex(position)
                        if 0xDC00 <= low <= 0xDFFF:
                            combined = 0x10000 + (
                                (code_unit - 0xD800) << 10
                            ) + (low - 0xDC00)
                            parts.append(chr(combined))
                            continue
                        # Not a low surrogate: rewind (strings contain no
                        # newlines, so restoring the column is enough).
                        self._pos, self._col = mark_pos, mark_col
                        parts.append(chr(code_unit))
                        continue
                    parts.append(chr(code_unit))
                elif escape == "x":
                    self._advance()
                    digits = self._peek() + self._peek(1)
                    if len(digits) != 2 or not all(
                        self._is_hex_digit(d) for d in digits
                    ):
                        raise JSLSyntaxError("malformed hex escape", position)
                    self._advance(2)
                    parts.append(chr(int(digits, 16)))
                elif escape in _ESCAPES:
                    parts.append(_ESCAPES[escape])
                    self._advance()
                else:
                    parts.append(escape)
                    self._advance()
            else:
                parts.append(char)
                self._advance()


def tokenize(source: str, filename: str = "<script>") -> list[Token]:
    """Convenience wrapper: tokenize ``source`` in one call."""
    return Lexer(source, filename).tokenize()
