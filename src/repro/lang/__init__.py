"""jsl language frontend: lexer, parser and AST.

The public entry point is :func:`repro.lang.parse`, which turns jsl source
text into an AST consumed by :mod:`repro.bytecode.compiler`.
"""

from repro.lang.errors import (
    JSLCompileError,
    JSLError,
    JSLRangeError,
    JSLReferenceError,
    JSLRuntimeError,
    JSLSyntaxError,
    JSLTypeError,
    SourcePosition,
)
from repro.lang.lexer import Lexer, tokenize
from repro.lang.parser import Parser, parse

__all__ = [
    "JSLCompileError",
    "JSLError",
    "JSLRangeError",
    "JSLReferenceError",
    "JSLRuntimeError",
    "JSLSyntaxError",
    "JSLTypeError",
    "Lexer",
    "Parser",
    "SourcePosition",
    "parse",
    "tokenize",
]
