"""Recursive-descent parser for jsl.

Statements are parsed by dedicated methods; expressions use precedence
climbing.  The grammar is a pragmatic JavaScript subset — enough to express
the seven library workloads (prototype-based classes, object literals,
closures, mixins) without the full ECMAScript surface (no generators, no
``class`` syntax, no destructuring, no regex literals).
"""

from __future__ import annotations

from repro.lang import ast_nodes as ast
from repro.lang.errors import JSLSyntaxError, SourcePosition
from repro.lang.lexer import tokenize
from repro.lang.tokens import Token, TokenKind

# Binary operator precedence, higher binds tighter.
_BINARY_PRECEDENCE: dict[TokenKind, int] = {
    TokenKind.OR: 1,
    TokenKind.AND: 2,
    TokenKind.BIT_OR: 3,
    TokenKind.BIT_XOR: 4,
    TokenKind.BIT_AND: 5,
    TokenKind.EQ: 6,
    TokenKind.NEQ: 6,
    TokenKind.STRICT_EQ: 6,
    TokenKind.STRICT_NEQ: 6,
    TokenKind.LT: 7,
    TokenKind.GT: 7,
    TokenKind.LE: 7,
    TokenKind.GE: 7,
    TokenKind.IN: 7,
    TokenKind.INSTANCEOF: 7,
    TokenKind.SHL: 8,
    TokenKind.SHR: 8,
    TokenKind.USHR: 8,
    TokenKind.PLUS: 9,
    TokenKind.MINUS: 9,
    TokenKind.STAR: 10,
    TokenKind.SLASH: 10,
    TokenKind.PERCENT: 10,
}

_COMPOUND_ASSIGN = {
    TokenKind.PLUS_ASSIGN: "+",
    TokenKind.MINUS_ASSIGN: "-",
    TokenKind.STAR_ASSIGN: "*",
    TokenKind.SLASH_ASSIGN: "/",
    TokenKind.PERCENT_ASSIGN: "%",
}


class Parser:
    """Parses a token stream into a :class:`~repro.lang.ast_nodes.Program`."""

    def __init__(self, tokens: list[Token], filename: str = "<script>"):
        self._tokens = tokens
        self._index = 0
        self._filename = filename

    # -- token helpers -----------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._index + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _at(self, kind: TokenKind) -> bool:
        return self._peek().kind is kind

    def _advance(self) -> Token:
        token = self._tokens[self._index]
        if token.kind is not TokenKind.EOF:
            self._index += 1
        return token

    def _match(self, kind: TokenKind) -> Token | None:
        if self._at(kind):
            return self._advance()
        return None

    def _expect(self, kind: TokenKind, context: str = "") -> Token:
        token = self._peek()
        if token.kind is not kind:
            suffix = f" in {context}" if context else ""
            raise JSLSyntaxError(
                f"expected {kind.value!r} but found {token.kind.value!r}{suffix}",
                token.position,
            )
        return self._advance()

    def _consume_semicolon(self) -> None:
        """Require a statement terminator, tolerating `}` / EOF (ASI-lite)."""
        if self._match(TokenKind.SEMICOLON):
            return
        if self._at(TokenKind.RBRACE) or self._at(TokenKind.EOF):
            return
        token = self._peek()
        raise JSLSyntaxError(
            f"expected ';' but found {token.kind.value!r}", token.position
        )

    # -- program / statements ---------------------------------------------

    def parse_program(self) -> ast.Program:
        position = self._peek().position
        body: list[ast.Statement] = []
        while not self._at(TokenKind.EOF):
            body.append(self.parse_statement())
        return ast.Program(position=position, body=body, filename=self._filename)

    def parse_statement(self) -> ast.Statement:
        token = self._peek()
        kind = token.kind
        if kind in (TokenKind.VAR, TokenKind.LET, TokenKind.CONST):
            return self._parse_variable_declaration()
        if kind is TokenKind.FUNCTION:
            return self._parse_function_declaration()
        if kind is TokenKind.LBRACE:
            return self._parse_block()
        if kind is TokenKind.IF:
            return self._parse_if()
        if kind is TokenKind.WHILE:
            return self._parse_while()
        if kind is TokenKind.DO:
            return self._parse_do_while()
        if kind is TokenKind.FOR:
            return self._parse_for()
        if kind is TokenKind.RETURN:
            return self._parse_return()
        if kind is TokenKind.BREAK:
            self._advance()
            self._consume_semicolon()
            return ast.Break(position=token.position)
        if kind is TokenKind.CONTINUE:
            self._advance()
            self._consume_semicolon()
            return ast.Continue(position=token.position)
        if kind is TokenKind.THROW:
            self._advance()
            value = self.parse_expression()
            self._consume_semicolon()
            return ast.Throw(position=token.position, value=value)
        if kind is TokenKind.TRY:
            return self._parse_try()
        if kind is TokenKind.SWITCH:
            return self._parse_switch()
        if kind is TokenKind.SEMICOLON:
            self._advance()
            return ast.Block(position=token.position, statements=[])
        expression = self.parse_expression()
        self._consume_semicolon()
        return ast.ExpressionStatement(position=token.position, expression=expression)

    def _parse_variable_declaration(self) -> ast.VariableDeclaration:
        keyword = self._advance()
        declarators = self._parse_declarator_list()
        self._consume_semicolon()
        return ast.VariableDeclaration(
            position=keyword.position,
            kind=str(keyword.value),
            declarators=declarators,
        )

    def _parse_declarator_list(self) -> list[ast.VariableDeclarator]:
        declarators: list[ast.VariableDeclarator] = []
        while True:
            name_token = self._expect(TokenKind.IDENT, "variable declaration")
            init: ast.Expression | None = None
            if self._match(TokenKind.ASSIGN):
                init = self.parse_assignment()
            declarators.append(
                ast.VariableDeclarator(
                    name=str(name_token.value),
                    init=init,
                    position=name_token.position,
                )
            )
            if not self._match(TokenKind.COMMA):
                return declarators

    def _parse_function_declaration(self) -> ast.FunctionDeclaration:
        keyword = self._expect(TokenKind.FUNCTION)
        name_token = self._expect(TokenKind.IDENT, "function declaration")
        params = self._parse_parameter_list()
        body = self._parse_block()
        return ast.FunctionDeclaration(
            position=keyword.position,
            name=str(name_token.value),
            params=params,
            body=body,
        )

    def _parse_parameter_list(self) -> list[str]:
        self._expect(TokenKind.LPAREN, "parameter list")
        params: list[str] = []
        if not self._at(TokenKind.RPAREN):
            while True:
                token = self._expect(TokenKind.IDENT, "parameter list")
                params.append(str(token.value))
                if not self._match(TokenKind.COMMA):
                    break
        self._expect(TokenKind.RPAREN, "parameter list")
        return params

    def _parse_block(self) -> ast.Block:
        brace = self._expect(TokenKind.LBRACE, "block")
        statements: list[ast.Statement] = []
        while not self._at(TokenKind.RBRACE):
            if self._at(TokenKind.EOF):
                raise JSLSyntaxError("unterminated block", brace.position)
            statements.append(self.parse_statement())
        self._expect(TokenKind.RBRACE, "block")
        return ast.Block(position=brace.position, statements=statements)

    def _parse_if(self) -> ast.If:
        keyword = self._expect(TokenKind.IF)
        self._expect(TokenKind.LPAREN, "if condition")
        test = self.parse_expression()
        self._expect(TokenKind.RPAREN, "if condition")
        consequent = self.parse_statement()
        alternate: ast.Statement | None = None
        if self._match(TokenKind.ELSE):
            alternate = self.parse_statement()
        return ast.If(
            position=keyword.position,
            test=test,
            consequent=consequent,
            alternate=alternate,
        )

    def _parse_while(self) -> ast.While:
        keyword = self._expect(TokenKind.WHILE)
        self._expect(TokenKind.LPAREN, "while condition")
        test = self.parse_expression()
        self._expect(TokenKind.RPAREN, "while condition")
        body = self.parse_statement()
        return ast.While(position=keyword.position, test=test, body=body)

    def _parse_do_while(self) -> ast.DoWhile:
        keyword = self._expect(TokenKind.DO)
        body = self.parse_statement()
        self._expect(TokenKind.WHILE, "do-while")
        self._expect(TokenKind.LPAREN, "do-while condition")
        test = self.parse_expression()
        self._expect(TokenKind.RPAREN, "do-while condition")
        self._consume_semicolon()
        return ast.DoWhile(position=keyword.position, body=body, test=test)

    def _parse_for(self) -> ast.Statement:
        keyword = self._expect(TokenKind.FOR)
        self._expect(TokenKind.LPAREN, "for header")

        # Disambiguate for-in from the classic three-clause for.
        if self._looks_like_for_in():
            return self._parse_for_in(keyword.position)

        init: ast.Statement | None = None
        if not self._at(TokenKind.SEMICOLON):
            if self._peek().kind in (TokenKind.VAR, TokenKind.LET, TokenKind.CONST):
                decl_keyword = self._advance()
                declarators = self._parse_declarator_list()
                init = ast.VariableDeclaration(
                    position=decl_keyword.position,
                    kind=str(decl_keyword.value),
                    declarators=declarators,
                )
            else:
                expression = self.parse_expression()
                init = ast.ExpressionStatement(
                    position=expression.position, expression=expression
                )
        self._expect(TokenKind.SEMICOLON, "for header")

        test: ast.Expression | None = None
        if not self._at(TokenKind.SEMICOLON):
            test = self.parse_expression()
        self._expect(TokenKind.SEMICOLON, "for header")

        update: ast.Expression | None = None
        if not self._at(TokenKind.RPAREN):
            update = self.parse_expression()
        self._expect(TokenKind.RPAREN, "for header")

        body = self.parse_statement()
        return ast.For(
            position=keyword.position, init=init, test=test, update=update, body=body
        )

    def _looks_like_for_in(self) -> bool:
        """True for ``for (var k in …`` or ``for (k in …``."""
        if self._peek().kind in (TokenKind.VAR, TokenKind.LET, TokenKind.CONST):
            return (
                self._peek(1).kind is TokenKind.IDENT
                and self._peek(2).kind is TokenKind.IN
            )
        return (
            self._peek().kind is TokenKind.IDENT
            and self._peek(1).kind is TokenKind.IN
        )

    def _parse_for_in(self, position: SourcePosition) -> ast.ForIn:
        declares = False
        if self._peek().kind in (TokenKind.VAR, TokenKind.LET, TokenKind.CONST):
            self._advance()
            declares = True
        name_token = self._expect(TokenKind.IDENT, "for-in")
        self._expect(TokenKind.IN, "for-in")
        obj = self.parse_expression()
        self._expect(TokenKind.RPAREN, "for-in")
        body = self.parse_statement()
        return ast.ForIn(
            position=position,
            var_name=str(name_token.value),
            declares=declares,
            obj=obj,
            body=body,
        )

    def _parse_return(self) -> ast.Return:
        keyword = self._expect(TokenKind.RETURN)
        value: ast.Expression | None = None
        if not (
            self._at(TokenKind.SEMICOLON)
            or self._at(TokenKind.RBRACE)
            or self._at(TokenKind.EOF)
        ):
            value = self.parse_expression()
        self._consume_semicolon()
        return ast.Return(position=keyword.position, value=value)

    def _parse_try(self) -> ast.Try:
        keyword = self._expect(TokenKind.TRY)
        block = self._parse_block()
        catch_param: str | None = None
        catch_block: ast.Block | None = None
        finally_block: ast.Block | None = None
        if self._match(TokenKind.CATCH):
            self._expect(TokenKind.LPAREN, "catch clause")
            param_token = self._expect(TokenKind.IDENT, "catch clause")
            catch_param = str(param_token.value)
            self._expect(TokenKind.RPAREN, "catch clause")
            catch_block = self._parse_block()
        if self._match(TokenKind.FINALLY):
            finally_block = self._parse_block()
        if catch_block is None and finally_block is None:
            raise JSLSyntaxError(
                "try statement requires catch or finally", keyword.position
            )
        return ast.Try(
            position=keyword.position,
            block=block,
            catch_param=catch_param,
            catch_block=catch_block,
            finally_block=finally_block,
        )

    def _parse_switch(self) -> ast.Switch:
        keyword = self._expect(TokenKind.SWITCH)
        self._expect(TokenKind.LPAREN, "switch")
        discriminant = self.parse_expression()
        self._expect(TokenKind.RPAREN, "switch")
        self._expect(TokenKind.LBRACE, "switch body")
        cases: list[ast.SwitchCase] = []
        seen_default = False
        while not self._at(TokenKind.RBRACE):
            case_token = self._peek()
            test: ast.Expression | None
            if self._match(TokenKind.CASE):
                test = self.parse_expression()
            elif self._match(TokenKind.DEFAULT):
                if seen_default:
                    raise JSLSyntaxError(
                        "multiple default clauses", case_token.position
                    )
                seen_default = True
                test = None
            else:
                raise JSLSyntaxError(
                    "expected 'case' or 'default'", case_token.position
                )
            self._expect(TokenKind.COLON, "switch case")
            body: list[ast.Statement] = []
            while self._peek().kind not in (
                TokenKind.CASE,
                TokenKind.DEFAULT,
                TokenKind.RBRACE,
            ):
                body.append(self.parse_statement())
            cases.append(
                ast.SwitchCase(test=test, body=body, position=case_token.position)
            )
        self._expect(TokenKind.RBRACE, "switch body")
        return ast.Switch(
            position=keyword.position, discriminant=discriminant, cases=cases
        )

    # -- expressions --------------------------------------------------------

    def parse_expression(self) -> ast.Expression:
        """Full expression including the comma operator."""
        first = self.parse_assignment()
        if not self._at(TokenKind.COMMA):
            return first
        expressions = [first]
        while self._match(TokenKind.COMMA):
            expressions.append(self.parse_assignment())
        return ast.Sequence(position=first.position, expressions=expressions)

    def parse_assignment(self) -> ast.Expression:
        left = self._parse_conditional()
        token = self._peek()
        if token.kind is TokenKind.ASSIGN:
            self._advance()
            self._check_assignment_target(left)
            value = self.parse_assignment()
            return ast.Assignment(
                position=token.position, target=left, value=value, op="="
            )
        if token.kind in _COMPOUND_ASSIGN:
            self._advance()
            self._check_assignment_target(left)
            value = self.parse_assignment()
            return ast.Assignment(
                position=token.position,
                target=left,
                value=value,
                op=_COMPOUND_ASSIGN[token.kind],
            )
        return left

    @staticmethod
    def _check_assignment_target(node: ast.Expression) -> None:
        if not isinstance(
            node, (ast.Identifier, ast.MemberAccess, ast.IndexAccess)
        ):
            raise JSLSyntaxError("invalid assignment target", node.position)

    def _parse_conditional(self) -> ast.Expression:
        test = self._parse_binary(0)
        if not self._match(TokenKind.QUESTION):
            return test
        consequent = self.parse_assignment()
        self._expect(TokenKind.COLON, "conditional expression")
        alternate = self.parse_assignment()
        return ast.Conditional(
            position=test.position,
            test=test,
            consequent=consequent,
            alternate=alternate,
        )

    def _parse_binary(self, min_precedence: int) -> ast.Expression:
        left = self._parse_unary()
        while True:
            token = self._peek()
            precedence = _BINARY_PRECEDENCE.get(token.kind)
            if precedence is None or precedence < min_precedence:
                return left
            self._advance()
            right = self._parse_binary(precedence + 1)
            if token.kind in (TokenKind.AND, TokenKind.OR):
                left = ast.Logical(
                    position=token.position,
                    op=str(token.value),
                    left=left,
                    right=right,
                )
            else:
                left = ast.Binary(
                    position=token.position,
                    op=str(token.value),
                    left=left,
                    right=right,
                )

    def _parse_unary(self) -> ast.Expression:
        token = self._peek()
        if token.kind in (
            TokenKind.NOT,
            TokenKind.MINUS,
            TokenKind.PLUS,
            TokenKind.BIT_NOT,
        ):
            self._advance()
            operand = self._parse_unary()
            return ast.Unary(
                position=token.position, op=str(token.value), operand=operand
            )
        if token.kind is TokenKind.TYPEOF:
            self._advance()
            operand = self._parse_unary()
            return ast.TypeOf(position=token.position, operand=operand)
        if token.kind is TokenKind.DELETE:
            self._advance()
            operand = self._parse_unary()
            if not isinstance(operand, (ast.MemberAccess, ast.IndexAccess)):
                raise JSLSyntaxError(
                    "delete target must be a property access", token.position
                )
            return ast.Delete(position=token.position, target=operand)
        if token.kind in (TokenKind.PLUS_PLUS, TokenKind.MINUS_MINUS):
            self._advance()
            operand = self._parse_unary()
            self._check_assignment_target(operand)
            return ast.Update(
                position=token.position,
                op=str(token.value),
                operand=operand,
                prefix=True,
            )
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expression:
        expression = self._parse_call_or_member()
        token = self._peek()
        if token.kind in (TokenKind.PLUS_PLUS, TokenKind.MINUS_MINUS):
            self._advance()
            self._check_assignment_target(expression)
            return ast.Update(
                position=token.position,
                op=str(token.value),
                operand=expression,
                prefix=False,
            )
        return expression

    def _parse_call_or_member(self) -> ast.Expression:
        if self._at(TokenKind.NEW):
            return self._parse_new()
        expression = self._parse_primary()
        return self._parse_member_suffixes(expression)

    def _parse_new(self) -> ast.Expression:
        keyword = self._expect(TokenKind.NEW)
        if self._at(TokenKind.NEW):
            callee: ast.Expression = self._parse_new()
        else:
            callee = self._parse_primary()
        # Member accesses bind tighter than the `new` call arguments.
        while True:
            if self._match(TokenKind.DOT):
                prop_token = self._expect_property_name()
                callee = ast.MemberAccess(
                    position=prop_token.position,
                    obj=callee,
                    prop=str(prop_token.value),
                )
            elif self._at(TokenKind.LBRACKET):
                bracket = self._advance()
                index = self.parse_expression()
                self._expect(TokenKind.RBRACKET, "index access")
                callee = ast.IndexAccess(
                    position=bracket.position, obj=callee, index=index
                )
            else:
                break
        args: list[ast.Expression] = []
        if self._at(TokenKind.LPAREN):
            args = self._parse_arguments()
        new_expression = ast.New(position=keyword.position, callee=callee, args=args)
        return self._parse_member_suffixes(new_expression)

    def _parse_member_suffixes(self, expression: ast.Expression) -> ast.Expression:
        while True:
            if self._match(TokenKind.DOT):
                prop_token = self._expect_property_name()
                expression = ast.MemberAccess(
                    position=prop_token.position,
                    obj=expression,
                    prop=str(prop_token.value),
                )
            elif self._at(TokenKind.LBRACKET):
                bracket = self._advance()
                index = self.parse_expression()
                self._expect(TokenKind.RBRACKET, "index access")
                expression = ast.IndexAccess(
                    position=bracket.position, obj=expression, index=index
                )
            elif self._at(TokenKind.LPAREN):
                lparen = self._peek()
                args = self._parse_arguments()
                expression = ast.Call(
                    position=lparen.position, callee=expression, args=args
                )
            else:
                return expression

    def _expect_property_name(self) -> Token:
        """Property names after '.' may be identifiers or keywords."""
        token = self._peek()
        if token.kind is TokenKind.IDENT or str(token.value or "").isidentifier():
            self._advance()
            return token
        raise JSLSyntaxError("expected property name", token.position)

    def _parse_arguments(self) -> list[ast.Expression]:
        self._expect(TokenKind.LPAREN, "arguments")
        args: list[ast.Expression] = []
        if not self._at(TokenKind.RPAREN):
            while True:
                args.append(self.parse_assignment())
                if not self._match(TokenKind.COMMA):
                    break
        self._expect(TokenKind.RPAREN, "arguments")
        return args

    def _parse_primary(self) -> ast.Expression:
        token = self._peek()
        kind = token.kind
        if kind is TokenKind.NUMBER:
            self._advance()
            return ast.NumberLiteral(position=token.position, value=float(token.value))
        if kind is TokenKind.STRING:
            self._advance()
            return ast.StringLiteral(position=token.position, value=str(token.value))
        if kind is TokenKind.TRUE:
            self._advance()
            return ast.BooleanLiteral(position=token.position, value=True)
        if kind is TokenKind.FALSE:
            self._advance()
            return ast.BooleanLiteral(position=token.position, value=False)
        if kind is TokenKind.NULL:
            self._advance()
            return ast.NullLiteral(position=token.position)
        if kind is TokenKind.UNDEFINED:
            self._advance()
            return ast.UndefinedLiteral(position=token.position)
        if kind is TokenKind.THIS:
            self._advance()
            return ast.ThisExpression(position=token.position)
        if kind is TokenKind.IDENT:
            self._advance()
            return ast.Identifier(position=token.position, name=str(token.value))
        if kind is TokenKind.LPAREN:
            self._advance()
            expression = self.parse_expression()
            self._expect(TokenKind.RPAREN, "parenthesized expression")
            return expression
        if kind is TokenKind.LBRACKET:
            return self._parse_array_literal()
        if kind is TokenKind.LBRACE:
            return self._parse_object_literal()
        if kind is TokenKind.FUNCTION:
            return self._parse_function_expression()
        raise JSLSyntaxError(
            f"unexpected token {token.kind.value!r}", token.position
        )

    def _parse_array_literal(self) -> ast.ArrayLiteral:
        bracket = self._expect(TokenKind.LBRACKET)
        elements: list[ast.Expression] = []
        if not self._at(TokenKind.RBRACKET):
            while True:
                elements.append(self.parse_assignment())
                if not self._match(TokenKind.COMMA):
                    break
                if self._at(TokenKind.RBRACKET):
                    break  # trailing comma
        self._expect(TokenKind.RBRACKET, "array literal")
        return ast.ArrayLiteral(position=bracket.position, elements=elements)

    def _parse_object_literal(self) -> ast.ObjectLiteral:
        brace = self._expect(TokenKind.LBRACE)
        properties: list[ast.ObjectProperty] = []
        if not self._at(TokenKind.RBRACE):
            while True:
                key_token = self._peek()
                if key_token.kind in (TokenKind.IDENT, TokenKind.STRING):
                    key = str(key_token.value)
                    self._advance()
                elif key_token.kind is TokenKind.NUMBER:
                    key = _number_to_key(float(key_token.value))
                    self._advance()
                elif str(key_token.value or "").isidentifier():
                    key = str(key_token.value)  # keyword used as key
                    self._advance()
                else:
                    raise JSLSyntaxError(
                        "expected property key", key_token.position
                    )
                self._expect(TokenKind.COLON, "object literal")
                value = self.parse_assignment()
                properties.append(
                    ast.ObjectProperty(
                        key=key, value=value, position=key_token.position
                    )
                )
                if not self._match(TokenKind.COMMA):
                    break
                if self._at(TokenKind.RBRACE):
                    break  # trailing comma
        self._expect(TokenKind.RBRACE, "object literal")
        return ast.ObjectLiteral(position=brace.position, properties=properties)

    def _parse_function_expression(self) -> ast.FunctionExpression:
        keyword = self._expect(TokenKind.FUNCTION)
        name: str | None = None
        if self._at(TokenKind.IDENT):
            name = str(self._advance().value)
        params = self._parse_parameter_list()
        body = self._parse_block()
        return ast.FunctionExpression(
            position=keyword.position, name=name, params=params, body=body
        )


def _number_to_key(value: float) -> str:
    """Format a numeric object-literal key the way JS does (1.0 -> "1")."""
    if value == int(value):
        return str(int(value))
    return repr(value)


def parse(source: str, filename: str = "<script>") -> ast.Program:
    """Parse jsl ``source`` into an AST."""
    return Parser(tokenize(source, filename), filename).parse_program()
