"""Token definitions for the jsl language.

jsl is the JavaScript subset used throughout this reproduction.  It covers
the constructs the paper's workloads rely on: dynamic objects with
property addition, prototype-based inheritance via ``new`` and
``Function.prototype``, first-class functions and closures, and the usual
expression/statement forms.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.lang.errors import SourcePosition


class TokenKind(enum.Enum):
    """Every lexical category recognised by the scanner."""

    # Literals and identifiers.
    NUMBER = "number"
    STRING = "string"
    IDENT = "identifier"

    # Keywords.
    VAR = "var"
    LET = "let"
    CONST = "const"
    FUNCTION = "function"
    RETURN = "return"
    IF = "if"
    ELSE = "else"
    WHILE = "while"
    DO = "do"
    FOR = "for"
    BREAK = "break"
    CONTINUE = "continue"
    NEW = "new"
    DELETE = "delete"
    TYPEOF = "typeof"
    IN = "in"
    INSTANCEOF = "instanceof"
    THIS = "this"
    NULL = "null"
    UNDEFINED = "undefined"
    TRUE = "true"
    FALSE = "false"
    THROW = "throw"
    TRY = "try"
    CATCH = "catch"
    FINALLY = "finally"
    SWITCH = "switch"
    CASE = "case"
    DEFAULT = "default"

    # Punctuation.
    LPAREN = "("
    RPAREN = ")"
    LBRACE = "{"
    RBRACE = "}"
    LBRACKET = "["
    RBRACKET = "]"
    SEMICOLON = ";"
    COMMA = ","
    DOT = "."
    COLON = ":"
    QUESTION = "?"

    # Operators.
    ASSIGN = "="
    PLUS_ASSIGN = "+="
    MINUS_ASSIGN = "-="
    STAR_ASSIGN = "*="
    SLASH_ASSIGN = "/="
    PERCENT_ASSIGN = "%="
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    PERCENT = "%"
    PLUS_PLUS = "++"
    MINUS_MINUS = "--"
    EQ = "=="
    NEQ = "!="
    STRICT_EQ = "==="
    STRICT_NEQ = "!=="
    LT = "<"
    GT = ">"
    LE = "<="
    GE = ">="
    AND = "&&"
    OR = "||"
    NOT = "!"
    BIT_AND = "&"
    BIT_OR = "|"
    BIT_XOR = "^"
    BIT_NOT = "~"
    SHL = "<<"
    SHR = ">>"
    USHR = ">>>"

    EOF = "eof"


#: Reserved words mapped to their token kinds.
KEYWORDS: dict[str, TokenKind] = {
    "var": TokenKind.VAR,
    "let": TokenKind.LET,
    "const": TokenKind.CONST,
    "function": TokenKind.FUNCTION,
    "return": TokenKind.RETURN,
    "if": TokenKind.IF,
    "else": TokenKind.ELSE,
    "while": TokenKind.WHILE,
    "do": TokenKind.DO,
    "for": TokenKind.FOR,
    "break": TokenKind.BREAK,
    "continue": TokenKind.CONTINUE,
    "new": TokenKind.NEW,
    "delete": TokenKind.DELETE,
    "typeof": TokenKind.TYPEOF,
    "in": TokenKind.IN,
    "instanceof": TokenKind.INSTANCEOF,
    "this": TokenKind.THIS,
    "null": TokenKind.NULL,
    "undefined": TokenKind.UNDEFINED,
    "true": TokenKind.TRUE,
    "false": TokenKind.FALSE,
    "throw": TokenKind.THROW,
    "try": TokenKind.TRY,
    "catch": TokenKind.CATCH,
    "finally": TokenKind.FINALLY,
    "switch": TokenKind.SWITCH,
    "case": TokenKind.CASE,
    "default": TokenKind.DEFAULT,
}


@dataclass(frozen=True)
class Token:
    """A single lexical token with its source position.

    ``value`` is the decoded payload for literals (the numeric value for
    NUMBER, the unescaped text for STRING) and the spelling for identifiers;
    for fixed-spelling tokens it is the spelling itself.
    """

    kind: TokenKind
    value: object
    position: SourcePosition

    def __str__(self) -> str:
        return f"{self.kind.name}({self.value!r})@{self.position}"
