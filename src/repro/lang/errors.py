"""Exception types raised by the jsl language implementation.

All errors carry a :class:`SourcePosition` when one is available so that
diagnostics point at the offending source location.  Object access sites are
identified across executions by exactly these positions (see
``repro.ric.icrecord``), which is why positions are first-class here.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class SourcePosition:
    """A location in a jsl source file.

    ``filename``, ``line`` and ``column`` are invariant across executions of
    the same script, so the tuple doubles as the stable identity of an object
    access site (paper §5.1: "determined by file name, line number and
    position in the line").
    """

    filename: str
    line: int
    column: int

    def __str__(self) -> str:
        return f"{self.filename}:{self.line}:{self.column}"


class JSLError(Exception):
    """Base class for every error produced by the jsl toolchain."""

    def __init__(self, message: str, position: SourcePosition | None = None):
        self.message = message
        self.position = position
        if position is not None:
            super().__init__(f"{position}: {message}")
        else:
            super().__init__(message)


class JSLSyntaxError(JSLError):
    """Raised by the lexer or parser on malformed source."""


class JSLCompileError(JSLError):
    """Raised by the bytecode compiler on semantically invalid programs."""


class JSLRuntimeError(JSLError):
    """Raised by the VM for guest-level runtime failures."""


class JSLTypeError(JSLRuntimeError):
    """Guest TypeError: operation applied to a value of the wrong type."""


class JSLReferenceError(JSLRuntimeError):
    """Guest ReferenceError: unresolved variable."""


class JSLRangeError(JSLRuntimeError):
    """Guest RangeError: e.g. invalid array length."""
