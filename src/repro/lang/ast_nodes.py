"""Abstract syntax tree for jsl.

Every node carries the :class:`~repro.lang.errors.SourcePosition` of its
first token.  Positions on member-access and property-assignment nodes are
load-bearing: the bytecode compiler derives stable object-access-site
identifiers from them (paper §5.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lang.errors import SourcePosition


@dataclass
class Node:
    """Base class for all AST nodes."""

    position: SourcePosition


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------


@dataclass
class Expression(Node):
    """Base class for expression nodes."""


@dataclass
class NumberLiteral(Expression):
    value: float


@dataclass
class StringLiteral(Expression):
    value: str


@dataclass
class BooleanLiteral(Expression):
    value: bool


@dataclass
class NullLiteral(Expression):
    pass


@dataclass
class UndefinedLiteral(Expression):
    pass


@dataclass
class Identifier(Expression):
    name: str


@dataclass
class ThisExpression(Expression):
    pass


@dataclass
class ArrayLiteral(Expression):
    elements: list[Expression]


@dataclass
class ObjectProperty:
    """One ``key: value`` entry of an object literal."""

    key: str
    value: Expression
    position: SourcePosition


@dataclass
class ObjectLiteral(Expression):
    properties: list[ObjectProperty]


@dataclass
class FunctionExpression(Expression):
    name: str | None
    params: list[str]
    body: "Block"


@dataclass
class MemberAccess(Expression):
    """``object.property`` — a named object access site (load)."""

    obj: Expression
    prop: str


@dataclass
class IndexAccess(Expression):
    """``object[expr]`` — a keyed/element access site (load)."""

    obj: Expression
    index: Expression


@dataclass
class Call(Expression):
    callee: Expression
    args: list[Expression]


@dataclass
class New(Expression):
    callee: Expression
    args: list[Expression]


@dataclass
class Assignment(Expression):
    """``target = value`` plus the compound forms (``+=`` etc.).

    ``op`` is ``"="`` for plain assignment or the binary operator spelling
    (``"+"``, ``"-"``, ...) for compound assignment.
    """

    target: Expression
    value: Expression
    op: str = "="


@dataclass
class Binary(Expression):
    op: str
    left: Expression
    right: Expression


@dataclass
class Logical(Expression):
    """Short-circuiting ``&&`` / ``||``."""

    op: str
    left: Expression
    right: Expression


@dataclass
class Unary(Expression):
    op: str
    operand: Expression


@dataclass
class Update(Expression):
    """``++x``, ``x++``, ``--x``, ``x--``."""

    op: str
    operand: Expression
    prefix: bool


@dataclass
class Conditional(Expression):
    test: Expression
    consequent: Expression
    alternate: Expression


@dataclass
class Delete(Expression):
    target: Expression


@dataclass
class TypeOf(Expression):
    operand: Expression


@dataclass
class Sequence(Expression):
    """Comma expression: evaluate all, yield the last."""

    expressions: list[Expression]


# --------------------------------------------------------------------------
# Statements
# --------------------------------------------------------------------------


@dataclass
class Statement(Node):
    """Base class for statement nodes."""


@dataclass
class ExpressionStatement(Statement):
    expression: Expression


@dataclass
class VariableDeclarator:
    name: str
    init: Expression | None
    position: SourcePosition


@dataclass
class VariableDeclaration(Statement):
    kind: str  # "var" | "let" | "const"
    declarators: list[VariableDeclarator]


@dataclass
class FunctionDeclaration(Statement):
    name: str
    params: list[str]
    body: "Block"


@dataclass
class Block(Statement):
    statements: list[Statement] = field(default_factory=list)


@dataclass
class If(Statement):
    test: Expression
    consequent: Statement
    alternate: Statement | None


@dataclass
class While(Statement):
    test: Expression
    body: Statement


@dataclass
class DoWhile(Statement):
    body: Statement
    test: Expression


@dataclass
class For(Statement):
    init: Statement | None
    test: Expression | None
    update: Expression | None
    body: Statement


@dataclass
class ForIn(Statement):
    """``for (var k in obj) body`` — enumerates own property names."""

    var_name: str
    declares: bool
    obj: Expression
    body: Statement


@dataclass
class Return(Statement):
    value: Expression | None


@dataclass
class Break(Statement):
    pass


@dataclass
class Continue(Statement):
    pass


@dataclass
class Throw(Statement):
    value: Expression


@dataclass
class Try(Statement):
    block: Block
    catch_param: str | None
    catch_block: Block | None
    finally_block: Block | None


@dataclass
class SwitchCase:
    test: Expression | None  # None for default
    body: list[Statement]
    position: SourcePosition


@dataclass
class Switch(Statement):
    discriminant: Expression
    cases: list[SwitchCase]


@dataclass
class Program(Node):
    """Root of a parsed script."""

    body: list[Statement] = field(default_factory=list)
    filename: str = "<script>"
