"""Hidden-class transition-graph analysis.

The hidden classes of an execution form a forest: roots (builtins,
constructor initial maps, `{}`'s empty-object class) with transition edges
labelled by the added property (paper Figure 2).  This module builds that
graph with networkx and computes the structural statistics that explain a
workload's Table 1 signature:

* many long chains → many transitioning stores → many unavoidable
  Triggering-site misses;
* high *sharing* (objects flowing through the same chains) plus wide
  *fan-in of access sites* → many Dependent sites → RIC opportunity.

Used by tests and by analysis scripts; not on any hot path.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.runtime.context import Runtime
from repro.runtime.hidden_class import HiddenClass


def build_transition_graph(runtime: Runtime) -> "nx.DiGraph":
    """Directed graph: node per hidden class, edge per transition.

    Node attributes: ``kind`` (builtin/ctor/site), ``key`` (creation key),
    ``properties`` (layout size).  Edge attribute: ``property``.
    """
    graph = nx.DiGraph()
    for hc in runtime.hidden_classes.all_classes:
        graph.add_node(
            hc.index,
            kind=hc.creation_kind,
            key=hc.creation_key,
            properties=hc.property_count,
            dictionary=hc.is_dictionary,
        )
    for hc in runtime.hidden_classes.all_classes:
        for prop, target in hc.transitions.items():
            graph.add_edge(hc.index, target.index, property=prop)
    return graph


@dataclass(frozen=True)
class TransitionStats:
    """Structural summary of one execution's hidden-class forest."""

    classes: int
    roots: int
    transitions: int
    max_chain_depth: int
    max_branching: int
    #: Classes reachable from the shared empty-object class — the `{}`
    #: literal population.
    empty_object_family: int

    def as_dict(self) -> dict:
        return {
            "classes": self.classes,
            "roots": self.roots,
            "transitions": self.transitions,
            "max_chain_depth": self.max_chain_depth,
            "max_branching": self.max_branching,
            "empty_object_family": self.empty_object_family,
        }


def transition_stats(runtime: Runtime) -> TransitionStats:
    """Compute :class:`TransitionStats` for a completed execution."""
    graph = build_transition_graph(runtime)
    roots = [node for node in graph.nodes if graph.in_degree(node) == 0]
    max_depth = 0
    if graph.number_of_nodes():
        # The transition forest is acyclic by construction.
        max_depth = nx.dag_longest_path_length(graph)
    max_branching = max((graph.out_degree(n) for n in graph.nodes), default=0)
    empty_family = 0
    empty_nodes = [
        node
        for node, data in graph.nodes(data=True)
        if data["key"] == "builtin:EmptyObject"
    ]
    if empty_nodes:
        empty_family = len(nx.descendants(graph, empty_nodes[0])) + 1
    return TransitionStats(
        classes=graph.number_of_nodes(),
        roots=len(roots),
        transitions=graph.number_of_edges(),
        max_chain_depth=max_depth,
        max_branching=max_branching,
        empty_object_family=empty_family,
    )


def chain_of(hc: HiddenClass) -> list[HiddenClass]:
    """The transition chain from the root down to ``hc`` (inclusive)."""
    chain: list[HiddenClass] = []
    current: HiddenClass | None = hc
    while current is not None:
        chain.append(current)
        current = current.incoming
    chain.reverse()
    return chain


def to_dot(runtime: Runtime, max_nodes: int = 200) -> str:
    """Render the transition forest as GraphViz DOT (for inspection)."""
    graph = build_transition_graph(runtime)
    lines = ["digraph hidden_classes {", "  rankdir=LR;"]
    for node, data in list(graph.nodes(data=True))[:max_nodes]:
        shape = "box" if data["kind"] == "builtin" else "ellipse"
        label = f"#{node}\\n{data['key'][:28]}"
        lines.append(f'  n{node} [label="{label}", shape={shape}];')
    for source, target, data in graph.edges(data=True):
        if source >= max_nodes or target >= max_nodes:
            continue
        lines.append(f'  n{source} -> n{target} [label="{data["property"]}"];')
    lines.append("}")
    return "\n".join(lines)
