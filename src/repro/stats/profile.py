"""RunProfile: everything measured about one execution."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.stats.counters import (
    CATEGORY_IC_MISS,
    MISS_GLOBAL,
    MISS_HANDLER,
    MISS_OTHER,
    Counters,
)


@dataclass
class RunProfile:
    """Measurements from one guest execution (Initial, Conventional Reuse,
    or RIC Reuse).  This is what the experiment harness consumes."""

    name: str
    mode: str  # "initial" | "reuse-conventional" | "reuse-ric" | custom
    counters: Counters
    wall_time_ms: float
    heap_bytes: int
    console_output: list[str] = field(default_factory=list)
    scripts: list[str] = field(default_factory=list)
    code_cache_hits: int = 0
    code_cache_misses: int = 0

    # -- convenience views over the counters ---------------------------------

    @property
    def total_instructions(self) -> int:
        return self.counters.total_instructions

    @property
    def modeled_time_ms(self) -> float:
        """Execution time under the documented cost model (Figure 9's
        metric in this reproduction; ``wall_time_ms`` is the host-side
        Python time, reported for transparency)."""
        from repro.interpreter.cost_model import modeled_time_ms

        return modeled_time_ms(self.counters.instructions)

    @property
    def ic_miss_rate(self) -> float:
        return self.counters.ic_miss_rate

    @property
    def ic_miss_rate_pct(self) -> float:
        return 100.0 * self.counters.ic_miss_rate

    @property
    def ic_miss_handling_fraction(self) -> float:
        return self.counters.ic_miss_handling_fraction

    @property
    def miss_breakdown_pct(self) -> dict[str, float]:
        """Table 4's Handler/Global/Other columns, in percent of accesses."""
        return {
            reason: 100.0 * self.counters.miss_rate_contribution(reason)
            for reason in (MISS_HANDLER, MISS_GLOBAL, MISS_OTHER)
        }

    def summary(self) -> dict:
        """Flat summary used by reports and EXPERIMENTS.md generation."""
        counters = self.counters
        return {
            "name": self.name,
            "mode": self.mode,
            "wall_time_ms": self.wall_time_ms,
            "total_instructions": counters.total_instructions,
            "ic_miss_instructions": counters.instructions[CATEGORY_IC_MISS],
            "ic_miss_handling_fraction": counters.ic_miss_handling_fraction,
            "ic_accesses": counters.ic_accesses,
            "ic_hits": counters.ic_hits,
            "ic_misses": counters.ic_misses,
            "ic_miss_rate_pct": 100.0 * counters.ic_miss_rate,
            "miss_breakdown_pct": self.miss_breakdown_pct,
            "hidden_classes_created": counters.hidden_classes_created,
            "handlers_generated": counters.handlers_generated,
            "ci_handler_fraction": counters.context_independent_handler_fraction,
            "ric_preloads": counters.ric_preloads,
            "ric_validations": counters.ric_validations,
            "preloaded_hits": counters.ic_hits_on_preloaded,
            "specialized_sites": counters.specialized_sites,
            "specialized_hits": counters.specialized_hits,
            "deopts": counters.deopts,
            "heap_bytes": self.heap_bytes,
        }
