"""Structured tracing of IC and RIC events.

A :class:`Tracer` attached to an execution records the interesting events —
IC misses, handler generation, hidden-class creation, RIC validations,
preloads, divergences — as structured entries.  IC *hits* are not traced
(they are the hot path and would swamp the trace), except hits on preloaded
slots, which are the misses RIC averted and therefore the most interesting
event of a Reuse run.

Used by tests to assert fine-grained behaviour and by ``examples/`` to
show the machinery working; attach via ``Engine.run(..., tracer=Tracer())``.
"""

from __future__ import annotations

import typing
from collections import Counter as _Counter
from dataclasses import dataclass, field

#: Event kinds.
IC_MISS = "ic_miss"
HANDLER_GENERATED = "handler_generated"
HC_CREATED = "hc_created"
RIC_VALIDATED = "ric_validated"
RIC_PRELOADED = "ric_preloaded"
RIC_DIVERGENCE = "ric_divergence"
PRELOADED_HIT = "preloaded_hit"
SITE_MEGAMORPHIC = "site_megamorphic"


@dataclass(frozen=True)
class TraceEvent:
    """One traced event.

    ``site_key`` / ``hc_index`` / ``detail`` are populated when meaningful
    for the event kind; ``sequence`` is a monotonically increasing index
    within the execution.
    """

    sequence: int
    kind: str
    site_key: str | None = None
    hc_index: int | None = None
    detail: str = ""

    def __str__(self) -> str:
        parts = [f"#{self.sequence:<5d} {self.kind:18s}"]
        if self.site_key is not None:
            parts.append(f"site={self.site_key}")
        if self.hc_index is not None:
            parts.append(f"hc=#{self.hc_index}")
        if self.detail:
            parts.append(self.detail)
        return " ".join(parts)


@dataclass
class Tracer:
    """Collects :class:`TraceEvent` entries for one execution."""

    events: list[TraceEvent] = field(default_factory=list)
    #: Optional allow-list of kinds; None traces everything.
    kinds: typing.Optional[set] = None

    def emit(
        self,
        kind: str,
        site_key: str | None = None,
        hc_index: int | None = None,
        detail: str = "",
    ) -> None:
        if self.kinds is not None and kind not in self.kinds:
            return
        self.events.append(
            TraceEvent(
                sequence=len(self.events),
                kind=kind,
                site_key=site_key,
                hc_index=hc_index,
                detail=detail,
            )
        )

    # -- queries -----------------------------------------------------------

    def by_kind(self, kind: str) -> list[TraceEvent]:
        return [event for event in self.events if event.kind == kind]

    def count(self, kind: str) -> int:
        return sum(1 for event in self.events if event.kind == kind)

    def summary(self) -> dict[str, int]:
        return dict(_Counter(event.kind for event in self.events))

    def for_site(self, site_key: str) -> list[TraceEvent]:
        return [event for event in self.events if event.site_key == site_key]

    def render(self, limit: int | None = None) -> str:
        """Human-readable trace listing."""
        events = self.events if limit is None else self.events[:limit]
        lines = [str(event) for event in events]
        if limit is not None and len(self.events) > limit:
            lines.append(f"... {len(self.events) - limit} more events")
        return "\n".join(lines)
