"""Measurement: counters, run profiles, memory accounting."""

from repro.stats.counters import (
    CATEGORY_EXECUTE,
    CATEGORY_IC_MISS,
    CATEGORY_RIC,
    CATEGORY_RUNTIME_OTHER,
    MISS_GLOBAL,
    MISS_HANDLER,
    MISS_OTHER,
    Counters,
)
from repro.stats.memory import MemoryOverhead, measure_memory_overhead
from repro.stats.profile import RunProfile

__all__ = [
    "CATEGORY_EXECUTE",
    "CATEGORY_IC_MISS",
    "CATEGORY_RIC",
    "CATEGORY_RUNTIME_OTHER",
    "Counters",
    "MISS_GLOBAL",
    "MISS_HANDLER",
    "MISS_OTHER",
    "MemoryOverhead",
    "RunProfile",
    "measure_memory_overhead",
]
