"""Memory accounting for the §7.3 overhead analysis.

Compares the serialized ICRecord footprint against the guest heap usage of
the workload — the paper reports 11–118 KB of ICRecord vs 2.6–5.6 MB of
heap (≈1%)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.ric.icrecord import ICRecord
from repro.ric.serialize import record_size_bytes
from repro.stats.profile import RunProfile


@dataclass(frozen=True)
class MemoryOverhead:
    """ICRecord size relative to workload heap usage."""

    icrecord_bytes: int
    heap_bytes: int

    @property
    def icrecord_kb(self) -> float:
        return self.icrecord_bytes / 1024.0

    @property
    def heap_mb(self) -> float:
        return self.heap_bytes / (1024.0 * 1024.0)

    @property
    def overhead_fraction(self) -> float:
        if self.heap_bytes == 0:
            return 0.0
        return self.icrecord_bytes / self.heap_bytes


def measure_memory_overhead(record: ICRecord, profile: RunProfile) -> MemoryOverhead:
    """Compute the §7.3 memory comparison for one workload."""
    return MemoryOverhead(
        icrecord_bytes=record_size_bytes(record),
        heap_bytes=profile.heap_bytes,
    )
