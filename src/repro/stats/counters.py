"""Execution counters: guest instructions, IC events, miss attribution.

One :class:`Counters` instance accompanies each execution.  Guest
instructions are grouped into the categories the paper's Figure 5 plots
("IC Miss Handling" vs "Rest of the Work"), IC accesses/hits/misses feed
Tables 1 and 4, and the reuse-run miss attribution implements Table 4's
Handler / Global / Other breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass, field


#: Instruction categories.  IC_MISS is the paper's "IC Miss Handling";
#: everything else is "Rest of the Work".
CATEGORY_EXECUTE = "execute"
CATEGORY_IC_MISS = "ic_miss"
CATEGORY_RUNTIME_OTHER = "runtime_other"
CATEGORY_RIC = "ric"

#: Reuse-run miss attribution buckets (paper Table 4).
MISS_HANDLER = "handler"
MISS_GLOBAL = "global"
MISS_OTHER = "other"


@dataclass
class Counters:
    """Mutable counters for one execution."""

    instructions: dict[str, int] = field(
        default_factory=lambda: {
            CATEGORY_EXECUTE: 0,
            CATEGORY_IC_MISS: 0,
            CATEGORY_RUNTIME_OTHER: 0,
            CATEGORY_RIC: 0,
        }
    )

    #: Raw count of bytecodes dispatched by the VM (the denominator for
    #: per-instruction dispatch overhead in BENCH_interp.json; the *cost*
    #: of those dispatches is charged to ``instructions["execute"]``).
    dispatches: int = 0

    ic_accesses: int = 0
    ic_hits: int = 0
    ic_misses: int = 0
    #: Hits on slots RIC preloaded = misses averted by RIC.
    ic_hits_on_preloaded: int = 0

    #: Per-tier hit attribution for *named* property sites (GET_PROP /
    #: SET_PROP).  ``mono``/``poly`` split ICVector slot hits by the
    #: site's state at hit time; ``mega`` counts megamorphic stub-cache
    #: hits.  Keyed-element and global sites keep their own untiered
    #: accounting (they always take the generic path in both fast-path
    #: modes), so these three do *not* sum to ``ic_hits``.
    ic_hits_mono: int = 0
    ic_hits_poly: int = 0
    ic_hits_mega: int = 0
    #: IC tier transitions: ``poly`` counts MONO→POLY (a second shape
    #: installed at a site), ``mega`` counts →MEGA (the slot list
    #: overflowed POLY_LIMIT and was dumped).  Counted wherever slots are
    #: installed — the generic miss path and RIC preloading — never in
    #: the VM fast paths (which only probe), so the counts are identical
    #: under ``interp_fastpaths`` True and False by construction.
    ic_poly_transitions: int = 0
    ic_mega_transitions: int = 0

    #: Miss attribution (populated during Reuse runs).
    misses_by_reason: dict[str, int] = field(
        default_factory=lambda: {MISS_HANDLER: 0, MISS_GLOBAL: 0, MISS_OTHER: 0}
    )

    hidden_classes_created: int = 0
    handlers_generated: int = 0
    handlers_generated_context_independent: int = 0

    #: RIC reuse bookkeeping.
    ric_validations: int = 0
    ric_preloads: int = 0
    ric_toast_lookups: int = 0
    ric_divergences: int = 0

    #: Degradation bookkeeping: records offered to a Reuse run that were
    #: refused before any session was built.  ``corrupt`` = failed at
    #: load (unreadable, checksum/version mismatch — a
    #: :class:`~repro.ric.errors.CorruptRecord` placeholder); ``rejected``
    #: = parsed but failed structural validation.  Either way that record
    #: cold-starts while the rest of the page still reuses.
    ric_records_corrupt: int = 0
    ric_records_rejected: int = 0

    #: Bytecode code-cache traffic for this run (hit = frontend skipped).
    #: Mirrors ``RunProfile.code_cache_hits/misses`` so cache efficacy is
    #: visible wherever counters are reported.
    bytecode_cache_hits: int = 0
    bytecode_cache_misses: int = 0

    #: Remote record-store traffic for this run (daemon-backed stores
    #: only; all zero otherwise).  ``hits``/``misses`` are daemon
    #: answers, ``fallbacks`` are requests the transport failed and the
    #: local store absorbed — the degradation ladder's visible rung —
    #: and ``evictions`` is the daemon-reported eviction total this
    #: run's PUTs triggered.
    ric_remote_hits: int = 0
    ric_remote_misses: int = 0
    ric_remote_fallbacks: int = 0
    ric_remote_evictions: int = 0
    #: Fleet-mode extras (sharded stores only; all zero otherwise).
    #: ``failovers`` counts GET replica hops after a dead/refusing
    #: primary, ``proto_mismatch`` clean refusals from daemons speaking
    #: another protocol dialect (mixed-fleet rolling upgrades), and
    #: ``stale_epoch`` records refused by epoch fencing — a hit or PUT
    #: that predates a fleet-wide ``--bump-epoch`` invalidation.
    ric_remote_failovers: int = 0
    ric_remote_proto_mismatch: int = 0
    ric_remote_stale_epoch: int = 0

    #: Bytecode specialization (repro/specialize/).  ``specialized_sites``
    #: is how many instructions the quickening pass rewrote in the code
    #: this run executed; ``specialized_hits`` counts typed-opcode guard
    #: successes; ``deopts`` counts guard failures and
    #: ``despecialized_sites`` the in-place demotions they triggered
    #: (equal unless a site deopts after the instruction was already
    #: patched by another session sharing the artifact).  These are the
    #: only counters allowed to differ — along with the execute/ric
    #: instruction charges they discount — between ``specialize`` on and
    #: off (the differential wall in tests/test_differential.py).
    specialized_sites: int = 0
    specialized_hits: int = 0
    deopts: int = 0
    despecialized_sites: int = 0

    #: Governance aborts: how this run was stopped, if it was.  At most
    #: one of these is 1 for a given run (a run aborts once); they are
    #: separate counters rather than a single tag so report aggregation
    #: can sum them across many runs.  ``steps``/``heap``/``depth``/
    #: ``deadline`` map to the :class:`~repro.core.errors.BudgetExceeded`
    #: subclasses; ``cancelled`` to :class:`~repro.core.errors.Cancelled`.
    budget_aborts_steps: int = 0
    budget_aborts_heap: int = 0
    budget_aborts_depth: int = 0
    budget_aborts_deadline: int = 0
    budget_aborts_cancelled: int = 0

    # -- charging ------------------------------------------------------------

    def charge(self, category: str, amount: int) -> None:
        self.instructions[category] += amount

    # -- derived metrics -------------------------------------------------------

    @property
    def total_instructions(self) -> int:
        return sum(self.instructions.values())

    @property
    def ic_miss_rate(self) -> float:
        """Fraction of IC accesses that missed (paper Table 4)."""
        if self.ic_accesses == 0:
            return 0.0
        return self.ic_misses / self.ic_accesses

    @property
    def ic_miss_handling_fraction(self) -> float:
        """Fraction of instructions spent handling IC misses (Figure 5)."""
        total = self.total_instructions
        if total == 0:
            return 0.0
        return self.instructions[CATEGORY_IC_MISS] / total

    @property
    def context_independent_handler_fraction(self) -> float:
        """Fraction of generated handlers that are reusable (Table 1)."""
        if self.handlers_generated == 0:
            return 0.0
        return (
            self.handlers_generated_context_independent / self.handlers_generated
        )

    def miss_rate_contribution(self, reason: str) -> float:
        """Contribution of one attribution bucket to the miss rate, in the
        same units as :attr:`ic_miss_rate` (Table 4 columns 4-6)."""
        if self.ic_accesses == 0:
            return 0.0
        return self.misses_by_reason[reason] / self.ic_accesses

    def record_miss(self, reason: str) -> None:
        self.ic_misses += 1
        self.misses_by_reason[reason] += 1

    def record_abort(self, reason: str) -> None:
        """Count one governance abort by its typed ``reason`` tag."""
        field_name = f"budget_aborts_{reason}"
        if not hasattr(self, field_name):
            raise ValueError(f"unknown abort reason {reason!r}")
        setattr(self, field_name, getattr(self, field_name) + 1)

    @property
    def budget_aborts_total(self) -> int:
        """All governance aborts (budget dimensions + cancellation)."""
        return (
            self.budget_aborts_steps
            + self.budget_aborts_heap
            + self.budget_aborts_depth
            + self.budget_aborts_deadline
            + self.budget_aborts_cancelled
        )

    def as_dict(self) -> dict:
        """Plain-data snapshot for reports and tests."""
        return {
            "instructions": dict(self.instructions),
            "total_instructions": self.total_instructions,
            "dispatches": self.dispatches,
            "ic_accesses": self.ic_accesses,
            "ic_hits": self.ic_hits,
            "ic_misses": self.ic_misses,
            "ic_hits_on_preloaded": self.ic_hits_on_preloaded,
            "ic_hits_mono": self.ic_hits_mono,
            "ic_hits_poly": self.ic_hits_poly,
            "ic_hits_mega": self.ic_hits_mega,
            "ic_poly_transitions": self.ic_poly_transitions,
            "ic_mega_transitions": self.ic_mega_transitions,
            "ic_miss_rate": self.ic_miss_rate,
            "misses_by_reason": dict(self.misses_by_reason),
            "hidden_classes_created": self.hidden_classes_created,
            "handlers_generated": self.handlers_generated,
            "handlers_generated_context_independent": (
                self.handlers_generated_context_independent
            ),
            "ric_validations": self.ric_validations,
            "ric_preloads": self.ric_preloads,
            "ric_divergences": self.ric_divergences,
            "ric_records_corrupt": self.ric_records_corrupt,
            "ric_records_rejected": self.ric_records_rejected,
            "ric_records_degraded": self.ric_records_degraded,
            "specialized_sites": self.specialized_sites,
            "specialized_hits": self.specialized_hits,
            "deopts": self.deopts,
            "despecialized_sites": self.despecialized_sites,
            "bytecode_cache_hits": self.bytecode_cache_hits,
            "bytecode_cache_misses": self.bytecode_cache_misses,
            "ric_remote_hits": self.ric_remote_hits,
            "ric_remote_misses": self.ric_remote_misses,
            "ric_remote_fallbacks": self.ric_remote_fallbacks,
            "ric_remote_evictions": self.ric_remote_evictions,
            "ric_remote_failovers": self.ric_remote_failovers,
            "ric_remote_proto_mismatch": self.ric_remote_proto_mismatch,
            "ric_remote_stale_epoch": self.ric_remote_stale_epoch,
            "budget_aborts_steps": self.budget_aborts_steps,
            "budget_aborts_heap": self.budget_aborts_heap,
            "budget_aborts_depth": self.budget_aborts_depth,
            "budget_aborts_deadline": self.budget_aborts_deadline,
            "budget_aborts_cancelled": self.budget_aborts_cancelled,
            "budget_aborts_total": self.budget_aborts_total,
        }

    @property
    def ric_records_degraded(self) -> int:
        """Records that fell back to cold-start (corrupt + rejected)."""
        return self.ric_records_corrupt + self.ric_records_rejected
