"""Configuration switches for RIC, including the ablation knobs."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RICConfig:
    """Controls how RIC behaves; defaults reproduce the paper's setup.

    The non-default combinations implement the ablations indexed in
    DESIGN.md §6:

    * ``enable_linking=False`` — no Triggering→Dependent linking; the
      ICRecord is effectively ignored during the Reuse run (Conventional).
    * ``enable_handler_reuse=False`` — linking still preloads slots, but
      each preload pays the handler-generation cost again instead of reusing
      the saved handler (isolates idea 1 of the paper's Table 2).
    * ``validate=False`` — the *naive* persistence scheme: hidden classes
      are matched by creation order with no address validation.  Unsound
      under divergence; exists to demonstrate why validation is necessary.
    * ``include_global_ics=True`` — lifts the paper's §6 exclusion of
      global-object ICs (order-sensitive; breaks cross-website reuse).
    """

    enable_linking: bool = True
    enable_handler_reuse: bool = True
    validate: bool = True
    include_global_ics: bool = False
