"""Configuration switches for RIC, including the ablation knobs."""

from __future__ import annotations

import os
from dataclasses import dataclass


def _specialize_default() -> bool:
    """Default for ``RICConfig.specialize``: on, unless the environment
    forces it off.  ``RIC_SPECIALIZE=0`` lets CI run whole suites (the
    differential wall in particular) with quickening disabled without
    threading a config through every fixture."""
    return os.environ.get("RIC_SPECIALIZE", "1") != "0"


@dataclass(frozen=True)
class RICConfig:
    """Controls how RIC behaves; defaults reproduce the paper's setup.

    The non-default combinations implement the ablations indexed in
    DESIGN.md §6:

    * ``enable_linking=False`` — no Triggering→Dependent linking; the
      ICRecord is effectively ignored during the Reuse run (Conventional).
    * ``enable_handler_reuse=False`` — linking still preloads slots, but
      each preload pays the handler-generation cost again instead of reusing
      the saved handler (isolates idea 1 of the paper's Table 2).
    * ``validate=False`` — the *naive* persistence scheme: hidden classes
      are matched by creation order with no address validation.  Unsound
      under divergence; exists to demonstrate why validation is necessary.
    * ``include_global_ics=True`` — lifts the paper's §6 exclusion of
      global-object ICs (order-sensitive; breaks cross-website reuse).

    Robustness knobs (not ablations — they control how the engine treats
    persisted records that fail integrity/structural validation):

    * ``strict_validation=True`` — a corrupt or structurally invalid
      record raises :class:`~repro.ric.errors.RecordFormatError` at
      ``Engine.run`` instead of silently degrading that record to
      cold-start.  Default False: degrade, count, keep running.
    * ``quarantine_corrupt`` — whether a directory-backed
      :class:`~repro.ric.store.RecordStore` renames entries that fail to
      load to ``*.corrupt`` (preserving them for post-mortem) instead of
      leaving them in place to fail again next process.

    Interpreter knobs:

    * ``interp_fastpaths=False`` — disable the VM's inline monomorphic
      GET_PROP/SET_PROP fast paths and route every property access through
      the generic :class:`~repro.ic.miss.ICRuntime` path.  The two must be
      observationally identical (tests/test_dispatch_table.py and the
      differential suite enforce it); the knob exists for those tests and
      for isolating fast-path effects in benchmarks.
    * ``specialize=False`` — disable the bytecode quickening pass
      (repro/specialize/): persisted ``site_feedback`` is still recorded
      and extracted, but never spent rewriting opcodes, so every run
      executes the generic instruction stream.  Specialized and generic
      runs must be observationally identical (the differential wall
      enforces it); the knob is the ``ric-run --no-specialize`` flag and
      the CI forced-off sweep (``RIC_SPECIALIZE=0``).

    Remote record-store knobs (the cross-process sharing daemon,
    :mod:`repro.server`):

    * ``remote_socket`` — endpoint spec(s) of the ``ricd`` daemon(s)
      (``ric-serve``): a unix-socket path, a ``HOST:PORT`` /
      ``tcp://HOST:PORT`` TCP spec, or *several* endpoints (a tuple, or
      one comma-separated string) for a sharded fleet.  When set, an
      :class:`Engine` without an explicit ``record_store`` builds a
      :class:`~repro.server.client.RemoteRecordStore` (one endpoint) or
      a consistent-hash :class:`~repro.server.sharding.ShardedRecordStore`
      (several) with a local in-memory fallback; ``None`` (default)
      keeps the store local.
    * ``remote_replication`` — replica count R for the sharded fleet:
      every record is PUT to its R ring owners and a GET fails over
      down that preference list.  Clamped to the fleet size; ignored
      for a single endpoint.
    * ``remote_timeout_s`` — per-request socket timeout.  Deliberately
      small: a slow daemon must cost milliseconds, not stall a run.
    * ``remote_retry_s`` — circuit-breaker hold-off after a transport
      failure; until it elapses every request goes straight to the
      local fallback.
    * ``remote_retries`` — transient transport failures absorbed per
      request (with jittered backoff) before the failure surfaces and
      the circuit breaker opens.
    * ``remote_backoff_s`` — base of the jittered exponential backoff
      between those retries.
    * ``remote_deadline_s`` — overall per-request deadline across all
      retry attempts; the retry budget never extends a request past it.

    Execution-governance knobs (defaults for runs on this engine; an
    explicit ``budget=`` passed to ``Engine.run`` wins.  ``None``
    disables a dimension — the all-``None`` default is ungoverned and
    pays zero dispatch-loop overhead):

    * ``max_steps`` — dispatch-step ceiling per run.
    * ``max_heap_bytes`` / ``max_heap_objects`` — simulated-heap
      ceilings per run.
    * ``max_frame_depth`` — guest call-depth ceiling per run.
    * ``deadline_ms`` — wall-clock allowance per run.
    * ``budget_check_stride`` — dispatches between governance checks
      (amortization stride; see ``repro.core.budget``).
    """

    enable_linking: bool = True
    enable_handler_reuse: bool = True
    validate: bool = True
    include_global_ics: bool = False
    strict_validation: bool = False
    quarantine_corrupt: bool = True
    interp_fastpaths: bool = True
    specialize: bool = _specialize_default()
    remote_socket: "str | tuple | None" = None
    remote_replication: int = 2
    remote_timeout_s: float = 0.5
    remote_retry_s: float = 1.0
    remote_retries: int = 1
    remote_backoff_s: float = 0.05
    remote_deadline_s: float = 2.0
    max_steps: int | None = None
    max_heap_bytes: int | None = None
    max_heap_objects: int | None = None
    max_frame_depth: int | None = None
    deadline_ms: float | None = None
    budget_check_stride: int | None = None

    def execution_budget(self):
        """The :class:`~repro.core.budget.ExecutionBudget` these knobs
        describe, or ``None`` when every dimension is unlimited (so the
        VM keeps its zero-overhead ungoverned loop)."""
        if (
            self.max_steps is None
            and self.max_heap_bytes is None
            and self.max_heap_objects is None
            and self.max_frame_depth is None
            and self.deadline_ms is None
        ):
            return None
        from repro.core.budget import DEFAULT_CHECK_STRIDE, ExecutionBudget

        return ExecutionBudget(
            max_steps=self.max_steps,
            max_heap_bytes=self.max_heap_bytes,
            max_heap_objects=self.max_heap_objects,
            max_frame_depth=self.max_frame_depth,
            deadline_ms=self.deadline_ms,
            check_stride=self.budget_check_stride or DEFAULT_CHECK_STRIDE,
        )
