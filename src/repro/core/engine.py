"""The Engine: the library's main entry point, as a thin facade.

An :class:`Engine` wires together the three execution layers:

* **Artifact layer** (:mod:`repro.core.artifacts`) — immutable, shared:
  the code cache and the :class:`~repro.core.artifacts.ArtifactCache`
  of compiled-script artifacts, single-flight built.
* **Session layer** (:mod:`repro.core.session`) — per-run, mutable: a
  :class:`~repro.core.session.RunSession` owns the heap, context, IC
  vectors, counters and budget of one execution.
* **Executor layer** (:mod:`repro.core.executor`) — many sessions at
  once over the shared artifact cache.

The legacy API is preserved byte-for-byte in behaviour and counters:
the paper's three measured configurations still map to

* **Initial run** — ``engine.run(scripts)`` on a cold engine (compiles
  and fills the code cache, builds IC state from scratch).
* **Conventional Reuse run** — ``engine.run(scripts)`` again: bytecode
  comes from the code cache but IC state is rebuilt from scratch.
* **RIC Reuse run** — ``engine.run(scripts, icrecord=record)`` with the
  record from ``engine.extract_icrecord()``: IC state is partially
  preloaded.

Example::

    engine = Engine()
    initial = engine.run(scripts, name="react-like")
    record = engine.extract_icrecord()
    conventional = engine.run(scripts, name="react-like")
    ric = engine.run(scripts, name="react-like", icrecord=record)
    assert ric.ic_miss_rate < conventional.ic_miss_rate

The state of the most recent run is exposed as :attr:`last_run` — a
:class:`~repro.core.session.RunSession` handle.  The old private
``_last_runtime``/``_last_feedback`` attributes still work but are
deprecated shims over it.
"""

from __future__ import annotations

import random
import threading
import typing
import warnings

from repro.bytecode.cache import CodeCache
from repro.bytecode.code import CodeObject
from repro.core.artifacts import ArtifactBuilder, ArtifactCache
from repro.core.budget import CancelToken, ExecutionBudget
from repro.core.config import RICConfig
from repro.core.session import RunSession, admit_record
from repro.ric.errors import CorruptRecord
from repro.ric.icrecord import ICRecord
from repro.stats.counters import Counters
from repro.stats.profile import RunProfile

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.ic.icvector import FeedbackState
    from repro.runtime.context import Runtime

#: A workload: list of (filename, source) scripts executed in order.
Scripts = typing.Sequence[typing.Tuple[str, str]]

_LAST_RUNTIME_DEPRECATION = (
    "Engine.{name} is deprecated; use engine.last_run.{attr} "
    "(the RunSession handle of the most recent run) instead"
)


class Engine:
    """Drives executions of jsl workloads with optional RIC reuse."""

    def __init__(
        self,
        config: RICConfig | None = None,
        cache_dir: str | None = None,
        seed: int | None = None,
        optimize: bool = True,
        record_store=None,
    ):
        self.config = config or RICConfig()
        self.optimize = optimize
        self.code_cache = CodeCache(cache_dir=cache_dir)
        #: Record-store selection (any RecordStoreProtocol): an explicit
        #: store wins; else ``config.remote_socket`` builds a daemon-backed
        #: RemoteRecordStore with a local fallback; else no store (records
        #: are passed explicitly via ``icrecord=``).
        if record_store is None and self.config.remote_socket is not None:
            from repro.server.client import make_record_store

            record_store = make_record_store(
                self.config.remote_socket,
                timeout_s=self.config.remote_timeout_s,
                retry_after_s=self.config.remote_retry_s,
                retries=self.config.remote_retries,
                backoff_s=self.config.remote_backoff_s,
                request_deadline_s=self.config.remote_deadline_s,
                replication=self.config.remote_replication,
            )
        self.record_store = record_store
        #: The shared artifact cache every run (facade or executor) of
        #: this engine draws from.
        self.artifacts = ArtifactCache(
            ArtifactBuilder(
                self.code_cache,
                optimize=optimize,
                record_store=record_store,
                specialize=self.config.specialize,
            )
        )
        # Every execution gets a distinct sub-seed, so heap addresses differ
        # across runs even when the engine itself is seeded (which is the
        # whole premise of the paper).  Seeding the engine makes the
        # *sequence* of runs reproducible.  The draw is locked so
        # concurrent submitters see a deterministic sequence too.
        self._seed_stream = random.Random(seed)
        self._seed_lock = threading.Lock()
        #: The most recent run's session, kept for extraction.
        self._last_run: RunSession | None = None

    # -- seeds --------------------------------------------------------------

    def draw_seed(self) -> int:
        """Next sub-seed from the engine's deterministic seed stream."""
        with self._seed_lock:
            return self._seed_stream.getrandbits(48)

    # -- compilation --------------------------------------------------------

    def compile(self, filename: str, source: str) -> CodeObject:
        """Compile through the code cache (hit = frontend skipped); the
        peephole optimizer runs before the bytecode is cached."""
        code, _ = self.artifacts.builder.compile(filename, source)
        return code

    # -- execution ----------------------------------------------------------

    def run(
        self,
        scripts: Scripts | str,
        name: str = "workload",
        icrecord: (
            "ICRecord | CorruptRecord | "
            "typing.Sequence[ICRecord | CorruptRecord] | None"
        ) = None,
        seed: int | None = None,
        time_source: typing.Callable[[], float] | None = None,
        tracer=None,
        use_store: bool = False,
        budget: ExecutionBudget | None = None,
        cancel_token: CancelToken | None = None,
    ) -> RunProfile:
        """Execute a workload in a fresh session and measure it.

        ``scripts`` is either a single source string or a sequence of
        ``(filename, source)`` pairs executed in order (a "website").
        Passing ``icrecord`` makes this a RIC Reuse run.  Candidates may
        include :class:`~repro.ric.errors.CorruptRecord` placeholders
        (from :func:`~repro.ric.serialize.try_load_icrecord`); those and
        records failing :func:`~repro.ric.validate.validate_record`
        degrade to cold-start for that record only, counted in
        ``counters.ric_records_corrupt`` / ``ric_records_rejected``.

        ``use_store=True`` (with no explicit ``icrecord``) fetches this
        workload's per-script records from :attr:`record_store`; a
        daemon-backed store's hit/miss/fallback traffic for the fetch
        lands in the run's ``ric_remote_*`` counters.

        ``budget`` (default: the config's governance knobs, usually
        unlimited) and ``cancel_token`` make this a *governed* run: a
        runaway program is stopped with a typed
        :class:`~repro.core.errors.ExecutionAborted` subclass instead of
        hanging the engine.  The abort is clean — heap and IC state stay
        consistent, the run's ``budget_aborts_*`` counter is set, the
        partial :class:`RunProfile` rides on the exception as
        ``error.profile``, and the completed-warmup portion of the run
        remains extractable via :meth:`extract_icrecord` /
        :meth:`extract_per_script_records`.  The engine itself stays
        fully usable for subsequent runs.
        """
        if isinstance(scripts, str):
            scripts = [("<script>", scripts)]
        run_seed = seed if seed is not None else self.draw_seed()

        counters = Counters()
        if use_store and icrecord is None and self.record_store is not None:
            fetched = self._store_roundtrip(
                counters, lambda: self.record_store.records_for(scripts)
            )
            icrecord = fetched or None

        # Compile errors surface here, before any session state changes
        # (so last_run still points at the previous, completed run).
        artifacts = self.artifacts.get_many(scripts)

        session = RunSession(
            artifacts,
            config=self.config,
            seed=run_seed,
            name=name,
            icrecord=icrecord,
            counters=counters,
            tracer=tracer,
            time_source=time_source,
            budget=budget,
            cancel_token=cancel_token,
        )
        # Extraction state points at this run from here on, even if the
        # run aborts: the IC information built during completed warmup
        # is valid, so an interrupted Initial run still yields a usable
        # partial record.
        self._last_run = session
        return session.execute()

    # -- the last-run handle ------------------------------------------------

    @property
    def last_run(self) -> "RunSession | None":
        """Session handle of the most recent (possibly aborted) run."""
        return self._last_run

    @property
    def _last_runtime(self) -> "Runtime | None":
        warnings.warn(
            _LAST_RUNTIME_DEPRECATION.format(name="_last_runtime", attr="runtime"),
            DeprecationWarning,
            stacklevel=2,
        )
        return self._last_run.runtime if self._last_run is not None else None

    @property
    def _last_feedback(self) -> "FeedbackState | None":
        warnings.warn(
            _LAST_RUNTIME_DEPRECATION.format(name="_last_feedback", attr="feedback"),
            DeprecationWarning,
            stacklevel=2,
        )
        return self._last_run.feedback if self._last_run is not None else None

    @property
    def _last_script_keys(self) -> list:
        return list(self._last_run.script_keys) if self._last_run else []

    @property
    def _last_scripts(self) -> list:
        return list(self._last_run.scripts) if self._last_run else []

    # -- record store traffic -----------------------------------------------

    def _store_roundtrip(self, counters: Counters, operation):
        """Run one store operation, folding a remote store's hit/miss/
        fallback/eviction deltas into this run's counters.  Local stores
        have no ``stats_snapshot`` and contribute nothing.

        The fold reads global store stats, so it is only exact while one
        run is in flight; the concurrent executor skips it (aggregate
        remote traffic stays available via ``record_store.status()``).
        """
        snapshot = getattr(self.record_store, "stats_snapshot", None)
        before = snapshot() if snapshot is not None else None
        result = operation()
        if before is not None:
            after = snapshot()
            # Store stat key → run counter.  Keys a store doesn't track
            # (e.g. "failovers" on a single-daemon client) fold nothing.
            fold = {
                "hits": "ric_remote_hits",
                "misses": "ric_remote_misses",
                "fallbacks": "ric_remote_fallbacks",
                "evictions": "ric_remote_evictions",
                "failovers": "ric_remote_failovers",
                "proto_mismatch": "ric_remote_proto_mismatch",
                "stale_epoch": "ric_remote_stale_epoch",
            }
            for stat, counter in fold.items():
                if stat in after and stat in before:
                    delta = after[stat] - before[stat]
                    setattr(counters, counter, getattr(counters, counter) + delta)
        return result

    def publish_records(self, counters: Counters | None = None) -> int:
        """Extract the last run's per-script records and put them into
        :attr:`record_store` (local or remote), returning how many were
        published.  With a ``counters``, remote traffic is folded in."""
        if self.record_store is None:
            raise RuntimeError("engine has no record_store to publish into")
        records = self.extract_per_script_records()
        source_by_filename = {
            filename: source for filename, source in self._last_scripts
        }

        def publish() -> int:
            published = 0
            for filename, record in records.items():
                source = source_by_filename.get(filename)
                if source is None:
                    continue
                self.record_store.put(filename, source, record)
                # A cached artifact pinning the now-stale record must
                # re-fetch (and re-quicken from its generic code) on the
                # next record-wanting build.
                self.artifacts.refresh_record(filename, source)
                published += 1
            return published

        if counters is None:
            counters = Counters()  # throwaway sink; remote stats still tally
        return self._store_roundtrip(counters, publish)

    # -- record admission ---------------------------------------------------

    def _admit_record(
        self,
        candidate: "ICRecord | CorruptRecord",
        counters: Counters,
    ) -> "ICRecord | None":
        """Gate one candidate record (see :func:`repro.core.session.admit_record`)."""
        return admit_record(candidate, self.config, counters)

    # -- extraction ---------------------------------------------------------

    def extract_icrecord(self) -> ICRecord:
        """Run the RIC extraction phase over the most recent execution."""
        if self._last_run is None:
            raise RuntimeError("no completed run to extract from; call run() first")
        return self._last_run.extract_icrecord()

    def extract_per_script_records(self) -> dict:
        """Per-file ICRecords from the most recent execution (paper §9:
        RIC information is maintained per JavaScript file and shareable
        across applications).  See :mod:`repro.ric.store`."""
        if self._last_run is None:
            raise RuntimeError("no completed run to extract from; call run() first")
        return self._last_run.extract_per_script_records()

    # -- the paper's full measurement protocol ------------------------------

    def measure_workload(
        self, scripts: Scripts | str, name: str = "workload"
    ) -> "WorkloadMeasurement":
        """Run the full Initial → extract → Conventional/RIC protocol."""
        initial = self.run(scripts, name=name)
        record = self.extract_icrecord()
        conventional = self.run(scripts, name=name)
        conventional.mode = "reuse-conventional"
        ric = self.run(scripts, name=name, icrecord=record)
        return WorkloadMeasurement(
            name=name,
            initial=initial,
            conventional=conventional,
            ric=ric,
            record=record,
        )


class WorkloadMeasurement:
    """The three measured runs plus the extracted record for one workload."""

    def __init__(
        self,
        name: str,
        initial: RunProfile,
        conventional: RunProfile,
        ric: RunProfile,
        record: ICRecord,
    ):
        self.name = name
        self.initial = initial
        self.conventional = conventional
        self.ric = ric
        self.record = record

    @property
    def instruction_reduction(self) -> float:
        """Fractional instruction saving of RIC vs Conventional (Figure 8)."""
        base = self.conventional.total_instructions
        if base == 0:
            return 0.0
        return 1.0 - self.ric.total_instructions / base

    @property
    def normalized_instructions(self) -> float:
        base = self.conventional.total_instructions
        if base == 0:
            return 1.0
        return self.ric.total_instructions / base

    @property
    def miss_rate_reduction_pp(self) -> float:
        """Miss-rate drop in percentage points (Table 4 cols 2-3)."""
        return 100.0 * (
            self.initial.ic_miss_rate - self.ric.ic_miss_rate
        )
