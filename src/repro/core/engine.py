"""The Engine: the library's main entry point.

An :class:`Engine` owns the cross-execution artifacts — the code cache
(bytecode persists across runs, paper §8.1) and, after extraction, the
ICRecord — and creates a fresh, address-randomized runtime for every
execution.  The paper's three measured configurations map to:

* **Initial run** — ``engine.run(scripts)`` on a cold engine (compiles and
  fills the code cache, builds IC state from scratch).
* **Conventional Reuse run** — ``engine.run(scripts)`` again: bytecode comes
  from the code cache but IC state is rebuilt from scratch.
* **RIC Reuse run** — ``engine.run(scripts, icrecord=record)`` with the
  record from ``engine.extract_icrecord()``: IC state is partially preloaded.

Example::

    engine = Engine()
    initial = engine.run(scripts, name="react-like")
    record = engine.extract_icrecord()
    conventional = engine.run(scripts, name="react-like")
    ric = engine.run(scripts, name="react-like", icrecord=record)
    assert ric.ic_miss_rate < conventional.ic_miss_rate
"""

from __future__ import annotations

import random
import time
import typing

from repro.bytecode.cache import CodeCache, source_hash
from repro.bytecode.code import CodeObject
from repro.bytecode.compiler import compile_source
from repro.core.budget import CancelToken, ExecutionBudget
from repro.core.config import RICConfig
from repro.core.errors import ExecutionAborted
from repro.ic.icvector import FeedbackState
from repro.ic.miss import ICRuntime
from repro.interpreter.vm import VM
from repro.ric.errors import CorruptRecord, RecordFormatError
from repro.ric.extraction import extract_icrecord
from repro.ric.icrecord import ICRecord
from repro.ric.reuse import MultiReuseSession, ReuseSession
from repro.ric.validate import validate_record
from repro.runtime.builtins import install_builtins
from repro.runtime.context import Runtime
from repro.stats.counters import Counters
from repro.stats.profile import RunProfile

#: A workload: list of (filename, source) scripts executed in order.
Scripts = typing.Sequence[typing.Tuple[str, str]]


class Engine:
    """Drives executions of jsl workloads with optional RIC reuse."""

    def __init__(
        self,
        config: RICConfig | None = None,
        cache_dir: str | None = None,
        seed: int | None = None,
        optimize: bool = True,
        record_store=None,
    ):
        self.config = config or RICConfig()
        self.optimize = optimize
        self.code_cache = CodeCache(cache_dir=cache_dir)
        #: Record-store selection (any RecordStoreProtocol): an explicit
        #: store wins; else ``config.remote_socket`` builds a daemon-backed
        #: RemoteRecordStore with a local fallback; else no store (records
        #: are passed explicitly via ``icrecord=``).
        if record_store is None and self.config.remote_socket is not None:
            from repro.server.client import make_record_store

            record_store = make_record_store(
                self.config.remote_socket,
                timeout_s=self.config.remote_timeout_s,
                retry_after_s=self.config.remote_retry_s,
                retries=self.config.remote_retries,
                backoff_s=self.config.remote_backoff_s,
                request_deadline_s=self.config.remote_deadline_s,
            )
        self.record_store = record_store
        # Every execution gets a distinct sub-seed, so heap addresses differ
        # across runs even when the engine itself is seeded (which is the
        # whole premise of the paper).  Seeding the engine makes the
        # *sequence* of runs reproducible.
        self._seed_stream = random.Random(seed)
        #: State of the most recent run, kept for extraction.
        self._last_runtime: Runtime | None = None
        self._last_feedback: FeedbackState | None = None
        self._last_script_keys: list[str] = []
        self._last_scripts: list[tuple[str, str]] = []

    # -- compilation --------------------------------------------------------------

    def compile(self, filename: str, source: str) -> CodeObject:
        """Compile through the code cache (hit = frontend skipped); the
        peephole optimizer runs before the bytecode is cached."""
        code = self.code_cache.lookup(filename, source)
        if code is None:
            code = compile_source(source, filename)
            if self.optimize:
                from repro.bytecode.optimizer import optimize_code

                optimize_code(code)
            self.code_cache.store(filename, source, code)
        return code

    # -- execution -------------------------------------------------------------------

    def run(
        self,
        scripts: Scripts | str,
        name: str = "workload",
        icrecord: (
            "ICRecord | CorruptRecord | "
            "typing.Sequence[ICRecord | CorruptRecord] | None"
        ) = None,
        seed: int | None = None,
        time_source: typing.Callable[[], float] | None = None,
        tracer=None,
        use_store: bool = False,
        budget: ExecutionBudget | None = None,
        cancel_token: CancelToken | None = None,
    ) -> RunProfile:
        """Execute a workload in a fresh runtime and measure it.

        ``scripts`` is either a single source string or a sequence of
        ``(filename, source)`` pairs executed in order (a "website").
        Passing ``icrecord`` makes this a RIC Reuse run.  Candidates may
        include :class:`~repro.ric.errors.CorruptRecord` placeholders
        (from :func:`~repro.ric.serialize.try_load_icrecord`); those and
        records failing :func:`~repro.ric.validate.validate_record`
        degrade to cold-start for that record only, counted in
        ``counters.ric_records_corrupt`` / ``ric_records_rejected``.

        ``use_store=True`` (with no explicit ``icrecord``) fetches this
        workload's per-script records from :attr:`record_store`; a
        daemon-backed store's hit/miss/fallback traffic for the fetch
        lands in the run's ``ric_remote_*`` counters.

        ``budget`` (default: the config's governance knobs, usually
        unlimited) and ``cancel_token`` make this a *governed* run: a
        runaway program is stopped with a typed
        :class:`~repro.core.errors.ExecutionAborted` subclass instead of
        hanging the engine.  The abort is clean — heap and IC state stay
        consistent, the run's ``budget_aborts_*`` counter is set, the
        partial :class:`RunProfile` rides on the exception as
        ``error.profile``, and the completed-warmup portion of the run
        remains extractable via :meth:`extract_icrecord` /
        :meth:`extract_per_script_records`.  The engine itself stays
        fully usable for subsequent runs.
        """
        if isinstance(scripts, str):
            scripts = [("<script>", scripts)]
        run_seed = seed if seed is not None else self._seed_stream.getrandbits(48)

        counters = Counters()
        if use_store and icrecord is None and self.record_store is not None:
            fetched = self._store_roundtrip(
                counters, lambda: self.record_store.records_for(scripts)
            )
            icrecord = fetched or None
        runtime = Runtime(seed=run_seed)
        feedback = FeedbackState()

        reuse_session: "ReuseSession | MultiReuseSession | None" = None

        def on_hidden_class_created(hc) -> None:
            counters.hidden_classes_created += 1
            if tracer is not None:
                from repro.stats.tracing import HC_CREATED

                tracer.emit(
                    HC_CREATED, site_key=hc.creation_key, hc_index=hc.index
                )
            if reuse_session is not None:
                reuse_session.on_hidden_class_created(hc)

        runtime.hidden_classes.on_created = on_hidden_class_created

        mode = "reuse-ric" if icrecord is not None else "initial"
        cache_hits_before = self.code_cache.hits
        cache_misses_before = self.code_cache.misses

        # Compile (or fetch) all scripts first, then register their feedback
        # vectors *before* builtins are created: builtin validation may
        # preload sites anywhere in the workload.
        compiled: list[CodeObject] = []
        script_keys: list[str] = []
        for filename, source in scripts:
            code = self.compile(filename, source)
            compiled.append(code)
            feedback.register_script(code)
            script_keys.append(f"{filename}:{source_hash(source)}")
            for nested in code.iter_code_objects():
                runtime.heap.charge(
                    "bytecode",
                    16 * len(nested.instructions)
                    + 8 * len(nested.constants)
                    + 24 * len(nested.feedback_slots),
                )

        # Sessions are created only now that this run's script keys
        # (filename:source-hash) are known: a record's file-bound state only
        # applies to files whose content matches what it was extracted from.
        # Every candidate record passes structural validation first; a
        # corrupt or invalid record degrades to cold-start for that record
        # only — the remaining records still build sessions and reuse.
        if icrecord is not None:
            trusted = set(script_keys)
            if isinstance(icrecord, (ICRecord, CorruptRecord)):
                candidates = [icrecord]
            else:
                candidates = list(icrecord)
            sessions = [
                ReuseSession(
                    record,
                    feedback,
                    counters,
                    self.config,
                    tracer=tracer,
                    trusted_script_keys=trusted,
                )
                for candidate in candidates
                if (record := self._admit_record(candidate, counters)) is not None
            ]
            if len(sessions) == 1:
                reuse_session = sessions[0]
            elif sessions:
                # Per-script records (see repro.ric.store): one session per
                # record, each in its own HCID namespace.
                reuse_session = MultiReuseSession(sessions)

        if budget is None:
            budget = self.config.execution_budget()

        # Extraction state points at this run from here on, even if the
        # run aborts: the IC information built during completed warmup is
        # valid (abort points are dispatch boundaries — heap, hidden
        # classes and feedback vectors are never left mid-transition), so
        # an interrupted Initial run still yields a usable partial record.
        self._last_runtime = runtime
        self._last_feedback = feedback
        self._last_script_keys = script_keys
        self._last_scripts = [(filename, source) for filename, source in scripts]

        start = time.perf_counter()
        install_builtins(runtime)
        ic_runtime = ICRuntime(runtime, counters, reuse_session, tracer=tracer)
        vm = VM(
            runtime,
            counters,
            ic_runtime,
            feedback,
            time_source=time_source,
            fastpaths=self.config.interp_fastpaths,
            budget=budget,
            cancel_token=cancel_token,
        )
        try:
            for code in compiled:
                # Uncaught guest exceptions surface from run_code as
                # JSLRuntimeError with a guest stack trace attached.
                vm.run_code(code)
        except ExecutionAborted as aborted:
            counters.record_abort(aborted.reason)
            counters.bytecode_cache_hits = (
                self.code_cache.hits - cache_hits_before
            )
            counters.bytecode_cache_misses = (
                self.code_cache.misses - cache_misses_before
            )
            aborted.profile = RunProfile(
                name=name,
                mode=mode + "-aborted",
                counters=counters,
                wall_time_ms=(time.perf_counter() - start) * 1000.0,
                heap_bytes=runtime.heap.bytes_allocated,
                console_output=list(runtime.console_output),
                scripts=script_keys,
                code_cache_hits=self.code_cache.hits - cache_hits_before,
                code_cache_misses=self.code_cache.misses - cache_misses_before,
            )
            raise
        wall_time_ms = (time.perf_counter() - start) * 1000.0

        counters.bytecode_cache_hits = self.code_cache.hits - cache_hits_before
        counters.bytecode_cache_misses = self.code_cache.misses - cache_misses_before

        return RunProfile(
            name=name,
            mode=mode,
            counters=counters,
            wall_time_ms=wall_time_ms,
            heap_bytes=runtime.heap.bytes_allocated,
            console_output=list(runtime.console_output),
            scripts=script_keys,
            code_cache_hits=self.code_cache.hits - cache_hits_before,
            code_cache_misses=self.code_cache.misses - cache_misses_before,
        )

    # -- record store traffic ----------------------------------------------------------

    def _store_roundtrip(self, counters: Counters, operation):
        """Run one store operation, folding a remote store's hit/miss/
        fallback/eviction deltas into this run's counters.  Local stores
        have no ``stats_snapshot`` and contribute nothing."""
        snapshot = getattr(self.record_store, "stats_snapshot", None)
        before = snapshot() if snapshot is not None else None
        result = operation()
        if before is not None:
            after = snapshot()
            counters.ric_remote_hits += after["hits"] - before["hits"]
            counters.ric_remote_misses += after["misses"] - before["misses"]
            counters.ric_remote_fallbacks += (
                after["fallbacks"] - before["fallbacks"]
            )
            counters.ric_remote_evictions += (
                after["evictions"] - before["evictions"]
            )
        return result

    def publish_records(self, counters: Counters | None = None) -> int:
        """Extract the last run's per-script records and put them into
        :attr:`record_store` (local or remote), returning how many were
        published.  With a ``counters``, remote traffic is folded in."""
        if self.record_store is None:
            raise RuntimeError("engine has no record_store to publish into")
        records = self.extract_per_script_records()
        source_by_filename = {
            filename: source for filename, source in self._last_scripts
        }

        def publish() -> int:
            published = 0
            for filename, record in records.items():
                source = source_by_filename.get(filename)
                if source is None:
                    continue
                self.record_store.put(filename, source, record)
                published += 1
            return published

        if counters is None:
            counters = Counters()  # throwaway sink; remote stats still tally
        return self._store_roundtrip(counters, publish)

    # -- record admission --------------------------------------------------------------

    def _admit_record(
        self,
        candidate: "ICRecord | CorruptRecord",
        counters: Counters,
    ) -> "ICRecord | None":
        """Gate one candidate record before a ReuseSession may be built.

        Returns the record if trustworthy, else None after counting the
        degradation (or raising, under ``strict_validation``).
        """
        if isinstance(candidate, CorruptRecord):
            if self.config.strict_validation:
                raise RecordFormatError(
                    f"corrupt ICRecord from {candidate.source}: {candidate.error}"
                )
            counters.ric_records_corrupt += 1
            return None
        if not isinstance(candidate, ICRecord):
            raise TypeError(
                "icrecord entries must be ICRecord or CorruptRecord, "
                f"got {type(candidate).__name__}"
            )
        problems = validate_record(candidate)
        if problems:
            if self.config.strict_validation:
                raise RecordFormatError(
                    f"invalid ICRecord ({len(problems)} problems): "
                    + "; ".join(problems[:5])
                )
            counters.ric_records_rejected += 1
            return None
        return candidate

    # -- extraction --------------------------------------------------------------------

    def extract_icrecord(self) -> ICRecord:
        """Run the RIC extraction phase over the most recent execution."""
        if self._last_runtime is None or self._last_feedback is None:
            raise RuntimeError("no completed run to extract from; call run() first")
        return extract_icrecord(
            self._last_runtime,
            self._last_feedback,
            config=self.config,
            script_keys=self._last_script_keys,
        )

    def extract_per_script_records(self) -> dict:
        """Per-file ICRecords from the most recent execution (paper §9:
        RIC information is maintained per JavaScript file and shareable
        across applications).  See :mod:`repro.ric.store`."""
        if self._last_runtime is None or self._last_feedback is None:
            raise RuntimeError("no completed run to extract from; call run() first")
        from repro.ric.store import extract_per_script_records

        records = extract_per_script_records(
            self._last_runtime, self._last_feedback, config=self.config
        )
        # Stamp each record with its script's content identity so reuse can
        # refuse records whose source has changed.
        hash_by_filename = {
            key.split(":", 1)[0]: key for key in self._last_script_keys
        }
        for filename, record in records.items():
            if filename in hash_by_filename:
                record.script_keys = [hash_by_filename[filename]]
        return records

    # -- the paper's full measurement protocol ------------------------------------------

    def measure_workload(
        self, scripts: Scripts | str, name: str = "workload"
    ) -> "WorkloadMeasurement":
        """Run the full Initial → extract → Conventional/RIC protocol."""
        initial = self.run(scripts, name=name)
        record = self.extract_icrecord()
        conventional = self.run(scripts, name=name)
        conventional.mode = "reuse-conventional"
        ric = self.run(scripts, name=name, icrecord=record)
        return WorkloadMeasurement(
            name=name,
            initial=initial,
            conventional=conventional,
            ric=ric,
            record=record,
        )


class WorkloadMeasurement:
    """The three measured runs plus the extracted record for one workload."""

    def __init__(
        self,
        name: str,
        initial: RunProfile,
        conventional: RunProfile,
        ric: RunProfile,
        record: ICRecord,
    ):
        self.name = name
        self.initial = initial
        self.conventional = conventional
        self.ric = ric
        self.record = record

    @property
    def instruction_reduction(self) -> float:
        """Fractional instruction saving of RIC vs Conventional (Figure 8)."""
        base = self.conventional.total_instructions
        if base == 0:
            return 0.0
        return 1.0 - self.ric.total_instructions / base

    @property
    def normalized_instructions(self) -> float:
        base = self.conventional.total_instructions
        if base == 0:
            return 1.0
        return self.ric.total_instructions / base

    @property
    def miss_rate_reduction_pp(self) -> float:
        """Miss-rate drop in percentage points (Table 4 cols 2-3)."""
        return 100.0 * (
            self.initial.ic_miss_rate - self.ric.ic_miss_rate
        )
