"""The executor layer: many isolated sessions over one artifact cache.

The ROADMAP's north star is heavy traffic from many users reusing one
warmed artifact.  :class:`EngineExecutor` is that shape in miniature: a
thread pool of fully isolated :class:`~repro.core.session.RunSession`
instances that share exactly three things, all thread-safe by contract
(INTERNALS §11) —

* the engine's :class:`~repro.core.artifacts.ArtifactCache` (immutable
  artifacts, single-flight builds: N concurrent cold starts of one
  source cost one compile and at most one record-store GET);
* the :class:`~repro.bytecode.cache.CodeCache` beneath it (locked);
* the engine's record store, when requests ask for one
  (:class:`~repro.server.client.RemoteRecordStore` GETs are
  single-flighted per script and its circuit breaker is shared, so a
  dead daemon costs the *fleet* one timeout, not one per session).

Everything else — heap, hidden classes, feedback vectors, counters,
reuse sessions, budgets — is per-session, so a session's results are
bit-identical to the same request run solo (the concurrency stress
suite enforces this differentially).

Failure isolation: one session's guest error, abort, or even compile
failure is captured in its :class:`RunOutcome`; the other sessions run
to completion regardless.

Determinism: requests without an explicit seed draw from the engine's
seed stream *at submission time, in request order* — so a seeded engine
produces the same per-request seeds whatever the pool's interleaving.

Per-run ``ric_remote_*`` counters are a sequential-only feature (they
fold global store-stat deltas); under the executor, store-fetched
records arrive pinned to artifacts instead and aggregate remote traffic
stays available via ``record_store.status()``.
"""

from __future__ import annotations

import typing
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.core.budget import CancelToken, ExecutionBudget
from repro.core.errors import ExecutionAborted
from repro.core.session import RunSession
from repro.lang.errors import JSLError
from repro.stats.profile import RunProfile

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.core.engine import Engine

#: A workload: list of (filename, source) scripts executed in order.
Scripts = typing.Sequence[typing.Tuple[str, str]]


@dataclass
class RunRequest:
    """One unit of work for :meth:`EngineExecutor.run_many`."""

    scripts: "Scripts | str"
    name: str = "workload"
    icrecord: object = None
    #: Explicit sub-seed; None draws from the engine's seed stream at
    #: submission time (deterministic for a seeded engine).
    seed: "int | None" = None
    #: Fetch this workload's records from the engine's record store and
    #: pin them to the artifacts (at most one GET per script, fleet-wide).
    use_store: bool = False
    budget: "ExecutionBudget | None" = None
    cancel_token: "CancelToken | None" = None

    def normalized_scripts(self) -> "list[tuple[str, str]]":
        if isinstance(self.scripts, str):
            return [("<script>", self.scripts)]
        return [(filename, source) for filename, source in self.scripts]


@dataclass
class RunOutcome:
    """What one request produced: a profile, or a captured failure."""

    request: RunRequest
    profile: "RunProfile | None" = None
    error: "BaseException | None" = None
    session: "RunSession | None" = None
    extra: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.error is None and self.profile is not None


class EngineExecutor:
    """Runs many isolated sessions concurrently over one engine's
    shared artifact cache and record store."""

    def __init__(self, engine: "Engine"):
        self.engine = engine

    def run_many(
        self,
        requests: "typing.Sequence[RunRequest]",
        jobs: int = 1,
    ) -> "list[RunOutcome]":
        """Execute every request, ``jobs`` at a time; outcomes come back
        in request order.  ``jobs=1`` degenerates to a sequential loop
        through the same code path (the benchmark baseline)."""
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        engine = self.engine
        # Draw missing seeds now, in request order, so the pool's
        # interleaving cannot perturb a seeded engine's determinism.
        seeds = [
            request.seed if request.seed is not None else engine.draw_seed()
            for request in requests
        ]
        if jobs == 1:
            return [
                self._run_one(request, seed)
                for request, seed in zip(requests, seeds)
            ]
        with ThreadPoolExecutor(
            max_workers=jobs, thread_name_prefix="ric-session"
        ) as pool:
            futures = [
                pool.submit(self._run_one, request, seed)
                for request, seed in zip(requests, seeds)
            ]
            return [future.result() for future in futures]

    def _run_one(self, request: RunRequest, seed: int) -> RunOutcome:
        engine = self.engine
        session: "RunSession | None" = None
        try:
            scripts = request.normalized_scripts()
            icrecord = request.icrecord
            fetch = (
                request.use_store
                and icrecord is None
                and engine.record_store is not None
            )
            artifacts = engine.artifacts.get_many(scripts, fetch_record=fetch)
            if fetch:
                pinned = [
                    artifact.record
                    for artifact, _ in artifacts
                    if artifact.record is not None
                ]
                icrecord = pinned or None
            session = RunSession(
                artifacts,
                config=engine.config,
                seed=seed,
                name=request.name,
                icrecord=icrecord,
                budget=request.budget,
                cancel_token=request.cancel_token,
            )
            profile = session.execute()
            return RunOutcome(request=request, profile=profile, session=session)
        except ExecutionAborted as aborted:
            return RunOutcome(
                request=request,
                profile=aborted.profile,
                error=aborted,
                session=session,
            )
        except JSLError as error:
            return RunOutcome(request=request, error=error, session=session)
