"""The artifact layer: immutable, thread-shareable script artifacts.

The paper's central claim is that warmed IC state is a reusable
*artifact*, separable from any particular run's mutable context.  This
module makes that separation structural.  A :class:`ScriptArtifact`
bundles everything about one script that is identical across runs — the
source identity (content hash), the compiled
:class:`~repro.bytecode.code.CodeObject` tree, and (optionally) the
ICRecord fetched from a record store — into one frozen object that any
number of concurrent :class:`~repro.core.session.RunSession` instances
may consume simultaneously.  Nothing in an artifact is ever mutated
after publication: the compiler and optimizer finish before the artifact
is constructed, the VM threads bytecode into *per-VM* caches rather than
in place, and :class:`~repro.ric.reuse.ReuseSession` reads records
strictly read-only.

:class:`ArtifactCache` is the shared, thread-safe home of artifacts with
**single-flight** builds: when N sessions cold-start the same source
concurrently, exactly one thread compiles (and performs at most one
record-store GET); the other N-1 block until the artifact is published
and then share it.  Joiners of a failed build re-raise the builder's
exception, and the in-flight entry is dropped so a later call retries.

Counter compatibility: the pre-artifact engine consulted the
:class:`~repro.bytecode.cache.CodeCache` once per script per run, so
``code_cache.hits``/``misses`` meant "runs that skipped / did not skip
the frontend".  The artifact cache preserves that meaning — a warm
artifact hit calls :meth:`CodeCache.note_hit` instead of doing a
redundant lookup, and a build delegates the real lookup (and its hit or
miss count) to the cache.  Each ``get_or_build`` therefore contributes
exactly one count, and reports which one via its ``frontend_skipped``
return flag so sessions can keep per-run ``bytecode_cache_*`` counters
without reading racy global deltas.
"""

from __future__ import annotations

import threading
import typing
from dataclasses import dataclass, field

from repro.bytecode.cache import CodeCache, source_hash
from repro.bytecode.code import CodeObject
from repro.bytecode.compiler import compile_source

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.ric.icrecord import ICRecord


@dataclass(frozen=True)
class ScriptArtifact:
    """Everything run-invariant about one script, shareable across threads.

    Immutable by construction; the ``code`` tree and ``record`` it points
    at are never mutated after publication (see module docstring), so one
    instance may back any number of concurrent sessions.
    """

    filename: str
    source: str
    source_hash: str
    #: ``filename:source_hash`` — the identity used by the code cache,
    #: the record store, and record trust checks alike.
    key: str
    code: CodeObject
    #: Record fetched from the record store at build time, if any.  A
    #: pinned record is a *candidate*: sessions still run admission
    #: (structural validation) per run, exactly like an explicitly
    #: passed record.
    record: "ICRecord | None" = None
    #: Whether a store fetch was attempted (distinguishes "no record
    #: exists" from "never asked").
    record_fetched: bool = False
    #: When ``code`` is a quickened clone (built against a trusted
    #: record's ``site_feedback``), the original generic tree it was
    #: derived from.  Record-upgrade flights rebuild from *this*, never
    #: from the stale specialization.  None when ``code`` is generic.
    generic_code: CodeObject | None = None
    #: Typed opcodes in ``code`` at publication time (0 when generic).
    specialized_sites: int = 0

    @property
    def bytecode_heap_bytes(self) -> int:
        """Total heap charge a session books for this script's bytecode
        (same formula the engine has always used, summed over the tree)."""
        return sum(
            16 * len(nested.instructions)
            + 8 * len(nested.constants)
            + 24 * len(nested.feedback_slots)
            for nested in self.code.iter_code_objects()
        )


class ArtifactBuilder:
    """Compiles sources into artifacts, via the shared code cache.

    Stateless apart from its references; safe to call from any thread
    (the underlying :class:`CodeCache` is internally locked).
    """

    def __init__(
        self,
        code_cache: CodeCache,
        optimize: bool = True,
        record_store=None,
        specialize: bool = True,
    ):
        self.code_cache = code_cache
        self.optimize = optimize
        self.record_store = record_store
        self.specialize = specialize

    def compile(self, filename: str, source: str) -> "tuple[CodeObject, bool]":
        """Compile through the code cache; returns ``(code, hit)`` where
        ``hit`` is True iff the frontend was skipped."""
        code = self.code_cache.lookup(filename, source)
        if code is not None:
            return code, True
        code = compile_source(source, filename)
        if self.optimize:
            from repro.bytecode.optimizer import optimize_code

            optimize_code(code)
        self.code_cache.store(filename, source, code)
        return code, False

    def build(
        self,
        filename: str,
        source: str,
        fetch_record: bool = False,
        code: CodeObject | None = None,
    ) -> "tuple[ScriptArtifact, bool]":
        """Build one artifact; returns ``(artifact, frontend_skipped)``.

        Passing ``code`` (from an already-published artifact) skips the
        compile entirely — the record-upgrade path.
        """
        if code is not None:
            self.code_cache.note_hit()
            hit = True
        else:
            code, hit = self.compile(filename, source)
        record = None
        fetched = False
        if fetch_record and self.record_store is not None:
            record = self.record_store.get(filename, source)
            fetched = True
        digest = source_hash(source)
        key = f"{filename}:{digest}"
        exec_code, generic_code, specialized = code, None, 0
        if self.specialize and record is not None:
            exec_code, generic_code, specialized = quicken_artifact_code(
                code, key, record
            )
        artifact = ScriptArtifact(
            filename=filename,
            source=source,
            source_hash=digest,
            key=key,
            code=exec_code,
            record=record,
            record_fetched=fetched,
            generic_code=generic_code,
            specialized_sites=specialized,
        )
        return artifact, hit


def quicken_artifact_code(
    code: CodeObject, key: str, record: "ICRecord"
) -> "tuple[CodeObject, CodeObject | None, int]":
    """Quicken one script's tree against a store-fetched record.

    Returns ``(exec code, generic code or None, sites specialized)``.
    The record must be structurally valid *and* trust-matched (the
    artifact key appears in its ``script_keys``) — the same gate session
    admission applies — else the generic tree is returned untouched.
    Sessions consuming a pre-quickened artifact skip their own
    quickening pass, so concurrent sessions share one immutable clone.
    """
    from repro.ric.icrecord import ICRecord
    from repro.ric.validate import validate_record
    from repro.specialize.quicken import quicken_code

    if (
        not isinstance(record, ICRecord)
        or key not in record.script_keys
        or not record.site_feedback
        or validate_record(record)
    ):
        return code, None, 0
    quickened, count = quicken_code(code, record.site_feedback)
    if count == 0:
        return code, None, 0
    return quickened, code, count


class _Flight:
    """One in-progress build other threads can join."""

    __slots__ = ("event", "artifact", "error")

    def __init__(self):
        self.event = threading.Event()
        self.artifact: ScriptArtifact | None = None
        self.error: BaseException | None = None


@dataclass
class ArtifactCacheStats:
    """Build/hit/join tallies, snapshot under the cache lock."""

    hits: int = 0
    builds: int = 0
    joins: int = 0
    record_fetches: int = 0
    extra: dict = field(default_factory=dict)


class ArtifactCache:
    """Thread-safe artifact cache with single-flight builds.

    One instance is shared by an engine's facade path, every concurrent
    executor session, and anything else that wants warm artifacts.  The
    invariant under concurrency: for one (filename, source hash), at
    most one compile and at most one record-store GET are ever in
    flight, no matter how many sessions cold-start it at once.  Flights
    are keyed by script identity alone, so the invariant holds even when
    code-only and record-fetching callers race: the record-upgrade
    flight reuses the published code instead of recompiling.
    """

    def __init__(self, builder: ArtifactBuilder):
        self.builder = builder
        self._entries: dict[str, ScriptArtifact] = {}
        self._flights: dict[str, _Flight] = {}
        #: Keys whose pinned record went stale (a fresher one was
        #: published); the next ``fetch_record`` get re-asks the store
        #: under a record-upgrade flight instead of serving the entry.
        self._stale_records: set[str] = set()
        self._lock = threading.Lock()
        self._hits = 0
        self._builds = 0
        self._joins = 0
        self._record_fetches = 0

    def _satisfies(
        self, artifact: ScriptArtifact, want_record: bool, key: str
    ) -> bool:
        if want_record and key in self._stale_records:
            return False
        return artifact.record_fetched or not want_record

    def get_or_build(
        self, filename: str, source: str, fetch_record: bool = False
    ) -> "tuple[ScriptArtifact, bool]":
        """Return ``(artifact, frontend_skipped)`` for one script.

        ``fetch_record=True`` guarantees the returned artifact has had a
        record-store fetch attempted (performing one, once, if the cached
        artifact was built without).  Exceptions from the underlying
        build (e.g. :class:`~repro.lang.errors.JSLSyntaxError`) propagate
        to the building thread *and* to every joiner of that flight;
        failed builds are not cached, so a later call retries.
        """
        key = f"{filename}:{source_hash(source)}"
        want_record = fetch_record and self.builder.record_store is not None
        while True:
            with self._lock:
                artifact = self._entries.get(key)
                if artifact is not None and self._satisfies(
                    artifact, want_record, key
                ):
                    self._hits += 1
                    self.builder.code_cache.note_hit()
                    return artifact, True
                flight = self._flights.get(key)
                if flight is None:
                    flight = _Flight()
                    self._flights[key] = flight
                    base = artifact  # None on a true cold start
                    break  # this thread owns the build
            # Another thread is building this script: join its flight.
            flight.event.wait()
            if flight.error is not None:
                raise flight.error
            published = flight.artifact
            if published is not None and self._satisfies(
                published, want_record, key
            ):
                with self._lock:
                    self._joins += 1
                self.builder.code_cache.note_hit()
                return published, True
            # The flight we joined didn't fetch the record we need (or
            # resolved emptily); loop to upgrade it under a new flight.

        return self._run_flight(key, flight, base, filename, source, want_record)

    def _run_flight(
        self,
        key: str,
        flight: _Flight,
        base: "ScriptArtifact | None",
        filename: str,
        source: str,
        want_record: bool,
    ) -> "tuple[ScriptArtifact, bool]":
        # Invariant on entry: either base is None (cold start: compile)
        # or base lacks a fetched record and want_record is True
        # (record-upgrade: reuse base's *generic* code, fetch only —
        # re-specializing base's quickened clone against a newer record
        # would stack stale typed ops under the new record's feedback).
        try:
            artifact, hit = self.builder.build(
                filename,
                source,
                fetch_record=want_record,
                code=(
                    (base.generic_code or base.code)
                    if base is not None
                    else None
                ),
            )
            with self._lock:
                self._entries[key] = artifact
                self._builds += 1
                if artifact.record_fetched:
                    self._record_fetches += 1
                    self._stale_records.discard(key)
                flight.artifact = artifact
                self._flights.pop(key, None)
                flight.event.set()
            return artifact, hit
        except BaseException as exc:
            with self._lock:
                flight.error = exc
                self._flights.pop(key, None)
                flight.event.set()
            raise

    def get_many(
        self,
        scripts: "typing.Sequence[tuple[str, str]]",
        fetch_record: bool = False,
    ) -> "list[tuple[ScriptArtifact, bool]]":
        """Artifacts for a whole workload, in script order."""
        return [
            self.get_or_build(filename, source, fetch_record=fetch_record)
            for filename, source in scripts
        ]

    def invalidate(self, filename: str, source: str) -> bool:
        """Drop one artifact entirely (source semantics changed, or tests
        forcing a rebuild).  Returns True if present."""
        key = f"{filename}:{source_hash(source)}"
        with self._lock:
            self._stale_records.discard(key)
            return self._entries.pop(key, None) is not None

    def refresh_record(self, filename: str, source: str) -> bool:
        """Mark one artifact's pinned record stale — a fresher record was
        published — without dropping the compiled artifact.  The next
        ``fetch_record`` get runs a record-upgrade flight: one store GET,
        no recompile, and any quickened code is rebuilt from the
        artifact's *generic* tree against the new record (reapplying the
        stale specialization would let demoted sites keep their typed
        opcodes).  Returns True if an entry was marked."""
        key = f"{filename}:{source_hash(source)}"
        with self._lock:
            if key not in self._entries:
                return False
            self._stale_records.add(key)
            return True

    def stats(self) -> ArtifactCacheStats:
        with self._lock:
            return ArtifactCacheStats(
                hits=self._hits,
                builds=self._builds,
                joins=self._joins,
                record_fetches=self._record_fetches,
                extra={"entries": len(self._entries)},
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
