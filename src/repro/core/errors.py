"""Typed abort taxonomy for governed executions.

A governed run (one with an :class:`~repro.core.budget.ExecutionBudget`
or a :class:`~repro.core.budget.CancelToken`) can be stopped by the VM
mid-dispatch.  Those stops are *host* decisions, not guest errors: they
must never be catchable by guest ``try``/``catch`` (a runaway program
could otherwise swallow its own termination), so none of these types
descend from the guest-visible :class:`~repro.lang.errors.JSLError`
hierarchy or from the in-flight :class:`~repro.interpreter.frames.GuestThrow`.

The taxonomy is one abstract root with one concrete class per failure
class, each carrying a stable ``reason`` tag that maps 1:1 onto the
``budget_aborts_<reason>`` counters and onto ``ric-run`` exit codes:

* :class:`StepBudgetExceeded` — ``reason="steps"``: dispatch-step budget.
* :class:`HeapBudgetExceeded` — ``reason="heap"``: heap bytes/objects.
* :class:`DepthBudgetExceeded` — ``reason="depth"``: frame-depth budget.
* :class:`DeadlineExceeded` — ``reason="deadline"``: wall-clock deadline.
* :class:`Cancelled` — ``reason="cancelled"``: cooperative cancellation.

``Engine.run`` catches :class:`ExecutionAborted`, counts the abort,
attaches the partial :class:`~repro.stats.profile.RunProfile` as
``error.profile`` (so callers can inspect counters of the interrupted
run), and re-raises.  The engine itself stays usable: the next ``run``
on the same engine behaves normally.
"""

from __future__ import annotations


class ExecutionAborted(Exception):
    """Abstract root: a governed execution was stopped by the host.

    ``reason`` is a stable machine-readable tag; subclasses override it.
    ``profile`` is attached by ``Engine.run`` before re-raising.
    """

    reason = "aborted"

    def __init__(self, message: str):
        super().__init__(message)
        self.message = message
        #: Partial RunProfile of the interrupted run (set by Engine.run).
        self.profile = None


class Cancelled(ExecutionAborted):
    """The run's :class:`~repro.core.budget.CancelToken` was triggered."""

    reason = "cancelled"


class BudgetExceeded(ExecutionAborted):
    """Abstract: some dimension of the ExecutionBudget ran out."""

    reason = "budget"


class StepBudgetExceeded(BudgetExceeded):
    """The run dispatched more bytecodes than ``max_steps`` allows."""

    reason = "steps"


class HeapBudgetExceeded(BudgetExceeded):
    """The simulated heap grew past ``max_heap_bytes``/``max_heap_objects``."""

    reason = "heap"


class DepthBudgetExceeded(BudgetExceeded):
    """A guest call would exceed ``max_frame_depth`` frames."""

    reason = "depth"


class DeadlineExceeded(BudgetExceeded):
    """The run's wall-clock deadline (``deadline_ms``) passed."""

    reason = "deadline"


#: reason tag -> exception class (one entry per concrete abort class;
#: the chaos suite iterates this).
ABORT_CLASSES: dict[str, type] = {
    cls.reason: cls
    for cls in (
        StepBudgetExceeded,
        HeapBudgetExceeded,
        DepthBudgetExceeded,
        DeadlineExceeded,
        Cancelled,
    )
}
