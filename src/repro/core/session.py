"""The session layer: all per-run mutable state, behind one object.

A :class:`RunSession` is one execution of one workload.  It owns
everything that must be private to a run — the
:class:`~repro.runtime.context.Runtime` (heap, hidden classes, global
object), the :class:`~repro.ic.icvector.FeedbackState` (IC vectors),
the :class:`~repro.stats.counters.Counters`, the reuse session(s), and
the budget — and consumes shared, immutable
:class:`~repro.core.artifacts.ScriptArtifact` instances for everything
run-invariant.  Because a session touches no engine-global mutable
state during :meth:`execute` (the code cache and record store are only
consulted at artifact-build time, before the session exists), any
number of sessions over the same artifacts can run concurrently.

The split mirrors the legacy ``Engine.run`` body exactly — same
operation order, same counters, same abort semantics — so the facade's
behaviour is byte-for-byte what it was when engine and session were one
object.  Construction is the pre-flight (runtime creation, feedback
registration, heap charges for bytecode, record admission, reuse-
session wiring); :meth:`execute` is the measured run (builtins, VM,
profile).  Extraction (:meth:`extract_icrecord`,
:meth:`extract_per_script_records`) reads the session, so callers no
longer reach into engine privates — the session *is* the "last run"
handle the engine hands out.
"""

from __future__ import annotations

import time
import typing

from repro.core.budget import CancelToken, ExecutionBudget
from repro.core.config import RICConfig
from repro.core.errors import ExecutionAborted
from repro.ic.icvector import FeedbackState
from repro.ic.miss import ICRuntime
from repro.interpreter.vm import VM
from repro.ric.errors import CorruptRecord, RecordFormatError
from repro.ric.extraction import extract_icrecord
from repro.ric.icrecord import ICRecord
from repro.ric.reuse import MultiReuseSession, ReuseSession
from repro.ric.validate import validate_record
from repro.runtime.builtins import install_builtins
from repro.runtime.context import Runtime
from repro.specialize.quicken import (
    count_specialized_sites,
    merge_site_feedback,
    quicken_code,
)
from repro.stats.counters import Counters
from repro.stats.profile import RunProfile

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.core.artifacts import ScriptArtifact


def admit_record(
    candidate: "ICRecord | CorruptRecord",
    config: RICConfig,
    counters: Counters,
) -> "ICRecord | None":
    """Gate one candidate record before a ReuseSession may be built.

    Returns the record if trustworthy, else None after counting the
    degradation (or raising, under ``strict_validation``).
    """
    if isinstance(candidate, CorruptRecord):
        if config.strict_validation:
            raise RecordFormatError(
                f"corrupt ICRecord from {candidate.source}: {candidate.error}"
            )
        counters.ric_records_corrupt += 1
        return None
    if not isinstance(candidate, ICRecord):
        raise TypeError(
            "icrecord entries must be ICRecord or CorruptRecord, "
            f"got {type(candidate).__name__}"
        )
    problems = validate_record(candidate)
    if problems:
        if config.strict_validation:
            raise RecordFormatError(
                f"invalid ICRecord ({len(problems)} problems): "
                + "; ".join(problems[:5])
            )
        counters.ric_records_rejected += 1
        return None
    return candidate


class RunSession:
    """One run's mutable world, built over shared immutable artifacts.

    ``artifacts`` is a sequence of ``(artifact, frontend_skipped)``
    pairs as returned by
    :meth:`~repro.core.artifacts.ArtifactCache.get_or_build`; the flags
    become this run's ``bytecode_cache_hits``/``misses`` counters (a
    per-session tally — global cache deltas are meaningless once runs
    overlap).
    """

    def __init__(
        self,
        artifacts: "typing.Sequence[tuple[ScriptArtifact, bool]]",
        config: RICConfig,
        seed: int,
        name: str = "workload",
        icrecord: (
            "ICRecord | CorruptRecord | "
            "typing.Sequence[ICRecord | CorruptRecord] | None"
        ) = None,
        counters: Counters | None = None,
        tracer=None,
        time_source: typing.Callable[[], float] | None = None,
        budget: ExecutionBudget | None = None,
        cancel_token: CancelToken | None = None,
    ):
        self.config = config
        self.name = name
        self.seed = seed
        self.tracer = tracer
        self.time_source = time_source
        self.cancel_token = cancel_token
        self.counters = counters if counters is not None else Counters()
        self.artifacts = [artifact for artifact, _ in artifacts]
        self.scripts = [(a.filename, a.source) for a in self.artifacts]
        #: Per-session frontend-skip accounting (the cache-hit flags of
        #: this run's artifacts, in script order).
        self.code_cache_hits = sum(1 for _, hit in artifacts if hit)
        self.code_cache_misses = sum(1 for _, hit in artifacts if not hit)
        self.profile: RunProfile | None = None
        self._executed = False

        counters_ = self.counters
        self.runtime = Runtime(seed=seed)
        self.feedback = FeedbackState()

        self._reuse_session: "ReuseSession | MultiReuseSession | None" = None

        def on_hidden_class_created(hc) -> None:
            counters_.hidden_classes_created += 1
            if tracer is not None:
                from repro.stats.tracing import HC_CREATED

                tracer.emit(
                    HC_CREATED, site_key=hc.creation_key, hc_index=hc.index
                )
            if self._reuse_session is not None:
                self._reuse_session.on_hidden_class_created(hc)

        self.runtime.hidden_classes.on_created = on_hidden_class_created

        self.mode = "reuse-ric" if icrecord is not None else "initial"

        # Candidate records are admitted (structurally validated) first:
        # both the quickening pass and the reuse preloader below may only
        # consume trusted records.  A corrupt or invalid record degrades
        # to cold-start for that record only.
        admitted: list[ICRecord] = []
        if icrecord is not None:
            if isinstance(icrecord, (ICRecord, CorruptRecord)):
                candidates = [icrecord]
            else:
                candidates = list(icrecord)
            admitted = [
                record
                for candidate in candidates
                if (record := admit_record(candidate, config, counters_))
                is not None
            ]

        # Pick each script's executable tree.  Artifacts quickened at
        # build time (``generic_code`` set) are shared as-is across every
        # consuming session; otherwise, when specialization is on and a
        # trusted record carries feedback for this script, quicken a
        # session-local clone now.  The generic tree always survives
        # untouched — it is what deopt patches back, one site at a time.
        self.script_keys: list[str] = [a.key for a in self.artifacts]
        self.exec_codes = []
        for artifact in self.artifacts:
            code = artifact.code
            if artifact.generic_code is not None:
                if not config.specialize:
                    code = artifact.generic_code
            elif config.specialize and admitted:
                trusted_records = [
                    record
                    for record in admitted
                    if artifact.key in record.script_keys
                ]
                if trusted_records:
                    feedback_map = merge_site_feedback(trusted_records)
                    code, _ = quicken_code(artifact.code, feedback_map)
            self.exec_codes.append(code)

        # Register every script's feedback vectors *before* builtins are
        # created: builtin validation may preload sites anywhere in the
        # workload.  Heap charges mirror what compilation would book
        # (quickening is 1:1, so the charge is identical either way).
        for code in self.exec_codes:
            self.feedback.register_script(code)
            for nested in code.iter_code_objects():
                self.runtime.heap.charge(
                    "bytecode",
                    16 * len(nested.instructions)
                    + 8 * len(nested.constants)
                    + 24 * len(nested.feedback_slots),
                )
        counters_.specialized_sites = sum(
            count_specialized_sites(code) for code in self.exec_codes
        )

        # Reuse sessions consume the admitted records, now that this
        # run's script keys are known: a record's file-bound state only
        # applies to files whose content matches what it was extracted
        # from.
        if admitted:
            trusted = set(self.script_keys)
            sessions = [
                ReuseSession(
                    record,
                    self.feedback,
                    counters_,
                    config,
                    tracer=tracer,
                    trusted_script_keys=trusted,
                )
                for record in admitted
            ]
            if len(sessions) == 1:
                self._reuse_session = sessions[0]
            else:
                # Per-script records (see repro.ric.store): one session
                # per record, each in its own HCID namespace.
                self._reuse_session = MultiReuseSession(sessions)

        self.budget = budget if budget is not None else config.execution_budget()

    @property
    def reuse_session(self) -> "ReuseSession | MultiReuseSession | None":
        return self._reuse_session

    # -- execution ----------------------------------------------------------

    def execute(self) -> RunProfile:
        """Run the workload once; a session is single-use.

        On a budget/cancellation abort the partial profile rides on the
        exception as ``error.profile`` and the session stays extractable
        (abort points are dispatch boundaries — heap, hidden classes and
        feedback vectors are never left mid-transition).
        """
        if self._executed:
            raise RuntimeError(
                "RunSession.execute() called twice; sessions are single-use"
            )
        self._executed = True
        counters = self.counters
        runtime = self.runtime

        start = time.perf_counter()
        install_builtins(runtime)
        ic_runtime = ICRuntime(
            runtime, counters, self._reuse_session, tracer=self.tracer
        )
        vm = VM(
            runtime,
            counters,
            ic_runtime,
            self.feedback,
            time_source=self.time_source,
            fastpaths=self.config.interp_fastpaths,
            budget=self.budget,
            cancel_token=self.cancel_token,
        )
        try:
            for code in self.exec_codes:
                # Uncaught guest exceptions surface from run_code as
                # JSLRuntimeError with a guest stack trace attached.
                vm.run_code(code)
        except ExecutionAborted as aborted:
            counters.record_abort(aborted.reason)
            counters.bytecode_cache_hits = self.code_cache_hits
            counters.bytecode_cache_misses = self.code_cache_misses
            aborted.profile = RunProfile(
                name=self.name,
                mode=self.mode + "-aborted",
                counters=counters,
                wall_time_ms=(time.perf_counter() - start) * 1000.0,
                heap_bytes=runtime.heap.bytes_allocated,
                console_output=list(runtime.console_output),
                scripts=self.script_keys,
                code_cache_hits=self.code_cache_hits,
                code_cache_misses=self.code_cache_misses,
            )
            self.profile = aborted.profile
            raise
        wall_time_ms = (time.perf_counter() - start) * 1000.0

        counters.bytecode_cache_hits = self.code_cache_hits
        counters.bytecode_cache_misses = self.code_cache_misses

        self.profile = RunProfile(
            name=self.name,
            mode=self.mode,
            counters=counters,
            wall_time_ms=wall_time_ms,
            heap_bytes=runtime.heap.bytes_allocated,
            console_output=list(runtime.console_output),
            scripts=self.script_keys,
            code_cache_hits=self.code_cache_hits,
            code_cache_misses=self.code_cache_misses,
        )
        return self.profile

    # -- extraction ---------------------------------------------------------

    def extract_icrecord(self) -> ICRecord:
        """Run the RIC extraction phase over this session's state."""
        return extract_icrecord(
            self.runtime,
            self.feedback,
            config=self.config,
            script_keys=self.script_keys,
        )

    def extract_per_script_records(self) -> dict:
        """Per-file ICRecords from this session (paper §9)."""
        from repro.ric.store import extract_per_script_records

        records = extract_per_script_records(
            self.runtime, self.feedback, config=self.config
        )
        # Stamp each record with its script's content identity so reuse
        # can refuse records whose source has changed.
        hash_by_filename = {
            key.split(":", 1)[0]: key for key in self.script_keys
        }
        for filename, record in records.items():
            if filename in hash_by_filename:
                record.script_keys = [hash_by_filename[filename]]
        return records
