"""Core public API: the Engine and its configuration."""

from repro.core.config import RICConfig
from repro.core.engine import Engine, Scripts, WorkloadMeasurement

__all__ = ["Engine", "RICConfig", "Scripts", "WorkloadMeasurement"]
