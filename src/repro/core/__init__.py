"""Core public API: the Engine, its configuration, and execution
governance (budgets, cancellation, and the typed abort taxonomy)."""

from repro.core.budget import BudgetMeter, CancelToken, ExecutionBudget
from repro.core.config import RICConfig
from repro.core.engine import Engine, Scripts, WorkloadMeasurement
from repro.core.errors import (
    ABORT_CLASSES,
    BudgetExceeded,
    Cancelled,
    DeadlineExceeded,
    DepthBudgetExceeded,
    ExecutionAborted,
    HeapBudgetExceeded,
    StepBudgetExceeded,
)

__all__ = [
    "ABORT_CLASSES",
    "BudgetExceeded",
    "BudgetMeter",
    "CancelToken",
    "Cancelled",
    "DeadlineExceeded",
    "DepthBudgetExceeded",
    "Engine",
    "ExecutionAborted",
    "ExecutionBudget",
    "HeapBudgetExceeded",
    "RICConfig",
    "Scripts",
    "StepBudgetExceeded",
    "WorkloadMeasurement",
]
