"""Execution budgets and cooperative cancellation for the VM.

A production engine serving many users cannot let one runaway or
adversarial program (infinite loop, allocation bomb, unbounded
recursion) pin an :class:`~repro.core.engine.Engine` forever.  This
module supplies the governance half of that contract:

* :class:`ExecutionBudget` — an immutable per-run resource envelope:
  max dispatch steps, max simulated-heap bytes/objects (read from the
  run's :class:`~repro.runtime.heap.Heap` accounting), max guest frame
  depth, and a wall-clock deadline.
* :class:`CancelToken` — thread-safe cooperative cancellation: any
  thread may call :meth:`CancelToken.cancel`; the VM notices at its
  next governance check and aborts with
  :class:`~repro.core.errors.Cancelled`.
* :class:`BudgetMeter` — the per-run mutable enforcement state the VM
  consults.  The dispatch loop checks it on an **amortized stride**
  (every ``check_stride`` dispatched bytecodes, see
  ``VM._execute_governed``), so the hot path pays one integer compare
  per dispatch and the full check (clock read, heap read, token read)
  only every N dispatches.  Frame depth is checked eagerly at call
  setup, where a comparison already exists.

Enforcement is therefore amortized: a program may overrun ``max_steps``
or its deadline by up to one stride of dispatches before the abort
lands.  Counter accounting stays exact — governed and ungoverned runs
of the same program charge identical instruction counts (the
differential suite asserts this).
"""

from __future__ import annotations

import threading
import time
import typing
from dataclasses import dataclass

from repro.core.errors import (
    Cancelled,
    DeadlineExceeded,
    HeapBudgetExceeded,
    StepBudgetExceeded,
)

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.heap import Heap

#: Default governance-check stride (dispatches between full checks).
#: Chosen by ``benchmarks/bench_budget.py``: large enough that the
#: amortized check cost disappears (< 3% dispatch-loop overhead on the
#: BENCH_interp workloads), small enough that a deadline overrun is
#: bounded by a few thousand bytecodes (well under a millisecond).
DEFAULT_CHECK_STRIDE = 2048


class CancelToken:
    """A latch another thread (or a signal handler) can set to stop a run.

    Cooperative: the VM polls it at governance checks, so cancellation
    latency is bounded by the check stride, not instantaneous.  Tokens
    are single-shot but reusable across runs until cancelled.
    """

    __slots__ = ("_event", "_reason")

    def __init__(self) -> None:
        self._event = threading.Event()
        self._reason: str | None = None

    def cancel(self, reason: str = "cancelled") -> None:
        """Request cancellation (idempotent; first reason wins)."""
        if not self._event.is_set():
            self._reason = reason
            self._event.set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()

    @property
    def reason(self) -> str | None:
        return self._reason

    def raise_if_cancelled(self) -> None:
        if self._event.is_set():
            raise Cancelled(self._reason or "cancelled")


@dataclass(frozen=True)
class ExecutionBudget:
    """Immutable resource envelope for one (or many) governed runs.

    ``None`` disables a dimension.  A budget with every dimension
    ``None`` is legal and only buys cancellation polling.

    * ``max_steps`` — dispatch-step ceiling (bytecodes executed).
    * ``max_heap_bytes`` — ceiling on ``Heap.bytes_allocated`` (which
      starts at the baseline isolate footprint, ~1.4 MB — budgets below
      that abort immediately by design).
    * ``max_heap_objects`` — ceiling on ``Heap.allocation_count``.
    * ``max_frame_depth`` — guest call-frame ceiling.  Checked eagerly
      at call setup.  Values at or above the VM's own
      ``MAX_CALL_DEPTH`` never fire (the guest RangeError wins).
    * ``deadline_ms`` — wall-clock allowance for the run, armed when
      the VM is built (i.e. at ``Engine.run`` execution start).
    * ``check_stride`` — dispatches between amortized governance checks.
    """

    max_steps: int | None = None
    max_heap_bytes: int | None = None
    max_heap_objects: int | None = None
    max_frame_depth: int | None = None
    deadline_ms: float | None = None
    check_stride: int = DEFAULT_CHECK_STRIDE

    def __post_init__(self) -> None:
        if self.check_stride < 1:
            raise ValueError("check_stride must be >= 1")
        for name in (
            "max_steps",
            "max_heap_bytes",
            "max_heap_objects",
            "max_frame_depth",
        ):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise ValueError(f"{name} must be >= 1 or None")
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise ValueError("deadline_ms must be > 0 or None")

    @property
    def is_unlimited(self) -> bool:
        """True when no dimension is bounded (cancellation-only budget)."""
        return (
            self.max_steps is None
            and self.max_heap_bytes is None
            and self.max_heap_objects is None
            and self.max_frame_depth is None
            and self.deadline_ms is None
        )


class BudgetMeter:
    """Per-run enforcement state: what the governed dispatch loop consults.

    Built by the VM from an :class:`ExecutionBudget` and/or a
    :class:`CancelToken`; one meter governs one run (the deadline is
    armed at construction).  ``note_steps`` is the amortized entry
    point; :meth:`check` is the full check, also called from the frame
    unwinder so aborts cannot be outrun by deep ``try`` nesting.
    """

    __slots__ = (
        "budget",
        "token",
        "heap",
        "stride",
        "steps_used",
        "deadline_at",
        "_clock",
    )

    def __init__(
        self,
        budget: ExecutionBudget | None,
        token: CancelToken | None,
        heap: "Heap",
        clock: typing.Callable[[], float] = time.monotonic,
    ):
        self.budget = budget if budget is not None else ExecutionBudget()
        self.token = token
        self.heap = heap
        self.stride = self.budget.check_stride
        self.steps_used = 0
        self._clock = clock
        self.deadline_at: float | None = None
        if self.budget.deadline_ms is not None:
            self.deadline_at = clock() + self.budget.deadline_ms / 1000.0

    def note_steps(self, steps: int) -> None:
        """Credit ``steps`` dispatches and run the full governance check."""
        self.steps_used += steps
        self.check()

    def note_steps_quiet(self, steps: int) -> None:
        """Credit dispatches without checking — used while an exception is
        already unwinding (a check there would mask the original error)."""
        self.steps_used += steps

    def check(self) -> None:
        """The full governance check; raises the typed abort on violation.

        Ordering is deliberate: cancellation first (an operator's stop
        beats any budget message), then the cheap integer budgets, then
        the clock read.
        """
        token = self.token
        if token is not None and token.cancelled:
            raise Cancelled(token.reason or "cancelled")
        budget = self.budget
        if budget.max_steps is not None and self.steps_used > budget.max_steps:
            raise StepBudgetExceeded(
                f"dispatch-step budget exceeded: {self.steps_used} > "
                f"{budget.max_steps} (amortized, stride {self.stride})"
            )
        heap = self.heap
        if (
            budget.max_heap_bytes is not None
            and heap.bytes_allocated > budget.max_heap_bytes
        ):
            raise HeapBudgetExceeded(
                f"heap byte budget exceeded: {heap.bytes_allocated} > "
                f"{budget.max_heap_bytes}"
            )
        if (
            budget.max_heap_objects is not None
            and heap.allocation_count > budget.max_heap_objects
        ):
            raise HeapBudgetExceeded(
                f"heap object budget exceeded: {heap.allocation_count} > "
                f"{budget.max_heap_objects}"
            )
        if self.deadline_at is not None and self._clock() > self.deadline_at:
            raise DeadlineExceeded(
                f"wall-clock deadline of {budget.deadline_ms} ms exceeded"
            )
