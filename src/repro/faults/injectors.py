"""Corruption injectors for persisted ICRecords.

Each injector takes the serialized on-disk bytes of a record (the
checksummed envelope written by :func:`repro.ric.serialize.save_icrecord`
or :meth:`repro.ric.store.RecordStore.put`) and returns a damaged
version.  Two families, matching the two defense layers:

* **byte-level** faults (truncation, bit flips, handler swaps *without*
  re-checksumming) model crashes and storage rot — the checksum layer
  must catch them;
* **semantic** faults re-dump the mutated payload *with a fresh, correct
  checksum* (``rewrap``) — they model records written by a buggy or
  incompatible engine, and only the structural validation layer
  (:func:`repro.ric.validate.validate_record` or the version gate) can
  catch them.

All injectors are deterministic given the supplied ``random.Random`` so
chaos runs are replayable from a seed.
"""

from __future__ import annotations

import json
import random
import typing

#: Signature shared by every injector.
Injector = typing.Callable[[bytes, random.Random], bytes]


def _unwrap(data: bytes) -> dict:
    envelope = json.loads(data.decode("utf-8"))
    if not isinstance(envelope, dict) or not isinstance(envelope.get("record"), dict):
        raise ValueError("injector needs a well-formed envelope to mutate")
    return envelope


def _rewrap(envelope: dict) -> bytes:
    """Re-dump a mutated envelope with a *correct* checksum, so only
    structural validation can reject it."""
    from repro.ric.serialize import payload_checksum

    envelope["checksum"] = payload_checksum(envelope["record"])
    return json.dumps(envelope).encode("utf-8")


def truncate(data: bytes, rng: random.Random) -> bytes:
    """Crash mid-write on a non-atomic filesystem: keep only a prefix."""
    if len(data) < 2:
        return b""
    return data[: rng.randrange(1, len(data))]


def flip_bits(data: bytes, rng: random.Random, count: int = 8) -> bytes:
    """Storage rot: flip ``count`` random bits anywhere in the file."""
    if not data:
        return data
    damaged = bytearray(data)
    for _ in range(count):
        position = rng.randrange(len(damaged))
        damaged[position] ^= 1 << rng.randrange(8)
    return bytes(damaged)


def handler_swap(data: bytes, rng: random.Random) -> bytes:
    """Swap two handler-store entries *without* fixing the checksum: the
    record still parses and is structurally plausible, but preloading it
    would install the wrong handler at a site — only the checksum layer
    stands between this fault and wrong program results."""
    envelope = _unwrap(data)
    handlers = envelope["record"].get("handlers")
    if isinstance(handlers, list) and len(handlers) >= 2:
        first, second = rng.sample(range(len(handlers)), 2)
        handlers[first], handlers[second] = handlers[second], handlers[first]
    else:
        # Too few handlers to swap: smuggle in a context-dependent one.
        envelope["record"].setdefault("handlers", []).append(
            {"kind": "store_transition", "offset": 0}
        )
    return json.dumps(envelope).encode("utf-8")


def field_mutation(data: bytes, rng: random.Random) -> bytes:
    """A buggy writer: mutate one structural field and re-checksum, so
    only ``validate_record`` can reject the result."""
    envelope = _unwrap(data)
    payload = envelope["record"]
    mutations = []
    if payload.get("hcvt"):
        mutations.append(lambda: payload["hcvt"][0].pop("dependents", None))
        mutations.append(
            lambda: payload["hcvt"][-1].__setitem__("hcid", "not-an-int")
        )
    if payload.get("handlers"):
        mutations.append(
            lambda: payload["handlers"][0].__setitem__("kind", "load_proto_chain")
        )
    mutations.append(lambda: payload.__setitem__("extraction_time_ms", -1.0))
    rng.choice(mutations)()
    return _rewrap(envelope)


def stale_version(data: bytes, rng: random.Random) -> bytes:
    """A record from an older engine: version field behind the current
    format, checksum otherwise intact."""
    envelope = _unwrap(data)
    envelope["record"]["version"] = 1
    return _rewrap(envelope)


def out_of_range_hcid(data: bytes, rng: random.Random) -> bytes:
    """A TOAST pair pointing past the HCVT — would index out of bounds at
    validation time if trusted."""
    envelope = _unwrap(data)
    payload = envelope["record"]
    toast = payload.get("toast") or {}
    rows = len(payload.get("hcvt") or [])
    for pairs in toast.values():
        if pairs:
            pairs[0][2] = rows + rng.randrange(1, 100)
            break
    else:
        payload["toast"] = {"builtin:EmptyObject": [[None, None, rows + 7]]}
    return _rewrap(envelope)


def out_of_range_handler_id(data: bytes, rng: random.Random) -> bytes:
    """An HCVT dependent referencing a handler the store doesn't hold."""
    envelope = _unwrap(data)
    payload = envelope["record"]
    num_handlers = len(payload.get("handlers") or [])
    bogus = num_handlers + rng.randrange(1, 100)
    for row in payload.get("hcvt") or []:
        if row.get("dependents"):
            row["dependents"][0][1] = bogus
            break
    else:
        if payload.get("hcvt"):
            payload["hcvt"][0]["dependents"] = [["x.jsl:1:1:named_load", bogus]]
        else:
            payload["hcvt"] = [
                {
                    "hcid": 0,
                    "dependents": [["x.jsl:1:1:named_load", bogus]],
                    "cd_dependent_sites": [],
                }
            ]
    return _rewrap(envelope)


#: Every fault class the chaos suite must prove harmless, by name.
FAULTS: dict[str, Injector] = {
    "truncation": truncate,
    "bit_flip": flip_bits,
    "field_mutation": field_mutation,
    "stale_version": stale_version,
    "handler_swap": handler_swap,
    "out_of_range_hcid": out_of_range_hcid,
    "out_of_range_handler_id": out_of_range_handler_id,
}


def inject_fault(path, fault: "str | Injector", rng: random.Random) -> None:
    """Corrupt the record file at ``path`` in place with ``fault``."""
    from pathlib import Path

    injector = FAULTS[fault] if isinstance(fault, str) else fault
    target = Path(path)
    target.write_bytes(injector(target.read_bytes(), rng))
