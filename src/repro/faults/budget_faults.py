"""Runaway-program generators for the execution-governance chaos suite.

The governance contract of :mod:`repro.core.budget` is falsifiable the
same way the persistence contract is: for *every* runaway class here, a
budgeted run must terminate with the right typed
:class:`~repro.core.errors.ExecutionAborted` subclass, bump exactly the
matching ``budget_aborts_*`` counter, and leave the engine fully usable
for the next run.  ``tests/test_budget.py`` asserts exactly that.

Each fault is a *program generator* (jsl source text) plus the budget
that should stop it and the abort class it must produce.  The programs
are deliberately open-ended — an unbudgeted engine would spin on them
for a very long time — so the generators also accept a bound for the
rare test that wants a terminating variant.
"""

from __future__ import annotations

import typing
from dataclasses import dataclass, field

from repro.core.errors import (
    DeadlineExceeded,
    DepthBudgetExceeded,
    ExecutionAborted,
    HeapBudgetExceeded,
    StepBudgetExceeded,
)


def runaway_loop(iterations: int | None = None) -> str:
    """A tight counting loop: unbounded dispatch, no allocation."""
    bound = "true" if iterations is None else f"i < {iterations}"
    return f"var i = 0;\nwhile ({bound}) {{ i = i + 1; }}\n"


def alloc_bomb(iterations: int | None = None) -> str:
    """An allocation storm: every iteration creates fresh objects whose
    properties force hidden-class transitions and heap growth."""
    bound = "true" if iterations is None else f"i < {iterations}"
    return (
        "var i = 0;\n"
        "var keep = [];\n"
        f"while ({bound}) {{\n"
        "  var box = {a: i, b: i + 1, c: i + 2};\n"
        "  keep[i % 1024] = [box, {d: box}];\n"
        "  i = i + 1;\n"
        "}\n"
    )


def deep_recursion(depth: int | None = None) -> str:
    """Unbounded self-recursion: each call pushes a frame (and would hit
    the VM's own MAX_CALL_DEPTH RangeError if the budget didn't fire
    first — the chaos suite budgets *below* that ceiling)."""
    bound = "true" if depth is None else f"n < {depth}"
    return (
        "function dive(n) {\n"
        f"  if ({bound}) {{ return dive(n + 1); }}\n"
        "  return n;\n"
        "}\n"
        "dive(0);\n"
    )


@dataclass(frozen=True)
class BudgetFault:
    """One runaway class: the program, the budget that stops it, and the
    abort the governance layer must produce."""

    name: str
    source: typing.Callable[[], str]
    #: kwargs for :class:`~repro.core.budget.ExecutionBudget`.
    budget_kwargs: dict = field(default_factory=dict)
    expected: type[ExecutionAborted] = ExecutionAborted
    #: The ``budget_aborts_*`` counter this abort must bump.
    counter: str = ""


#: The chaos matrix: every runaway class, every governance dimension.
BUDGET_FAULTS: list[BudgetFault] = [
    BudgetFault(
        name="runaway-loop-steps",
        source=runaway_loop,
        budget_kwargs={"max_steps": 50_000},
        expected=StepBudgetExceeded,
        counter="budget_aborts_steps",
    ),
    BudgetFault(
        name="runaway-loop-deadline",
        source=runaway_loop,
        budget_kwargs={"deadline_ms": 80.0, "check_stride": 512},
        expected=DeadlineExceeded,
        counter="budget_aborts_deadline",
    ),
    BudgetFault(
        name="alloc-bomb-heap-bytes",
        source=alloc_bomb,
        budget_kwargs={"max_heap_bytes": 4_000_000, "check_stride": 256},
        expected=HeapBudgetExceeded,
        counter="budget_aborts_heap",
    ),
    BudgetFault(
        name="alloc-bomb-heap-objects",
        source=alloc_bomb,
        budget_kwargs={"max_heap_objects": 20_000, "check_stride": 256},
        expected=HeapBudgetExceeded,
        counter="budget_aborts_heap",
    ),
    BudgetFault(
        name="deep-recursion-depth",
        source=deep_recursion,
        budget_kwargs={"max_frame_depth": 64},
        expected=DepthBudgetExceeded,
        counter="budget_aborts_depth",
    ),
    BudgetFault(
        name="alloc-bomb-steps",
        source=alloc_bomb,
        budget_kwargs={"max_steps": 50_000},
        expected=StepBudgetExceeded,
        counter="budget_aborts_steps",
    ),
]
