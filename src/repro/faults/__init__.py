"""Fault injection for the ICRecord persistence path.

The hardening contract of :mod:`repro.ric` is falsifiable: for *every*
fault class in :data:`FAULTS`, a Reuse run fed the damaged artifact must
produce output identical to a cold start, raise nothing, and show the
degradation in its counters.  ``tests/test_faults.py`` asserts exactly
that, using these injectors and :class:`FaultyRecordStore`.
"""

from repro.faults.budget_faults import (
    BUDGET_FAULTS,
    BudgetFault,
    alloc_bomb,
    deep_recursion,
    runaway_loop,
)
from repro.faults.faulty_store import FaultyRecordStore
from repro.faults.socket_faults import (
    SOCKET_FAULTS,
    FlakySocketProxy,
    kill_shard,
)
from repro.faults.injectors import (
    FAULTS,
    Injector,
    field_mutation,
    flip_bits,
    handler_swap,
    inject_fault,
    out_of_range_handler_id,
    out_of_range_hcid,
    stale_version,
    truncate,
)

__all__ = [
    "BUDGET_FAULTS",
    "BudgetFault",
    "FAULTS",
    "FaultyRecordStore",
    "alloc_bomb",
    "deep_recursion",
    "runaway_loop",
    "FlakySocketProxy",
    "Injector",
    "SOCKET_FAULTS",
    "field_mutation",
    "flip_bits",
    "handler_swap",
    "inject_fault",
    "kill_shard",
    "out_of_range_handler_id",
    "out_of_range_hcid",
    "stale_version",
    "truncate",
]
