"""A RecordStore wrapper that damages what it persists.

:class:`FaultyRecordStore` behaves exactly like a directory-backed
:class:`~repro.ric.store.RecordStore` except that, with configurable
probability, it corrupts each entry's on-disk bytes *after* the atomic
write — simulating an environment where the storage layer itself is
untrustworthy.  Chaos tests point a fresh, honest ``RecordStore`` at the
same directory and assert the damage is quarantined, counted, and never
changes program output.
"""

from __future__ import annotations

import random
from pathlib import Path

from repro.faults.injectors import FAULTS, Injector
from repro.ric.icrecord import ICRecord
from repro.ric.store import RecordStore


class FaultyRecordStore(RecordStore):
    """Injects one fault class into a fraction of persisted entries."""

    def __init__(
        self,
        directory: str | Path,
        fault: "str | Injector",
        probability: float = 1.0,
        seed: int = 0,
        quarantine: bool = True,
    ):
        super().__init__(directory=directory, quarantine=quarantine)
        self._injector = FAULTS[fault] if isinstance(fault, str) else fault
        self._probability = probability
        self._rng = random.Random(seed)
        #: Filenames whose on-disk bytes were damaged, for assertions.
        self.injected: list[str] = []

    def put(self, filename: str, source: str, record: ICRecord) -> None:
        super().put(filename, source, record)
        if self._directory is None:
            return
        if self._rng.random() >= self._probability:
            return
        path = self._path_for_key(self._key(filename, source))
        path.write_bytes(self._injector(path.read_bytes(), self._rng))
        self.injected.append(path.name)
