"""Socket-level fault injection for the record-cache daemon path.

:class:`FlakySocketProxy` sits between a :class:`~repro.server.client.
RemoteRecordStore` and a real ricd daemon on a second unix socket,
forwarding traffic while injecting one transport fault class — the three
ways a network hop actually fails, as opposed to the *content* faults of
:mod:`repro.faults.injectors`:

* ``disconnect`` — drop the connection after forwarding a few response
  bytes (a daemon crash / SIGKILL mid-reply: the client sees EOF inside
  a frame);
* ``garbage`` — replace the daemon's response with bytes that are not a
  well-formed frame (a corrupted or hostile server: the length prefix
  lies, the body is noise);
* ``slow`` — delay the response past the client's socket timeout (an
  overloaded daemon: the client must cut its losses, not stall the run).

The chaos suite points a client at the proxy and asserts the PR 1
degradation contract one layer up: identical program output, no
exception, ``ric_remote_fallbacks`` visibly bumped.

Faults fire with probability ``probability`` per *response*, driven by a
seeded ``random.Random`` so runs are replayable.
"""

from __future__ import annotations

import random
import socket
import threading
import time
from pathlib import Path

#: The transport fault classes the chaos suite must prove harmless.
SOCKET_FAULTS = ("disconnect", "garbage", "slow")


class FlakySocketProxy:
    """A unix-socket proxy that injects transport faults into responses."""

    def __init__(
        self,
        listen_path: str | Path,
        upstream_path: str | Path,
        fault: str,
        probability: float = 1.0,
        seed: int = 0,
        slow_delay_s: float = 2.0,
    ):
        if fault not in SOCKET_FAULTS:
            raise ValueError(f"unknown socket fault {fault!r}")
        self.listen_path = Path(listen_path)
        self.upstream_path = str(upstream_path)
        self.fault = fault
        self.probability = probability
        self.slow_delay_s = slow_delay_s
        self._rng = random.Random(seed)
        self._rng_lock = threading.Lock()
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._stop = threading.Event()
        #: How many responses were tampered with, for assertions.
        self.injected = 0

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        if self._listener is not None:
            raise RuntimeError("proxy already started")
        if self.listen_path.exists():
            self.listen_path.unlink()
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        listener.bind(str(self.listen_path))
        listener.listen(16)
        listener.settimeout(0.2)
        self._listener = listener
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="flaky-proxy", daemon=True
        )
        self._accept_thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
            self._accept_thread = None
        if self._listener is not None:
            self._listener.close()
            self._listener = None
        if self.listen_path.exists():
            try:
                self.listen_path.unlink()
            except OSError:  # pragma: no cover
                pass

    def __enter__(self) -> "FlakySocketProxy":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- forwarding ----------------------------------------------------------

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._stop.is_set():
            try:
                client, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            threading.Thread(
                target=self._serve_connection, args=(client,), daemon=True
            ).start()

    def _serve_connection(self, client: socket.socket) -> None:
        try:
            upstream = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            upstream.connect(self.upstream_path)
        except OSError:
            client.close()
            return
        client.settimeout(0.2)
        upstream.settimeout(0.2)
        try:
            while not self._stop.is_set():
                request = _pump_one(client, upstream)
                if request is None:
                    return
                response = _read_available(upstream)
                if response is None:
                    return
                if not self._inject(client, response):
                    return
        finally:
            client.close()
            upstream.close()

    def _inject(self, client: socket.socket, response: bytes) -> bool:
        """Forward (possibly tampered) response; False = drop connection."""
        with self._rng_lock:
            fire = self._rng.random() < self.probability
        if not fire:
            try:
                client.sendall(response)
            except OSError:
                return False
            return True
        self.injected += 1
        if self.fault == "disconnect":
            try:
                client.sendall(response[: max(1, len(response) // 3)])
            except OSError:
                pass
            return False
        if self.fault == "garbage":
            with self._rng_lock:
                noise = bytes(self._rng.randrange(256) for _ in range(64))
            try:
                # A length prefix that promises far more than follows.
                client.sendall(b"\xff\xff\xff\xf0" + noise)
            except OSError:
                pass
            return False
        # slow: hold the response past the client's timeout, then give up
        # the connection (the client has already walked away).
        time.sleep(self.slow_delay_s)
        try:
            client.sendall(response)
        except OSError:
            pass
        return False


def _read_whole_frame(sock: socket.socket) -> bytes | None:
    """Read one complete length-prefixed frame (header + body) as raw
    bytes; None on EOF, timeout, or a mid-frame surprise."""
    import struct

    try:
        header = b""
        while len(header) < 4:
            chunk = sock.recv(4 - len(header))
            if not chunk:
                return None
            header += chunk
        (length,) = struct.unpack(">I", header)
        if length > 32 * 1024 * 1024:
            return None
        body = b""
        while len(body) < length:
            chunk = sock.recv(min(length - len(body), 65536))
            if not chunk:
                return None
            body += chunk
    except (socket.timeout, OSError):
        return None
    return header + body


def _pump_one(client: socket.socket, upstream: socket.socket) -> bytes | None:
    """Forward one client→daemon request frame; None on EOF/timeout."""
    frame = _read_whole_frame(client)
    if frame is None:
        return None
    try:
        upstream.sendall(frame)
    except OSError:
        return None
    return frame


def _read_available(upstream: socket.socket) -> bytes | None:
    """Read the daemon's one response frame to the forwarded request."""
    return _read_whole_frame(upstream)
