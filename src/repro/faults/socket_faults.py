"""Socket-level fault injection for the record-cache daemon path.

:class:`FlakySocketProxy` sits between a :class:`~repro.server.client.
RemoteRecordStore` and a real ricd daemon, forwarding traffic while
injecting one transport fault class — the ways a network hop actually
fails, as opposed to the *content* faults of
:mod:`repro.faults.injectors`:

* ``disconnect`` — drop the connection after forwarding a few response
  bytes (a daemon crash / SIGKILL mid-reply: the client sees EOF inside
  a frame);
* ``garbage`` — replace the daemon's response with bytes that are not a
  well-formed frame (a corrupted or hostile server: the length prefix
  lies, the body is noise);
* ``slow`` — delay the response past the client's socket timeout (an
  overloaded daemon — the *slow-shard* injector: the client must cut
  its losses, not stall the run);
* ``partition`` — black-hole the request: accept it, forward nothing,
  answer nothing (a network partition between client and shard: the
  client times out with the daemon alive and well on the far side).

Both ends speak either transport: ``listen``/``upstream`` are endpoint
specs (unix path or ``HOST:PORT``, see
:func:`repro.server.protocol.parse_endpoint`), so one proxy can sit in
front of a unix-socket daemon or a TCP shard of a fleet.  The fault is
*mutable mid-run* (:meth:`set_fault`/:meth:`clear_fault`), which is how
the fleet chaos suite degrades one shard at a specific point in a run;
``fault=None`` makes the proxy a transparent pass-through until armed.

For whole-shard failures there is :func:`kill_shard`: an abrupt stop of
an in-process :class:`~repro.server.daemon.RecordCacheDaemon` (listener
torn down, no drain), the test-harness equivalent of SIGKILL.

The chaos suites point clients at these injectors and assert the PR 1
degradation contract one layer up: identical program output, no
exception, only ``ric_remote_*`` counters move.

Faults fire with probability ``probability`` per *request/response*,
driven by a seeded ``random.Random`` so runs are replayable.
"""

from __future__ import annotations

import random
import socket
import threading
import time
from pathlib import Path

from repro.server import protocol

#: The transport fault classes the chaos suite must prove harmless.
SOCKET_FAULTS = ("disconnect", "garbage", "slow", "partition")


def kill_shard(daemon) -> None:
    """Abruptly kill an in-process daemon: every live client connection
    severed mid-whatever, listeners closed, no drain — the harness
    equivalent of SIGKILL-ing one shard of a fleet."""
    daemon.kill()


class FlakySocketProxy:
    """A stream-socket proxy that injects transport faults, either
    transport on either side."""

    def __init__(
        self,
        listen_path: str | Path,
        upstream_path: str | Path,
        fault: "str | None",
        probability: float = 1.0,
        seed: int = 0,
        slow_delay_s: float = 2.0,
    ):
        if fault is not None and fault not in SOCKET_FAULTS:
            raise ValueError(f"unknown socket fault {fault!r}")
        self.listen_spec = str(listen_path)
        self.upstream_path = str(upstream_path)
        self._fault = fault
        self._fault_lock = threading.Lock()
        self.probability = probability
        self.slow_delay_s = slow_delay_s
        self._rng = random.Random(seed)
        self._rng_lock = threading.Lock()
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._stop = threading.Event()
        #: The dialable spec of the listener (rewritten after bind so a
        #: ``HOST:0`` TCP listen spec reports its real port).
        self.endpoint = self.listen_spec
        #: How many requests/responses were tampered with, for assertions.
        self.injected = 0

    # -- back-compat aliases (the proxy predates TCP support) ---------------

    @property
    def listen_path(self) -> Path:
        return Path(self.listen_spec)

    # -- fault control -------------------------------------------------------

    @property
    def fault(self) -> "str | None":
        with self._fault_lock:
            return self._fault

    def set_fault(self, fault: "str | None") -> None:
        """Re-arm the proxy mid-run (``None`` = pass-through)."""
        if fault is not None and fault not in SOCKET_FAULTS:
            raise ValueError(f"unknown socket fault {fault!r}")
        with self._fault_lock:
            self._fault = fault

    def clear_fault(self) -> None:
        self.set_fault(None)

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        if self._listener is not None:
            raise RuntimeError("proxy already started")
        kind, address = protocol.parse_endpoint(self.listen_spec)
        if kind == "tcp":
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind((address[0], int(address[1])))
            self.endpoint = protocol.format_endpoint(
                "tcp", listener.getsockname()[:2]
            )
        else:
            path = Path(str(address))
            if path.exists():
                path.unlink()
            listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            listener.bind(str(path))
            self.endpoint = str(path)
        listener.listen(16)
        listener.settimeout(0.2)
        self._listener = listener
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="flaky-proxy", daemon=True
        )
        self._accept_thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
            self._accept_thread = None
        if self._listener is not None:
            self._listener.close()
            self._listener = None
        kind, address = protocol.parse_endpoint(self.listen_spec)
        if kind == "unix" and Path(str(address)).exists():
            try:
                Path(str(address)).unlink()
            except OSError:  # pragma: no cover
                pass

    def __enter__(self) -> "FlakySocketProxy":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- forwarding ----------------------------------------------------------

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._stop.is_set():
            try:
                client, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            threading.Thread(
                target=self._serve_connection, args=(client,), daemon=True
            ).start()

    def _fire(self) -> "str | None":
        """The fault to inject for this exchange, or None."""
        fault = self.fault
        if fault is None:
            return None
        with self._rng_lock:
            if self._rng.random() >= self.probability:
                return None
        return fault

    def _serve_connection(self, client: socket.socket) -> None:
        try:
            upstream = protocol.connect_endpoint(self.upstream_path, 0.2)
        except OSError:
            client.close()
            return
        client.settimeout(0.2)
        upstream.settimeout(2.0)
        try:
            while not self._stop.is_set():
                # An idle client is not a fault: keep the connection open
                # (polling _stop) until a request arrives or the peer
                # hangs up for real.
                request = _read_whole_frame(client, idle_ok=True)
                if request is _IDLE:
                    continue
                if request is None:
                    return
                fault = self._fire()
                if fault == "partition":
                    # Black hole: the request never reaches the daemon
                    # and no bytes ever come back; hold the connection
                    # until the client's timeout walks away from it.
                    self.injected += 1
                    self._stop.wait(self.slow_delay_s)
                    return
                try:
                    upstream.sendall(request)
                except OSError:
                    return
                response = _read_whole_frame(upstream)
                if response is None:
                    return
                if not self._inject(client, response, fault):
                    return
        finally:
            client.close()
            upstream.close()

    def _inject(
        self, client: socket.socket, response: bytes, fault: "str | None"
    ) -> bool:
        """Forward (possibly tampered) response; False = drop connection."""
        if fault is None:
            try:
                client.sendall(response)
            except OSError:
                return False
            return True
        self.injected += 1
        if fault == "disconnect":
            try:
                client.sendall(response[: max(1, len(response) // 3)])
            except OSError:
                pass
            return False
        if fault == "garbage":
            with self._rng_lock:
                noise = bytes(self._rng.randrange(256) for _ in range(64))
            try:
                # A length prefix that promises far more than follows.
                client.sendall(b"\xff\xff\xff\xf0" + noise)
            except OSError:
                pass
            return False
        # slow: hold the response past the client's timeout, then give up
        # the connection (the client has already walked away).
        time.sleep(self.slow_delay_s)
        try:
            client.sendall(response)
        except OSError:
            pass
        return False


#: Sentinel: a read timed out before any bytes arrived (peer is merely
#: idle, not gone).
_IDLE = object()


def _read_whole_frame(sock: socket.socket, idle_ok: bool = False):
    """Read one complete length-prefixed frame (header + body) as raw
    bytes; None on EOF, timeout, or a mid-frame surprise.  With
    ``idle_ok``, a timeout before the first byte returns :data:`_IDLE`
    instead so callers can keep a quiet connection alive."""
    import struct

    header = b""
    try:
        while len(header) < 4:
            chunk = sock.recv(4 - len(header))
            if not chunk:
                return None
            header += chunk
        (length,) = struct.unpack(">I", header)
        if length > 32 * 1024 * 1024:
            return None
        body = b""
        while len(body) < length:
            chunk = sock.recv(min(length - len(body), 65536))
            if not chunk:
                return None
            body += chunk
    except socket.timeout:
        if idle_ok and not header:
            return _IDLE
        return None
    except OSError:
        return None
    return header + body
