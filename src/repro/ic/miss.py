"""The runtime IC miss path (paper §2.3/§2.4).

Every object access site first probes its ICVector slot; on a miss the
runtime is entered: it performs the full property lookup, possibly creates
a hidden class (transitioning stores), generates a specialised handler and
updates the ICVector — all of which is charged to the ``ic_miss``
instruction category, reproducing the overhead the paper's Figure 5
measures.

:class:`ICRuntime` is shared by the VM's property opcodes.  When a
RIC reuse session is attached, hidden-class creations flow to it (for
validation + dependent-site preloading) and reuse-run misses are attributed
to the paper's Table 4 buckets (Handler / Global / Other).
"""

from __future__ import annotations

import typing

from repro.interpreter import cost_model as cost
from repro.ic.handlers import (
    MISS,
    Handler,
    LoadArrayLengthHandler,
    LoadElementHandler,
    LoadFieldHandler,
    LoadGlobalHandler,
    LoadNotFoundHandler,
    LoadPrototypeChainHandler,
    StoreElementHandler,
    StoreFieldHandler,
    StoreGlobalHandler,
    StoreTransitionHandler,
)
from repro.ic.icvector import ICSite, ICState
from repro.lang.errors import JSLReferenceError
from repro.runtime.context import Runtime
from repro.runtime.objects import JSArray, JSFunction, JSObject
from repro.runtime.values import UNDEFINED
from repro.stats.counters import (
    CATEGORY_EXECUTE,
    CATEGORY_IC_MISS,
    MISS_GLOBAL,
    MISS_OTHER,
    Counters,
)

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.ric.reuse import ReuseSession


class ICRuntime:
    """Implements IC probes, hits and the runtime miss path."""

    __slots__ = (
        "runtime",
        "counters",
        "reuse_session",
        "tracer",
        "_load_field_cache",
        "_store_field_cache",
        "_load_element",
        "_store_element",
        "_load_array_length",
        "stub_cache",
    )

    def __init__(
        self,
        runtime: Runtime,
        counters: Counters,
        reuse_session: "ReuseSession | None" = None,
        tracer=None,
    ):
        self.runtime = runtime
        self.counters = counters
        self.reuse_session = reuse_session
        self.tracer = tracer
        # Context-independent handlers are structurally shared, like V8's
        # handler code cache.
        self._load_field_cache: dict[int, LoadFieldHandler] = {}
        self._store_field_cache: dict[int, StoreFieldHandler] = {}
        self._load_element = LoadElementHandler()
        self._store_element = StoreElementHandler()
        self._load_array_length = LoadArrayLengthHandler()
        # V8-style megamorphic stub cache for keyed accesses with string
        # keys: (hidden class address, property, is_store) -> handler.  Like
        # V8's, it is flushed between executions (it embeds per-run
        # addresses) — keyed accesses therefore re-miss every run, feeding
        # Table 4's dominant "Other" bucket.
        self.stub_cache: dict[tuple[int, str, bool], Handler] = {}

    # -- shared handler construction -----------------------------------------

    def load_field_handler(self, offset: int) -> LoadFieldHandler:
        handler = self._load_field_cache.get(offset)
        if handler is None:
            handler = LoadFieldHandler(offset)
            self._load_field_cache[offset] = handler
        return handler

    def store_field_handler(self, offset: int) -> StoreFieldHandler:
        handler = self._store_field_cache.get(offset)
        if handler is None:
            handler = StoreFieldHandler(offset)
            self._store_field_cache[offset] = handler
        return handler

    # -- bookkeeping helpers -----------------------------------------------------

    def _record_handler_generated(self, handler: Handler) -> None:
        self.counters.handlers_generated += 1
        if handler.is_context_independent:
            self.counters.handlers_generated_context_independent += 1
        self.counters.charge(CATEGORY_IC_MISS, cost.HANDLER_GENERATE)
        if self.tracer is not None:
            from repro.stats.tracing import HANDLER_GENERATED

            self.tracer.emit(
                HANDLER_GENERATED,
                detail=handler.describe()
                + ("" if handler.is_context_independent else " [CD]"),
            )

    def _install(self, site: ICSite, hc, handler: Handler) -> None:
        self.counters.charge(CATEGORY_IC_MISS, cost.IC_UPDATE)
        before = site.state
        site.install(hc, handler)
        after = site.state
        if after is not before:
            # Tier transitions are counted here (and in RIC preloading),
            # never in the VM fast paths — which only probe, never
            # install — so the counts match under both fast-path modes.
            if after is ICState.POLYMORPHIC:
                self.counters.ic_poly_transitions += 1
            elif after is ICState.MEGAMORPHIC:
                self.counters.ic_mega_transitions += 1
                if self.tracer is not None:
                    from repro.stats.tracing import SITE_MEGAMORPHIC

                    self.tracer.emit(SITE_MEGAMORPHIC, site_key=site.info.site_key)

    def _classify_miss(self, site: ICSite, hc) -> str:
        reason = (
            self.reuse_session.classify_miss(site, hc)
            if self.reuse_session is not None
            else MISS_OTHER
        )
        if self.tracer is not None:
            from repro.stats.tracing import IC_MISS

            self.tracer.emit(
                IC_MISS, site_key=site.info.site_key, hc_index=hc.index, detail=reason
            )
        return reason

    @staticmethod
    def _chain_cacheable(chain) -> bool:
        """A chain handler is only sound if no walked prototype is in
        dictionary mode: dictionary stores do not change the hidden class,
        so no validity cell would ever fire for them."""
        return all(not proto.in_dictionary_mode for proto, _ in chain)

    def _charge_lookup(self, obj: JSObject, hops: int) -> None:
        layout_size = (
            len(obj.dict_properties)
            if obj.dict_properties is not None
            else len(obj.hidden_class.layout)
        )
        self.counters.charge(
            CATEGORY_IC_MISS,
            cost.PROPERTY_LOOKUP_BASE
            + cost.PROPERTY_LOOKUP_PER_PROPERTY * layout_size
            + cost.PROPERTY_LOOKUP_PER_HOP * hops,
        )

    # -- named loads -----------------------------------------------------------------

    def named_load(self, site: ICSite, obj: JSObject, name: str) -> object:
        """``obj.name`` with inline caching."""
        counters = self.counters
        counters.ic_accesses += 1
        counters.charge(CATEGORY_EXECUTE, cost.IC_PROBE)

        hc = obj.hidden_class
        handler = site.lookup(hc)
        if handler is not None:
            result = handler.execute(obj)
            if result is not MISS:
                counters.ic_hits += 1
                # A slot hit implies MONO or POLY (MEGA holds no slots).
                if site.state is ICState.MONOMORPHIC:
                    counters.ic_hits_mono += 1
                else:
                    counters.ic_hits_poly += 1
                if site.was_preloaded(hc):
                    counters.ic_hits_on_preloaded += 1
                    if self.tracer is not None:
                        from repro.stats.tracing import PRELOADED_HIT

                        self.tracer.emit(
                            PRELOADED_HIT,
                            site_key=site.info.site_key,
                            hc_index=hc.index,
                        )
                counters.charge(CATEGORY_EXECUTE, cost.HANDLER_EXECUTE)
                return result

        # Megamorphic sites fall back to the shared stub cache, like V8:
        # the site itself stays generic but (map, name) pairs still hit.
        if site.state is ICState.MEGAMORPHIC:
            stub_key = (hc.address, name, False)
            cached = self.stub_cache.get(stub_key)
            if cached is not None:
                result = cached.execute(obj)
                if result is not MISS:
                    counters.ic_hits += 1
                    counters.ic_hits_mega += 1
                    counters.charge(CATEGORY_EXECUTE, cost.HANDLER_EXECUTE)
                    return result
                del self.stub_cache[stub_key]

        counters.record_miss(self._classify_miss(site, hc))
        counters.charge(CATEGORY_IC_MISS, cost.RUNTIME_ENTRY)
        lookup = self.runtime.lookup_property(obj, name)
        self._charge_lookup(obj, lookup.hops)

        new_handler: Handler | None = None
        if hc.is_dictionary:
            counters.charge(CATEGORY_IC_MISS, cost.DICT_ACCESS)
        elif lookup.kind == "field":
            assert lookup.offset is not None
            new_handler = self.load_field_handler(lookup.offset)
        elif lookup.kind == "array_length":
            new_handler = self._load_array_length
        elif lookup.kind == "proto_field":
            assert lookup.holder is not None and lookup.offset is not None
            if self._chain_cacheable(lookup.chain):
                new_handler = LoadPrototypeChainHandler(
                    lookup.chain, lookup.holder, lookup.offset
                )
        elif lookup.kind == "absent":
            if self._chain_cacheable(lookup.chain):
                new_handler = LoadNotFoundHandler(lookup.chain)
        # "dict" / "proto_dict" / dict-mode chains: uncacheable.

        if new_handler is not None:
            self._record_handler_generated(new_handler)
            if site.state is ICState.MEGAMORPHIC:
                counters.charge(CATEGORY_IC_MISS, cost.IC_UPDATE)
                self.stub_cache[(hc.address, name, False)] = new_handler
            else:
                self._install(site, hc, new_handler)
        return lookup.value

    # -- named stores -----------------------------------------------------------------

    def named_store(self, site: ICSite, obj: JSObject, name: str, value: object) -> None:
        """``obj.name = value`` with inline caching."""
        counters = self.counters
        counters.ic_accesses += 1
        counters.charge(CATEGORY_EXECUTE, cost.IC_PROBE)

        hc = obj.hidden_class
        handler = site.lookup(hc)
        if handler is not None:
            result = handler.execute(obj, value)
            if result is not MISS:
                counters.ic_hits += 1
                if site.state is ICState.MONOMORPHIC:
                    counters.ic_hits_mono += 1
                else:
                    counters.ic_hits_poly += 1
                if site.was_preloaded(hc):
                    counters.ic_hits_on_preloaded += 1
                counters.charge(CATEGORY_EXECUTE, cost.HANDLER_EXECUTE)
                if isinstance(obj, JSFunction) and name == "prototype":
                    obj.invalidate_constructor_hc()
                return

        # Megamorphic stores also use the shared stub cache (V8-like).
        if site.state is ICState.MEGAMORPHIC:
            stub_key = (hc.address, name, True)
            cached = self.stub_cache.get(stub_key)
            if cached is not None:
                result = cached.execute(obj, value)
                if result is not MISS:
                    counters.ic_hits += 1
                    counters.ic_hits_mega += 1
                    counters.charge(CATEGORY_EXECUTE, cost.HANDLER_EXECUTE)
                    if isinstance(obj, JSFunction) and name == "prototype":
                        obj.invalidate_constructor_hc()
                    return
                del self.stub_cache[stub_key]

        counters.record_miss(self._classify_miss(site, hc))
        counters.charge(CATEGORY_IC_MISS, cost.RUNTIME_ENTRY)

        if hc.is_dictionary:
            assert obj.dict_properties is not None
            obj.dict_properties[name] = value
            counters.charge(CATEGORY_IC_MISS, cost.DICT_ACCESS)
            return

        offset = hc.layout.get(name)
        self._charge_lookup(obj, 0)
        if offset is not None:
            obj.slots[offset] = value
            if isinstance(obj, JSFunction) and name == "prototype":
                obj.invalidate_constructor_hc()
            new_handler: Handler = self.store_field_handler(offset)
            self._record_handler_generated(new_handler)
            self._install_or_stub(site, hc, name, new_handler, is_store=True)
            return

        outgoing, created = self.runtime.define_own_property(
            obj, name, value, site.info.site_key
        )
        if outgoing is None:
            # The object fell into (or already was in) dictionary mode.
            counters.charge(CATEGORY_IC_MISS, cost.DICT_ACCESS)
            return
        if created:
            counters.charge(CATEGORY_IC_MISS, cost.HIDDEN_CLASS_CREATE)
        transition_handler = StoreTransitionHandler(
            outgoing.layout[name], outgoing
        )
        self._record_handler_generated(transition_handler)
        self._install_or_stub(site, hc, name, transition_handler, is_store=True)

    def _install_or_stub(
        self, site: ICSite, hc, name: str, handler: Handler, is_store: bool
    ) -> None:
        """Install into the site's ICVector, or into the shared stub cache
        once the site is megamorphic."""
        if site.state is ICState.MEGAMORPHIC:
            self.counters.charge(CATEGORY_IC_MISS, cost.IC_UPDATE)
            self.stub_cache[(hc.address, name, is_store)] = handler
            return
        self._install(site, hc, handler)

    # -- keyed access --------------------------------------------------------------------

    def keyed_load(self, site: ICSite, obj: JSObject, key: object) -> object:
        """``obj[key]``.  Integer keys get element ICs; string keys go
        through the runtime every time (uncached, like a megamorphic
        KeyedLoadIC)."""
        counters = self.counters
        counters.ic_accesses += 1
        counters.charge(CATEGORY_EXECUTE, cost.IC_PROBE)

        index = _as_element_index(key)
        hc = obj.hidden_class
        if index is not None:
            handler = site.lookup(hc)
            if handler is not None and isinstance(handler, LoadElementHandler):
                counters.ic_hits += 1
                counters.charge(CATEGORY_EXECUTE, cost.HANDLER_EXECUTE)
                return handler.execute(obj, index)
            counters.record_miss(self._classify_miss(site, hc))
            counters.charge(CATEGORY_IC_MISS, cost.RUNTIME_ENTRY)
            found, value = obj.get_element(index)
            self._record_handler_generated(self._load_element)
            self._install(site, hc, self._load_element)
            return value if found else UNDEFINED

        from repro.runtime.values import to_property_key

        name = to_property_key(key)
        stub_key = (hc.address, name, False)
        cached = self.stub_cache.get(stub_key)
        if cached is not None:
            result = cached.execute(obj)
            if result is not MISS:
                counters.ic_hits += 1
                counters.charge(CATEGORY_EXECUTE, cost.HANDLER_EXECUTE)
                return result
            del self.stub_cache[stub_key]
        counters.record_miss(self._classify_miss(site, hc))
        counters.charge(CATEGORY_IC_MISS, cost.RUNTIME_ENTRY)
        lookup = self.runtime.lookup_property(obj, name)
        self._charge_lookup(obj, lookup.hops)
        stub_handler: Handler | None = None
        if not hc.is_dictionary:
            if lookup.kind == "field":
                assert lookup.offset is not None
                stub_handler = self.load_field_handler(lookup.offset)
            elif lookup.kind == "array_length":
                stub_handler = self._load_array_length
            elif lookup.kind == "proto_field" and self._chain_cacheable(lookup.chain):
                assert lookup.holder is not None and lookup.offset is not None
                stub_handler = LoadPrototypeChainHandler(
                    lookup.chain, lookup.holder, lookup.offset
                )
        if stub_handler is not None:
            self._record_handler_generated(stub_handler)
            counters.charge(CATEGORY_IC_MISS, cost.IC_UPDATE)
            self.stub_cache[stub_key] = stub_handler
        return lookup.value

    def keyed_store(self, site: ICSite, obj: JSObject, key: object, value: object) -> None:
        """``obj[key] = value``; same caching policy as :meth:`keyed_load`."""
        counters = self.counters
        counters.ic_accesses += 1
        counters.charge(CATEGORY_EXECUTE, cost.IC_PROBE)

        index = _as_element_index(key)
        hc = obj.hidden_class
        if index is not None:
            handler = site.lookup(hc)
            if handler is not None and isinstance(handler, StoreElementHandler):
                counters.ic_hits += 1
                counters.charge(CATEGORY_EXECUTE, cost.HANDLER_EXECUTE)
                handler.execute(obj, index, value)
                return
            counters.record_miss(self._classify_miss(site, hc))
            counters.charge(CATEGORY_IC_MISS, cost.RUNTIME_ENTRY)
            obj.set_element(index, value)
            self._record_handler_generated(self._store_element)
            self._install(site, hc, self._store_element)
            return

        from repro.runtime.values import to_property_key

        name = to_property_key(key)
        stub_key = (hc.address, name, True)
        cached = self.stub_cache.get(stub_key)
        if cached is not None:
            result = cached.execute(obj, value)
            if result is not MISS:
                counters.ic_hits += 1
                counters.charge(CATEGORY_EXECUTE, cost.HANDLER_EXECUTE)
                return
            del self.stub_cache[stub_key]
        counters.record_miss(self._classify_miss(site, hc))
        counters.charge(CATEGORY_IC_MISS, cost.RUNTIME_ENTRY)
        if isinstance(obj, JSArray) and name == "length":
            obj.set_length(int(_to_number_safe(value)))
            return
        if hc.is_dictionary:
            assert obj.dict_properties is not None
            obj.dict_properties[name] = value
            counters.charge(CATEGORY_IC_MISS, cost.DICT_ACCESS)
            return
        offset = hc.layout.get(name)
        stub_handler: Handler
        if offset is not None:
            obj.slots[offset] = value
            if isinstance(obj, JSFunction) and name == "prototype":
                obj.invalidate_constructor_hc()
            stub_handler = self.store_field_handler(offset)
        else:
            outgoing, created = self.runtime.define_own_property(
                obj, name, value, site.info.site_key
            )
            if created:
                counters.charge(CATEGORY_IC_MISS, cost.HIDDEN_CLASS_CREATE)
            if outgoing is None:
                counters.charge(CATEGORY_IC_MISS, cost.DICT_ACCESS)
                return
            stub_handler = StoreTransitionHandler(outgoing.layout[name], outgoing)
        self._record_handler_generated(stub_handler)
        counters.charge(CATEGORY_IC_MISS, cost.IC_UPDATE)
        self.stub_cache[stub_key] = stub_handler

    # -- global object access ----------------------------------------------------------------

    def global_load(self, site: ICSite, name: str, soft: bool = False) -> object:
        """Load of a global variable through the global object's IC.

        Global ICs are context-dependent (load-order sensitive), so RIC
        never preloads them and their reuse-run misses land in Table 4's
        "Global" column.
        """
        counters = self.counters
        counters.ic_accesses += 1
        counters.charge(CATEGORY_EXECUTE, cost.IC_PROBE)

        global_object = self.runtime.global_object
        hc = global_object.hidden_class
        handler = site.lookup(hc)
        if handler is not None:
            result = handler.execute(global_object)
            if result is not MISS:
                counters.ic_hits += 1
                counters.charge(CATEGORY_EXECUTE, cost.HANDLER_EXECUTE)
                return result

        counters.record_miss(MISS_GLOBAL)
        counters.charge(CATEGORY_IC_MISS, cost.RUNTIME_ENTRY)
        self._charge_lookup(global_object, 0)
        if global_object.in_dictionary_mode:
            assert global_object.dict_properties is not None
            if name in global_object.dict_properties:
                return global_object.dict_properties[name]
            if soft:
                return UNDEFINED
            raise JSLReferenceError(f"{name} is not defined")
        offset = hc.layout.get(name)
        if offset is None:
            if soft:
                return UNDEFINED
            raise JSLReferenceError(f"{name} is not defined")
        new_handler = LoadGlobalHandler(offset)
        self._record_handler_generated(new_handler)
        self._install(site, hc, new_handler)
        return global_object.slots[offset]

    def global_store(self, site: ICSite, name: str, value: object) -> None:
        """Store to a global variable (creates it if missing, like
        non-strict JS)."""
        counters = self.counters
        counters.ic_accesses += 1
        counters.charge(CATEGORY_EXECUTE, cost.IC_PROBE)

        global_object = self.runtime.global_object
        hc = global_object.hidden_class
        handler = site.lookup(hc)
        if handler is not None:
            result = handler.execute(global_object, value)
            if result is not MISS:
                counters.ic_hits += 1
                counters.charge(CATEGORY_EXECUTE, cost.HANDLER_EXECUTE)
                return

        counters.record_miss(MISS_GLOBAL)
        counters.charge(CATEGORY_IC_MISS, cost.RUNTIME_ENTRY)
        self._charge_lookup(global_object, 0)
        if global_object.in_dictionary_mode:
            assert global_object.dict_properties is not None
            global_object.dict_properties[name] = value
            return
        offset = hc.layout.get(name)
        if offset is not None:
            global_object.slots[offset] = value
            new_handler = StoreGlobalHandler(offset)
            self._record_handler_generated(new_handler)
            self._install(site, hc, new_handler)
            return
        _, created = self.runtime.define_own_property(
            global_object, name, value, site.info.site_key
        )
        if created:
            counters.charge(CATEGORY_IC_MISS, cost.HIDDEN_CLASS_CREATE)

    def declare_global(self, site: ICSite, name: str) -> None:
        """``var name`` at top level: ensure the property exists.

        Counted as an IC access only when it actually mutates the global
        object (first declaration); re-declarations are cheap checks.
        """
        global_object = self.runtime.global_object
        if global_object.in_dictionary_mode:
            assert global_object.dict_properties is not None
            if name not in global_object.dict_properties:
                global_object.dict_properties[name] = UNDEFINED
            return
        if name in global_object.hidden_class.layout:
            self.counters.charge(CATEGORY_EXECUTE, cost.IC_PROBE)
            return
        self.counters.ic_accesses += 1
        self.counters.record_miss(MISS_GLOBAL)
        self.counters.charge(CATEGORY_IC_MISS, cost.RUNTIME_ENTRY)
        _, created = self.runtime.define_own_property(
            global_object, name, UNDEFINED, site.info.site_key
        )
        if created:
            self.counters.charge(CATEGORY_IC_MISS, cost.HIDDEN_CLASS_CREATE)


def _as_element_index(key: object) -> int | None:
    """Return the array index for integer-like keys, else None."""
    if isinstance(key, float) and not isinstance(key, bool):
        if key >= 0 and key == int(key) and key < 2**31:
            return int(key)
        return None
    if isinstance(key, str) and key.isdigit():
        if key == "0" or not key.startswith("0"):
            return int(key)
    return None


def _to_number_safe(value: object) -> float:
    from repro.runtime.values import to_number

    number = to_number(value)
    if number != number:  # NaN
        return 0.0
    return number
