"""IC handler routines and their context-(in)dependence classification.

A handler is the specialised routine an object access site jumps to when the
incoming object's hidden class matches an IC slot (paper §2.3).  The paper's
key taxonomy (§3.2):

* **context-independent** handlers only mention slot offsets — e.g. "load
  the field at offset 2".  These are serialisable and reusable across
  executions; they are what RIC's handler store holds.
* **context-dependent** handlers embed heap addresses: the target hidden
  class of a transitioning store, or the prototype-chain hidden classes a
  load must re-validate.  These can never be persisted.

``Handler.execute`` returns :data:`MISS` when its embedded assumptions no
longer hold (e.g. a prototype was mutated); the caller then falls back to
the runtime miss path.
"""

from __future__ import annotations

import typing

from repro.runtime.objects import JSArray, JSFunction, JSObject
from repro.runtime.values import UNDEFINED

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.hidden_class import HiddenClass

#: Sentinel returned by handlers whose embedded assumptions failed.
MISS = object()


class Handler:
    """Base class for all IC handlers."""

    kind: str = "?"
    is_context_independent: bool = False

    def serialize(self) -> dict | None:
        """JSON form for the ICRecord handler store; None if not reusable."""
        return None

    def describe(self) -> str:
        return self.kind


class LoadFieldHandler(Handler):
    """Load an own fast property at a fixed offset.  Context-independent —
    the paper's canonical reusable handler (H2 in Figure 4)."""

    kind = "load_field"
    is_context_independent = True

    __slots__ = ("offset",)

    def __init__(self, offset: int):
        self.offset = offset

    def execute(self, obj: JSObject) -> object:
        return obj.slots[self.offset]

    def serialize(self) -> dict:
        return {"kind": self.kind, "offset": self.offset}

    def describe(self) -> str:
        return f"load_field[{self.offset}]"


class LoadArrayLengthHandler(Handler):
    """Load an array's length.  Context-independent."""

    kind = "load_array_length"
    is_context_independent = True

    def execute(self, obj: JSObject) -> object:
        if isinstance(obj, JSArray):
            return obj.length
        return MISS

    def serialize(self) -> dict:
        return {"kind": self.kind}


class LoadPrototypeChainHandler(Handler):
    """Load a property found on the prototype chain.

    Embeds a validity cell per prototype hop (V8's mechanism) plus the
    holder object and offset — all heap state, hence context-dependent
    (paper §3.2: "when accessing an inherited property, the handler
    traverses the chain of prototype objects ... The result is
    context-dependent state").  A shape change anywhere on the chain
    invalidates the cells and the handler falls back to the runtime."""

    kind = "load_proto_chain"
    is_context_independent = False

    __slots__ = ("cells", "holder", "offset")

    def __init__(
        self,
        chain: tuple[tuple[JSObject, "HiddenClass"], ...],
        holder: JSObject,
        offset: int,
    ):
        self.cells = tuple(proto.dependent_validity_cell() for proto, _ in chain)
        self.holder = holder
        self.offset = offset

    def execute(self, obj: JSObject) -> object:
        for cell in self.cells:
            if not cell.valid:
                return MISS
        return self.holder.slots[self.offset]

    def describe(self) -> str:
        return f"load_proto_chain[cells={len(self.cells)},{self.offset}]"


class LoadNotFoundHandler(Handler):
    """Load of an absent property: yields undefined while the whole chain's
    validity cells hold.  Context-dependent."""

    kind = "load_not_found"
    is_context_independent = False

    __slots__ = ("cells",)

    def __init__(self, chain: tuple[tuple[JSObject, "HiddenClass"], ...]):
        self.cells = tuple(proto.dependent_validity_cell() for proto, _ in chain)

    def execute(self, obj: JSObject) -> object:
        for cell in self.cells:
            if not cell.valid:
                return MISS
        return UNDEFINED


class StoreFieldHandler(Handler):
    """Store to an existing own property at a fixed offset.
    Context-independent."""

    kind = "store_field"
    is_context_independent = True

    __slots__ = ("offset",)

    def __init__(self, offset: int):
        self.offset = offset

    def execute(self, obj: JSObject, value: object) -> object:
        obj.slots[self.offset] = value
        return None

    def serialize(self) -> dict:
        return {"kind": self.kind, "offset": self.offset}

    def describe(self) -> str:
        return f"store_field[{self.offset}]"


class StoreTransitionHandler(Handler):
    """Store that adds a property, transitioning the object to a new hidden
    class.  Embeds the target hidden class (address) — context-dependent
    (H1 in the paper's Figure 4)."""

    kind = "store_transition"
    is_context_independent = False

    __slots__ = ("offset", "target_hc")

    def __init__(self, offset: int, target_hc: "HiddenClass"):
        self.offset = offset
        self.target_hc = target_hc

    def execute(self, obj: JSObject, value: object) -> object:
        if len(obj.slots) != self.offset:
            return MISS
        obj.slots.append(value)
        obj.hidden_class = self.target_hc
        obj.invalidate_shape_dependents()
        if isinstance(obj, JSFunction) and self.target_hc.transition_property == "prototype":
            obj.invalidate_constructor_hc()
        return None

    def describe(self) -> str:
        return f"store_transition[{self.offset}->#{self.target_hc.index}]"


class LoadElementHandler(Handler):
    """Keyed load of integer-indexed elements.  Context-independent."""

    kind = "load_element"
    is_context_independent = True

    def execute(self, obj: JSObject, index: int) -> object:
        found, value = obj.get_element(index)
        return value if found else UNDEFINED

    def serialize(self) -> dict:
        return {"kind": self.kind}


class StoreElementHandler(Handler):
    """Keyed store of integer-indexed elements.  Context-independent."""

    kind = "store_element"
    is_context_independent = True

    def execute(self, obj: JSObject, index: int, value: object) -> object:
        obj.set_element(index, value)
        return None

    def serialize(self) -> dict:
        return {"kind": self.kind}


class LoadGlobalHandler(Handler):
    """Load of a global-object property.

    Fixed offset like a field load, but tied to the global object whose
    hidden class depends on script load order — the reason the paper
    disables RIC for global objects (§6).  Classified context-dependent
    (V8's equivalents embed property cells)."""

    kind = "load_global"
    is_context_independent = False

    __slots__ = ("offset",)

    def __init__(self, offset: int):
        self.offset = offset

    def execute(self, obj: JSObject) -> object:
        return obj.slots[self.offset]


class StoreGlobalHandler(Handler):
    """Store to an existing global-object property.  Context-dependent for
    the same reason as :class:`LoadGlobalHandler`."""

    kind = "store_global"
    is_context_independent = False

    __slots__ = ("offset",)

    def __init__(self, offset: int):
        self.offset = offset

    def execute(self, obj: JSObject, value: object) -> object:
        obj.slots[self.offset] = value
        return None


def deserialize_handler(data: dict) -> Handler:
    """Materialise a context-independent handler from its ICRecord form."""
    kind = data["kind"]
    if kind == LoadFieldHandler.kind:
        return LoadFieldHandler(int(data["offset"]))
    if kind == StoreFieldHandler.kind:
        return StoreFieldHandler(int(data["offset"]))
    if kind == LoadArrayLengthHandler.kind:
        return LoadArrayLengthHandler()
    if kind == LoadElementHandler.kind:
        return LoadElementHandler()
    if kind == StoreElementHandler.kind:
        return StoreElementHandler()
    raise ValueError(f"not a reusable handler kind: {kind!r}")
