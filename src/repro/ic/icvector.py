"""The ICVector: per-function out-of-line inline-cache state (paper §2.3).

One :class:`ICVector` exists per function per execution; it has one
:class:`ICSite` per object access site, each holding up to
:data:`POLY_LIMIT` ``(hidden class, handler)`` slots.  The vector is
*context-dependent* state: V8 — and this reproduction — throws it away at
the end of every execution, which is precisely the waste RIC recovers.
"""

from __future__ import annotations

import enum
import typing

from repro.bytecode.code import CodeObject, FeedbackSlotInfo

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.ic.handlers import Handler
    from repro.runtime.hidden_class import HiddenClass

#: Max hidden classes cached per site before it goes megamorphic (V8 uses 4).
POLY_LIMIT = 4


class ICState(enum.Enum):
    """Lifecycle of one IC site."""

    UNINITIALIZED = "uninitialized"
    MONOMORPHIC = "monomorphic"
    POLYMORPHIC = "polymorphic"
    MEGAMORPHIC = "megamorphic"


class ICSite:
    """IC state for a single object access site."""

    __slots__ = ("info", "slots", "state", "preloaded_addresses")

    def __init__(self, info: FeedbackSlotInfo):
        self.info = info
        #: Up to POLY_LIMIT (hidden class, handler) pairs.
        self.slots: list[tuple["HiddenClass", "Handler"]] = []
        self.state = ICState.UNINITIALIZED
        #: Addresses of hidden classes whose slot was preloaded by RIC, used
        #: to attribute averted misses.
        self.preloaded_addresses: set[int] = set()

    def lookup(self, hidden_class: "HiddenClass") -> "Handler | None":
        """Fast-path probe: the dispatch the specialised site code does.

        Linear scan over at most :data:`POLY_LIMIT` slots with
        move-to-front (MRU) reordering: a polymorphic site keeps its
        hottest shape first so the common case pays one compare.  The
        VM's inline GET_PROP/SET_PROP fast paths mirror this exact scan
        and reorder, so slot order evolves identically whether a site is
        probed inline or through the generic :class:`ICRuntime` path.
        """
        slots = self.slots
        for index, entry in enumerate(slots):
            if entry[0] is hidden_class:
                if index:
                    del slots[index]
                    slots.insert(0, entry)
                return entry[1]
        return None

    def install(
        self,
        hidden_class: "HiddenClass",
        handler: "Handler",
        preloaded: bool = False,
    ) -> bool:
        """Add a slot for ``hidden_class``; returns False once megamorphic.

        Re-installing for a hidden class already present replaces its
        handler (used when a prototype-chain handler is invalidated).
        """
        if self.state is ICState.MEGAMORPHIC:
            return False
        for index, (cached_hc, _) in enumerate(self.slots):
            if cached_hc is hidden_class:
                self.slots[index] = (hidden_class, handler)
                return True
        if len(self.slots) >= POLY_LIMIT:
            self.slots.clear()
            self.preloaded_addresses.clear()
            self.state = ICState.MEGAMORPHIC
            return False
        self.slots.append((hidden_class, handler))
        if preloaded:
            self.preloaded_addresses.add(hidden_class.address)
        self.state = (
            ICState.MONOMORPHIC if len(self.slots) == 1 else ICState.POLYMORPHIC
        )
        return True

    def was_preloaded(self, hidden_class: "HiddenClass") -> bool:
        return hidden_class.address in self.preloaded_addresses

    def __repr__(self) -> str:
        return (
            f"<ICSite {self.info.site_key} {self.state.value} "
            f"slots={len(self.slots)}>"
        )


class ICVector:
    """All IC sites of one function (paper Figure 3)."""

    __slots__ = ("code", "sites", "arith")

    def __init__(self, code: CodeObject):
        self.code = code
        self.sites = [ICSite(info) for info in code.feedback_slots]
        #: Per-pc operand-type bitmask accumulated by the VM's arithmetic
        #: handlers (repro/specialize/feedback.py defines the bits).  Like
        #: the sites, this is per-execution feedback — recorded cheaply on
        #: the hot path, read only at extraction time.
        self.arith: list[int] = [0] * len(code.instructions)

    def __getitem__(self, slot_index: int) -> ICSite:
        return self.sites[slot_index]

    def __len__(self) -> int:
        return len(self.sites)


class FeedbackState:
    """Per-execution registry of every ICVector.

    Also maintains the site-key index RIC's reuse machinery uses to preload
    slots for Dependent sites that may live in *other* functions than the
    Triggering one.  Vectors are created eagerly when a script is loaded so
    preloads can always find their target site.
    """

    __slots__ = ("_vectors", "_vector_list", "_sites_by_key", "demoted_sites")

    def __init__(self) -> None:
        self._vectors: dict[int, ICVector] = {}
        self._vector_list: list[ICVector] = []
        self._sites_by_key: dict[str, ICSite] = {}
        #: Persisted-feedback keys of sites whose typed-opcode guard failed
        #: this run (repro/specialize/).  Extraction turns each into a
        #: ``site_feedback`` tombstone so the demotion outlives the run.
        self.demoted_sites: set[str] = set()

    def register_script(self, toplevel_code: CodeObject) -> None:
        """Create ICVectors for a script's top level and every nested
        function."""
        for code in toplevel_code.iter_code_objects():
            if id(code) in self._vectors:
                continue
            vector = ICVector(code)
            self._vectors[id(code)] = vector
            self._vector_list.append(vector)
            for site in vector.sites:
                key = site.info.site_key
                # First registration wins; duplicate keys cannot occur for
                # distinct sites by construction (see Compiler.feedback).
                self._sites_by_key.setdefault(key, site)

    def vector_for(self, code: CodeObject) -> ICVector:
        return self._vectors[id(code)]

    def site_by_key(self, site_key: str) -> ICSite | None:
        return self._sites_by_key.get(site_key)

    def all_vectors(self) -> list[ICVector]:
        return list(self._vector_list)

    def all_sites(self) -> typing.Iterator[ICSite]:
        for vector in self._vector_list:
            yield from vector.sites
