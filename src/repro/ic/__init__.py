"""Inline caching: ICVector, handlers, and the runtime miss path."""

from repro.ic.handlers import (
    MISS,
    Handler,
    LoadArrayLengthHandler,
    LoadElementHandler,
    LoadFieldHandler,
    LoadGlobalHandler,
    LoadNotFoundHandler,
    LoadPrototypeChainHandler,
    StoreElementHandler,
    StoreFieldHandler,
    StoreGlobalHandler,
    StoreTransitionHandler,
    deserialize_handler,
)
from repro.ic.icvector import POLY_LIMIT, FeedbackState, ICSite, ICState, ICVector
from repro.ic.miss import ICRuntime

__all__ = [
    "MISS",
    "POLY_LIMIT",
    "FeedbackState",
    "Handler",
    "ICRuntime",
    "ICSite",
    "ICState",
    "ICVector",
    "LoadArrayLengthHandler",
    "LoadElementHandler",
    "LoadFieldHandler",
    "LoadGlobalHandler",
    "LoadNotFoundHandler",
    "LoadPrototypeChainHandler",
    "StoreElementHandler",
    "StoreFieldHandler",
    "StoreGlobalHandler",
    "StoreTransitionHandler",
    "deserialize_handler",
]
