"""The ICRecord: RIC's persisted, context-independent IC information.

This is the paper's Figure 6 structure, produced by the extraction phase
after an Initial run and consumed by Reuse runs:

* **HCVT** (Hidden Class Validation Table): one row per hidden class of the
  Initial run, identified by a small integer ``hcid`` (creation order).
  Each row lists the Dependent sites to preload once the hidden class is
  validated, with the reusable handler to install.  The runtime fields of
  the paper's HCVT (``HCAddr``, ``V``) live in the Reuse session, not here —
  they are per-execution by definition.
* **TOAST** (Triggering Object Access Site Table): keyed by the stable
  identity of whatever creates hidden classes — a triggering object access
  site (file:line:col), a builtin name, or a constructor key — mapping to
  ``(incoming hcid, transition property, outgoing hcid)`` entries.
* **handler store**: deduplicated serialized context-independent handlers,
  referenced by index from HCVT dependent entries.

Everything in this module is context-independent plain data; nothing here
ever holds a heap address.
"""

from __future__ import annotations

from dataclasses import dataclass, field


def filename_of_creation_key(key: str) -> str | None:
    """Which script file a creation key / site key belongs to.

    None for file-unbound keys (builtins, natives).  Site keys look like
    ``file.jsl:12:3:named_store``; constructor keys like
    ``ctor:file.jsl:4:1#Name:0``.
    """
    if key.startswith("builtin:") or key.startswith("native:"):
        return None
    if key.startswith("ctor:"):
        key = key[len("ctor:"):].split("#", 1)[0]
    parts = key.split(":")
    if len(parts) < 3:
        return None
    return parts[0]


@dataclass(frozen=True)
class DependentEntry:
    """One (Dependent site, handler) tuple of an HCVT row."""

    site_key: str
    handler_id: int


@dataclass
class HCVTRow:
    """Static part of one HCVT entry (paper Figure 6a).

    ``cd_dependent_sites`` are sites that encountered this hidden class but
    whose handler was context-dependent (other than transitioning stores):
    RIC cannot preload them, and their Reuse-run misses are attributed to
    Table 4's "Handler" column.
    """

    hcid: int
    dependents: list[DependentEntry] = field(default_factory=list)
    cd_dependent_sites: list[str] = field(default_factory=list)


@dataclass(frozen=True)
class SiteSlot:
    """One persisted ICVector slot: ``(hidden class, handler)`` by id.

    ``hcid`` is record-local (an HCVT row index), ``handler_id`` indexes
    the record's handler store.  A site's slot list is stored in the
    probe (MRU) order the Initial run converged on, capped at
    ``POLY_LIMIT`` entries — the persisted form of a MONO or POLY
    ICVector site (format v4; see ``ICRecord.site_slots``).
    """

    hcid: int
    handler_id: int


#: ``SiteFeedback.types`` bitmask values (operand classes observed at an
#: arithmetic site).  Mirrored by repro/specialize/feedback.py, which owns
#: the classification; persisted here so the record format is
#: self-contained.
FEEDBACK_INT = 1
FEEDBACK_FLOAT = 2
FEEDBACK_STR = 4
FEEDBACK_BOOL = 8
FEEDBACK_OBJ = 16
FEEDBACK_OTHER = 32
FEEDBACK_TYPE_MASK = (
    FEEDBACK_INT
    | FEEDBACK_FLOAT
    | FEEDBACK_STR
    | FEEDBACK_BOOL
    | FEEDBACK_OBJ
    | FEEDBACK_OTHER
)

#: ``SiteFeedback.kind`` values.
FEEDBACK_ARITH = "arith"
FEEDBACK_PROP_LOAD = "prop_load"
FEEDBACK_PROP_STORE = "prop_store"
FEEDBACK_KINDS = (FEEDBACK_ARITH, FEEDBACK_PROP_LOAD, FEEDBACK_PROP_STORE)


@dataclass(frozen=True)
class SiteFeedback:
    """One persisted type-feedback entry (format v5; ``site_feedback``).

    For ``arith`` entries the key is ``{decl_key}@{pc}:arith`` (the code
    object's declaration key plus the instruction's pc in the optimized
    stream — stable because compilation and optimization are
    deterministic for a given source, and the record is only trusted for
    content-matched scripts) and ``types`` is the observed operand-class
    bitmask.  For ``prop_load``/``prop_store`` entries the key is the
    site's IC ``site_key`` and ``hcid``/``offset`` pin the persistently
    monomorphic hidden class (record-local id, remapped per file exactly
    like ``site_slots``) and its field offset.

    ``mega`` is the tombstone: the site thrashed (megamorphic, mixed
    operand types, or demoted by a guard failure) and must never be
    re-specialized — persisting the *negative* result is what stops a
    reuse chain from re-learning a deopt every execution.
    """

    kind: str
    op: int = 0  # BinOp value for arith entries, 0 otherwise
    types: int = 0  # operand-class bitmask for arith entries
    hcid: int = -1  # record-local hidden-class id for mono prop entries
    offset: int = -1  # field offset for mono prop entries
    mega: bool = False  # tombstone: never re-specialize this site


@dataclass(frozen=True)
class ToastPair:
    """One (incoming, outgoing) entry of a TOAST row (Figure 6b).

    ``incoming_hcid`` is None for builtins and constructor initial classes
    ("Entries for built-in objects have no incoming hidden class").
    ``transition_property`` pins the added property so keyed/triggering
    sites that add different properties on different iterations validate
    only the matching transition.
    """

    incoming_hcid: int | None
    transition_property: str | None
    outgoing_hcid: int


@dataclass
class ICRecord:
    """The full persisted RIC artifact for one initialization workload."""

    #: Source scripts this record was extracted from (filenames + hashes),
    #: for cache-style integrity checking.
    script_keys: list[str] = field(default_factory=list)
    hcvt: list[HCVTRow] = field(default_factory=list)
    toast: dict[str, list[ToastPair]] = field(default_factory=dict)
    #: Deduplicated context-independent handlers (serialized form).
    handlers: list[dict] = field(default_factory=list)
    #: Per-site ordered slot sets (format v4): ``site_key -> [SiteSlot,
    #: ...]`` for every named load/store site that ended the Initial run
    #: with at least one context-independent slot.  ``hcvt[...].dependents``
    #: remains the per-hidden-class preload index (each (site, hc,
    #: handler) link appears there too); this table adds the *per-site*
    #: view — polymorphic degree and converged probe order — which reuse
    #: applies after preloading so a warmed site probes in the same order
    #: it did at extraction time.
    site_slots: dict[str, list[SiteSlot]] = field(default_factory=dict)
    #: Per-site type feedback (format v5): ``feedback key ->``
    #: :class:`SiteFeedback` for arithmetic sites with a stable operand
    #: profile, persistently monomorphic property sites, and tombstoned
    #: thrash sites.  Spent by the quickening pass (repro/specialize/) at
    #: artifact build; ignored by everything else.
    site_feedback: dict[str, SiteFeedback] = field(default_factory=dict)
    #: Extraction wall-clock time in milliseconds (paper §7.3).
    extraction_time_ms: float = 0.0

    def row(self, hcid: int) -> HCVTRow:
        return self.hcvt[hcid]

    @property
    def num_hidden_classes(self) -> int:
        return len(self.hcvt)

    @property
    def num_dependent_links(self) -> int:
        return sum(len(row.dependents) for row in self.hcvt)

    def stats(self) -> dict:
        """Summary counts used by reports and tests."""
        return {
            "hidden_classes": len(self.hcvt),
            "toast_entries": len(self.toast),
            "toast_pairs": sum(len(pairs) for pairs in self.toast.values()),
            "dependent_links": self.num_dependent_links,
            "cd_dependent_links": sum(
                len(row.cd_dependent_sites) for row in self.hcvt
            ),
            "handlers": len(self.handlers),
            "slot_sites": len(self.site_slots),
            "poly_slot_sites": sum(
                1 for slots in self.site_slots.values() if len(slots) > 1
            ),
            "site_slot_entries": sum(
                len(slots) for slots in self.site_slots.values()
            ),
            "feedback_sites": len(self.site_feedback),
            "feedback_tombstones": sum(
                1 for fb in self.site_feedback.values() if fb.mega
            ),
            "extraction_time_ms": self.extraction_time_ms,
        }
