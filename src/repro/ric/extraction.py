"""RIC extraction phase (paper §5.2.1).

Runs off-line after an Initial execution completes.  It walks two data
sources:

1. the :class:`~repro.runtime.hidden_class.HiddenClassRegistry` — every
   hidden class of the run, in creation order, with its creator (builtin
   name, constructor key, or triggering site) — to build the TOAST and
   assign HCIDs; and
2. the final :class:`~repro.ic.icvector.FeedbackState` (the ICVectors) — to
   find, for each hidden class, the sites that encountered it and the
   handlers they used, which become the HCVT's Dependent lists.

Global-object state is excluded (paper §6), as are hidden classes whose
creator key is ambiguous within the run (the creation key must identify the
transition uniquely for validation to be sound).
"""

from __future__ import annotations

import json
import time

from repro.bytecode.code import FeedbackSlotInfo, SiteKind
from repro.core.config import RICConfig
from repro.ic.handlers import (
    LoadFieldHandler,
    StoreFieldHandler,
    StoreTransitionHandler,
)
from repro.ic.icvector import FeedbackState, ICSite, ICState
from repro.ric.icrecord import (
    FEEDBACK_PROP_LOAD,
    FEEDBACK_PROP_STORE,
    DependentEntry,
    HCVTRow,
    ICRecord,
    SiteFeedback,
    SiteSlot,
    ToastPair,
)
from repro.runtime.context import Runtime
from repro.specialize.feedback import collect_arith_feedback, demotion_tombstones

#: Creation-key prefixes that are never reusable across executions.
_EXCLUDED_KEY_PREFIXES = ("builtin:thrown:", "builtin:Dictionary")


def extract_icrecord(
    runtime: Runtime,
    feedback: FeedbackState,
    config: RICConfig | None = None,
    script_keys: list[str] | None = None,
) -> ICRecord:
    """Build an :class:`ICRecord` from a completed Initial run."""
    config = config or RICConfig()
    start = time.perf_counter()

    record = ICRecord(script_keys=list(script_keys or []))

    # HCIDs are creation-order indices; the registry preserved them.
    classes = runtime.hidden_classes.all_classes
    record.hcvt = [HCVTRow(hcid=index) for index in range(len(classes))]

    global_site_keys = _global_site_keys(feedback, config)

    # ---- TOAST -------------------------------------------------------------
    # Group creations by key first: a key that produced more than one hidden
    # class for the same (incoming, property) is ambiguous and skipped.
    pairs_by_key: dict[str, list[ToastPair]] = {}
    excluded_hcids: set[int] = set()
    for hc in classes:
        key = hc.creation_key
        if key.startswith(_EXCLUDED_KEY_PREFIXES):
            excluded_hcids.add(hc.index)
            continue
        if not config.include_global_ics:
            if key == "builtin:global" or key in global_site_keys:
                excluded_hcids.add(hc.index)
                continue
        if hc.creation_kind in ("builtin", "ctor"):
            pair = ToastPair(
                incoming_hcid=None,
                transition_property=None,
                outgoing_hcid=hc.index,
            )
        else:
            assert hc.incoming is not None
            pair = ToastPair(
                incoming_hcid=hc.incoming.index,
                transition_property=hc.transition_property,
                outgoing_hcid=hc.index,
            )
        pairs_by_key.setdefault(key, []).append(pair)

    for key, pairs in pairs_by_key.items():
        deduped: list[ToastPair] = []
        seen: dict[tuple, int] = {}
        ambiguous: set[tuple] = set()
        for pair in pairs:
            signature = (pair.incoming_hcid, pair.transition_property)
            if signature in seen:
                ambiguous.add(signature)
            else:
                seen[signature] = pair.outgoing_hcid
                deduped.append(pair)
        kept = [
            pair
            for pair in deduped
            if (pair.incoming_hcid, pair.transition_property) not in ambiguous
        ]
        for pair in deduped:
            if (pair.incoming_hcid, pair.transition_property) in ambiguous:
                excluded_hcids.add(pair.outgoing_hcid)
        if kept:
            record.toast[key] = kept

    # ---- HCVT dependents (scan the ICVectors) ----------------------------------
    handler_ids: dict[str, int] = {}

    def intern_handler(serialized: dict) -> int:
        text = json.dumps(serialized, sort_keys=True)
        handler_id = handler_ids.get(text)
        if handler_id is None:
            handler_id = len(record.handlers)
            handler_ids[text] = handler_id
            record.handlers.append(serialized)
        return handler_id

    for site in feedback.all_sites():
        info = site.info
        if info.kind not in (SiteKind.NAMED_LOAD, SiteKind.NAMED_STORE):
            continue  # keyed + global sites are not linked (paper §6)
        # site.slots is in final probe (MRU) order; persist it in that
        # order so a Reuse run's warmed site probes hottest-shape-first
        # (record.site_slots, format v4).  Megamorphic sites hold no
        # slots and thus persist nothing — they re-learn, by design.
        slot_entries: list[SiteSlot] = []
        for hc, handler in site.slots:
            if hc.index in excluded_hcids or hc.index >= len(record.hcvt):
                continue
            row = record.hcvt[hc.index]
            if handler.is_context_independent:
                serialized = handler.serialize()
                assert serialized is not None
                handler_id = intern_handler(serialized)
                row.dependents.append(
                    DependentEntry(
                        site_key=info.site_key,
                        handler_id=handler_id,
                    )
                )
                slot_entries.append(
                    SiteSlot(hcid=hc.index, handler_id=handler_id)
                )
            elif not isinstance(handler, StoreTransitionHandler):
                # Context-dependent non-transitioning handler: RIC cannot
                # preload this site, and its Reuse miss is attributed to the
                # "Handler" bucket of Table 4.  Transitioning stores are the
                # Triggering sites themselves ("Other" by construction).
                row.cd_dependent_sites.append(info.site_key)
        if slot_entries:
            record.site_slots[info.site_key] = slot_entries
        feedback_entry = prop_site_feedback(site, slot_entries)
        if feedback_entry is not None:
            record.site_feedback[info.site_key] = feedback_entry

    # ---- site_feedback (v5): arithmetic profiles + demotions ---------------
    # Property entries were emitted site-by-site above; arithmetic masks
    # come from the ICVectors' recorder lists, and sites whose typed
    # guard failed during this run override everything with a tombstone.
    record.site_feedback.update(collect_arith_feedback(feedback))
    for key, tombstone in demotion_tombstones(feedback.demoted_sites):
        record.site_feedback[key] = tombstone

    record.extraction_time_ms = (time.perf_counter() - start) * 1000.0
    return record


def prop_site_feedback(
    site: ICSite, slot_entries: list[SiteSlot]
) -> "SiteFeedback | None":
    """The ``site_feedback`` entry one named load/store site deserves.

    Persistently monomorphic sites whose single handler is a plain field
    access become positive entries — ``hcid`` is taken from the already
    record-local ``slot_entries``, so the whole-run and per-file
    extractors remap identically to their ``site_slots``.  Megamorphic
    sites become tombstones (the site thrashed; quickening it would
    guarantee deopts).  Polymorphic, uninitialized, excluded-class and
    exotic-handler sites yield nothing: they are not specializable, but
    not proven hostile either.  Stores to ``prototype`` are never
    specialized (the typed store skips constructor-cache invalidation).
    """
    info: FeedbackSlotInfo = site.info
    kind = (
        FEEDBACK_PROP_LOAD
        if info.kind is SiteKind.NAMED_LOAD
        else FEEDBACK_PROP_STORE
    )
    if site.state is ICState.MEGAMORPHIC:
        return SiteFeedback(kind=kind, mega=True)
    if (
        site.state is ICState.MONOMORPHIC
        and len(slot_entries) == 1
        and len(site.slots) == 1
    ):
        handler = site.slots[0][1]
        wanted = (
            LoadFieldHandler
            if info.kind is SiteKind.NAMED_LOAD
            else StoreFieldHandler
        )
        if isinstance(handler, wanted) and not (
            info.kind is SiteKind.NAMED_STORE and info.name == "prototype"
        ):
            return SiteFeedback(
                kind=kind,
                hcid=slot_entries[0].hcid,
                offset=handler.offset,
            )
    return None


def _global_site_keys(feedback: FeedbackState, config: RICConfig) -> set[str]:
    """Site keys of global-object access sites (excluded from RIC)."""
    if config.include_global_ics:
        return set()
    return {
        site.info.site_key
        for site in feedback.all_sites()
        if site.info.kind in (SiteKind.GLOBAL_LOAD, SiteKind.GLOBAL_STORE)
    }
