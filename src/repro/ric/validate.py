"""Structural validation of ICRecords before they are trusted.

The serializer guarantees a record *parses*; this pass guarantees it is
*internally consistent* — the property the reuse machinery actually
relies on when it indexes ``record.hcvt`` and ``record.handlers``
unchecked on the hot path.  It runs on every load and again in
``Engine.run`` before any :class:`~repro.ric.reuse.ReuseSession` is
constructed, so a record that would index out of range, preload a
context-dependent handler, or reference a nonexistent row is rejected
*before* it can influence execution.

The checks are deliberately a flat linear scan (no allocation beyond the
problem list): the <10% load-overhead budget is asserted by
``benchmarks/test_validation_overhead.py``.
"""

from __future__ import annotations

from repro.ic.icvector import POLY_LIMIT
from repro.ric.errors import RecordFormatError
from repro.ric.icrecord import (
    FEEDBACK_ARITH,
    FEEDBACK_KINDS,
    FEEDBACK_TYPE_MASK,
    ICRecord,
)
from repro.bytecode.opcodes import BinOp

#: Schema of every handler kind that may legally appear in a persisted
#: handler store: kind -> required extra fields.  Context-dependent kinds
#: (store_transition, load_proto_chain, the global handlers, ...) are
#: absent on purpose — a record claiming to persist one is corrupt or
#: hostile, and preloading it could change program results.
REUSABLE_HANDLER_SCHEMAS: dict[str, tuple[str, ...]] = {
    "load_field": ("offset",),
    "store_field": ("offset",),
    "load_array_length": (),
    "load_element": (),
    "store_element": (),
}


def validate_record(record: ICRecord) -> list[str]:
    """Return every structural problem found (empty list = trustworthy)."""
    problems: list[str] = []

    if not isinstance(record.script_keys, list) or not all(
        isinstance(key, str) for key in record.script_keys
    ):
        problems.append("script_keys must be a list of strings")

    num_rows = len(record.hcvt) if isinstance(record.hcvt, list) else 0
    num_handlers = len(record.handlers) if isinstance(record.handlers, list) else 0

    # -- handler store: every entry schema-checked against known kinds ------
    if isinstance(record.handlers, list):
        for handler_id, handler in enumerate(record.handlers):
            if not isinstance(handler, dict):
                problems.append(f"handler {handler_id} is not a dict")
                continue
            kind = handler.get("kind")
            required = (
                REUSABLE_HANDLER_SCHEMAS.get(kind)
                if isinstance(kind, str)
                else None
            )
            if required is None:
                problems.append(
                    f"handler {handler_id} has non-reusable kind {kind!r}"
                )
                continue
            for field_name in required:
                value = handler.get(field_name)
                if not isinstance(value, int) or isinstance(value, bool) or value < 0:
                    problems.append(
                        f"handler {handler_id} ({kind}) field "
                        f"{field_name!r} must be a non-negative int"
                    )
    else:
        problems.append("handlers must be a list")

    # -- HCVT: dense local hcids, in-range handler ids -----------------------
    if isinstance(record.hcvt, list):
        for position, row in enumerate(record.hcvt):
            if not isinstance(getattr(row, "hcid", None), int) or row.hcid != position:
                problems.append(
                    f"hcvt row {position} has non-dense hcid "
                    f"{getattr(row, 'hcid', None)!r}"
                )
            for entry in row.dependents:
                if not isinstance(entry.site_key, str):
                    problems.append(
                        f"hcvt row {position} dependent site_key is not a string"
                    )
                handler_id = entry.handler_id
                if (
                    not isinstance(handler_id, int)
                    or isinstance(handler_id, bool)
                    or not 0 <= handler_id < num_handlers
                ):
                    problems.append(
                        f"hcvt row {position} references handler "
                        f"{handler_id!r} outside [0, {num_handlers})"
                    )
            for site_key in row.cd_dependent_sites:
                if not isinstance(site_key, str):
                    problems.append(
                        f"hcvt row {position} cd_dependent site key is not a string"
                    )
    else:
        problems.append("hcvt must be a list")

    # -- TOAST: every pair references a valid row ---------------------------
    if isinstance(record.toast, dict):
        for key, pairs in record.toast.items():
            if not isinstance(key, str):
                problems.append(f"toast key {key!r} is not a string")
                continue
            for pair in pairs:
                if (
                    not isinstance(pair.outgoing_hcid, int)
                    or isinstance(pair.outgoing_hcid, bool)
                    or not 0 <= pair.outgoing_hcid < num_rows
                ):
                    problems.append(
                        f"toast {key!r} outgoing hcid {pair.outgoing_hcid!r} "
                        f"outside [0, {num_rows})"
                    )
                incoming = pair.incoming_hcid
                if incoming is not None and (
                    not isinstance(incoming, int)
                    or isinstance(incoming, bool)
                    or not 0 <= incoming < num_rows
                ):
                    problems.append(
                        f"toast {key!r} incoming hcid {incoming!r} "
                        f"outside [0, {num_rows})"
                    )
                if pair.transition_property is not None and not isinstance(
                    pair.transition_property, str
                ):
                    problems.append(
                        f"toast {key!r} transition property is not a string"
                    )
    else:
        problems.append("toast must be a dict")

    # -- site_slots (v4): bounded, duplicate-free, in-range slot lists ------
    if isinstance(record.site_slots, dict):
        for site_key, slots in record.site_slots.items():
            if not isinstance(site_key, str):
                problems.append(f"site_slots key {site_key!r} is not a string")
                continue
            if not isinstance(slots, list):
                problems.append(f"site_slots[{site_key!r}] is not a list")
                continue
            if not slots:
                problems.append(f"site_slots[{site_key!r}] is empty")
            if len(slots) > POLY_LIMIT:
                problems.append(
                    f"site_slots[{site_key!r}] holds {len(slots)} slots "
                    f"(POLY_LIMIT is {POLY_LIMIT})"
                )
            seen_hcids = set()
            for slot in slots:
                hcid = getattr(slot, "hcid", None)
                handler_id = getattr(slot, "handler_id", None)
                if (
                    not isinstance(hcid, int)
                    or isinstance(hcid, bool)
                    or not 0 <= hcid < num_rows
                ):
                    problems.append(
                        f"site_slots[{site_key!r}] hcid {hcid!r} "
                        f"outside [0, {num_rows})"
                    )
                else:
                    if hcid in seen_hcids:
                        problems.append(
                            f"site_slots[{site_key!r}] duplicates hcid {hcid}"
                        )
                    seen_hcids.add(hcid)
                if (
                    not isinstance(handler_id, int)
                    or isinstance(handler_id, bool)
                    or not 0 <= handler_id < num_handlers
                ):
                    problems.append(
                        f"site_slots[{site_key!r}] references handler "
                        f"{handler_id!r} outside [0, {num_handlers})"
                    )
    else:
        problems.append("site_slots must be a dict")

    # -- site_feedback (v5): known kinds, legal masks, in-range hcids -------
    if isinstance(record.site_feedback, dict):
        valid_ops = {int(op) for op in BinOp}
        for key, fb in record.site_feedback.items():
            if not isinstance(key, str):
                problems.append(f"site_feedback key {key!r} is not a string")
                continue
            kind = getattr(fb, "kind", None)
            if kind not in FEEDBACK_KINDS:
                problems.append(
                    f"site_feedback[{key!r}] has unknown kind {kind!r}"
                )
                continue
            if not isinstance(fb.mega, bool):
                problems.append(
                    f"site_feedback[{key!r}] mega flag is not a bool"
                )
            if kind == FEEDBACK_ARITH:
                if fb.mega:
                    continue  # tombstone: op/types are advisory
                if (
                    not isinstance(fb.op, int)
                    or isinstance(fb.op, bool)
                    or fb.op not in valid_ops
                ):
                    problems.append(
                        f"site_feedback[{key!r}] has invalid BinOp {fb.op!r}"
                    )
                if (
                    not isinstance(fb.types, int)
                    or isinstance(fb.types, bool)
                    or fb.types <= 0
                    or fb.types & ~FEEDBACK_TYPE_MASK
                ):
                    problems.append(
                        f"site_feedback[{key!r}] type mask {fb.types!r} "
                        f"outside known bits"
                    )
            else:  # prop_load / prop_store
                if fb.mega:
                    continue  # tombstone: hcid/offset are advisory
                hcid = fb.hcid
                if (
                    not isinstance(hcid, int)
                    or isinstance(hcid, bool)
                    or not 0 <= hcid < num_rows
                ):
                    problems.append(
                        f"site_feedback[{key!r}] hcid {hcid!r} "
                        f"outside [0, {num_rows})"
                    )
                if (
                    not isinstance(fb.offset, int)
                    or isinstance(fb.offset, bool)
                    or fb.offset < 0
                ):
                    problems.append(
                        f"site_feedback[{key!r}] offset {fb.offset!r} "
                        f"must be a non-negative int"
                    )
    else:
        problems.append("site_feedback must be a dict")

    if (
        not isinstance(record.extraction_time_ms, (int, float))
        or isinstance(record.extraction_time_ms, bool)
        or record.extraction_time_ms < 0
        or record.extraction_time_ms != record.extraction_time_ms  # NaN
    ):
        problems.append("extraction_time_ms must be a non-negative number")

    return problems


def check_record(record: ICRecord) -> ICRecord:
    """Raise :class:`RecordFormatError` unless ``record`` validates."""
    problems = validate_record(record)
    if problems:
        raise RecordFormatError(
            f"invalid ICRecord ({len(problems)} problems): " + "; ".join(problems[:5])
        )
    return record
