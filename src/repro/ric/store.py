"""Per-script ICRecords and the record store.

The paper contrasts RIC with snapshotting (§9): *"in RIC, the information
is maintained for each JavaScript file.  Therefore, the IC information for
a library can be shared by different applications."*  This module makes
that a first-class capability:

* :func:`extract_per_script_records` splits a completed run's IC
  information into one self-contained :class:`~repro.ric.icrecord.ICRecord`
  per script file.  Each record renumbers hidden classes into a
  record-local HCID space (global creation indices are an artifact of one
  specific page's load order and would not transfer), keeps the TOAST
  entries whose creators belong to that file (plus the builtins, which are
  shared), and keeps only Dependent sites inside the same file —
  cross-file links are dropped, a sound and conservative choice.
* :class:`RecordStore` holds per-script records keyed by (filename,
  source hash), with directory persistence — the browser-cache shape.
* At reuse time, the engine runs one
  :class:`~repro.ric.reuse.ReuseSession` per record simultaneously
  (see ``Engine.run`` accepting a sequence of records): each session
  validates in its own HCID namespace, so records extracted by different
  applications compose on one page.
"""

from __future__ import annotations

import json
import logging
import os
import threading
import typing
from pathlib import Path

from repro.bytecode.cache import source_hash
from repro.bytecode.code import SiteKind
from repro.core.config import RICConfig
from repro.ic.handlers import StoreTransitionHandler
from repro.ic.icvector import FeedbackState
from repro.ric.atomicio import atomic_write_text, file_lock
from repro.ric.errors import RecordFormatError
from repro.ric.extraction import _global_site_keys, prop_site_feedback
from repro.ric.icrecord import (
    DependentEntry,
    HCVTRow,
    ICRecord,
    SiteSlot,
    ToastPair,
    filename_of_creation_key,
)
from repro.ric.serialize import record_from_envelope, record_to_envelope

logger = logging.getLogger(__name__)
from repro.runtime.context import Runtime
from repro.runtime.hidden_class import HiddenClass

#: Creation-key prefixes never reusable across executions (mirrors
#: repro.ric.extraction).
_EXCLUDED_KEY_PREFIXES = ("builtin:thrown:", "builtin:Dictionary")


def extract_per_script_records(
    runtime: Runtime,
    feedback: FeedbackState,
    config: RICConfig | None = None,
) -> dict[str, ICRecord]:
    """Split a completed run's IC information into per-file records."""
    config = config or RICConfig()
    classes = runtime.hidden_classes.all_classes
    global_site_keys = _global_site_keys(feedback, config)

    filenames = sorted(
        {
            name
            for hc in classes
            if (name := filename_of_creation_key(hc.creation_key)) is not None
        }
    )
    records: dict[str, ICRecord] = {}
    for filename in filenames:
        records[filename] = _extract_for_file(
            filename, classes, feedback, config, global_site_keys
        )
    return records


def _extract_for_file(
    filename: str,
    classes: list[HiddenClass],
    feedback: FeedbackState,
    config: RICConfig,
    global_site_keys: set[str],
) -> ICRecord:
    # --- choose the hidden classes this record covers -----------------------
    # Builtins and this file's creations seed the set; native-created
    # transitions are pulled in transitively when their incoming class is
    # already covered (e.g. Object.assign extending this file's objects).
    included: dict[int, HiddenClass] = {}

    def eligible(hc: HiddenClass) -> bool:
        key = hc.creation_key
        if key.startswith(_EXCLUDED_KEY_PREFIXES):
            return False
        if not config.include_global_ics:
            if key == "builtin:global" or key in global_site_keys:
                return False
        return True

    for hc in classes:
        if not eligible(hc):
            continue
        owner = filename_of_creation_key(hc.creation_key)
        if owner is None and not hc.creation_key.startswith("native:"):
            included[hc.index] = hc  # builtin
        elif owner == filename:
            included[hc.index] = hc

    changed = True
    while changed:
        changed = False
        for hc in classes:
            if hc.index in included or not eligible(hc):
                continue
            if (
                hc.creation_key.startswith("native:")
                and hc.incoming is not None
                and hc.incoming.index in included
            ):
                included[hc.index] = hc
                changed = True

    # --- record-local HCIDs ------------------------------------------------------
    ordered = [classes[index] for index in sorted(included)]
    local_id = {hc.index: local for local, hc in enumerate(ordered)}

    record = ICRecord(script_keys=[filename])
    record.hcvt = [HCVTRow(hcid=local) for local in range(len(ordered))]

    # --- TOAST (deduplicated per (incoming, property) as in extraction) ---------
    pairs_by_key: dict[str, list[ToastPair]] = {}
    for hc in ordered:
        if hc.creation_kind in ("builtin", "ctor"):
            pair = ToastPair(None, None, local_id[hc.index])
        else:
            assert hc.incoming is not None
            if hc.incoming.index not in local_id:
                continue  # incoming outside this record: unlinkable
            pair = ToastPair(
                local_id[hc.incoming.index],
                hc.transition_property,
                local_id[hc.index],
            )
        pairs_by_key.setdefault(hc.creation_key, []).append(pair)

    for key, pairs in pairs_by_key.items():
        seen: set[tuple] = set()
        ambiguous: set[tuple] = set()
        for pair in pairs:
            signature = (pair.incoming_hcid, pair.transition_property)
            if signature in seen:
                ambiguous.add(signature)
            seen.add(signature)
        kept = [
            pair
            for pair in pairs
            if (pair.incoming_hcid, pair.transition_property) not in ambiguous
        ]
        if kept:
            record.toast[key] = kept

    # --- dependents: only sites inside this file --------------------------------
    handler_ids: dict[str, int] = {}

    def intern_handler(serialized: dict) -> int:
        text = json.dumps(serialized, sort_keys=True)
        handler_id = handler_ids.get(text)
        if handler_id is None:
            handler_id = len(record.handlers)
            handler_ids[text] = handler_id
            record.handlers.append(serialized)
        return handler_id

    for site in feedback.all_sites():
        info = site.info
        if info.kind not in (SiteKind.NAMED_LOAD, SiteKind.NAMED_STORE):
            continue
        if info.position.filename != filename:
            continue
        # Per-site slot sets (format v4), in final probe order, with hcids
        # remapped to this record's local row numbering.  Shapes created
        # by other files are simply absent from the local map and drop
        # out — the per-file record persists the polymorphic degree this
        # file can re-validate on its own.
        slot_entries: list[SiteSlot] = []
        for hc, handler in site.slots:
            local = local_id.get(hc.index)
            if local is None:
                continue
            row = record.hcvt[local]
            if handler.is_context_independent:
                serialized = handler.serialize()
                assert serialized is not None
                handler_id = intern_handler(serialized)
                row.dependents.append(
                    DependentEntry(info.site_key, handler_id)
                )
                slot_entries.append(SiteSlot(local, handler_id))
            elif not isinstance(handler, StoreTransitionHandler):
                row.cd_dependent_sites.append(info.site_key)
        if slot_entries:
            record.site_slots[info.site_key] = slot_entries
        # v5 site feedback, hcid-remapped via the (already record-local)
        # slot entries exactly like site_slots.
        feedback_entry = prop_site_feedback(site, slot_entries)
        if feedback_entry is not None:
            record.site_feedback[info.site_key] = feedback_entry

    # Arithmetic profiles of code declared in this file, plus tombstones
    # for this file's demoted sites (both key shapes start with the
    # declaring filename, which is what the filters cut on).
    from repro.specialize.feedback import (
        collect_arith_feedback,
        demotion_tombstones,
    )

    record.site_feedback.update(
        collect_arith_feedback(feedback, filename=filename)
    )
    for key, tombstone in demotion_tombstones(
        feedback.demoted_sites, filename=filename
    ):
        record.site_feedback[key] = tombstone

    return record


@typing.runtime_checkable
class RecordStoreProtocol(typing.Protocol):
    """What the engine and CLIs require of a record store.

    Satisfied by the local :class:`RecordStore`, the fault-injecting
    :class:`~repro.faults.faulty_store.FaultyRecordStore`, and the
    daemon-backed :class:`~repro.server.client.RemoteRecordStore` — the
    store a run uses is a deployment decision, not a code path.
    """

    def put(self, filename: str, source: str, record: ICRecord) -> None: ...

    def get(self, filename: str, source: str) -> ICRecord | None: ...

    def records_for(self, scripts) -> list[ICRecord]: ...

    def status(self) -> dict: ...

    def __len__(self) -> int: ...


class RecordStore:
    """Per-script record cache keyed by (filename, source hash).

    Mirrors how a browser would persist RIC information next to its code
    cache: one entry per script, shared by every page that loads it.

    The on-disk directory is treated as hostile-until-verified: every
    entry carries a checksummed envelope (see :mod:`repro.ric.serialize`),
    writes are atomic and advisory-locked, and entries that fail
    integrity or structural validation are **quarantined** (renamed to
    ``*.corrupt``) and surfaced through :attr:`load_errors` rather than
    silently skipped — a store that quietly sheds entries looks identical
    to a store that never had them, which is exactly how corruption goes
    unnoticed in production.

    Thread-safety contract: one store may serve many concurrent sessions
    (the executor layer), so the entry map, size map and error list are
    guarded by a re-entrant lock.  Records handed out are shared —
    :class:`~repro.ric.reuse.ReuseSession` reads them strictly
    read-only, so no copy is needed.
    """

    def __init__(
        self,
        directory: str | Path | None = None,
        quarantine: bool = True,
    ):
        self._lock = threading.RLock()
        self._entries: dict[str, ICRecord] = {}
        #: Serialized payload bytes per key, for :meth:`status`.
        self._sizes: dict[str, int] = {}
        self._directory = Path(directory) if directory is not None else None
        self.quarantine = quarantine
        #: (filename, error message) for every on-disk entry that failed to
        #: load — the degradation signal tests and reporting consume.
        self.load_errors: list[tuple[str, str]] = []
        #: Quarantined files removed by :meth:`sweep_quarantine` over this
        #: store's lifetime.
        self.quarantine_swept = 0
        if self._directory is not None:
            self._directory.mkdir(parents=True, exist_ok=True)
            self._load_directory()

    @property
    def directory(self) -> "Path | None":
        """Backing directory, or ``None`` for a memory-only store."""
        return self._directory

    @staticmethod
    def _key(filename: str, source: str) -> str:
        return f"{filename}:{source_hash(source)}"

    def _lock_path(self) -> Path:
        assert self._directory is not None
        return self._directory / ".store.lock"

    def _path_for_key(self, key: str) -> Path:
        assert self._directory is not None
        return self._directory / f"{_safe(key)}.icrecord.json"

    def put(self, filename: str, source: str, record: ICRecord) -> None:
        self.put_by_key(self._key(filename, source), record)

    def put_by_key(self, key: str, record: ICRecord) -> None:
        """Insert under a precomputed ``filename:source_hash`` key.

        The daemon's write-through path: it only ever sees the hash, not
        the source text, so the plain :meth:`put` signature cannot apply.
        """
        text = json.dumps(record_to_envelope(record, extra={"key": key}))
        with self._lock:
            self._entries[key] = record
            self._sizes[key] = len(text.encode("utf-8"))
            if self._directory is not None:
                with file_lock(self._lock_path(), exclusive=True):
                    atomic_write_text(self._path_for_key(key), text)

    def get(self, filename: str, source: str) -> ICRecord | None:
        with self._lock:
            return self._entries.get(self._key(filename, source))

    def get_by_key(self, key: str) -> ICRecord | None:
        with self._lock:
            return self._entries.get(key)

    def records_for(self, scripts) -> list[ICRecord]:
        """Records available for a (filename, source) script list."""
        found = []
        for filename, source in scripts:
            record = self.get(filename, source)
            if record is not None:
                found.append(record)
        return found

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def status(self) -> dict:
        """Operational summary: entry count, payload bytes, casualties.

        Consumed by ``ric-run --store-status`` and echoed by the daemon's
        ``STAT`` verb, so a local directory and a remote daemon answer
        the same question the same way.
        """
        quarantined = 0
        if self._directory is not None:
            quarantined = len(list(self._directory.glob("*.corrupt*")))
        with self._lock:
            return {
                "records": len(self._entries),
                "bytes": sum(self._sizes.values()),
                "quarantined": quarantined,
                "quarantine_swept": self.quarantine_swept,
                "load_errors": len(self.load_errors),
                "directory": str(self._directory) if self._directory else None,
            }

    def clear(self) -> int:
        """Drop every entry, in memory and on disk; returns how many died.

        The epoch-invalidation primitive (INTERNALS §12): when the fleet
        epoch bumps, records extracted from the old source must die
        everywhere, including the write-through directory that would
        otherwise resurrect them after a daemon restart.  Quarantined
        ``*.corrupt`` files are left for post-mortem (they were never
        servable anyway)."""
        with self._lock:
            count = len(self._entries)
            self._entries.clear()
            self._sizes.clear()
            if self._directory is not None:
                with file_lock(self._lock_path(), exclusive=True):
                    for path in self._directory.glob("*.icrecord.json"):
                        try:
                            path.unlink()
                        except OSError:  # pragma: no cover - raced removal
                            pass
        return count

    def sweep_quarantine(
        self,
        max_age_s: float | None = None,
        max_count: int | None = None,
    ) -> dict:
        """Prune quarantined ``*.corrupt*`` entries.

        Quarantine preserves corrupt entries for post-mortem, but a store
        that is corrupted repeatedly (flaky disk, crashing writer) will
        otherwise accumulate them without bound.  The sweep deletes
        entries older than ``max_age_s`` and, if more than ``max_count``
        remain, the oldest of those; ``None`` disables a criterion, and
        all-``None`` sweeps nothing (status-quo safe).  Returns a
        ``{"swept": n, "kept": m}`` summary; memory-only stores have no
        quarantine and report zeros.
        """
        if self._directory is None:
            return {"swept": 0, "kept": 0}
        import time

        now = time.time()
        aged: list[tuple[float, Path]] = []
        for path in self._directory.glob("*.corrupt*"):
            try:
                aged.append((path.stat().st_mtime, path))
            except OSError:  # pragma: no cover - raced removal
                pass
        aged.sort()  # oldest first
        doomed: list[Path] = []
        if max_age_s is not None:
            cutoff = now - max_age_s
            while aged and aged[0][0] < cutoff:
                doomed.append(aged.pop(0)[1])
        if max_count is not None and len(aged) > max_count:
            excess = len(aged) - max_count
            doomed.extend(path for _, path in aged[:excess])
            del aged[:excess]
        swept = 0
        for path in doomed:
            try:
                path.unlink()
                swept += 1
            except OSError:  # pragma: no cover - raced removal
                pass
        with self._lock:
            self.quarantine_swept += swept
        return {"swept": swept, "kept": len(aged)}

    def _load_directory(self) -> None:
        assert self._directory is not None
        with file_lock(self._lock_path(), exclusive=False):
            paths = sorted(self._directory.glob("*.icrecord.json"))
        for path in paths:
            try:
                payload = json.loads(path.read_text())
                if not isinstance(payload, dict) or not isinstance(
                    payload.get("key"), str
                ):
                    raise RecordFormatError("store entry missing string 'key'")
                self._entries[payload["key"]] = record_from_envelope(payload)
                self._sizes[payload["key"]] = path.stat().st_size
            except (OSError, ValueError) as exc:
                self.load_errors.append((path.name, str(exc)))
                logger.warning("skipping corrupt record %s: %s", path.name, exc)
                if self.quarantine:
                    self._quarantine(path)

    def _quarantine(self, path: Path) -> None:
        """Move a bad entry aside as ``*.corrupt`` so it stops matching the
        store glob but stays available for post-mortem inspection."""
        target = path.with_name(path.name + ".corrupt")
        serial = 0
        while target.exists():
            serial += 1
            target = path.with_name(f"{path.name}.corrupt.{serial}")
        try:
            os.replace(path, target)
        except OSError:  # pragma: no cover - raced by another process
            pass


def _safe(key: str) -> str:
    import hashlib

    return hashlib.sha256(key.encode("utf-8")).hexdigest()[:24]
