"""ICRecord persistence: JSON serialization, disk round-trip, integrity.

The ICRecord is the artifact RIC persists between executions — unlike the
snapshot approach the paper compares against (§9), it is per-script, can be
shared between applications, and contains no heap state, so it stays valid
under nondeterministic initialization.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.ric.icrecord import DependentEntry, HCVTRow, ICRecord, ToastPair

#: Bump when the on-disk format changes.
ICRECORD_FORMAT_VERSION = 2


def record_to_json(record: ICRecord) -> dict:
    """Serialize an ICRecord to JSON-compatible plain data."""
    return {
        "version": ICRECORD_FORMAT_VERSION,
        "script_keys": record.script_keys,
        "hcvt": [
            {
                "hcid": row.hcid,
                "dependents": [
                    [entry.site_key, entry.handler_id] for entry in row.dependents
                ],
                "cd_dependent_sites": row.cd_dependent_sites,
            }
            for row in record.hcvt
        ],
        "toast": {
            key: [
                [pair.incoming_hcid, pair.transition_property, pair.outgoing_hcid]
                for pair in pairs
            ]
            for key, pairs in record.toast.items()
        },
        "handlers": record.handlers,
        "extraction_time_ms": record.extraction_time_ms,
    }


def record_from_json(data: dict) -> ICRecord:
    """Inverse of :func:`record_to_json`."""
    if data.get("version") != ICRECORD_FORMAT_VERSION:
        raise ValueError(
            f"unsupported ICRecord version {data.get('version')!r} "
            f"(expected {ICRECORD_FORMAT_VERSION})"
        )
    record = ICRecord(script_keys=list(data["script_keys"]))
    record.hcvt = [
        HCVTRow(
            hcid=row["hcid"],
            dependents=[
                DependentEntry(site_key=site_key, handler_id=handler_id)
                for site_key, handler_id in row["dependents"]
            ],
            cd_dependent_sites=list(row["cd_dependent_sites"]),
        )
        for row in data["hcvt"]
    ]
    record.toast = {
        key: [
            ToastPair(
                incoming_hcid=incoming,
                transition_property=prop,
                outgoing_hcid=outgoing,
            )
            for incoming, prop, outgoing in pairs
        ]
        for key, pairs in data["toast"].items()
    }
    record.handlers = [dict(handler) for handler in data["handlers"]]
    record.extraction_time_ms = float(data.get("extraction_time_ms", 0.0))
    return record


def record_size_bytes(record: ICRecord) -> int:
    """Serialized size — the paper §7.3 memory-overhead metric."""
    return len(json.dumps(record_to_json(record)).encode("utf-8"))


def save_icrecord(record: ICRecord, path: str | Path) -> None:
    """Persist an ICRecord to disk."""
    Path(path).write_text(json.dumps(record_to_json(record)))


def load_icrecord(path: str | Path) -> ICRecord:
    """Load a previously saved ICRecord."""
    return record_from_json(json.loads(Path(path).read_text()))
