"""ICRecord persistence: JSON serialization, disk round-trip, integrity.

The ICRecord is the artifact RIC persists between executions — unlike the
snapshot approach the paper compares against (§9), it is per-script, can be
shared between applications, and contains no heap state, so it stays valid
under nondeterministic initialization.

Because a *later* execution acts on this artifact, the on-disk form is a
hardened envelope around the payload::

    {"checksum": "<sha256 of canonical payload JSON>",
     "record": {"version": 4, "script_keys": [...], ...}}

* the **checksum** rejects truncation, bit-flips, and hand-edits;
* the **format version** (inside the payload, covered by the checksum)
  rejects records written by an incompatible engine;
* :func:`record_from_json` re-raises every structural surprise as one
  typed :class:`~repro.ric.errors.RecordFormatError`;
* loaded records additionally pass
  :func:`~repro.ric.validate.check_record` before being returned.

Writes go through :func:`~repro.ric.atomicio.atomic_write_text`, so a
crash mid-save leaves the previous record intact rather than a prefix of
the new one.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.ric.atomicio import atomic_write_text
from repro.ric.errors import CorruptRecord, RecordFormatError
from repro.ric.icrecord import (
    FEEDBACK_ARITH,
    FEEDBACK_PROP_LOAD,
    FEEDBACK_PROP_STORE,
    DependentEntry,
    HCVTRow,
    ICRecord,
    SiteFeedback,
    SiteSlot,
    ToastPair,
)

#: Bump when the on-disk format changes.  v3: integrity envelope
#: (payload checksum) and structural validation on load.  v4: per-site
#: ordered slot sets (``site_slots``) — persisted polymorphic ICVector
#: state, ``site_key -> [[hcid, handler_id], ...]`` capped at POLY_LIMIT.
#: v5: per-site type feedback (``site_feedback``) — spent by the
#: quickening pass; v4 records (pre-feedback) are refused like any other
#: version mismatch and re-extracted.  The wire form is deduplicated and
#: compact (§7.3 bounds the record at <5% of the workload heap, and the
#: naive 6-tuple-per-site encoding blew that budget on reactlike):
#:
#: * monomorphic property feedback is *not* written at all when it is
#:   byte-for-byte derivable from ``site_slots`` + the handler table
#:   (exactly one persisted slot whose handler is a field load/store);
#:   :func:`derived_prop_feedback` reconstructs it on load;
#: * ``null`` marks a derivable site the extractor deliberately left
#:   without feedback (e.g. ``X.prototype = ...`` stores) so derivation
#:   must not resurrect it;
#: * everything else is a short list: ``[k]`` is a kind-``k`` tombstone,
#:   ``[0, op, types]`` an arith entry, ``[1|2, hcid, offset]`` a
#:   non-derivable property entry (kinds are small ints on the wire:
#:   0=arith, 1=prop_load, 2=prop_store).
ICRECORD_FORMAT_VERSION = 5

#: Wire encoding of feedback kinds (strings in memory, ints on disk).
_FEEDBACK_KIND_TO_WIRE = {
    FEEDBACK_ARITH: 0,
    FEEDBACK_PROP_LOAD: 1,
    FEEDBACK_PROP_STORE: 2,
}
_WIRE_TO_FEEDBACK_KIND = {v: k for k, v in _FEEDBACK_KIND_TO_WIRE.items()}

#: Handler kinds whose feedback is derivable, keyed by the site-key
#: suffix they must sit behind.  A direct-offset rewrite is only ever
#: justified by a plain field handler at a matching named site.
_DERIVABLE_HANDLERS = {
    "load_field": (":named_load", FEEDBACK_PROP_LOAD),
    "store_field": (":named_store", FEEDBACK_PROP_STORE),
}


def derived_prop_feedback(record: ICRecord) -> dict:
    """Feedback entries implied by ``site_slots`` + the handler table.

    A persistently-monomorphic named property site — exactly one
    persisted slot, backed by a plain field handler — carries the same
    ``(hcid, offset)`` pair in ``site_slots`` that its ``site_feedback``
    entry would repeat, so the entry is reconstructed here instead of
    serialized.  Sites with polymorphic slot sets, exotic handlers, or a
    handler/site-kind mismatch derive nothing.
    """
    derived = {}
    for site_key, slots in record.site_slots.items():
        if len(slots) != 1:
            continue
        slot = slots[0]
        if not 0 <= slot.handler_id < len(record.handlers):
            continue
        handler = record.handlers[slot.handler_id]
        if not isinstance(handler, dict):
            continue
        rule = _DERIVABLE_HANDLERS.get(handler.get("kind"))
        if rule is None or not site_key.endswith(rule[0]):
            continue
        offset = handler.get("offset")
        if not isinstance(offset, int):
            continue
        derived[site_key] = SiteFeedback(kind=rule[1], hcid=slot.hcid, offset=offset)
    return derived


def _feedback_to_wire(fb: SiteFeedback) -> list:
    """Compact wire form of one explicit (non-derivable) feedback entry."""
    kind = _FEEDBACK_KIND_TO_WIRE.get(fb.kind)
    if kind is None:
        # Unknown kind: keep the legacy self-describing 6-tuple so the
        # round trip stays lossless; validate_record is the wall that
        # rejects it, not the serializer.
        return [fb.kind, fb.op, fb.types, fb.hcid, fb.offset, fb.mega]
    if fb.mega:
        return [kind]
    if fb.kind == FEEDBACK_ARITH:
        return [kind, fb.op, fb.types]
    return [kind, fb.hcid, fb.offset]


def _feedback_from_wire(entry: list) -> SiteFeedback:
    """Inverse of :func:`_feedback_to_wire` (raises on malformed shapes)."""
    head = entry[0]
    if isinstance(head, str):
        kind, op, types, hcid, offset, mega = entry
        return SiteFeedback(
            kind=kind, op=op, types=types, hcid=hcid, offset=offset, mega=bool(mega)
        )
    kind = _WIRE_TO_FEEDBACK_KIND[head]
    if len(entry) == 1:
        return SiteFeedback(kind=kind, mega=True)
    if kind == FEEDBACK_ARITH:
        _, op, types = entry
        return SiteFeedback(kind=kind, op=op, types=types)
    _, hcid, offset = entry
    return SiteFeedback(kind=kind, hcid=hcid, offset=offset)


def record_to_json(record: ICRecord) -> dict:
    """Serialize an ICRecord to JSON-compatible plain data (the payload)."""
    derived = derived_prop_feedback(record)
    site_feedback = {
        key: _feedback_to_wire(fb)
        for key, fb in record.site_feedback.items()
        if derived.get(key) != fb
    }
    for key in derived:
        if key not in record.site_feedback:
            site_feedback[key] = None
    return {
        "version": ICRECORD_FORMAT_VERSION,
        "script_keys": record.script_keys,
        "hcvt": [
            {
                "hcid": row.hcid,
                "dependents": [
                    [entry.site_key, entry.handler_id] for entry in row.dependents
                ],
                "cd_dependent_sites": row.cd_dependent_sites,
            }
            for row in record.hcvt
        ],
        "toast": {
            key: [
                [pair.incoming_hcid, pair.transition_property, pair.outgoing_hcid]
                for pair in pairs
            ]
            for key, pairs in record.toast.items()
        },
        # Copied, not aliased: callers legitimately mutate payloads (fault
        # injectors, envelope extras) and must never reach back into the
        # live record through the serialized form.
        "handlers": [dict(handler) for handler in record.handlers],
        "site_slots": {
            site_key: [[slot.hcid, slot.handler_id] for slot in slots]
            for site_key, slots in record.site_slots.items()
        },
        "site_feedback": site_feedback,
        "extraction_time_ms": record.extraction_time_ms,
    }


def record_from_json(data: dict) -> ICRecord:
    """Inverse of :func:`record_to_json`.

    Any structural surprise — wrong version, missing key, wrong type,
    wrong arity — raises :class:`RecordFormatError`, never a bare
    ``KeyError``/``TypeError``, so callers have one exception to catch.
    """
    if not isinstance(data, dict):
        raise RecordFormatError(f"ICRecord payload must be a dict, got {type(data).__name__}")
    if data.get("version") != ICRECORD_FORMAT_VERSION:
        raise RecordFormatError(
            f"unsupported ICRecord version {data.get('version')!r} "
            f"(expected {ICRECORD_FORMAT_VERSION})"
        )
    try:
        record = ICRecord(script_keys=list(data["script_keys"]))
        record.hcvt = [
            HCVTRow(
                hcid=row["hcid"],
                dependents=[
                    DependentEntry(site_key=site_key, handler_id=handler_id)
                    for site_key, handler_id in row["dependents"]
                ],
                cd_dependent_sites=list(row["cd_dependent_sites"]),
            )
            for row in data["hcvt"]
        ]
        record.toast = {
            key: [
                ToastPair(
                    incoming_hcid=incoming,
                    transition_property=prop,
                    outgoing_hcid=outgoing,
                )
                for incoming, prop, outgoing in pairs
            ]
            for key, pairs in data["toast"].items()
        }
        record.handlers = [dict(handler) for handler in data["handlers"]]
        record.site_slots = {
            site_key: [
                SiteSlot(hcid=hcid, handler_id=handler_id)
                for hcid, handler_id in slots
            ]
            for site_key, slots in data["site_slots"].items()
        }
        site_feedback = derived_prop_feedback(record)
        for key, entry in data["site_feedback"].items():
            if entry is None:
                # Explicit suppression: derivable site the extractor
                # deliberately left without feedback (prototype stores).
                site_feedback.pop(key, None)
            else:
                site_feedback[key] = _feedback_from_wire(entry)
        record.site_feedback = site_feedback
        record.extraction_time_ms = float(data.get("extraction_time_ms", 0.0))
    except RecordFormatError:
        raise
    except (KeyError, IndexError, TypeError, ValueError, AttributeError) as exc:
        raise RecordFormatError(
            f"malformed ICRecord payload: {type(exc).__name__}: {exc}"
        ) from exc
    return record


def payload_checksum(payload: dict) -> str:
    """SHA-256 over the canonical JSON form of a record payload."""
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def record_to_envelope(record: ICRecord, extra: dict | None = None) -> dict:
    """Wrap a record payload in the checksummed on-disk envelope.

    ``extra`` adds sibling fields (e.g. the store's ``"key"``) that live
    outside the checksum — they are addressing, not trusted content.
    """
    payload = record_to_json(record)
    envelope = dict(extra or {})
    envelope["checksum"] = payload_checksum(payload)
    envelope["record"] = payload
    return envelope


def record_from_envelope(data: dict) -> ICRecord:
    """Verify and unwrap an on-disk envelope: checksum, version, structure.

    Raises :class:`RecordFormatError` on any integrity or format failure.
    """
    if not isinstance(data, dict):
        raise RecordFormatError(
            f"ICRecord envelope must be a dict, got {type(data).__name__}"
        )
    if "record" not in data or "checksum" not in data:
        raise RecordFormatError("ICRecord envelope missing 'record'/'checksum'")
    payload = data["record"]
    if not isinstance(payload, dict):
        raise RecordFormatError("ICRecord envelope 'record' must be a dict")
    expected = data["checksum"]
    actual = payload_checksum(payload)
    if expected != actual:
        raise RecordFormatError(
            f"ICRecord checksum mismatch (stored {str(expected)[:12]!r}..., "
            f"computed {actual[:12]!r}...)"
        )
    from repro.ric.validate import check_record

    return check_record(record_from_json(payload))


def record_size_bytes(record: ICRecord) -> int:
    """Serialized size — the paper §7.3 memory-overhead metric."""
    return len(json.dumps(record_to_json(record)).encode("utf-8"))


def save_icrecord(record: ICRecord, path: str | Path) -> None:
    """Persist an ICRecord to disk atomically (tmpfile + ``os.replace``)."""
    atomic_write_text(path, json.dumps(record_to_envelope(record)))


def load_icrecord(path: str | Path) -> ICRecord:
    """Load a previously saved ICRecord, verifying integrity and structure.

    Raises :class:`RecordFormatError` for every corruption mode (bad JSON,
    bad checksum, wrong version, structural damage).  ``OSError`` still
    propagates for genuinely missing/unreadable files.
    """
    raw = Path(path).read_bytes()
    try:
        data = json.loads(raw.decode("utf-8"))
    except UnicodeDecodeError as exc:
        raise RecordFormatError(f"ICRecord is not valid UTF-8: {exc}") from exc
    except ValueError as exc:
        raise RecordFormatError(f"ICRecord is not valid JSON: {exc}") from exc
    return record_from_envelope(data)


def try_load_icrecord(path: str | Path) -> "ICRecord | CorruptRecord":
    """Degrading load: a corrupt or unreadable record becomes a
    :class:`CorruptRecord` placeholder instead of raising.

    ``Engine.run`` accepts the placeholder and cold-starts that one
    record while the rest of the page still reuses.
    """
    try:
        return load_icrecord(path)
    except (OSError, RecordFormatError) as exc:
        return CorruptRecord(source=str(path), error=str(exc))
