"""Reusable Inline Caching — the paper's contribution.

Extraction (post-Initial-run analysis) builds an :class:`ICRecord`; a
:class:`ReuseSession` consumes it during a later execution, validating
hidden classes and preloading Dependent sites' ICVector slots.
"""

from repro.ric.extraction import extract_icrecord
from repro.ric.icrecord import DependentEntry, HCVTRow, ICRecord, ToastPair
from repro.ric.reuse import MultiReuseSession, ReuseSession
from repro.ric.store import RecordStore, extract_per_script_records
from repro.ric.serialize import (
    ICRECORD_FORMAT_VERSION,
    load_icrecord,
    record_from_json,
    record_size_bytes,
    record_to_json,
    save_icrecord,
)

__all__ = [
    "DependentEntry",
    "MultiReuseSession",
    "RecordStore",
    "extract_per_script_records",
    "HCVTRow",
    "ICRECORD_FORMAT_VERSION",
    "ICRecord",
    "ReuseSession",
    "ToastPair",
    "extract_icrecord",
    "load_icrecord",
    "record_from_json",
    "record_size_bytes",
    "record_to_json",
    "save_icrecord",
]
