"""Reusable Inline Caching — the paper's contribution.

Extraction (post-Initial-run analysis) builds an :class:`ICRecord`; a
:class:`ReuseSession` consumes it during a later execution, validating
hidden classes and preloading Dependent sites' ICVector slots.

Persistence is hardened (checksummed envelope, atomic writes, structural
validation, quarantine): see :mod:`repro.ric.serialize`,
:mod:`repro.ric.store`, and :mod:`repro.ric.validate`; all load-path
failures raise the single typed :class:`RecordFormatError`.
"""

from repro.ric.errors import CorruptRecord, RecordFormatError
from repro.ric.extraction import extract_icrecord
from repro.ric.icrecord import DependentEntry, HCVTRow, ICRecord, ToastPair
from repro.ric.reuse import MultiReuseSession, ReuseSession
from repro.ric.store import (
    RecordStore,
    RecordStoreProtocol,
    extract_per_script_records,
)
from repro.ric.serialize import (
    ICRECORD_FORMAT_VERSION,
    load_icrecord,
    payload_checksum,
    record_from_envelope,
    record_from_json,
    record_size_bytes,
    record_to_envelope,
    record_to_json,
    save_icrecord,
    try_load_icrecord,
)
from repro.ric.validate import check_record, validate_record

__all__ = [
    "CorruptRecord",
    "DependentEntry",
    "MultiReuseSession",
    "RecordFormatError",
    "RecordStore",
    "RecordStoreProtocol",
    "extract_per_script_records",
    "HCVTRow",
    "ICRECORD_FORMAT_VERSION",
    "ICRecord",
    "ReuseSession",
    "ToastPair",
    "check_record",
    "extract_icrecord",
    "load_icrecord",
    "payload_checksum",
    "record_from_envelope",
    "record_from_json",
    "record_size_bytes",
    "record_to_envelope",
    "record_to_json",
    "save_icrecord",
    "try_load_icrecord",
    "validate_record",
]
