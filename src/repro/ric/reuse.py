"""RIC Reuse-execution machinery (paper §5.2.2).

A :class:`ReuseSession` is attached to a fresh execution before builtins are
installed.  It observes every hidden-class creation of the run:

* builtin / constructor hidden classes are validated immediately on
  creation (their construction is deterministic — paper §4);
* a hidden class created by a transitioning site is validated iff its
  TOAST entry matches: same creation key, same transition property, and an
  *incoming* hidden class that is itself validated and whose current
  address matches the one recorded when it was validated earlier this run.

Validation of hidden class ``h`` preloads the ICVector slots of all of
``h``'s Dependent sites with (``h``'s address, saved handler) — averting
the IC miss each of those sites would otherwise take.  If validation fails
(the Reuse run diverged from the Initial run, Figure 7(e)), nothing is
preloaded and execution proceeds correctly, just without the speedup.
"""

from __future__ import annotations

from repro.core.config import RICConfig
from repro.ic.handlers import Handler, deserialize_handler
from repro.ic.icvector import POLY_LIMIT, FeedbackState, ICSite, ICState
from repro.interpreter import cost_model as cost
from repro.ric.icrecord import ICRecord, filename_of_creation_key
from repro.runtime.hidden_class import HiddenClass
from repro.stats.counters import CATEGORY_RIC, MISS_HANDLER, MISS_OTHER, Counters


class ReuseSession:
    """Per-Reuse-execution RIC state: the runtime HCVT columns.

    The paper's HCVT has per-run fields (``HCAddr``, the ``V`` bit) next to
    the persisted ones; here the persisted part is the read-only
    :class:`~repro.ric.icrecord.ICRecord` and the per-run part lives in
    this session.
    """

    __slots__ = (
        "tracer",
        "record",
        "feedback",
        "counters",
        "config",
        "_valid_files",
        "address_by_hcid",
        "hcid_by_address",
        "validated",
        "_handler_cache",
        "_cd_sites_by_hcid",
        "_slot_plan",
    )

    def __init__(
        self,
        record: ICRecord,
        feedback: FeedbackState,
        counters: Counters,
        config: RICConfig | None = None,
        tracer=None,
        trusted_script_keys: "set[str] | None" = None,
    ):
        self.tracer = tracer
        self.record = record
        self.feedback = feedback
        self.counters = counters
        self.config = config or RICConfig()
        # Content-identity gate: a record's file-bound information (site
        # transitions, constructor classes, dependents) is only valid for
        # files whose *content* matches the one the record was extracted
        # from — same discipline as the bytecode cache.  Source positions
        # alone are not identity: two different scripts can share a
        # filename and coincidentally aligned positions, and preloading
        # across them would read wrong slots (caught by the program
        # fuzzer).  ``trusted_script_keys`` holds this run's
        # "filename:source-hash" keys; None (unit-test construction)
        # trusts everything.
        if trusted_script_keys is None:
            self._valid_files: "set[str] | None" = None
        else:
            self._valid_files = {
                key.split(":", 1)[0]
                for key in record.script_keys
                if key in trusted_script_keys
            }
        #: hcid -> address of the validated hidden class this run (HCAddr).
        self.address_by_hcid: dict[int, int] = {}
        #: address -> hcid, for miss classification.
        self.hcid_by_address: dict[int, int] = {}
        #: The V bits.
        self.validated: set[int] = set()
        #: Materialized handlers, by handler_id (lazy).
        self._handler_cache: dict[int, Handler] = {}
        #: cd_dependent site keys per hcid, for Table 4 "Handler" attribution.
        self._cd_sites_by_hcid = {
            row.hcid: set(row.cd_dependent_sites)
            for row in record.hcvt
            if row.cd_dependent_sites
        }
        #: Recorded probe order per site (format v4 ``site_slots``):
        #: site_key -> {hcid: position}.  As a polymorphic site's slots
        #: preload one hidden class at a time (in whatever order this
        #: run happens to validate them), :meth:`_preload` re-sorts the
        #: preloaded slots to this recorded order, so a warmed site
        #: starts probing hottest-shape-first exactly as the Initial run
        #: left it.  Slot order never affects results or counters (the
        #: probe charge is flat) — only which compare hits first.
        self._slot_plan: dict[str, dict[int, int]] = {
            site_key: {
                slot.hcid: position for position, slot in enumerate(slots)
            }
            for site_key, slots in record.site_slots.items()
        }

    # -- hook wired into HiddenClassRegistry.on_created ------------------------

    def on_hidden_class_created(self, hc: HiddenClass) -> None:
        """Validate (or not) a hidden class the Reuse run just created."""
        counters = self.counters
        counters.ric_toast_lookups += 1
        counters.charge(CATEGORY_RIC, cost.RIC_TOAST_LOOKUP)

        if not self.config.validate:
            self._naive_match(hc)
            return

        if not self._file_trusted(hc.creation_key):
            return
        pairs = self.record.toast.get(hc.creation_key)
        if pairs is None:
            return
        if hc.creation_kind in ("builtin", "ctor"):
            for pair in pairs:
                if pair.incoming_hcid is None:
                    self._validate(pair.outgoing_hcid, hc)
                    return
            return
        incoming = hc.incoming
        if incoming is None:  # pragma: no cover - site transitions always have one
            return
        for pair in pairs:
            if pair.transition_property != hc.transition_property:
                continue
            if pair.incoming_hcid is None:
                continue
            counters.charge(CATEGORY_RIC, cost.RIC_VALIDATE)
            if (
                pair.incoming_hcid in self.validated
                and self.address_by_hcid.get(pair.incoming_hcid) == incoming.address
            ):
                self._validate(pair.outgoing_hcid, hc)
                return
        counters.ric_divergences += 1
        if self.tracer is not None:
            from repro.stats.tracing import RIC_DIVERGENCE

            self.tracer.emit(
                RIC_DIVERGENCE, site_key=hc.creation_key, hc_index=hc.index
            )

    def _file_trusted(self, key: str) -> bool:
        """Whether file-bound record information for ``key`` may be used."""
        if self._valid_files is None:
            return True
        owner = filename_of_creation_key(key)
        return owner is None or owner in self._valid_files

    def _naive_match(self, hc: HiddenClass) -> None:
        """The unsound ablation: trust creation order, skip validation."""
        if hc.index < len(self.record.hcvt):
            self._validate(hc.index, hc)

    def _validate(self, hcid: int, hc: HiddenClass) -> None:
        counters = self.counters
        counters.ric_validations += 1
        counters.charge(CATEGORY_RIC, cost.RIC_VALIDATE)
        if self.tracer is not None:
            from repro.stats.tracing import RIC_VALIDATED

            self.tracer.emit(
                RIC_VALIDATED, hc_index=hc.index, detail=f"hcid={hcid}"
            )
        self.validated.add(hcid)
        self.address_by_hcid[hcid] = hc.address
        self.hcid_by_address[hc.address] = hcid
        if not self.config.enable_linking:
            return
        row = self.record.hcvt[hcid]
        for dependent in row.dependents:
            if not self._file_trusted(dependent.site_key):
                continue  # dependent belongs to a changed/unknown script
            site = self.feedback.site_by_key(dependent.site_key)
            if site is None:
                continue  # site's script not loaded in this run
            self._preload(site, hc, dependent.handler_id)

    def _preload(self, site: ICSite, hc: HiddenClass, handler_id: int) -> None:
        """Fill one Dependent site's ICVector slot (the paper's key step).

        Polymorphic slot sets preload in full: each validated hidden
        class fills its own slot, one install per Dependent link, up to
        all ``POLY_LIMIT`` slots of a POLY site.  The capacity guard
        below only refuses installs *beyond* the limit — a preload must
        never be the install that dumps a site to MEGA (that would make
        record reuse degrade a site the Reuse run might have kept
        polymorphic).  Megamorphic sites likewise stay untouched: the
        record stores no slots for them and they re-learn through the
        stub cache.
        """
        if site.state is ICState.MEGAMORPHIC or len(site.slots) >= POLY_LIMIT:
            return
        if site.lookup(hc) is not None:
            return
        handler = self._materialize_handler(handler_id)
        self.counters.charge(CATEGORY_RIC, cost.RIC_PRELOAD_SLOT)
        if not self.config.enable_handler_reuse:
            # Ablation: linking without handler reuse — the slot is still
            # preloaded but the handler must be regenerated, paying the
            # generation cost the full design avoids.
            self.counters.charge(CATEGORY_RIC, cost.HANDLER_GENERATE)
        before = site.state
        site.install(hc, handler, preloaded=True)
        if site.state is ICState.POLYMORPHIC and before is not ICState.POLYMORPHIC:
            self.counters.ic_poly_transitions += 1
        self.counters.ric_preloads += 1
        self._apply_slot_plan(site)
        if self.tracer is not None:
            from repro.stats.tracing import RIC_PRELOADED

            self.tracer.emit(
                RIC_PRELOADED,
                site_key=site.info.site_key,
                hc_index=hc.index,
                detail=handler.describe(),
            )

    def _apply_slot_plan(self, site: ICSite) -> None:
        """Restore the recorded probe order on a fully-preloaded site.

        Only applied while *every* slot is a preload: once the run
        installs anything organically, MRU reordering owns the site and
        imposing extraction-time order would fight it.
        """
        plan = self._slot_plan.get(site.info.site_key)
        slots = site.slots
        if plan is None or len(slots) < 2:
            return
        preloaded = site.preloaded_addresses
        if any(entry[0].address not in preloaded for entry in slots):
            return
        hcid_of = self.hcid_by_address
        slots.sort(
            key=lambda entry: plan.get(
                hcid_of.get(entry[0].address, -1), POLY_LIMIT
            )
        )

    def _materialize_handler(self, handler_id: int) -> Handler:
        handler = self._handler_cache.get(handler_id)
        if handler is None:
            handler = deserialize_handler(self.record.handlers[handler_id])
            self._handler_cache[handler_id] = handler
        return handler

    # -- miss attribution (Table 4) ------------------------------------------------

    def classify_miss(self, site: ICSite, hc: HiddenClass) -> str:
        """Attribute a named-site Reuse miss to Handler or Other.

        "Handler": the Initial run saw this (site, hidden class) pair but
        its handler was context-dependent, so RIC could not preload it.
        Everything else — triggering sites, divergence, first-seen classes,
        megamorphic sites — is "Other".  (Global misses are classified at
        the IC layer before reaching here.)
        """
        hcid = self.hcid_by_address.get(hc.address)
        if hcid is not None and hcid in self.validated:
            cd_sites = self._cd_sites_by_hcid.get(hcid)
            if cd_sites and site.info.site_key in cd_sites:
                return MISS_HANDLER
        return MISS_OTHER


class MultiReuseSession:
    """Several per-script ReuseSessions acting as one (see
    :mod:`repro.ric.store`).

    Each underlying session owns its record's local HCID namespace and its
    own validation table; a hidden-class creation event is offered to all
    of them.  This is how per-file records extracted by *different
    applications* compose on a single page load.
    """

    __slots__ = ("sessions",)

    def __init__(self, sessions: list[ReuseSession]):
        self.sessions = sessions

    def on_hidden_class_created(self, hc: HiddenClass) -> None:
        for session in self.sessions:
            session.on_hidden_class_created(hc)

    def classify_miss(self, site: ICSite, hc: HiddenClass) -> str:
        for session in self.sessions:
            if session.classify_miss(site, hc) == MISS_HANDLER:
                return MISS_HANDLER
        return MISS_OTHER
