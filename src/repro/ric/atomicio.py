"""Crash- and concurrency-safe file primitives for the record store.

Two hazards threaten an on-disk record cache shared by many engine
processes (the ShareJIT deployment shape):

* a writer dying mid-``write()`` leaves a truncated file that a later
  reader would have to reject — avoided by writing to a same-directory
  temp file and publishing it with :func:`os.replace`, which POSIX and
  Windows both guarantee atomic;
* two writers racing on one path interleave — bounded by a best-effort
  advisory lock on a sidecar ``.lock`` file.  Locking is *advisory and
  optional*: on platforms without :mod:`fcntl` (or filesystems that
  refuse locks) we fall back to atomic-replace-only, which still never
  exposes a partial record, just last-writer-wins.
"""

from __future__ import annotations

import contextlib
import os
import tempfile
from pathlib import Path

try:  # pragma: no cover - exercised only where fcntl exists (POSIX)
    import fcntl
except ImportError:  # pragma: no cover - Windows fallback
    fcntl = None  # type: ignore[assignment]


def atomic_write_text(path: str | Path, text: str) -> None:
    """Write ``text`` to ``path`` so readers see the old or the new
    content, never a prefix of the new one."""
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp_name)
        raise


@contextlib.contextmanager
def file_lock(lock_path: str | Path, exclusive: bool = True):
    """Best-effort advisory inter-process lock on ``lock_path``.

    Yields whether the lock was actually acquired; callers must remain
    correct without it (atomic replace is the real safety net).
    """
    if fcntl is None:
        yield False
        return
    try:
        handle = open(lock_path, "a+")
    except OSError:
        yield False
        return
    try:
        try:
            fcntl.flock(
                handle.fileno(),
                fcntl.LOCK_EX if exclusive else fcntl.LOCK_SH,
            )
            locked = True
        except OSError:
            locked = False
        yield locked
    finally:
        if fcntl is not None:
            with contextlib.suppress(OSError):
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
        handle.close()
