"""Typed failures of the ICRecord persistence/reuse path.

RIC's trust model is unusual: the engine acts on feedback persisted by a
*previous* execution, so a truncated, raced, or bit-flipped record must
never be able to change program results — the worst allowed outcome is
losing the speedup (cold-start IC behavior).  Everything that can go
wrong while loading or admitting a record funnels into exactly one
exception type, :class:`RecordFormatError`, so callers have a single
thing to catch; loads that should *degrade* instead of raise produce a
:class:`CorruptRecord` placeholder that the engine counts and discards.
"""

from __future__ import annotations

from dataclasses import dataclass


class RecordFormatError(ValueError):
    """A persisted ICRecord is unreadable, version-mismatched, checksum-
    mismatched, or structurally invalid.

    Subclasses :class:`ValueError` so pre-hardening ``except ValueError``
    call sites keep working.
    """


@dataclass(frozen=True)
class CorruptRecord:
    """Placeholder for a record that failed load or validation.

    Engine.run accepts these wherever an :class:`~repro.ric.icrecord.ICRecord`
    is accepted: each one degrades that record to cold-start (no reuse
    session is built for it) and increments the run's
    ``ric_records_corrupt`` counter, without disturbing reuse of the other
    records on the page.
    """

    source: str
    error: str
