"""``ric-serve`` — run the record-cache daemon (ricd).

Serves ICRecords to many engine processes over a unix-domain socket
(:mod:`repro.server`), with an in-memory LRU bounded by record count and
bytes, write-through persistence to ``--dir``, and per-PUT validation so
one client can never poison another.

Two-terminal demo::

    # terminal 1
    ric-serve --socket /tmp/ricd.sock --dir /tmp/ric-records

    # terminal 2: first run is cold and publishes; the second reuses
    # records through the daemon (watch "remote hits" in --stats)
    ric-run --remote-store /tmp/ricd.sock --stats lib.jsl
    ric-run --remote-store /tmp/ricd.sock --stats lib.jsl

Runs in the foreground until SIGINT/SIGTERM; ``--stat-interval`` logs
cache statistics periodically to stderr.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
import threading

from repro.server.daemon import RecordCacheDaemon


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="ric-serve", description=__doc__)
    parser.add_argument(
        "--socket",
        required=True,
        metavar="PATH",
        help="unix-domain socket to listen on",
    )
    parser.add_argument(
        "--dir",
        metavar="DIR",
        default=None,
        help="write-through RecordStore directory (omit for memory-only)",
    )
    parser.add_argument(
        "--max-records",
        type=int,
        default=256,
        help="LRU bound: max records held in memory",
    )
    parser.add_argument(
        "--max-bytes",
        type=int,
        default=64 * 1024 * 1024,
        help="LRU bound: max serialized bytes held in memory",
    )
    parser.add_argument(
        "--stat-interval",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="log cache stats to stderr every SECONDS (0 = off)",
    )
    args = parser.parse_args(argv)

    if args.max_records < 1 or args.max_bytes < 1:
        print("ric-serve: bounds must be >= 1", file=sys.stderr)
        return 2

    daemon = RecordCacheDaemon(
        args.socket,
        directory=args.dir,
        max_records=args.max_records,
        max_bytes=args.max_bytes,
    )

    stop = threading.Event()

    def shutdown(signum, frame) -> None:
        stop.set()
        # server.shutdown() blocks until serve_forever() exits; the signal
        # handler runs *on* the serve_forever thread, so stop elsewhere.
        threading.Thread(target=daemon.stop, daemon=True).start()

    signal.signal(signal.SIGINT, shutdown)
    signal.signal(signal.SIGTERM, shutdown)

    if args.stat_interval > 0:

        def report() -> None:
            while not stop.wait(args.stat_interval):
                print(
                    f"ric-serve: {json.dumps(daemon.stats())}", file=sys.stderr
                )

        threading.Thread(target=report, daemon=True).start()

    print(
        f"ric-serve: listening on {args.socket}"
        + (f", persisting to {args.dir}" if args.dir else " (memory-only)"),
        file=sys.stderr,
    )
    try:
        daemon.serve_forever()
    except OSError as exc:
        print(f"ric-serve: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
