"""``ric-serve`` — run the record-cache daemon (ricd).

Serves ICRecords to many engine processes over a unix-domain socket, a
TCP port (``--tcp HOST:PORT``), or both (:mod:`repro.server`), with an
in-memory LRU bounded by record count and bytes, write-through
persistence to ``--dir``, and per-PUT validation so one client can
never poison another.

Two-terminal demo::

    # terminal 1
    ric-serve --socket /tmp/ricd.sock --dir /tmp/ric-records

    # terminal 2: first run is cold and publishes; the second reuses
    # records through the daemon (watch "remote hits" in --stats)
    ric-run --remote-store /tmp/ricd.sock --stats lib.jsl
    ric-run --remote-store /tmp/ricd.sock --stats lib.jsl

Fleet demo (three TCP shards, see INTERNALS §12)::

    ric-serve --tcp 127.0.0.1:7401 --dir /tmp/shard1 &
    ric-serve --tcp 127.0.0.1:7402 --dir /tmp/shard2 &
    ric-serve --tcp 127.0.0.1:7403 --dir /tmp/shard3 &
    ric-run --remote-store 127.0.0.1:7401,127.0.0.1:7402,127.0.0.1:7403 \\
            --stats lib.jsl

Lifecycle (INTERNALS §10):

* **SIGTERM** → graceful drain: stop accepting, finish in-flight
  requests, flush nothing (write-through is synchronous), exit 0.  A
  drain that deadline-cuts stragglers (``--drain-timeout``) exits 1.
* **SIGINT** → immediate stop (Ctrl-C is an operator at a terminal, not
  an orchestrator's shutdown request).
* ``--supervise`` → run the daemon as a *supervised child*: crashes are
  restarted with jittered exponential backoff, a restart storm trips a
  circuit breaker, and a clean (drained) exit ends supervision.

``--stat-interval`` logs cache statistics periodically to stderr.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
import threading

from repro.server.daemon import RecordCacheDaemon
from repro.server.supervisor import EXIT_STORM, Supervisor


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="ric-serve", description=__doc__)
    parser.add_argument(
        "--socket",
        default=None,
        metavar="PATH",
        help="unix-domain socket to listen on",
    )
    parser.add_argument(
        "--tcp",
        default=None,
        metavar="HOST:PORT",
        help="TCP address to listen on (same protocol; port 0 picks an "
        "ephemeral port, printed on startup); may be combined with "
        "--socket",
    )
    parser.add_argument(
        "--dir",
        metavar="DIR",
        default=None,
        help="write-through RecordStore directory (omit for memory-only)",
    )
    parser.add_argument(
        "--max-records",
        type=int,
        default=256,
        help="LRU bound: max records held in memory",
    )
    parser.add_argument(
        "--max-bytes",
        type=int,
        default=64 * 1024 * 1024,
        help="LRU bound: max serialized bytes held in memory",
    )
    parser.add_argument(
        "--stat-interval",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="log cache stats to stderr every SECONDS (0 = off)",
    )
    parser.add_argument(
        "--read-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-connection read deadline (default: 30s)",
    )
    parser.add_argument(
        "--write-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-connection write deadline (default: 30s)",
    )
    parser.add_argument(
        "--drain-timeout",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="max wait for in-flight requests during SIGTERM drain",
    )
    parser.add_argument(
        "--supervise",
        action="store_true",
        help="run the daemon as a supervised child: restart on crash "
        "with backoff, give up on a restart storm",
    )
    return parser


def _serve(args: argparse.Namespace) -> int:
    try:
        daemon = RecordCacheDaemon(
            args.socket,
            directory=args.dir,
            max_records=args.max_records,
            max_bytes=args.max_bytes,
            read_timeout_s=args.read_timeout,
            write_timeout_s=args.write_timeout,
            tcp=args.tcp,
        )
    except ValueError as exc:
        print(f"ric-serve: {exc}", file=sys.stderr)
        return 2

    stop = threading.Event()
    #: Filled by the drain thread; read after serve_forever returns.
    outcome: dict = {"drained": True}

    def hard_stop(signum, frame) -> None:
        stop.set()
        # server.shutdown() blocks until serve_forever() exits; the signal
        # handler runs *on* the serve_forever thread, so stop elsewhere.
        threading.Thread(target=daemon.stop, daemon=True).start()

    def graceful_drain(signum, frame) -> None:
        stop.set()

        def run_drain() -> None:
            outcome["drained"] = daemon.drain(timeout_s=args.drain_timeout)

        outcome["thread"] = thread = threading.Thread(target=run_drain)
        thread.start()

    signal.signal(signal.SIGINT, hard_stop)
    signal.signal(signal.SIGTERM, graceful_drain)

    if args.stat_interval > 0:

        def report() -> None:
            while not stop.wait(args.stat_interval):
                print(
                    f"ric-serve: {json.dumps(daemon.stats())}", file=sys.stderr
                )

        threading.Thread(target=report, daemon=True).start()

    # Bind before announcing, so --tcp HOST:0 prints the real port.
    try:
        daemon.start()
    except OSError as exc:
        print(f"ric-serve: {exc}", file=sys.stderr)
        return 1
    print(
        f"ric-serve: listening on {', '.join(daemon.endpoints)}"
        + (f", persisting to {args.dir}" if args.dir else " (memory-only)"),
        file=sys.stderr,
    )
    daemon.serve_forever()
    # serve_forever returned: either a hard stop or a drain's shutdown()
    # call.  Wait for the drain to finish its in-flight accounting before
    # deciding the exit code — a fully drained SIGTERM must exit 0.
    drain_thread = outcome.get("thread")
    if drain_thread is not None:
        drain_thread.join()
        if not outcome["drained"]:
            print(
                "ric-serve: drain deadline cut in-flight requests",
                file=sys.stderr,
            )
            return 1
        print("ric-serve: drained cleanly", file=sys.stderr)
    return 0


def _supervise(argv: list[str]) -> int:
    """Run ``ric-serve`` (minus ``--supervise``) as a supervised child."""
    child_argv = [a for a in argv if a != "--supervise"]
    command = [sys.executable, "-m", "repro.harness.serve_cli", *child_argv]
    supervisor = Supervisor(command)

    def forward(signum, frame) -> None:
        # request_stop terminates the child with SIGTERM, which drains it.
        supervisor.request_stop()

    signal.signal(signal.SIGINT, forward)
    signal.signal(signal.SIGTERM, forward)
    outcome = supervisor.run()
    if outcome == EXIT_STORM:
        print(
            "ric-serve: restart storm — supervision giving up",
            file=sys.stderr,
        )
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    args = _build_parser().parse_args(argv)
    if args.max_records < 1 or args.max_bytes < 1:
        print("ric-serve: bounds must be >= 1", file=sys.stderr)
        return 2
    if args.supervise:
        return _supervise(list(argv))
    return _serve(args)


if __name__ == "__main__":
    sys.exit(main())
