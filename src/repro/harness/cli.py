"""``ric-bench`` command-line entry point.

Regenerates any paper exhibit from the terminal::

    ric-bench table1
    ric-bench table4
    ric-bench fig5
    ric-bench fig8
    ric-bench fig9
    ric-bench overheads
    ric-bench websites
    ric-bench fig1
    ric-bench all
"""

from __future__ import annotations

import argparse
import sys

from repro.harness import experiments
from repro.harness.reporting import (
    render_bars,
    render_series,
    render_stacked_fraction,
    render_table,
)


def _print_table1(measurements) -> None:
    rows = experiments.table1_ic_statistics(measurements)
    print(
        render_table(
            "Table 1: IC statistics during library initialization",
            [
                ("Library", "library"),
                ("#HiddenCls", "hidden_classes"),
                ("#ICMisses", "ic_misses"),
                ("Misses/HC", "misses_per_hc"),
                ("%CI-Handlers", "ci_handler_pct"),
            ],
            rows,
            paper=experiments.PAPER_TABLE1,
        )
    )


def _print_table4(measurements) -> None:
    rows = experiments.table4_miss_rates(measurements)
    print(
        render_table(
            "Table 4: IC miss rate, Initial vs RIC Reuse (with attribution)",
            [
                ("Library", "library"),
                ("Initial%", "initial_miss_pct"),
                ("Reuse%", "reuse_miss_pct"),
                ("Handler%", "handler_pct"),
                ("Global%", "global_pct"),
                ("Other%", "other_pct"),
            ],
            rows,
            paper=experiments.PAPER_TABLE4,
        )
    )


def _print_fig5(measurements) -> None:
    rows = experiments.figure5_instruction_breakdown(measurements)
    print(
        render_stacked_fraction(
            "Figure 5: instruction breakdown during initialization",
            rows,
            part_key="ic_miss_handling",
        )
    )
    print(f"\n(paper average: {100 * experiments.PAPER_FIG5_MISS_FRACTION_AVG:.0f}%)")


def _print_fig8(measurements) -> None:
    rows = experiments.figure8_instruction_counts(measurements)
    print(
        render_bars(
            "Figure 8: RIC Reuse instruction count, normalized to Conventional",
            rows,
            value_key="ric",
        )
    )
    print(f"\n(paper average: {experiments.PAPER_FIG8_NORMALIZED_AVG:.2f})")


def _print_fig9(measurements=None) -> None:
    rows = experiments.figure9_execution_times(measurements)
    print(
        render_table(
            "Figure 9: Reuse execution time, Conventional vs RIC",
            [
                ("Library", "library"),
                ("Conv (ms)", "conventional_ms"),
                ("RIC (ms)", "ric_ms"),
                ("Normalized", "normalized"),
                ("Wall conv", "wall_conventional_ms"),
                ("Wall RIC", "wall_ric_ms"),
            ],
            rows,
        )
    )
    print(f"\n(modeled time; paper average: {experiments.PAPER_FIG9_NORMALIZED_AVG:.2f})")


def _print_overheads(measurements) -> None:
    rows = experiments.section73_overheads(measurements)
    print(
        render_table(
            "Section 7.3: RIC overheads (extraction time, ICRecord memory)",
            [
                ("Library", "library"),
                ("Extract(ms)", "extraction_ms"),
                ("ICRec(KB)", "icrecord_kb"),
                ("Heap(KB)", "heap_kb"),
                ("Overhead%", "overhead_pct"),
            ],
            rows,
        )
    )


def _print_websites() -> None:
    result = experiments.section6_websites()
    print("Section 6: cross-website reuse (record from site A, reuse on site B)")
    print("=" * 68)
    print(f"outputs match:        {result['outputs_match']}")
    print(f"miss-rate drop:       {result['miss_rate_drop_pp']:.2f} pp")
    print(f"instruction saving:   {100 * result['instruction_saving']:.1f}%")
    print(f"record: {result['record_stats']}")


def _print_fig1() -> None:
    trends = experiments.figure1_trends()
    print(
        render_series(
            "Figure 1: page-load-time expectations vs website JS complexity",
            {
                "Expected page load time (s)": trends["expected_page_load_time_s"],
                "# JavaScript requests (top 1000 sites)": trends["js_requests_top1000"],
            },
        )
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="ric-bench",
        description="Regenerate the paper's tables and figures",
    )
    parser.add_argument(
        "exhibit",
        choices=[
            "table1",
            "table4",
            "fig1",
            "fig5",
            "fig8",
            "fig9",
            "overheads",
            "websites",
            "all",
        ],
    )
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args(argv)

    needs_measurements = args.exhibit in (
        "table1",
        "table4",
        "fig5",
        "fig8",
        "fig9",
        "overheads",
        "all",
    )
    measurements = (
        experiments.measure_all_workloads(seed=args.seed)
        if needs_measurements
        else None
    )

    if args.exhibit in ("fig1", "all"):
        _print_fig1()
        print()
    if args.exhibit in ("fig5", "all"):
        _print_fig5(measurements)
        print()
    if args.exhibit in ("table1", "all"):
        _print_table1(measurements)
        print()
    if args.exhibit in ("table4", "all"):
        _print_table4(measurements)
        print()
    if args.exhibit in ("fig8", "all"):
        _print_fig8(measurements)
        print()
    if args.exhibit in ("fig9", "all"):
        _print_fig9(measurements)
        print()
    if args.exhibit in ("overheads", "all"):
        _print_overheads(measurements)
        print()
    if args.exhibit in ("websites", "all"):
        _print_websites()
    return 0


if __name__ == "__main__":
    sys.exit(main())
