"""``ric-run`` — execute jsl files from the command line.

Runs one or more scripts in a fresh engine, optionally persisting/reusing
an ICRecord and bytecode cache across invocations (the full cross-process
RIC experience), printing execution statistics, a disassembly, or an IC
event trace.  With no files, starts a small REPL.

Examples::

    ric-run lib.jsl app.jsl                  # run scripts in order
    ric-run --stats lib.jsl                  # + IC statistics
    ric-run --record /tmp/lib.ric lib.jsl    # persist/reuse the ICRecord
    ric-run --store-dir /tmp/ricstore lib.jsl    # per-script RecordStore
    ric-run --remote-store /tmp/ricd.sock lib.jsl  # share via a ricd daemon
    ric-run --remote-store h1:7401,h2:7401,h3:7401 lib.jsl  # sharded fleet
    ric-run --remote-store h1:7401,h2:7401,h3:7401 --bump-epoch  # invalidate fleet
    ric-run --store-dir /tmp/ricstore --store-status  # store health summary
    ric-run --trace lib.jsl                  # print the IC event trace
    ric-run --disassemble lib.jsl            # show bytecode, don't run
    ric-run --bench-json BENCH_interp.json   # cold-vs-reuse perf baseline
    ric-run --max-steps 1000000 loop.jsl     # governed run (exit 5 on abort)
    ric-run --jobs 4 a.jsl b.jsl c.jsl d.jsl # concurrent isolated sessions
    ric-run                                  # REPL

Exit codes (one per failure class, so wrappers and CI can react without
parsing stderr; documented in the README):

* 0 — success
* 1 — internal error (a bug in ric-run itself)
* 2 — usage error: bad flags, missing input file
* 3 — parse/compile error in a jsl source
* 4 — guest runtime error (uncaught throw, type error, ...)
* 5 — execution budget exceeded (steps/heap/depth/deadline)
* 6 — run cancelled via a cancel token
* 7 — record store unavailable (with ``--require-store``)
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.bytecode.compiler import compile_source
from repro.bytecode.disasm import disassemble
from repro.core.budget import ExecutionBudget
from repro.core.config import RICConfig
from repro.core.engine import Engine
from repro.core.errors import Cancelled, ExecutionAborted
from repro.lang.errors import JSLCompileError, JSLError, JSLSyntaxError
from repro.ric.errors import CorruptRecord
from repro.ric.serialize import save_icrecord, try_load_icrecord
from repro.stats.tracing import Tracer

EXIT_OK = 0
EXIT_INTERNAL = 1
EXIT_USAGE = 2
EXIT_PARSE = 3
EXIT_RUNTIME = 4
EXIT_BUDGET = 5
EXIT_CANCELLED = 6
EXIT_STORE_UNAVAILABLE = 7


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="ric-run", description=__doc__)
    parser.add_argument("files", nargs="*", help="jsl scripts, run in order")
    parser.add_argument("--stats", action="store_true", help="print IC statistics")
    parser.add_argument(
        "--record",
        metavar="PATH",
        help="ICRecord file: reused if it exists, written after the run",
    )
    parser.add_argument(
        "--cache-dir", metavar="DIR", help="bytecode code-cache directory"
    )
    parser.add_argument(
        "--store-dir",
        metavar="DIR",
        help="per-script RecordStore directory: records are fetched before "
        "the run and published after it",
    )
    parser.add_argument(
        "--remote-store",
        metavar="ENDPOINT",
        action="append",
        default=None,
        help="endpoint of a ric-serve daemon: a unix socket path or "
        "HOST:PORT.  Repeat the flag (or comma-separate) for a sharded "
        "fleet routed by consistent hashing; --store-dir (if given) "
        "becomes the local fallback store",
    )
    parser.add_argument(
        "--replication",
        type=int,
        default=2,
        metavar="R",
        help="fleet replication factor: each record lives on R shards "
        "(PUT fan-out, GET failover); clamped to the fleet size",
    )
    parser.add_argument(
        "--bump-epoch",
        action="store_true",
        help="broadcast a fleet-epoch bump to every --remote-store "
        "endpoint (invalidating all previously published records on "
        "every shard and replica) and exit",
    )
    parser.add_argument(
        "--store-status",
        action="store_true",
        help="print the selected store's status as JSON and exit",
    )
    parser.add_argument("--trace", action="store_true", help="print the IC event trace")
    parser.add_argument(
        "--disassemble", action="store_true", help="print bytecode and exit"
    )
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="run each FILE as its own isolated session, N at a time, over "
        "one shared artifact cache (note: files no longer share globals or "
        "stop at the first failure — every file runs; the first failing "
        "file in argument order decides the exit code)",
    )
    parser.add_argument(
        "--no-optimize",
        action="store_true",
        help="disable the peephole bytecode optimizer",
    )
    parser.add_argument(
        "--no-specialize",
        action="store_true",
        help="disable feedback-driven bytecode specialization (quickening) "
        "on reuse runs",
    )
    parser.add_argument(
        "--bench-json",
        metavar="PATH",
        help="run the cold-vs-reuse interpreter baseline over every "
        "workload and write the JSON document to PATH (ignores files)",
    )
    parser.add_argument(
        "--bench-iterations",
        type=int,
        default=5,
        help="wall-time repetitions per workload for --bench-json",
    )
    governance = parser.add_argument_group(
        "execution governance (any flag arms the budget; exit 5 on abort)"
    )
    governance.add_argument(
        "--max-steps",
        type=int,
        default=None,
        metavar="N",
        help="abort after N dispatch steps",
    )
    governance.add_argument(
        "--max-heap-bytes",
        type=int,
        default=None,
        metavar="N",
        help="abort when the simulated heap exceeds N bytes",
    )
    governance.add_argument(
        "--max-heap-objects",
        type=int,
        default=None,
        metavar="N",
        help="abort after N heap allocations",
    )
    governance.add_argument(
        "--max-depth",
        type=int,
        default=None,
        metavar="N",
        help="abort when guest call depth reaches N frames",
    )
    governance.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        metavar="MS",
        help="abort after MS milliseconds of wall clock",
    )
    parser.add_argument(
        "--require-store",
        action="store_true",
        help="with --remote-store: exit 7 if the daemon doesn't answer "
        "a PING, instead of silently falling back to the local store",
    )
    parser.add_argument(
        "--sweep-quarantine",
        action="store_true",
        help="with --store-dir: delete old/excess quarantined *.corrupt "
        "entries (see --quarantine-max-age/--quarantine-max-count)",
    )
    parser.add_argument(
        "--quarantine-max-age",
        type=float,
        default=None,
        metavar="SECONDS",
        help="sweep quarantined entries older than SECONDS",
    )
    parser.add_argument(
        "--quarantine-max-count",
        type=int,
        default=None,
        metavar="N",
        help="sweep the oldest quarantined entries beyond the newest N",
    )
    args = parser.parse_args(argv)

    if args.bench_json:
        return _bench(args)

    # --remote-store may be repeated and each value comma-separated;
    # flatten to one endpoint list (order matters only for display —
    # routing is by consistent hash).
    endpoints: "list[str] | None" = None
    if args.remote_store:
        endpoints = [
            part.strip()
            for spec in args.remote_store
            for part in str(spec).split(",")
            if part.strip()
        ]
    if args.replication < 1:
        print(
            f"ric-run: --replication must be >= 1, got {args.replication}",
            file=sys.stderr,
        )
        return EXIT_USAGE

    store = None
    if endpoints or args.store_dir:
        from repro.server.client import make_record_store

        store = make_record_store(
            endpoints,
            directory=args.store_dir,
            replication=args.replication,
        )

    if args.bump_epoch:
        if not endpoints:
            print(
                "ric-run: --bump-epoch needs --remote-store", file=sys.stderr
            )
            return EXIT_USAGE
        epoch = store.bump_epoch()
        if epoch is None:
            print(
                "ric-run: --bump-epoch: no shard acknowledged "
                f"({', '.join(endpoints)})",
                file=sys.stderr,
            )
            return EXIT_STORE_UNAVAILABLE
        print(f"ric-run: fleet epoch is now {epoch}", file=sys.stderr)
        missed = getattr(store, "last_bump_missed", [])
        if missed:
            print(
                f"ric-run: warning: {len(missed)} shard(s) missed the "
                f"bump ({', '.join(missed)}); re-run --bump-epoch when "
                "they rejoin",
                file=sys.stderr,
            )
        if not args.files and not args.store_status:
            return EXIT_OK

    if args.require_store and endpoints:
        if not store.ping():
            print(
                f"ric-run: record store unavailable: {', '.join(endpoints)}",
                file=sys.stderr,
            )
            return EXIT_STORE_UNAVAILABLE

    if args.sweep_quarantine:
        local = getattr(store, "fallback", store)
        if local is None or getattr(local, "sweep_quarantine", None) is None:
            print(
                "ric-run: --sweep-quarantine needs --store-dir",
                file=sys.stderr,
            )
            return EXIT_USAGE
        summary = local.sweep_quarantine(
            max_age_s=args.quarantine_max_age,
            max_count=args.quarantine_max_count,
        )
        print(
            f"ric-run: quarantine sweep: removed {summary['swept']}, "
            f"kept {summary['kept']}",
            file=sys.stderr,
        )
        if not args.files and not args.store_status:
            return EXIT_OK

    if args.store_status:
        if store is None:
            print(
                "ric-run: --store-status needs --store-dir and/or --remote-store",
                file=sys.stderr,
            )
            return EXIT_USAGE
        import json

        print(json.dumps(store.status(), indent=2, sort_keys=True))
        return EXIT_OK

    if not args.files:
        return _repl(args)

    scripts = []
    for filename in args.files:
        path = Path(filename)
        if not path.exists():
            print(f"ric-run: no such file: {filename}", file=sys.stderr)
            return EXIT_USAGE
        scripts.append((path.name, path.read_text()))

    if args.disassemble:
        for filename, source in scripts:
            try:
                code = compile_source(source, filename)
            except JSLError as error:
                print(f"ric-run: {error}", file=sys.stderr)
                return EXIT_PARSE
            print(disassemble(code, recursive=True))
        return EXIT_OK

    budget = None
    if (
        args.max_steps is not None
        or args.max_heap_bytes is not None
        or args.max_heap_objects is not None
        or args.max_depth is not None
        or args.deadline_ms is not None
    ):
        try:
            budget = ExecutionBudget(
                max_steps=args.max_steps,
                max_heap_bytes=args.max_heap_bytes,
                max_heap_objects=args.max_heap_objects,
                max_frame_depth=args.max_depth,
                deadline_ms=args.deadline_ms,
            )
        except ValueError as error:
            print(f"ric-run: {error}", file=sys.stderr)
            return EXIT_USAGE

    config = RICConfig(specialize=not args.no_specialize) if args.no_specialize else None
    engine = Engine(
        seed=args.seed,
        cache_dir=args.cache_dir,
        optimize=not args.no_optimize,
        record_store=store,
        config=config,
    )
    if args.jobs != 1:
        return _run_jobs(args, engine, scripts, store, budget)

    record = None
    if args.record and Path(args.record).exists():
        # Degrading load: a corrupt/stale record becomes a CorruptRecord
        # placeholder that the engine counts and cold-starts past.
        record = try_load_icrecord(args.record)
        if isinstance(record, CorruptRecord):
            print(
                f"ric-run: ignoring corrupt record (cold start): {record.error}",
                file=sys.stderr,
            )

    tracer = Tracer() if args.trace else None
    try:
        profile = engine.run(
            scripts,
            name="cli",
            icrecord=record,
            tracer=tracer,
            use_store=store is not None and record is None,
            budget=budget,
        )
    except (JSLSyntaxError, JSLCompileError) as error:
        print(f"ric-run: {error}", file=sys.stderr)
        return EXIT_PARSE
    except JSLError as error:
        print(f"ric-run: {error}", file=sys.stderr)
        return EXIT_RUNTIME
    except ExecutionAborted as aborted:
        # The run was terminated by governance, not by the guest.  Output
        # produced before the abort still prints (partial runs are real
        # runs), then the reason-specific exit code.
        if aborted.profile is not None:
            for line in aborted.profile.console_output:
                print(line)
        print(f"ric-run: aborted ({aborted.reason}): {aborted}", file=sys.stderr)
        return EXIT_CANCELLED if isinstance(aborted, Cancelled) else EXIT_BUDGET

    for line in profile.console_output:
        print(line)

    if args.record:
        save_icrecord(engine.extract_icrecord(), args.record)
    if store is not None:
        # Publish this run's per-script records so the next invocation —
        # or another process sharing the daemon — starts warm.
        engine.publish_records(counters=profile.counters)

    if args.trace and tracer is not None:
        print("\n-- IC event trace " + "-" * 40, file=sys.stderr)
        print(tracer.render(limit=200), file=sys.stderr)

    if args.stats:
        counters = profile.counters
        print("\n-- statistics " + "-" * 44, file=sys.stderr)
        print(
            f"guest instructions: {counters.total_instructions}\n"
            f"IC accesses:        {counters.ic_accesses} "
            f"(hits {counters.ic_hits}, misses {counters.ic_misses}, "
            f"miss rate {100 * counters.ic_miss_rate:.1f}%)\n"
            f"hidden classes:     {counters.hidden_classes_created}\n"
            f"handlers generated: {counters.handlers_generated} "
            f"({counters.handlers_generated_context_independent} context-independent)\n"
            f"RIC: {counters.ric_validations} validations, "
            f"{counters.ric_preloads} preloads, "
            f"{counters.ic_hits_on_preloaded} hits on preloaded slots\n"
            f"RIC degradation:    {counters.ric_records_corrupt} corrupt, "
            f"{counters.ric_records_rejected} rejected records\n"
            f"specialization:     {counters.specialized_sites} quickened sites, "
            f"{counters.specialized_hits} typed hits, "
            f"{counters.deopts} deopts "
            f"({counters.despecialized_sites} sites demoted)\n"
            f"bytecode cache:     {counters.bytecode_cache_hits} hits, "
            f"{counters.bytecode_cache_misses} misses\n"
            f"remote store:       {counters.ric_remote_hits} hits, "
            f"{counters.ric_remote_misses} misses, "
            f"{counters.ric_remote_fallbacks} fallbacks, "
            f"{counters.ric_remote_evictions} evictions\n"
            f"remote fleet:       {counters.ric_remote_failovers} failovers, "
            f"{counters.ric_remote_proto_mismatch} proto mismatches, "
            f"{counters.ric_remote_stale_epoch} stale-epoch refusals\n"
            f"budget aborts:      {counters.budget_aborts_total} "
            f"(steps {counters.budget_aborts_steps}, "
            f"heap {counters.budget_aborts_heap}, "
            f"depth {counters.budget_aborts_depth}, "
            f"deadline {counters.budget_aborts_deadline}, "
            f"cancelled {counters.budget_aborts_cancelled})\n"
            f"wall time:          {profile.wall_time_ms:.2f} ms",
            file=sys.stderr,
        )
    return 0


def _run_jobs(args, engine, scripts, store, budget) -> int:
    """--jobs N: one isolated concurrent session per file.

    Unlike the sequential path the files do not share a global object and
    a failure in one does not stop the others; outputs are printed in
    file order once every session finishes.  The exit code is the
    sequential one: the first failing file (in argument order) decides.
    """
    if args.jobs < 1:
        print(f"ric-run: --jobs must be >= 1, got {args.jobs}", file=sys.stderr)
        return EXIT_USAGE
    if args.record:
        print(
            "ric-run: --record is per-run state and cannot be combined "
            "with --jobs; use --store-dir/--remote-store for shared records",
            file=sys.stderr,
        )
        return EXIT_USAGE
    if args.trace:
        print("ric-run: --trace cannot be combined with --jobs", file=sys.stderr)
        return EXIT_USAGE

    from repro.core.executor import EngineExecutor, RunRequest

    requests = [
        RunRequest(
            scripts=[script],
            name=script[0],
            use_store=store is not None,
            budget=budget,
        )
        for script in scripts
    ]
    outcomes = EngineExecutor(engine).run_many(requests, jobs=args.jobs)

    exit_code = EXIT_OK
    for outcome in outcomes:
        if outcome.profile is not None:
            for line in outcome.profile.console_output:
                print(line)
        error = outcome.error
        if error is None:
            if store is not None and outcome.session is not None:
                # Publish this file's records so later invocations — or
                # other processes sharing the daemon — start warm.
                records = outcome.session.extract_per_script_records()
                for (filename, source) in outcome.session.scripts:
                    record = records.get(filename)
                    if record is not None:
                        engine.record_store.put(filename, source, record)
            continue
        if isinstance(error, (JSLSyntaxError, JSLCompileError)):
            code = EXIT_PARSE
        elif isinstance(error, JSLError):
            code = EXIT_RUNTIME
        elif isinstance(error, ExecutionAborted):
            code = EXIT_CANCELLED if isinstance(error, Cancelled) else EXIT_BUDGET
        else:  # pragma: no cover - executor only captures the above
            code = EXIT_INTERNAL
        print(f"ric-run: {outcome.request.name}: {error}", file=sys.stderr)
        if exit_code == EXIT_OK:  # first failing file in order decides
            exit_code = code

    if args.stats:
        print("\n-- statistics (per file) " + "-" * 33, file=sys.stderr)
        for outcome in outcomes:
            profile = outcome.profile
            if profile is None:
                print(f"{outcome.request.name}: no profile", file=sys.stderr)
                continue
            counters = profile.counters
            print(
                f"{outcome.request.name}: "
                f"{counters.total_instructions} instructions, "
                f"IC {counters.ic_accesses} accesses "
                f"({100 * counters.ic_miss_rate:.1f}% miss), "
                f"{counters.ric_preloads} preloads, "
                f"{profile.wall_time_ms:.2f} ms",
                file=sys.stderr,
            )
        cache = engine.artifacts.stats()
        print(
            f"artifact cache: {cache.builds} builds, {cache.hits} hits, "
            f"{cache.joins} joins",
            file=sys.stderr,
        )
    return exit_code


def _bench(args: argparse.Namespace) -> int:
    """--bench-json: regenerate the interpreter perf baseline."""
    from repro.harness.bench import main as bench_main

    bench_argv = [args.bench_json, "--iterations", str(args.bench_iterations)]
    if args.seed is not None:
        bench_argv += ["--seed", str(args.seed)]
    return bench_main(bench_argv)


def _repl(args: argparse.Namespace) -> int:
    """A line-oriented REPL: each entry runs as a script sharing one global
    object (a persistent runtime across lines)."""
    from repro.ic.icvector import FeedbackState
    from repro.ic.miss import ICRuntime
    from repro.interpreter.vm import VM
    from repro.runtime.builtins import install_builtins
    from repro.runtime.context import Runtime
    from repro.runtime.values import UNDEFINED, to_string
    from repro.stats.counters import Counters

    runtime = Runtime(seed=args.seed)
    install_builtins(runtime)
    counters = Counters()
    runtime.hidden_classes.on_created = lambda hc: None
    feedback = FeedbackState()
    vm = VM(runtime, counters, ICRuntime(runtime, counters), feedback)

    print("jsl repl — empty line or Ctrl-D to exit")
    line_number = 0
    while True:
        try:
            line = input("jsl> ")
        except EOFError:
            print()
            return 0
        if not line.strip():
            return 0
        line_number += 1
        try:
            code = compile_source(line, f"<repl:{line_number}>")
            feedback.register_script(code)
            result = vm.run_code(code)
            printed = len(runtime.console_output)
            for output in runtime.console_output:
                print(output)
            del runtime.console_output[:printed]
            if result is not UNDEFINED:
                print(to_string(result))
        except JSLError as error:
            print(f"error: {error}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
