"""The interpreter performance baseline: cold vs reuse over every workload.

This is the repo's first recorded perf trajectory.  It runs each of the
nine workloads (the seven paper libraries, the default synthetic
library, and the polymorphic-tier ``polyshapes`` sweep) through the full
protocol — Initial ("cold") run, ICRecord
extraction, RIC Reuse run — ``iterations`` times, and reports per mode:

* host wall time (min and median across iterations; min is the stable
  number to compare across commits, median shows jitter),
* the cost-model instruction breakdown (``Counters.instructions``) plus
  the raw bytecode dispatch count (``Counters.dispatches``),
* IC hit/miss/access counts and the miss rate,
* RIC preload/validation counts on the reuse side.

The emitted JSON (``BENCH_interp.json`` at the repo root, regenerated with
``ric-run --bench-json BENCH_interp.json``) is schema-versioned so later
PRs can extend it without breaking consumers; ``validate_bench_json``
is the schema gate used by ``benchmarks/test_bench_smoke.py``.

Counter values are deterministic for a fixed engine seed; only the wall
times vary between hosts and runs.
"""

from __future__ import annotations

import json
import platform
import statistics
import typing

from repro.core.config import RICConfig
from repro.core.engine import Engine
from repro.stats.profile import RunProfile
from repro.workloads import WORKLOADS, polyshapes, typedarith
from repro.workloads.synthetic import generate_library

#: v3: ``specialized_hits``/``deopts`` (bytecode specialization) joined
#: every mode blob, and the type-stable ``typedarith`` workload joined
#: the benchmarked set.  v2 added per-tier IC counters (mono/poly/mega
#: hits, poly/mega transitions) and ``polyshapes``.
SCHEMA = "ric-bench-interp/v3"

#: Counter fields copied verbatim into each mode's JSON blob.
_COUNTER_FIELDS = (
    "dispatches",
    "ic_accesses",
    "ic_hits",
    "ic_misses",
    "ic_hits_on_preloaded",
    "ic_hits_mono",
    "ic_hits_poly",
    "ic_hits_mega",
    "ic_poly_transitions",
    "ic_mega_transitions",
    "ric_preloads",
    "ric_validations",
    "hidden_classes_created",
    "handlers_generated",
    "specialized_hits",
    "deopts",
)


def bench_workloads() -> dict[str, list[tuple[str, str]]]:
    """The benchmarked workloads: the seven libraries plus ``synthetic``
    (the default parameterization of the generator) plus ``polyshapes``
    (the polymorphic/megamorphic tier sweep) plus ``typedarith`` (the
    type-stable specialization showcase)."""
    scripts = {name: WORKLOADS[name].scripts() for name in WORKLOADS}
    scripts["synthetic"] = [("synthetic.jsl", generate_library())]
    scripts["polyshapes"] = [("polyshapes.jsl", polyshapes.SOURCE)]
    scripts["typedarith"] = [("typedarith.jsl", typedarith.SOURCE)]
    return scripts


def _mode_blob(profile: RunProfile, wall_times_ms: list[float]) -> dict:
    counters = profile.counters
    blob: dict = {
        "wall_time_ms": {
            "min": min(wall_times_ms),
            "median": statistics.median(wall_times_ms),
        },
        "total_instructions": counters.total_instructions,
        "instructions": dict(counters.instructions),
        "ic_miss_rate": counters.ic_miss_rate,
        "console_lines": len(profile.console_output),
    }
    for name in _COUNTER_FIELDS:
        blob[name] = getattr(counters, name)
    return blob


def measure(
    workload_names: typing.Sequence[str] | None = None,
    iterations: int = 5,
    seed: int = 1,
    config: RICConfig | None = None,
) -> dict:
    """Run the cold-vs-reuse baseline and return the BENCH_interp document.

    Each iteration uses a fresh :class:`Engine` so the cold run really is
    cold (empty in-process code cache, IC state from scratch); the reuse
    run uses the record extracted from that same engine's cold run.
    """
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    config = config or RICConfig()
    scripts_by_name = bench_workloads()
    names = (
        list(workload_names) if workload_names is not None else list(scripts_by_name)
    )

    workloads: dict = {}
    for name in names:
        scripts = scripts_by_name[name]  # KeyError lists nothing: validate
        cold_times: list[float] = []
        reuse_times: list[float] = []
        cold_profile: RunProfile | None = None
        reuse_profile: RunProfile | None = None
        for _ in range(iterations):
            engine = Engine(config=config, seed=seed)
            cold_profile = engine.run(scripts, name=name)
            record = engine.extract_icrecord()
            reuse_profile = engine.run(scripts, name=name, icrecord=record)
            cold_times.append(cold_profile.wall_time_ms)
            reuse_times.append(reuse_profile.wall_time_ms)
        assert cold_profile is not None and reuse_profile is not None
        workloads[name] = {
            "cold": _mode_blob(cold_profile, cold_times),
            "reuse": _mode_blob(reuse_profile, reuse_times),
        }

    return {
        "schema": SCHEMA,
        "generated_by": "benchmarks/baseline.py (ric-run --bench-json)",
        "config": {
            "iterations": iterations,
            "seed": seed,
            "interp_fastpaths": config.interp_fastpaths,
        },
        "host": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "machine": platform.machine(),
        },
        "workloads": workloads,
    }


def write_bench_json(path: str, document: dict) -> None:
    """Persist the baseline document (stable key order, trailing newline)."""
    problems = validate_bench_json(document)
    if problems:
        raise ValueError(
            f"refusing to write invalid bench document: {'; '.join(problems[:5])}"
        )
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")


def validate_bench_json(document: object) -> list[str]:
    """Structural schema check; returns a list of problems (empty = valid)."""
    problems: list[str] = []
    if not isinstance(document, dict):
        return ["document is not an object"]
    if document.get("schema") != SCHEMA:
        problems.append(f"schema is {document.get('schema')!r}, expected {SCHEMA!r}")
    if not isinstance(document.get("config"), dict):
        problems.append("missing config object")
    workloads = document.get("workloads")
    if not isinstance(workloads, dict) or not workloads:
        return problems + ["missing or empty workloads object"]
    for name, entry in workloads.items():
        if not isinstance(entry, dict):
            problems.append(f"{name}: entry is not an object")
            continue
        for mode in ("cold", "reuse"):
            blob = entry.get(mode)
            if not isinstance(blob, dict):
                problems.append(f"{name}.{mode}: missing")
                continue
            wall = blob.get("wall_time_ms")
            if not isinstance(wall, dict) or not {"min", "median"} <= set(wall):
                problems.append(f"{name}.{mode}.wall_time_ms: needs min/median")
            for field in ("total_instructions", "instructions", *_COUNTER_FIELDS):
                if field not in blob:
                    problems.append(f"{name}.{mode}.{field}: missing")
            instructions = blob.get("instructions")
            if isinstance(instructions, dict) and not all(
                isinstance(v, int) for v in instructions.values()
            ):
                problems.append(f"{name}.{mode}.instructions: non-integer counts")
    return problems


def main(argv: list[str] | None = None) -> int:
    """``python -m`` / direct entry point: write the baseline JSON."""
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("output", help="path for BENCH_interp.json")
    parser.add_argument("--iterations", type=int, default=5)
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args(argv)
    document = measure(iterations=args.iterations, seed=args.seed)
    write_bench_json(args.output, document)
    for name, entry in document["workloads"].items():
        cold, reuse = entry["cold"], entry["reuse"]
        print(
            f"{name:16s} cold {cold['wall_time_ms']['min']:8.2f} ms "
            f"({cold['ic_misses']} misses) | reuse "
            f"{reuse['wall_time_ms']['min']:8.2f} ms ({reuse['ic_misses']} misses)"
        )
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
