"""One function per paper table/figure; each returns plain-data rows.

Every experiment runs the full measurement protocol (Initial → extraction →
Conventional Reuse → RIC Reuse) on the seven workloads and reports the
statistic the corresponding paper exhibit shows.  Rendering to ASCII lives
in :mod:`repro.harness.reporting`; regeneration entry points live in
``benchmarks/``.
"""

from __future__ import annotations

import typing

from repro.core.config import RICConfig
from repro.core.engine import Engine, WorkloadMeasurement
from repro.ric.serialize import record_size_bytes
from repro.stats.counters import MISS_GLOBAL, MISS_HANDLER, MISS_OTHER
from repro.workloads import WORKLOADS, website_a, website_b

#: Paper reference values, used by reports to show paper-vs-measured and by
#: tests to check the *shape* (ordering / direction), never absolute values.
PAPER_TABLE1 = {
    # library: (hidden classes, ic misses, misses/hc, % context independent)
    "angularlike": (138, 799, 5.8, 62.5),
    "camanlike": (99, 383, 3.9, 61.8),
    "handlebarslike": (88, 541, 6.2, 63.2),
    "jquerylike": (271, 1547, 5.7, 57.3),
    "jsfeatlike": (116, 323, 2.8, 51.7),
    "reactlike": (360, 2356, 6.5, 82.3),
    "underscorelike": (123, 295, 2.4, 38.1),
}

PAPER_TABLE4 = {
    # library: (initial miss %, reuse miss %, handler %, global %, other %)
    "angularlike": (68.94, 32.79, 8.63, 2.85, 21.31),
    "camanlike": (87.64, 43.94, 1.14, 3.43, 39.36),
    "handlebarslike": (57.92, 20.34, 4.82, 1.07, 14.45),
    "jquerylike": (48.50, 29.28, 6.49, 1.13, 21.66),
    "jsfeatlike": (18.96, 8.16, 0.18, 1.82, 6.16),
    "reactlike": (18.67, 3.83, 1.90, 0.31, 1.62),
    "underscorelike": (43.70, 30.22, 1.48, 1.78, 26.96),
}

PAPER_FIG5_MISS_FRACTION_AVG = 0.36
PAPER_FIG8_NORMALIZED_AVG = 0.85  # RIC saves 15% instructions
PAPER_FIG9_NORMALIZED_AVG = 0.83  # RIC saves 17% time

#: Figure 1's two survey series (year, expected page-load seconds) and
#: (year, average #JS requests of the top-1000 websites).  Static published
#: data reproduced as-is.
FIGURE1_EXPECTED_LOAD_TIME = [(1999, 8.0), (2006, 4.0), (2010, 3.0), (2014, 2.0)]
FIGURE1_JS_REQUESTS = [
    (2010, 12),
    (2011, 15),
    (2012, 18),
    (2013, 22),
    (2014, 25),
    (2015, 28),
]


def measure_all_workloads(
    config: RICConfig | None = None,
    seed: int | None = 1,
    workload_names: typing.Sequence[str] | None = None,
) -> dict[str, WorkloadMeasurement]:
    """Run the full protocol on each library; the shared data source for
    every per-library experiment below."""
    names = list(workload_names) if workload_names is not None else list(WORKLOADS)
    results: dict[str, WorkloadMeasurement] = {}
    for name in names:
        engine = Engine(config=config, seed=seed)
        results[name] = engine.measure_workload(WORKLOADS[name].scripts(), name=name)
    return results


# ---------------------------------------------------------------------------
# Figure 1 — motivation trends (static survey data)
# ---------------------------------------------------------------------------


def figure1_trends() -> dict:
    """Reproduce Figure 1's two series."""
    return {
        "expected_page_load_time_s": FIGURE1_EXPECTED_LOAD_TIME,
        "js_requests_top1000": FIGURE1_JS_REQUESTS,
    }


# ---------------------------------------------------------------------------
# Figure 5 — instruction breakdown during initialization
# ---------------------------------------------------------------------------


def figure5_instruction_breakdown(
    measurements: dict[str, WorkloadMeasurement] | None = None,
) -> list[dict]:
    """Per-library fraction of guest instructions spent in IC miss handling
    during the Initial run (paper: 36% on average)."""
    measurements = measurements or measure_all_workloads()
    rows = []
    for name, measurement in measurements.items():
        fraction = measurement.initial.ic_miss_handling_fraction
        rows.append(
            {
                "library": name,
                "ic_miss_handling": fraction,
                "rest_of_work": 1.0 - fraction,
            }
        )
    average = sum(row["ic_miss_handling"] for row in rows) / len(rows)
    rows.append(
        {
            "library": "Average",
            "ic_miss_handling": average,
            "rest_of_work": 1.0 - average,
        }
    )
    return rows


# ---------------------------------------------------------------------------
# Table 1 — IC statistics during initialization
# ---------------------------------------------------------------------------


def table1_ic_statistics(
    measurements: dict[str, WorkloadMeasurement] | None = None,
) -> list[dict]:
    """Hidden classes, IC misses, misses per hidden class, and the fraction
    of context-independent handlers — the paper's reuse-opportunity
    characterization."""
    measurements = measurements or measure_all_workloads()
    rows = []
    for name, measurement in measurements.items():
        counters = measurement.initial.counters
        hidden_classes = counters.hidden_classes_created
        misses = counters.ic_misses
        rows.append(
            {
                "library": name,
                "hidden_classes": hidden_classes,
                "ic_misses": misses,
                "misses_per_hc": misses / hidden_classes if hidden_classes else 0.0,
                "ci_handler_pct": 100.0
                * counters.context_independent_handler_fraction,
            }
        )
    count = len(rows)
    rows.append(
        {
            "library": "Average",
            "hidden_classes": sum(r["hidden_classes"] for r in rows) // count,
            "ic_misses": sum(r["ic_misses"] for r in rows) // count,
            "misses_per_hc": sum(r["misses_per_hc"] for r in rows) / count,
            "ci_handler_pct": sum(r["ci_handler_pct"] for r in rows) / count,
        }
    )
    return rows


# ---------------------------------------------------------------------------
# Table 4 — IC miss rates, Initial vs RIC Reuse, with attribution
# ---------------------------------------------------------------------------


def table4_miss_rates(
    measurements: dict[str, WorkloadMeasurement] | None = None,
) -> list[dict]:
    """Initial-run and RIC-Reuse-run miss rates plus the Reuse breakdown
    into Handler / Global / Other contributions."""
    measurements = measurements or measure_all_workloads()
    rows = []
    for name, measurement in measurements.items():
        reuse = measurement.ric
        breakdown = reuse.miss_breakdown_pct
        rows.append(
            {
                "library": name,
                "initial_miss_pct": measurement.initial.ic_miss_rate_pct,
                "reuse_miss_pct": reuse.ic_miss_rate_pct,
                "handler_pct": breakdown[MISS_HANDLER],
                "global_pct": breakdown[MISS_GLOBAL],
                "other_pct": breakdown[MISS_OTHER],
            }
        )
    count = len(rows)
    rows.append(
        {
            "library": "Average",
            **{
                key: sum(r[key] for r in rows) / count
                for key in (
                    "initial_miss_pct",
                    "reuse_miss_pct",
                    "handler_pct",
                    "global_pct",
                    "other_pct",
                )
            },
        }
    )
    return rows


# ---------------------------------------------------------------------------
# Figure 8 — normalized dynamic instruction count
# ---------------------------------------------------------------------------


def figure8_instruction_counts(
    measurements: dict[str, WorkloadMeasurement] | None = None,
) -> list[dict]:
    """RIC Reuse instruction count normalized to the Conventional Reuse run
    (paper: 15% average saving)."""
    measurements = measurements or measure_all_workloads()
    rows = []
    for name, measurement in measurements.items():
        rows.append(
            {
                "library": name,
                "conventional": 1.0,
                "ric": measurement.normalized_instructions,
                "conventional_instructions": measurement.conventional.total_instructions,
                "ric_instructions": measurement.ric.total_instructions,
            }
        )
    average = sum(row["ric"] for row in rows) / len(rows)
    rows.append(
        {
            "library": "Average",
            "conventional": 1.0,
            "ric": average,
            "conventional_instructions": 0,
            "ric_instructions": 0,
        }
    )
    return rows


# ---------------------------------------------------------------------------
# Figure 9 — normalized execution time
# ---------------------------------------------------------------------------


def figure9_execution_times(
    measurements: dict[str, WorkloadMeasurement] | None = None,
    repeats: int = 1,
    seed: int | None = 1,
) -> list[dict]:
    """Reuse-run execution time, Conventional vs RIC.

    The primary metric is the *modeled* execution time from the documented
    cost model (guest instructions weighted by per-category CPI — IC miss
    handling carries a cache-miss premium, matching the paper's observation
    that the time saving slightly exceeds the instruction saving).  Host
    wall-clock times are reported alongside for transparency; on a Python
    substrate they are noise-dominated.
    """
    del repeats  # kept for API compatibility
    measurements = measurements or measure_all_workloads(seed=seed)
    rows = []
    for name, measurement in measurements.items():
        conventional_ms = measurement.conventional.modeled_time_ms
        ric_ms = measurement.ric.modeled_time_ms
        rows.append(
            {
                "library": name,
                "conventional_ms": conventional_ms,
                "ric_ms": ric_ms,
                "normalized": ric_ms / conventional_ms if conventional_ms else 1.0,
                "wall_conventional_ms": measurement.conventional.wall_time_ms,
                "wall_ric_ms": measurement.ric.wall_time_ms,
            }
        )
    average = sum(row["normalized"] for row in rows) / len(rows)
    rows.append(
        {
            "library": "Average",
            "conventional_ms": 0.0,
            "ric_ms": 0.0,
            "normalized": average,
            "wall_conventional_ms": 0.0,
            "wall_ric_ms": 0.0,
        }
    )
    return rows


# ---------------------------------------------------------------------------
# §7.3 — RIC overheads
# ---------------------------------------------------------------------------


def section73_overheads(
    measurements: dict[str, WorkloadMeasurement] | None = None,
) -> list[dict]:
    """Extraction time and ICRecord memory vs workload heap usage."""
    measurements = measurements or measure_all_workloads()
    rows = []
    for name, measurement in measurements.items():
        record_bytes = record_size_bytes(measurement.record)
        heap_bytes = measurement.conventional.heap_bytes
        rows.append(
            {
                "library": name,
                "extraction_ms": measurement.record.extraction_time_ms,
                "icrecord_kb": record_bytes / 1024.0,
                "heap_kb": heap_bytes / 1024.0,
                "overhead_pct": 100.0 * record_bytes / heap_bytes
                if heap_bytes
                else 0.0,
            }
        )
    count = len(rows)
    rows.append(
        {
            "library": "Average",
            **{
                key: sum(r[key] for r in rows) / count
                for key in ("extraction_ms", "icrecord_kb", "heap_kb", "overhead_pct")
            },
        }
    )
    return rows


# ---------------------------------------------------------------------------
# §6 — cross-website robustness
# ---------------------------------------------------------------------------


def section6_websites(seed: int | None = 1) -> dict:
    """Extract the record on website A (one library order), reuse it on
    website B (a different order).  RIC must still help — and stay correct —
    because per-library IC information is keyed by stable script positions
    and global-object ICs are excluded."""
    engine = Engine(seed=seed)
    scripts_a = website_a()
    scripts_b = website_b()
    engine.run(scripts_a, name="website-a")
    record = engine.extract_icrecord()
    conventional_b = engine.run(scripts_b, name="website-b")
    ric_b = engine.run(scripts_b, name="website-b", icrecord=record)
    return {
        "record_stats": record.stats(),
        "conventional": conventional_b.summary(),
        "ric": ric_b.summary(),
        "outputs_match": sorted(conventional_b.console_output)
        == sorted(ric_b.console_output),
        "miss_rate_drop_pp": conventional_b.ic_miss_rate_pct
        - ric_b.ic_miss_rate_pct,
        "instruction_saving": 1.0
        - ric_b.total_instructions / conventional_b.total_instructions,
    }


# ---------------------------------------------------------------------------
# Sensitivity analysis (extension): RIC benefit vs sites-per-shape
# ---------------------------------------------------------------------------


def sensitivity_sweep(
    sites_per_shape_values: typing.Sequence[int] = (1, 2, 4, 6, 8),
    shapes: int = 12,
    fields_per_shape: int = 4,
    instances: int = 3,
    seed: int | None = 1,
) -> list[dict]:
    """Sweep the paper's key lever — how many distinct sites read each
    hidden class (Table 1's misses/HC) — on generated synthetic libraries.

    Expected shape: RIC's miss and instruction savings grow monotonically
    (modulo small-number noise) with sites-per-shape, because every extra
    read pass adds one avertable Dependent miss per hidden class while the
    unavoidable Triggering misses stay constant.
    """
    from repro.workloads.synthetic import generated_scripts

    rows = []
    for sites_per_shape in sites_per_shape_values:
        engine = Engine(seed=seed)
        scripts = generated_scripts(
            shapes=shapes,
            fields_per_shape=fields_per_shape,
            sites_per_shape=sites_per_shape,
            instances=instances,
        )
        measurement = engine.measure_workload(
            scripts, name=f"synthetic-p{sites_per_shape}"
        )
        counters = measurement.initial.counters
        rows.append(
            {
                "sites_per_shape": sites_per_shape,
                "misses_per_hc": (
                    counters.ic_misses / counters.hidden_classes_created
                    if counters.hidden_classes_created
                    else 0.0
                ),
                "initial_miss_pct": measurement.initial.ic_miss_rate_pct,
                "ric_miss_pct": measurement.ric.ic_miss_rate_pct,
                "normalized_instructions": measurement.normalized_instructions,
                "miss_reduction_fraction": (
                    1.0
                    - measurement.ric.counters.ic_misses
                    / measurement.conventional.counters.ic_misses
                    if measurement.conventional.counters.ic_misses
                    else 0.0
                ),
            }
        )
    return rows


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    middle = len(ordered) // 2
    if len(ordered) % 2 == 1:
        return ordered[middle]
    return (ordered[middle - 1] + ordered[middle]) / 2.0
