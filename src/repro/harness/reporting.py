"""ASCII renderers that print experiment results in the paper's layout."""

from __future__ import annotations

import typing


def render_table(
    title: str,
    columns: list[tuple[str, str]],
    rows: list[dict],
    paper: dict[str, tuple] | None = None,
    paper_columns: list[str] | None = None,
) -> str:
    """Render rows as a fixed-width table.

    ``columns`` is a list of (header, row-key) pairs; floats are printed
    with two decimals.  When ``paper`` reference values are supplied, a
    "paper:" line with ``paper_columns`` values is printed under each row.
    """
    headers = [header for header, _ in columns]
    widths = [max(len(header), 12) for header in headers]
    lines = [title, "=" * len(title)]

    def fmt(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.2f}"
        return str(value)

    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        cells = [fmt(row[key]) for _, key in columns]
        lines.append("  ".join(c.ljust(w) for c, w in zip(cells, widths)))
        if paper is not None and row.get("library") in paper:
            reference = paper[row["library"]]
            cells = ["  (paper)"] + [fmt(v) for v in reference]
            lines.append("  ".join(c.ljust(w) for c, w in zip(cells, widths)))
    return "\n".join(lines)


def render_bars(
    title: str,
    rows: list[dict],
    value_key: str,
    label_key: str = "library",
    width: int = 50,
    unit: str = "",
) -> str:
    """Render a horizontal bar chart (for the figure-style exhibits)."""
    lines = [title, "=" * len(title)]
    peak = max((row[value_key] for row in rows), default=1.0) or 1.0
    for row in rows:
        value = row[value_key]
        bar = "#" * max(1, int(round(width * value / peak)))
        lines.append(f"{str(row[label_key])[:18]:18s} |{bar:<{width}s}| {value:.3f}{unit}")
    return "\n".join(lines)


def render_stacked_fraction(
    title: str,
    rows: list[dict],
    part_key: str,
    label_key: str = "library",
    width: int = 50,
) -> str:
    """Render Figure-5-style stacked fraction bars (part vs remainder)."""
    lines = [title, "=" * len(title)]
    for row in rows:
        part = row[part_key]
        filled = int(round(width * part))
        bar = "#" * filled + "." * (width - filled)
        lines.append(f"{str(row[label_key])[:18]:18s} |{bar}| {100 * part:5.1f}%")
    lines.append(f"{'':18s}  ('#' = {part_key}, '.' = rest of the work)")
    return "\n".join(lines)


def degradation_row(name: str, counters) -> dict:
    """One reporting row of robustness/degradation counters for a run.

    ``counters`` is a :class:`~repro.stats.counters.Counters`; nonzero
    corrupt/rejected cells mean persisted records were refused and that
    script fell back to cold-start IC behavior.
    """
    snapshot = counters.as_dict()
    return {
        "run": name,
        "records_corrupt": snapshot["ric_records_corrupt"],
        "records_rejected": snapshot["ric_records_rejected"],
        "records_degraded": snapshot["ric_records_degraded"],
        "divergences": snapshot["ric_divergences"],
        "preloads": snapshot["ric_preloads"],
    }


def render_degradation(rows: list[dict], title: str = "RIC degradation") -> str:
    """Render the per-run degradation table (see :func:`degradation_row`)."""
    return render_table(
        title,
        [
            ("Run", "run"),
            ("Corrupt", "records_corrupt"),
            ("Rejected", "records_rejected"),
            ("Degraded", "records_degraded"),
            ("Divergences", "divergences"),
            ("Preloads", "preloads"),
        ],
        rows,
    )


def render_series(title: str, series: dict[str, typing.Iterable[tuple]]) -> str:
    """Render (x, y) series as aligned columns (for Figure 1)."""
    lines = [title, "=" * len(title)]
    for name, points in series.items():
        lines.append(f"{name}:")
        for x, y in points:
            lines.append(f"  {x}: {y}")
    return "\n".join(lines)
