"""Experiment harness: one regeneration function per paper table/figure."""

from repro.harness.experiments import (
    figure1_trends,
    figure5_instruction_breakdown,
    figure8_instruction_counts,
    figure9_execution_times,
    measure_all_workloads,
    section6_websites,
    section73_overheads,
    table1_ic_statistics,
    table4_miss_rates,
)

__all__ = [
    "figure1_trends",
    "figure5_instruction_breakdown",
    "figure8_instruction_counts",
    "figure9_execution_times",
    "measure_all_workloads",
    "section6_websites",
    "section73_overheads",
    "table1_ic_statistics",
    "table4_miss_rates",
]
