"""Bytecode VM: frames, dispatch loop and the guest-instruction cost model.

``VM`` is exported lazily (PEP 562) because :mod:`repro.interpreter.vm`
imports the IC layer, which in turn needs :mod:`repro.interpreter.cost_model`
from this package — a cycle that eager re-export would trip.
"""

from repro.interpreter.frames import Environment, ForInIterator, Frame, GuestThrow

__all__ = [
    "Environment",
    "ForInIterator",
    "Frame",
    "GuestThrow",
    "MAX_CALL_DEPTH",
    "VM",
]


def __getattr__(name: str):
    if name in ("VM", "MAX_CALL_DEPTH"):
        from repro.interpreter import vm

        return getattr(vm, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
