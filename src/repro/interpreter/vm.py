"""The jsl bytecode virtual machine.

A stack VM with **table dispatch**: instead of one long ``if/elif`` chain,
the VM precomputes a per-opcode dispatch table (an array of bound handler
methods indexed by opcode value) at construction time.  Each code object is
additionally *threaded* once per VM — its ``(op, a, b)`` triples are mapped
to ``(handler, a, b)`` triples — so the inner loop pays neither the chain
of opcode comparisons nor even the table index on the hot path.

The table is built by naming convention: opcode ``Op.FOO`` dispatches to
``VM._op_foo``.  A new opcode without a handler fails loudly at VM
construction (and in ``tests/test_dispatch_table.py``), never silently at
runtime.

``GET_PROP`` / ``SET_PROP`` carry an inline **MONO/POLY fast path**: the
access site's :class:`~repro.ic.icvector.ICSite` slot list (up to
``POLY_LIMIT`` ``(hidden class, handler)`` pairs) is probed with the same
linear scan + MRU move-to-front reorder as ``ICSite.lookup``, and a
matching handler runs directly in the dispatch handler — same IC hit
accounting (including per-tier attribution), same ``ICVector``
transitions, one less call layer than the generic ``ICRuntime`` path.
Any other situation (megamorphic site — its slots are empty and hits go
to the shared stub cache — shape mismatch, handler bailout) falls back
to the generic path untouched.  ``fastpaths=False`` disables the inline
paths entirely (used by differential tests and the ``interp_fastpaths``
config knob).

Guest instruction accounting: each dispatched bytecode charges
``cost_model.DISPATCH`` (batched per frame for speed); everything heavier
(allocation, natives, IC misses) is charged where it happens.  The raw
dispatch count is also recorded in ``Counters.dispatches`` for the
benchmark baseline.

**Execution governance**: a VM built with an
:class:`~repro.core.budget.ExecutionBudget` and/or a
:class:`~repro.core.budget.CancelToken` runs a *governed* twin of the
dispatch loop (``_execute_governed``) that performs the full governance
check — cancellation, step/heap budgets, wall-clock deadline — every
``check_stride`` dispatches, paying one local integer compare per
dispatch and the real check only at stride boundaries.  The frame-depth
budget is enforced eagerly in :meth:`VM.call_function`, where a depth
comparison already exists.  An ungoverned VM (the default) uses the
original loop untouched — zero overhead.  Governance aborts raise the
:class:`~repro.core.errors.ExecutionAborted` taxonomy, which descends
from neither ``GuestThrow`` nor ``JSLError`` and is therefore invisible
to guest ``try``/``catch`` — a runaway program cannot swallow its own
termination.  Counter accounting (dispatch counts, instruction charges)
is identical between the two loops, including on the abort path.
"""

from __future__ import annotations

import time
import typing

from repro.bytecode.code import CodeObject
from repro.bytecode.opcodes import BinOp, Op, UnOp
from repro.core.budget import BudgetMeter, CancelToken, ExecutionBudget
from repro.core.errors import DepthBudgetExceeded
from repro.ic.handlers import MISS
from repro.ic.icvector import FeedbackState, ICState
from repro.ic.miss import ICRuntime
from repro.interpreter import cost_model as cost
from repro.interpreter.frames import Environment, ForInIterator, Frame, GuestThrow
from repro.lang.errors import JSLRuntimeError, JSLTypeError
from repro.runtime.context import Runtime
from repro.runtime.objects import JSArray, JSFunction, JSObject
from repro.runtime.values import (
    NULL,
    UNDEFINED,
    loose_equals,
    strict_equals,
    to_boolean,
    to_number,
    to_property_key,
    to_string,
    to_int32,
    to_uint32,
    type_of,
)
from repro.specialize.feedback import operand_type_bits
from repro.stats.counters import (
    CATEGORY_EXECUTE,
    CATEGORY_RIC,
    CATEGORY_RUNTIME_OTHER,
    Counters,
)

#: Python recursion ceiling for guest calls (guest recursion maps onto host
#: recursion; deep guest recursion raises a guest RangeError).
MAX_CALL_DEPTH = 900

#: pc sentinel returned by the RETURN handler to stop the dispatch loop.
_RETURN_PC = -1

#: Combined charge of an IC probe plus a handler execution — what a fast-path
#: hit costs, identical in total to the generic path's two charges.
_IC_HIT_COST = cost.IC_PROBE + cost.HANDLER_EXECUTE

#: Hoisted for the fast-path tier check (module-level lookup is cheaper
#: than the enum attribute access in the hot handlers).
_MONOMORPHIC = ICState.MONOMORPHIC

#: Comparison semantics of the typed CMP_*_JUMP_IF_* opcodes.  Their
#: guards admit only float pairs, for which Python's comparisons match
#: jsl's exactly (NaN compares false to everything and unequal to
#: itself; -0.0 == 0.0) and loose/strict equality coincide.
import operator as _operator

_CMP_FUNCS = {
    int(BinOp.EQ): _operator.eq,
    int(BinOp.NEQ): _operator.ne,
    int(BinOp.STRICT_EQ): _operator.eq,
    int(BinOp.STRICT_NEQ): _operator.ne,
    int(BinOp.LT): _operator.lt,
    int(BinOp.GT): _operator.gt,
    int(BinOp.LE): _operator.le,
    int(BinOp.GE): _operator.ge,
}

# Each guest call consumes several host frames; make sure the guest hits its
# own MAX_CALL_DEPTH RangeError before Python's recursion limit.
import sys as _sys

if _sys.getrecursionlimit() < 20_000:
    _sys.setrecursionlimit(20_000)


class VM:
    """Executes compiled jsl code against a :class:`Runtime`."""

    def __init__(
        self,
        runtime: Runtime,
        counters: Counters,
        ic_runtime: ICRuntime,
        feedback: FeedbackState,
        time_source: typing.Callable[[], float] | None = None,
        fastpaths: bool = True,
        budget: ExecutionBudget | None = None,
        cancel_token: CancelToken | None = None,
    ):
        self.runtime = runtime
        self.counters = counters
        self.ic = ic_runtime
        self.feedback = feedback
        self.fastpaths = fastpaths
        self._call_depth = 0
        self._time_source = time_source or time.time
        self._dispatch = self._build_dispatch_table()
        #: id(code) -> threaded instruction list for this VM.
        self._threaded_cache: dict[int, list] = {}
        #: Governance state: a BudgetMeter when this VM is governed (the
        #: deadline arms here, at VM construction = run start), else None
        #: and the original zero-overhead dispatch loop runs.
        self._meter: BudgetMeter | None = None
        self._depth_budget: int | None = None
        if budget is not None or cancel_token is not None:
            self._meter = BudgetMeter(budget, cancel_token, runtime.heap)
            if budget is not None:
                self._depth_budget = budget.max_frame_depth

    # -- dispatch table construction --------------------------------------------

    def _build_dispatch_table(self) -> list:
        """Array of bound handler methods, indexed by opcode value.

        Every member of :class:`Op` must have a matching ``_op_<name>``
        method; a gap raises immediately so an unhandled opcode can never
        reach the dispatch loop.  Table slots between opcode values hold
        :meth:`_op_invalid`, preserving the historical "unknown opcode"
        error for corrupted bytecode.
        """
        table = [VM._op_invalid.__get__(self)] * (max(Op) + 1)
        for op in Op:
            handler = getattr(self, "_op_" + op.name.lower(), None)
            if handler is None:
                raise NotImplementedError(
                    f"opcode {op.name} has no _op_{op.name.lower()} handler"
                )
            table[op] = handler
        if not self.fastpaths:
            table[Op.GET_PROP] = self._op_get_prop_generic
            table[Op.SET_PROP] = self._op_set_prop_generic
        return table

    def dispatch_handler(self, op: Op):
        """The handler bound for ``op`` (introspection for tests)."""
        return self._dispatch[op]

    def _threaded(self, code: CodeObject) -> list:
        """Thread ``code`` through the dispatch table: ``(op, a, b)`` ->
        ``(handler, a, b)``, cached per VM so the cost is paid once per
        code object, not once per call."""
        threaded = self._threaded_cache.get(id(code))
        if threaded is None:
            table = self._dispatch
            threaded = [(table[op], a, b) for op, a, b in code.instructions]
            self._threaded_cache[id(code)] = threaded
        return threaded

    # -- public entry points ---------------------------------------------------

    def run_code(self, code: CodeObject) -> object:
        """Execute a script's top-level code object.

        Uncaught guest exceptions surface as :class:`JSLRuntimeError` with
        the thrown value's string form.
        """
        env = Environment(code.num_locals, parent=None)
        vector = self.feedback.vector_for(code)
        frame = Frame(code, env, UNDEFINED, vector.sites, vector.arith)
        try:
            return self._execute(frame)
        except GuestThrow as thrown:
            trace = "".join(f"\n  {entry}" for entry in thrown.trace)
            error = JSLRuntimeError(
                f"uncaught guest exception: {self._throw_summary(thrown.value)}{trace}"
            )
            error.position = thrown.position
            raise error from thrown

    def call_value(self, callee: object, this_value: object, args: list) -> object:
        """Call an arbitrary guest value (native or interpreted)."""
        if not isinstance(callee, JSFunction):
            raise self.guest_type_error(f"{to_string(callee)} is not a function")
        if callee.native is not None:
            self.counters.charge(CATEGORY_RUNTIME_OTHER, cost.NATIVE_CALL_BASE)
            return callee.native(self, this_value, args)
        return self.call_function(callee, this_value, args)

    def call_function(self, fn: JSFunction, this_value: object, args: list) -> object:
        """Call an interpreted guest function."""
        code = fn.code
        assert code is not None
        self.counters.charge(CATEGORY_EXECUTE, cost.CALL_SETUP)
        # Depth governance fires before the guest RangeError so a budget
        # tighter than MAX_CALL_DEPTH is a hard (uncatchable) stop; a
        # looser one never fires and guest semantics are unchanged.
        if self._depth_budget is not None and self._call_depth >= self._depth_budget:
            raise DepthBudgetExceeded(
                f"frame-depth budget exceeded: depth {self._call_depth} "
                f">= {self._depth_budget}"
            )
        if self._call_depth >= MAX_CALL_DEPTH:
            raise GuestThrow("RangeError: maximum call stack size exceeded")
        env = Environment(code.num_locals, parent=fn.env)  # type: ignore[arg-type]
        self.runtime.heap.charge("environment", 32 + 8 * code.num_locals)
        for index in range(len(code.params)):
            env.slots[index] = args[index] if index < len(args) else UNDEFINED
        vector = self.feedback.vector_for(code)
        frame = Frame(code, env, this_value, vector.sites, vector.arith)
        self._call_depth += 1
        try:
            return self._execute(frame)
        finally:
            self._call_depth -= 1

    def construct(self, ctor: object, args: list) -> object:
        """``new ctor(...)`` (paper Figure 2's object-construction path)."""
        if not isinstance(ctor, JSFunction):
            raise self.guest_type_error(f"{to_string(ctor)} is not a constructor")
        self.counters.charge(CATEGORY_RUNTIME_OTHER, cost.ALLOCATE_OBJECT)
        hc = self.runtime.constructor_hidden_class(ctor)
        instance = self.runtime.new_object(hc)
        if ctor.native is not None:
            self.counters.charge(CATEGORY_RUNTIME_OTHER, cost.NATIVE_CALL_BASE)
            result = ctor.native(self, instance, args)
        else:
            result = self.call_function(ctor, instance, args)
        return result if isinstance(result, JSObject) else instance

    # -- helpers for natives -----------------------------------------------------

    def charge_native(self, elements: int = 0) -> None:
        """Accounting hook for native builtins."""
        self.counters.charge(
            CATEGORY_RUNTIME_OTHER,
            cost.NATIVE_CALL_BASE + cost.NATIVE_PER_ELEMENT * elements,
        )

    def get_property_slow(self, obj: JSObject, name: str) -> object:
        """Uncached property read for natives (no IC site involved)."""
        lookup = self.runtime.lookup_property(obj, name)
        self.counters.charge(
            CATEGORY_RUNTIME_OTHER,
            cost.PROPERTY_LOOKUP_BASE + cost.PROPERTY_LOOKUP_PER_HOP * lookup.hops,
        )
        return lookup.value

    def set_property_native(
        self, obj: JSObject, name: str, value: object, site_key: str
    ) -> None:
        """Uncached property write for natives; transitions use the stable
        ``site_key`` so RIC can link hidden classes created by builtins."""
        _, created = self.runtime.define_own_property(obj, name, value, site_key)
        self.counters.charge(CATEGORY_RUNTIME_OTHER, cost.PROPERTY_LOOKUP_BASE)
        if created:
            self.counters.charge(CATEGORY_RUNTIME_OTHER, cost.HIDDEN_CLASS_CREATE)

    def runtime_time_ms(self) -> float:
        return float(self._time_source() * 1000.0)

    @staticmethod
    def _throw_summary(value: object) -> str:
        """Readable form of a thrown value (Error objects show name: message)."""
        if isinstance(value, JSObject) and not isinstance(value, (JSArray, JSFunction)):
            found_name, name = value.get_own("name")
            found_message, message = value.get_own("message")
            if found_name or found_message:
                name_text = to_string(name) if found_name else "Error"
                message_text = to_string(message) if found_message else ""
                return f"{name_text}: {message_text}" if message_text else name_text
        return to_string(value)

    def guest_type_error(self, message: str) -> GuestThrow:
        return GuestThrow(self._make_guest_error("TypeError", message))

    def _make_guest_error(self, name: str, message: str) -> JSObject:
        error = self.runtime.new_object()
        # Use the error prototype chain so guest `e.toString()` works.
        error.hidden_class = self.runtime.hidden_classes.create_root(
            "builtin", f"builtin:thrown:{name}", prototype=self.runtime.error_prototype
        )
        self.runtime.define_own_property(error, "name", name, "native:error:name")
        self.runtime.define_own_property(
            error, "message", message, "native:error:message"
        )
        return error

    # -- property access with primitives ----------------------------------------

    def get_property(self, obj: object, name: str, site) -> object:
        """GET_PROP: primitives take uncached fast paths; objects go through
        the IC."""
        if isinstance(obj, JSObject):
            return self.ic.named_load(site, obj, name)
        if isinstance(obj, str):
            if name == "length":
                return float(len(obj))
            method = self.runtime.string_methods.get(name)
            if method is not None:
                return method
            return UNDEFINED
        if isinstance(obj, bool) or isinstance(obj, float):
            method = self.runtime.number_methods.get(name)
            if method is not None:
                return method
            return UNDEFINED
        raise self.guest_type_error(
            f"Cannot read properties of {to_string(obj)} (reading '{name}')"
        )

    def set_property(self, obj: object, name: str, value: object, site) -> None:
        if isinstance(obj, JSObject):
            self.ic.named_store(site, obj, name, value)
            return
        if obj is UNDEFINED or obj is NULL:
            raise self.guest_type_error(
                f"Cannot set properties of {to_string(obj)} (setting '{name}')"
            )
        # Writes to primitives are silently dropped (non-strict JS).

    # -- the dispatch loop -------------------------------------------------------

    def _execute(self, frame: Frame) -> object:
        if self._meter is not None:
            return self._execute_governed(frame)
        code = frame.code
        threaded = self._threaded(code)
        counters = self.counters

        pc = 0
        dispatched = 0  # batched DISPATCH charges

        try:
            while True:
                handler, a, b = threaded[pc]
                dispatched += 1
                try:
                    pc = handler(frame, a, b, pc + 1)
                    if pc < 0:
                        return frame.return_value
                except GuestThrow as thrown:
                    if not frame.try_stack:
                        if thrown.position is None:
                            thrown.position = code.position_at(pc)
                        thrown.trace.append(
                            f"at {code.name} ({code.position_at(pc)})"
                        )
                        raise
                    target, depth = frame.try_stack.pop()
                    stack = frame.stack
                    del stack[depth:]
                    stack.append(thrown.value)
                    pc = target
                except JSLRuntimeError as error:
                    # Engine-level errors become catchable guest Error objects
                    # named like their JS counterparts (JSLTypeError ->
                    # TypeError).
                    if not frame.try_stack:
                        if error.position is None:
                            error.position = code.position_at(pc)
                        if not hasattr(error, "guest_trace"):
                            error.guest_trace = []  # type: ignore[attr-defined]
                        error.guest_trace.append(  # type: ignore[attr-defined]
                            f"at {code.name} ({code.position_at(pc)})"
                        )
                        raise
                    target, depth = frame.try_stack.pop()
                    stack = frame.stack
                    del stack[depth:]
                    name = type(error).__name__
                    if name.startswith("JSL"):
                        name = name[3:]
                    if name == "RuntimeError":
                        name = "Error"
                    stack.append(self._make_guest_error(name, error.message))
                    pc = target
        finally:
            counters.dispatches += dispatched
            counters.charge(CATEGORY_EXECUTE, cost.DISPATCH * dispatched)

    def _execute_governed(self, frame: Frame) -> object:
        """The dispatch loop's governed twin (see module docstring).

        Identical to :meth:`_execute` except for the stride bookkeeping:
        every ``meter.stride`` dispatches the frame credits a full stride
        to the meter and runs the governance check (which may raise a
        typed abort).  The remainder below a stride boundary is credited
        quietly at frame exit, so ``meter.steps_used`` is exact across
        nested frames.  Counter accounting (``dispatches``, DISPATCH
        charges) matches the ungoverned loop bytecode-for-bytecode.
        """
        code = frame.code
        threaded = self._threaded(code)
        counters = self.counters
        meter = self._meter
        assert meter is not None
        stride = meter.stride

        pc = 0
        dispatched = 0  # batched DISPATCH charges
        next_check = stride  # dispatch count that triggers the next check
        flushed = 0  # steps already credited to the meter

        try:
            while True:
                handler, a, b = threaded[pc]
                dispatched += 1
                if dispatched >= next_check:
                    next_check = dispatched + stride
                    flushed += stride
                    meter.note_steps(stride)
                try:
                    pc = handler(frame, a, b, pc + 1)
                    if pc < 0:
                        return frame.return_value
                except GuestThrow as thrown:
                    if not frame.try_stack:
                        if thrown.position is None:
                            thrown.position = code.position_at(pc)
                        thrown.trace.append(
                            f"at {code.name} ({code.position_at(pc)})"
                        )
                        raise
                    target, depth = frame.try_stack.pop()
                    stack = frame.stack
                    del stack[depth:]
                    stack.append(thrown.value)
                    pc = target
                except JSLRuntimeError as error:
                    if not frame.try_stack:
                        if error.position is None:
                            error.position = code.position_at(pc)
                        if not hasattr(error, "guest_trace"):
                            error.guest_trace = []  # type: ignore[attr-defined]
                        error.guest_trace.append(  # type: ignore[attr-defined]
                            f"at {code.name} ({code.position_at(pc)})"
                        )
                        raise
                    target, depth = frame.try_stack.pop()
                    stack = frame.stack
                    del stack[depth:]
                    name = type(error).__name__
                    if name.startswith("JSL"):
                        name = name[3:]
                    if name == "RuntimeError":
                        name = "Error"
                    stack.append(self._make_guest_error(name, error.message))
                    pc = target
        finally:
            counters.dispatches += dispatched
            counters.charge(CATEGORY_EXECUTE, cost.DISPATCH * dispatched)
            # Quiet credit: checking here could raise while another
            # exception is already unwinding and mask it.
            meter.note_steps_quiet(dispatched - flushed)

    # -- dispatch handlers -------------------------------------------------------
    #
    # One method per opcode, found by naming convention (Op.FOO ->
    # _op_foo).  Signature: (frame, a, b, pc) -> next pc, where ``pc``
    # arrives already pointing at the following instruction.  Jumps return
    # their target; RETURN stashes the value on the frame and returns the
    # _RETURN_PC sentinel.

    def _op_invalid(self, frame: Frame, a: int, b: int, pc: int) -> int:
        raise JSLRuntimeError("unknown opcode")

    # constants / simple pushes

    def _op_load_const(self, frame: Frame, a: int, b: int, pc: int) -> int:
        frame.stack.append(frame.consts[a])
        return pc

    def _op_load_undefined(self, frame: Frame, a: int, b: int, pc: int) -> int:
        frame.stack.append(UNDEFINED)
        return pc

    def _op_load_null(self, frame: Frame, a: int, b: int, pc: int) -> int:
        frame.stack.append(NULL)
        return pc

    def _op_load_true(self, frame: Frame, a: int, b: int, pc: int) -> int:
        frame.stack.append(True)
        return pc

    def _op_load_false(self, frame: Frame, a: int, b: int, pc: int) -> int:
        frame.stack.append(False)
        return pc

    def _op_load_this(self, frame: Frame, a: int, b: int, pc: int) -> int:
        frame.stack.append(frame.this_value)
        return pc

    # variables

    def _op_load_local(self, frame: Frame, a: int, b: int, pc: int) -> int:
        frame.stack.append(frame.slots[a])
        return pc

    def _op_store_local(self, frame: Frame, a: int, b: int, pc: int) -> int:
        frame.slots[a] = frame.stack.pop()
        return pc

    def _op_load_env(self, frame: Frame, a: int, b: int, pc: int) -> int:
        frame.stack.append(frame.env.ancestor(a).slots[b])
        return pc

    def _op_store_env(self, frame: Frame, a: int, b: int, pc: int) -> int:
        frame.env.ancestor(a).slots[b] = frame.stack.pop()
        return pc

    def _op_load_global(self, frame: Frame, a: int, b: int, pc: int) -> int:
        frame.stack.append(self.ic.global_load(frame.sites[b], frame.names[a]))
        return pc

    def _op_load_global_soft(self, frame: Frame, a: int, b: int, pc: int) -> int:
        frame.stack.append(
            self.ic.global_load(frame.sites[b], frame.names[a], soft=True)
        )
        return pc

    def _op_store_global(self, frame: Frame, a: int, b: int, pc: int) -> int:
        self.ic.global_store(frame.sites[b], frame.names[a], frame.stack[-1])
        return pc

    def _op_declare_global(self, frame: Frame, a: int, b: int, pc: int) -> int:
        self.ic.declare_global(frame.sites[b], frame.names[a])
        return pc

    # object access sites

    def _note_preloaded_hit(self, site, hc) -> None:
        """Fast-path twin of the generic path's preloaded-hit accounting."""
        self.counters.ic_hits_on_preloaded += 1
        tracer = self.ic.tracer
        if tracer is not None:
            from repro.stats.tracing import PRELOADED_HIT

            tracer.emit(
                PRELOADED_HIT, site_key=site.info.site_key, hc_index=hc.index
            )

    def _op_get_prop(self, frame: Frame, a: int, b: int, pc: int) -> int:
        """GET_PROP with the inline MONO/POLY fast path.

        The probe is the same linear scan + move-to-front reorder as
        :meth:`ICSite.lookup`, inlined: up to POLY_LIMIT slots are
        shape-checked in MRU order and a hit past the front is promoted,
        so slot order evolves identically to the generic path.
        Megamorphic sites hold no slots and fall straight through to the
        generic path's shared stub cache.

        Invariants vs the generic path (checked by test_dispatch_table
        and the differential wall): identical counter totals on a hit
        (including per-tier attribution), identical ICVector transitions
        (the fast path never installs or evicts slots), and fallback to
        the untouched generic path in every non-hit situation.
        """
        stack = frame.stack
        obj = stack[-1]
        if isinstance(obj, JSObject):
            site = frame.sites[b]
            slots = site.slots
            if slots:
                hc = obj.hidden_class
                for index, entry in enumerate(slots):
                    if entry[0] is hc:
                        if index:
                            # MRU promotion, mirroring ICSite.lookup.
                            del slots[index]
                            slots.insert(0, entry)
                        result = entry[1].execute(obj)
                        if result is not MISS:
                            counters = self.counters
                            counters.ic_accesses += 1
                            counters.ic_hits += 1
                            if site.state is _MONOMORPHIC:
                                counters.ic_hits_mono += 1
                            else:
                                counters.ic_hits_poly += 1
                            counters.instructions[CATEGORY_EXECUTE] += (
                                _IC_HIT_COST
                            )
                            if site.preloaded_addresses and site.was_preloaded(
                                hc
                            ):
                                self._note_preloaded_hit(site, hc)
                            stack[-1] = result
                            return pc
                        break
            stack[-1] = self.ic.named_load(site, obj, frame.names[a])
            return pc
        stack.pop()
        stack.append(self.get_property(obj, frame.names[a], frame.sites[b]))
        return pc

    def _op_get_prop_generic(self, frame: Frame, a: int, b: int, pc: int) -> int:
        stack = frame.stack
        obj = stack.pop()
        stack.append(self.get_property(obj, frame.names[a], frame.sites[b]))
        return pc

    def _op_set_prop(self, frame: Frame, a: int, b: int, pc: int) -> int:
        """SET_PROP with the inline MONO/POLY fast path (see _op_get_prop)."""
        stack = frame.stack
        obj = stack[-2]
        if isinstance(obj, JSObject):
            site = frame.sites[b]
            slots = site.slots
            if slots:
                hc = obj.hidden_class
                for index, entry in enumerate(slots):
                    if entry[0] is hc:
                        if index:
                            del slots[index]
                            slots.insert(0, entry)
                        value = stack[-1]
                        result = entry[1].execute(obj, value)
                        if result is not MISS:
                            counters = self.counters
                            counters.ic_accesses += 1
                            counters.ic_hits += 1
                            if site.state is _MONOMORPHIC:
                                counters.ic_hits_mono += 1
                            else:
                                counters.ic_hits_poly += 1
                            counters.instructions[CATEGORY_EXECUTE] += (
                                _IC_HIT_COST
                            )
                            if site.preloaded_addresses and site.was_preloaded(
                                hc
                            ):
                                self._note_preloaded_hit(site, hc)
                            if frame.names[a] == "prototype" and isinstance(
                                obj, JSFunction
                            ):
                                obj.invalidate_constructor_hc()
                            stack.pop()
                            stack[-1] = value
                            return pc
                        break
        return self._op_set_prop_generic(frame, a, b, pc)

    def _op_set_prop_generic(self, frame: Frame, a: int, b: int, pc: int) -> int:
        stack = frame.stack
        value = stack.pop()
        obj = stack.pop()
        self.set_property(obj, frame.names[a], value, frame.sites[b])
        stack.append(value)
        return pc

    def _op_obj_lit_prop(self, frame: Frame, a: int, b: int, pc: int) -> int:
        stack = frame.stack
        value = stack.pop()
        self.set_property(stack[-1], frame.names[a], value, frame.sites[b])
        return pc

    def _op_get_index(self, frame: Frame, a: int, b: int, pc: int) -> int:
        stack = frame.stack
        key = stack.pop()
        obj = stack.pop()
        stack.append(self._keyed_get(obj, key, frame.sites[a]))
        return pc

    def _op_set_index(self, frame: Frame, a: int, b: int, pc: int) -> int:
        stack = frame.stack
        value = stack.pop()
        key = stack.pop()
        obj = stack.pop()
        self._keyed_set(obj, key, value, frame.sites[a])
        stack.append(value)
        return pc

    def _op_delete_prop(self, frame: Frame, a: int, b: int, pc: int) -> int:
        stack = frame.stack
        obj = stack.pop()
        self.counters.charge(CATEGORY_RUNTIME_OTHER, cost.DICT_ACCESS)
        if isinstance(obj, JSObject):
            stack.append(self.runtime.delete_property(obj, frame.names[a]))
        else:
            stack.append(True)
        return pc

    def _op_delete_index(self, frame: Frame, a: int, b: int, pc: int) -> int:
        stack = frame.stack
        key = stack.pop()
        obj = stack.pop()
        self.counters.charge(CATEGORY_RUNTIME_OTHER, cost.DICT_ACCESS)
        if isinstance(obj, JSObject):
            stack.append(self.runtime.delete_property(obj, to_property_key(key)))
        else:
            stack.append(True)
        return pc

    # allocation

    def _op_make_function(self, frame: Frame, a: int, b: int, pc: int) -> int:
        self.counters.charge(CATEGORY_RUNTIME_OTHER, cost.ALLOCATE_FUNCTION)
        fn_code = frame.consts[a]
        assert isinstance(fn_code, CodeObject)
        frame.stack.append(self.runtime.new_function(fn_code, frame.env))
        return pc

    def _op_make_object(self, frame: Frame, a: int, b: int, pc: int) -> int:
        self.counters.charge(CATEGORY_RUNTIME_OTHER, cost.ALLOCATE_OBJECT)
        frame.stack.append(self.runtime.new_object())
        return pc

    def _op_make_array(self, frame: Frame, a: int, b: int, pc: int) -> int:
        self.counters.charge(
            CATEGORY_RUNTIME_OTHER,
            cost.ALLOCATE_ARRAY + cost.NATIVE_PER_ELEMENT * a,
        )
        stack = frame.stack
        elements = stack[len(stack) - a :]
        del stack[len(stack) - a :]
        stack.append(self.runtime.new_array(elements))
        return pc

    # calls

    def _op_call(self, frame: Frame, a: int, b: int, pc: int) -> int:
        stack = frame.stack
        args = stack[len(stack) - a :]
        del stack[len(stack) - a :]
        callee = stack.pop()
        stack.append(self.call_value(callee, UNDEFINED, args))
        return pc

    def _op_call_method(self, frame: Frame, a: int, b: int, pc: int) -> int:
        stack = frame.stack
        args = stack[len(stack) - a :]
        del stack[len(stack) - a :]
        callee = stack.pop()
        receiver = stack.pop()
        stack.append(self.call_value(callee, receiver, args))
        return pc

    def _op_new(self, frame: Frame, a: int, b: int, pc: int) -> int:
        stack = frame.stack
        args = stack[len(stack) - a :]
        del stack[len(stack) - a :]
        ctor = stack.pop()
        stack.append(self.construct(ctor, args))
        return pc

    def _op_return(self, frame: Frame, a: int, b: int, pc: int) -> int:
        frame.return_value = frame.stack.pop()
        return _RETURN_PC

    # control flow

    def _op_jump(self, frame: Frame, a: int, b: int, pc: int) -> int:
        return a

    def _op_jump_if_false(self, frame: Frame, a: int, b: int, pc: int) -> int:
        if not to_boolean(frame.stack.pop()):
            return a
        return pc

    def _op_jump_if_true(self, frame: Frame, a: int, b: int, pc: int) -> int:
        if to_boolean(frame.stack.pop()):
            return a
        return pc

    def _op_jump_if_false_keep(self, frame: Frame, a: int, b: int, pc: int) -> int:
        if not to_boolean(frame.stack[-1]):
            return a
        return pc

    def _op_jump_if_true_keep(self, frame: Frame, a: int, b: int, pc: int) -> int:
        if to_boolean(frame.stack[-1]):
            return a
        return pc

    def _op_throw(self, frame: Frame, a: int, b: int, pc: int) -> int:
        raise GuestThrow(frame.stack.pop())

    def _op_setup_try(self, frame: Frame, a: int, b: int, pc: int) -> int:
        frame.try_stack.append((a, len(frame.stack)))
        return pc

    def _op_pop_try(self, frame: Frame, a: int, b: int, pc: int) -> int:
        frame.try_stack.pop()
        return pc

    def _op_for_in_prep(self, frame: Frame, a: int, b: int, pc: int) -> int:
        stack = frame.stack
        obj = stack.pop()
        if isinstance(obj, JSObject):
            keys = obj.own_property_names()
            self.counters.charge(
                CATEGORY_RUNTIME_OTHER,
                cost.DICT_ACCESS + cost.NATIVE_PER_ELEMENT * len(keys),
            )
            stack.append(ForInIterator(keys))
        else:
            stack.append(ForInIterator([]))
        return pc

    def _op_for_in_next(self, frame: Frame, a: int, b: int, pc: int) -> int:
        iterator = frame.stack[-1]
        assert isinstance(iterator, ForInIterator)
        key = iterator.next_key()
        if key is None:
            return a
        frame.stack.append(key)
        return pc

    # operators

    def _op_binary(self, frame: Frame, a: int, b: int, pc: int) -> int:
        stack = frame.stack
        right = stack.pop()
        left = stack[-1]
        # Type-feedback recorder: one mask OR per dispatch (both loops
        # share this handler, so governed runs record too).
        frame.arith[pc - 1] |= operand_type_bits(left, right)
        stack[-1] = self._binary(a, left, right)
        return pc

    def _op_unary(self, frame: Frame, a: int, b: int, pc: int) -> int:
        stack = frame.stack
        stack[-1] = self._unary(a, stack[-1])
        return pc

    # fused superinstructions (emitted by bytecode/optimizer.py only)

    def _op_inc_local_const(self, frame: Frame, a: int, b: int, pc: int) -> int:
        """INC_LOCAL_CONST: ``locals[a] = locals[a] + consts[b]``.

        Fused form of LOAD_LOCAL;LOAD_CONST;BINARY ADD;DUP;STORE_LOCAL;
        POP — same ``_binary`` semantics (number add or string concat),
        zero net stack effect, one dispatch instead of six.
        """
        slots = frame.slots
        slots[a] = self._binary(BinOp.ADD, slots[a], frame.consts[b])
        return pc

    def _op_cmp_jump_if_false(self, frame: Frame, a: int, b: int, pc: int) -> int:
        """CMP_JUMP_IF_FALSE: fused BINARY ``b``; JUMP_IF_FALSE ``a``."""
        stack = frame.stack
        right = stack.pop()
        left = stack.pop()
        frame.arith[pc - 1] |= operand_type_bits(left, right)
        if not to_boolean(self._binary(b, left, right)):
            return a
        return pc

    def _op_cmp_jump_if_true(self, frame: Frame, a: int, b: int, pc: int) -> int:
        """CMP_JUMP_IF_TRUE: fused BINARY ``b``; JUMP_IF_TRUE ``a``."""
        stack = frame.stack
        right = stack.pop()
        left = stack.pop()
        frame.arith[pc - 1] |= operand_type_bits(left, right)
        if to_boolean(self._binary(b, left, right)):
            return a
        return pc

    # typed (quickened) opcodes — emitted only by repro/specialize/quicken.py
    #
    # Each carries an inline guard over the profile the persisted record
    # promised.  A guard failure deoptimizes: the site's instruction is
    # patched back to its generic opcode (in the shared code object *and*
    # this VM's threaded cache), the site is demoted in the feedback
    # state so the next extraction persists a tombstone, and the generic
    # handler then executes the access — so a deopting dispatch is
    # observably identical to the generic opcode having been there all
    # along, modulo the specialized_*/deopt_* counters and the
    # DEOPT_PATCH cost charge.

    def _deopt(
        self,
        frame: Frame,
        pc: int,
        generic_op: int,
        a: int,
        b: int,
        feedback_key: str,
    ) -> int:
        """Despecialize the site at ``pc - 1`` and run its generic form."""
        site_pc = pc - 1
        code = frame.code
        # In-place single-element patches; safe under concurrent sharing
        # (another VM mid-run keeps its own threaded snapshot and, if its
        # guard also fails, re-applies the identical patch).
        code.instructions[site_pc] = (int(generic_op), a, b)
        handler = self._dispatch[generic_op]
        threaded = self._threaded_cache.get(id(code))
        if threaded is not None:
            threaded[site_pc] = (handler, a, b)
        counters = self.counters
        counters.deopts += 1
        counters.despecialized_sites += 1
        counters.charge(CATEGORY_RIC, cost.DEOPT_PATCH)
        self.feedback.demoted_sites.add(feedback_key)
        return handler(frame, a, b, pc)

    def _arith_site_key(self, frame: Frame, pc: int) -> str:
        return f"{frame.code.decl_key}@{pc - 1}:arith"

    def _op_add_int(self, frame: Frame, a: int, b: int, pc: int) -> int:
        """ADD_INT: BINARY ADD whose operands stayed integral numbers."""
        stack = frame.stack
        right = stack[-1]
        left = stack[-2]
        if (
            type(left) is float
            and type(right) is float
            and left.is_integer()
            and right.is_integer()
        ):
            stack.pop()
            stack[-1] = left + right
            self.counters.specialized_hits += 1
            return pc
        return self._deopt(
            frame, pc, Op.BINARY, a, b, self._arith_site_key(frame, pc)
        )

    def _op_add_num(self, frame: Frame, a: int, b: int, pc: int) -> int:
        """ADD_NUM: BINARY ADD whose operands stayed numbers."""
        stack = frame.stack
        right = stack[-1]
        left = stack[-2]
        if type(left) is float and type(right) is float:
            stack.pop()
            stack[-1] = left + right
            self.counters.specialized_hits += 1
            return pc
        return self._deopt(
            frame, pc, Op.BINARY, a, b, self._arith_site_key(frame, pc)
        )

    def _op_sub_num(self, frame: Frame, a: int, b: int, pc: int) -> int:
        stack = frame.stack
        right = stack[-1]
        left = stack[-2]
        if type(left) is float and type(right) is float:
            stack.pop()
            stack[-1] = left - right
            self.counters.specialized_hits += 1
            return pc
        return self._deopt(
            frame, pc, Op.BINARY, a, b, self._arith_site_key(frame, pc)
        )

    def _op_mul_num(self, frame: Frame, a: int, b: int, pc: int) -> int:
        stack = frame.stack
        right = stack[-1]
        left = stack[-2]
        if type(left) is float and type(right) is float:
            stack.pop()
            stack[-1] = left * right
            self.counters.specialized_hits += 1
            return pc
        return self._deopt(
            frame, pc, Op.BINARY, a, b, self._arith_site_key(frame, pc)
        )

    def _op_cmp_int_jump_if_false(self, frame: Frame, a: int, b: int, pc: int) -> int:
        """Typed CMP_JUMP_IF_FALSE for integral operands."""
        stack = frame.stack
        right = stack[-1]
        left = stack[-2]
        if (
            type(left) is float
            and type(right) is float
            and left.is_integer()
            and right.is_integer()
        ):
            del stack[-2:]
            self.counters.specialized_hits += 1
            if not _CMP_FUNCS[b](left, right):
                return a
            return pc
        return self._deopt(
            frame, pc, Op.CMP_JUMP_IF_FALSE, a, b, self._arith_site_key(frame, pc)
        )

    def _op_cmp_int_jump_if_true(self, frame: Frame, a: int, b: int, pc: int) -> int:
        stack = frame.stack
        right = stack[-1]
        left = stack[-2]
        if (
            type(left) is float
            and type(right) is float
            and left.is_integer()
            and right.is_integer()
        ):
            del stack[-2:]
            self.counters.specialized_hits += 1
            if _CMP_FUNCS[b](left, right):
                return a
            return pc
        return self._deopt(
            frame, pc, Op.CMP_JUMP_IF_TRUE, a, b, self._arith_site_key(frame, pc)
        )

    def _op_cmp_num_jump_if_false(self, frame: Frame, a: int, b: int, pc: int) -> int:
        """Typed CMP_JUMP_IF_FALSE for numeric operands."""
        stack = frame.stack
        right = stack[-1]
        left = stack[-2]
        if type(left) is float and type(right) is float:
            del stack[-2:]
            self.counters.specialized_hits += 1
            if not _CMP_FUNCS[b](left, right):
                return a
            return pc
        return self._deopt(
            frame, pc, Op.CMP_JUMP_IF_FALSE, a, b, self._arith_site_key(frame, pc)
        )

    def _op_cmp_num_jump_if_true(self, frame: Frame, a: int, b: int, pc: int) -> int:
        stack = frame.stack
        right = stack[-1]
        left = stack[-2]
        if type(left) is float and type(right) is float:
            del stack[-2:]
            self.counters.specialized_hits += 1
            if _CMP_FUNCS[b](left, right):
                return a
            return pc
        return self._deopt(
            frame, pc, Op.CMP_JUMP_IF_TRUE, a, b, self._arith_site_key(frame, pc)
        )

    def _op_get_prop_slot(self, frame: Frame, a: int, b: int, pc: int) -> int:
        """GET_PROP_SLOT: direct-offset load at a persistently-mono site.

        One hidden-class identity compare against the site's front slot,
        then a raw ``obj.slots[offset]`` — no handler object, no probe
        loop.  IC accounting is byte-identical to the generic fast path's
        hit (accesses, hits, tier, preloaded attribution) so quickening
        never perturbs IC statistics; only the modeled cost differs
        (SPECIALIZED_PROP instead of IC_PROBE + HANDLER_EXECUTE).
        """
        stack = frame.stack
        obj = stack[-1]
        if isinstance(obj, JSObject):
            site = frame.sites[b]
            slots = site.slots
            if slots:
                hc = obj.hidden_class
                if slots[0][0] is hc:
                    counters = self.counters
                    counters.ic_accesses += 1
                    counters.ic_hits += 1
                    if site.state is _MONOMORPHIC:
                        counters.ic_hits_mono += 1
                    else:
                        counters.ic_hits_poly += 1
                    counters.specialized_hits += 1
                    counters.instructions[CATEGORY_EXECUTE] += (
                        cost.SPECIALIZED_PROP
                    )
                    if site.preloaded_addresses and site.was_preloaded(hc):
                        self._note_preloaded_hit(site, hc)
                    stack[-1] = obj.slots[frame.code.spec_table[a][1]]
                    return pc
        return self._deopt(
            frame,
            pc,
            Op.GET_PROP,
            frame.code.spec_table[a][0],
            b,
            frame.sites[b].info.site_key,
        )

    def _op_set_prop_slot(self, frame: Frame, a: int, b: int, pc: int) -> int:
        """SET_PROP_SLOT: direct-offset overwrite store (see GET_PROP_SLOT).

        Only non-transitioning stores to existing fields are ever
        quickened, and never stores to ``prototype`` — so no transition,
        no shape-dependent invalidation, no constructor-cache check.
        """
        stack = frame.stack
        obj = stack[-2]
        if isinstance(obj, JSObject):
            site = frame.sites[b]
            slots = site.slots
            if slots:
                hc = obj.hidden_class
                if slots[0][0] is hc:
                    value = stack[-1]
                    counters = self.counters
                    counters.ic_accesses += 1
                    counters.ic_hits += 1
                    if site.state is _MONOMORPHIC:
                        counters.ic_hits_mono += 1
                    else:
                        counters.ic_hits_poly += 1
                    counters.specialized_hits += 1
                    counters.instructions[CATEGORY_EXECUTE] += (
                        cost.SPECIALIZED_PROP
                    )
                    if site.preloaded_addresses and site.was_preloaded(hc):
                        self._note_preloaded_hit(site, hc)
                    obj.slots[frame.code.spec_table[a][1]] = value
                    stack.pop()
                    stack[-1] = value
                    return pc
        return self._deopt(
            frame,
            pc,
            Op.SET_PROP,
            frame.code.spec_table[a][0],
            b,
            frame.sites[b].info.site_key,
        )

    def _op_typeof(self, frame: Frame, a: int, b: int, pc: int) -> int:
        stack = frame.stack
        stack[-1] = type_of(stack[-1])
        return pc

    # stack manipulation

    def _op_pop(self, frame: Frame, a: int, b: int, pc: int) -> int:
        frame.stack.pop()
        return pc

    def _op_dup(self, frame: Frame, a: int, b: int, pc: int) -> int:
        frame.stack.append(frame.stack[-1])
        return pc

    def _op_dup2(self, frame: Frame, a: int, b: int, pc: int) -> int:
        frame.stack.extend(frame.stack[-2:])
        return pc

    def _op_swap(self, frame: Frame, a: int, b: int, pc: int) -> int:
        stack = frame.stack
        stack[-1], stack[-2] = stack[-2], stack[-1]
        return pc

    # -- keyed access helpers ---------------------------------------------------

    def _keyed_get(self, obj: object, key: object, site) -> object:
        if isinstance(obj, JSObject):
            return self.ic.keyed_load(site, obj, key)
        if isinstance(obj, str):
            if isinstance(key, float) and key == int(key) and 0 <= int(key) < len(obj):
                return obj[int(key)]
            return self.get_property(obj, to_property_key(key), site)
        raise self.guest_type_error(
            f"Cannot read properties of {to_string(obj)} (reading '{to_string(key)}')"
        )

    def _keyed_set(self, obj: object, key: object, value: object, site) -> None:
        if isinstance(obj, JSObject):
            self.ic.keyed_store(site, obj, key, value)
            return
        if obj is UNDEFINED or obj is NULL:
            raise self.guest_type_error(
                f"Cannot set properties of {to_string(obj)}"
            )
        # Primitive writes silently dropped.

    # -- operators ------------------------------------------------------------------

    def _binary(self, op: int, left: object, right: object) -> object:
        if op == BinOp.ADD:
            if isinstance(left, str) or isinstance(right, str):
                return to_string(left) + to_string(right)
            if isinstance(left, JSObject) or isinstance(right, JSObject):
                return to_string(left) + to_string(right)
            return to_number(left) + to_number(right)
        if op == BinOp.SUB:
            return to_number(left) - to_number(right)
        if op == BinOp.MUL:
            return to_number(left) * to_number(right)
        if op == BinOp.DIV:
            divisor = to_number(right)
            dividend = to_number(left)
            if divisor == 0.0:
                if dividend == 0.0 or dividend != dividend:
                    return float("nan")
                return float("inf") if dividend > 0 else float("-inf")
            return dividend / divisor
        if op == BinOp.MOD:
            divisor = to_number(right)
            dividend = to_number(left)
            if divisor == 0.0 or dividend != dividend or divisor != divisor:
                return float("nan")
            return float(
                dividend - divisor * int(dividend / divisor)
            )  # JS truncating remainder
        if op == BinOp.EQ:
            return loose_equals(left, right)
        if op == BinOp.NEQ:
            return not loose_equals(left, right)
        if op == BinOp.STRICT_EQ:
            return strict_equals(left, right)
        if op == BinOp.STRICT_NEQ:
            return not strict_equals(left, right)
        if op in (BinOp.LT, BinOp.GT, BinOp.LE, BinOp.GE):
            return self._compare(op, left, right)
        if op == BinOp.BIT_AND:
            return float(to_int32(left) & to_int32(right))
        if op == BinOp.BIT_OR:
            return float(to_int32(left) | to_int32(right))
        if op == BinOp.BIT_XOR:
            return float(to_int32(left) ^ to_int32(right))
        if op == BinOp.SHL:
            shifted = (to_int32(left) << (to_uint32(right) & 31)) & 0xFFFFFFFF
            if shifted >= 0x80000000:
                shifted -= 0x100000000
            return float(shifted)
        if op == BinOp.SHR:
            return float(to_int32(left) >> (to_uint32(right) & 31))
        if op == BinOp.USHR:
            return float(to_uint32(left) >> (to_uint32(right) & 31))
        if op == BinOp.IN:
            if not isinstance(right, JSObject):
                raise self.guest_type_error("'in' requires an object")
            self.counters.charge(CATEGORY_RUNTIME_OTHER, cost.PROPERTY_LOOKUP_BASE)
            name = to_property_key(left)
            if isinstance(right, JSArray) and name.isdigit():
                return 0 <= int(name) < len(right.array_elements)
            return self.runtime.lookup_property(right, name).kind != "absent"
        if op == BinOp.INSTANCEOF:
            if not isinstance(right, JSFunction):
                raise self.guest_type_error("Right-hand side of 'instanceof' is not callable")
            if not isinstance(left, JSObject):
                return False
            prototype = right.get_own("prototype")[1]
            current = left.hidden_class.prototype
            while current is not None:
                if current is prototype:
                    return True
                current = current.hidden_class.prototype
            return False
        raise JSLRuntimeError(f"unknown binary operator {op}")  # pragma: no cover

    @staticmethod
    def _compare(op: int, left: object, right: object) -> bool:
        if isinstance(left, str) and isinstance(right, str):
            if op == BinOp.LT:
                return left < right
            if op == BinOp.GT:
                return left > right
            if op == BinOp.LE:
                return left <= right
            return left >= right
        a = to_number(left)
        b = to_number(right)
        if a != a or b != b:  # NaN comparisons are always false
            return False
        if op == BinOp.LT:
            return a < b
        if op == BinOp.GT:
            return a > b
        if op == BinOp.LE:
            return a <= b
        return a >= b

    def _unary(self, op: int, operand: object) -> object:
        if op == UnOp.NEG:
            return -to_number(operand)
        if op == UnOp.PLUS:
            return to_number(operand)
        if op == UnOp.NOT:
            return not to_boolean(operand)
        if op == UnOp.BIT_NOT:
            return float(~to_int32(operand))
        raise JSLRuntimeError(f"unknown unary operator {op}")  # pragma: no cover
