"""The jsl bytecode virtual machine.

A straightforward stack VM.  The dispatch loop is one long method — the
idiomatic shape for an interpreter inner loop, where a per-opcode function
call would dominate runtime.  All object access sites route through
:class:`~repro.ic.miss.ICRuntime`, which implements the inline-cache fast
path and the runtime miss path.

Guest instruction accounting: each dispatched bytecode charges
``cost_model.DISPATCH`` (batched per frame for speed); everything heavier
(allocation, natives, IC misses) is charged where it happens.
"""

from __future__ import annotations

import time
import typing

from repro.bytecode.code import CodeObject
from repro.bytecode.opcodes import BinOp, Op, UnOp
from repro.ic.icvector import FeedbackState
from repro.ic.miss import ICRuntime
from repro.interpreter import cost_model as cost
from repro.interpreter.frames import Environment, ForInIterator, Frame, GuestThrow
from repro.lang.errors import JSLRuntimeError, JSLTypeError
from repro.runtime.context import Runtime
from repro.runtime.objects import JSArray, JSFunction, JSObject
from repro.runtime.values import (
    NULL,
    UNDEFINED,
    loose_equals,
    strict_equals,
    to_boolean,
    to_number,
    to_property_key,
    to_string,
    to_int32,
    to_uint32,
    type_of,
)
from repro.stats.counters import (
    CATEGORY_EXECUTE,
    CATEGORY_RUNTIME_OTHER,
    Counters,
)

#: Python recursion ceiling for guest calls (guest recursion maps onto host
#: recursion; deep guest recursion raises a guest RangeError).
MAX_CALL_DEPTH = 900

# Each guest call consumes several host frames; make sure the guest hits its
# own MAX_CALL_DEPTH RangeError before Python's recursion limit.
import sys as _sys

if _sys.getrecursionlimit() < 20_000:
    _sys.setrecursionlimit(20_000)


class VM:
    """Executes compiled jsl code against a :class:`Runtime`."""

    def __init__(
        self,
        runtime: Runtime,
        counters: Counters,
        ic_runtime: ICRuntime,
        feedback: FeedbackState,
        time_source: typing.Callable[[], float] | None = None,
    ):
        self.runtime = runtime
        self.counters = counters
        self.ic = ic_runtime
        self.feedback = feedback
        self._call_depth = 0
        self._time_source = time_source or time.time

    # -- public entry points ---------------------------------------------------

    def run_code(self, code: CodeObject) -> object:
        """Execute a script's top-level code object.

        Uncaught guest exceptions surface as :class:`JSLRuntimeError` with
        the thrown value's string form.
        """
        env = Environment(code.num_locals, parent=None)
        frame = Frame(
            code, env, UNDEFINED, self.feedback.vector_for(code).sites
        )
        try:
            return self._execute(frame)
        except GuestThrow as thrown:
            trace = "".join(f"\n  {entry}" for entry in thrown.trace)
            error = JSLRuntimeError(
                f"uncaught guest exception: {self._throw_summary(thrown.value)}{trace}"
            )
            error.position = thrown.position
            raise error from thrown

    def call_value(self, callee: object, this_value: object, args: list) -> object:
        """Call an arbitrary guest value (native or interpreted)."""
        if not isinstance(callee, JSFunction):
            raise self.guest_type_error(f"{to_string(callee)} is not a function")
        if callee.native is not None:
            self.counters.charge(CATEGORY_RUNTIME_OTHER, cost.NATIVE_CALL_BASE)
            return callee.native(self, this_value, args)
        return self.call_function(callee, this_value, args)

    def call_function(self, fn: JSFunction, this_value: object, args: list) -> object:
        """Call an interpreted guest function."""
        code = fn.code
        assert code is not None
        self.counters.charge(CATEGORY_EXECUTE, cost.CALL_SETUP)
        if self._call_depth >= MAX_CALL_DEPTH:
            raise GuestThrow("RangeError: maximum call stack size exceeded")
        env = Environment(code.num_locals, parent=fn.env)  # type: ignore[arg-type]
        self.runtime.heap.charge("environment", 32 + 8 * code.num_locals)
        for index in range(len(code.params)):
            env.slots[index] = args[index] if index < len(args) else UNDEFINED
        frame = Frame(code, env, this_value, self.feedback.vector_for(code).sites)
        self._call_depth += 1
        try:
            return self._execute(frame)
        finally:
            self._call_depth -= 1

    def construct(self, ctor: object, args: list) -> object:
        """``new ctor(...)`` (paper Figure 2's object-construction path)."""
        if not isinstance(ctor, JSFunction):
            raise self.guest_type_error(f"{to_string(ctor)} is not a constructor")
        self.counters.charge(CATEGORY_RUNTIME_OTHER, cost.ALLOCATE_OBJECT)
        hc = self.runtime.constructor_hidden_class(ctor)
        instance = self.runtime.new_object(hc)
        if ctor.native is not None:
            self.counters.charge(CATEGORY_RUNTIME_OTHER, cost.NATIVE_CALL_BASE)
            result = ctor.native(self, instance, args)
        else:
            result = self.call_function(ctor, instance, args)
        return result if isinstance(result, JSObject) else instance

    # -- helpers for natives -----------------------------------------------------

    def charge_native(self, elements: int = 0) -> None:
        """Accounting hook for native builtins."""
        self.counters.charge(
            CATEGORY_RUNTIME_OTHER,
            cost.NATIVE_CALL_BASE + cost.NATIVE_PER_ELEMENT * elements,
        )

    def get_property_slow(self, obj: JSObject, name: str) -> object:
        """Uncached property read for natives (no IC site involved)."""
        lookup = self.runtime.lookup_property(obj, name)
        self.counters.charge(
            CATEGORY_RUNTIME_OTHER,
            cost.PROPERTY_LOOKUP_BASE + cost.PROPERTY_LOOKUP_PER_HOP * lookup.hops,
        )
        return lookup.value

    def set_property_native(
        self, obj: JSObject, name: str, value: object, site_key: str
    ) -> None:
        """Uncached property write for natives; transitions use the stable
        ``site_key`` so RIC can link hidden classes created by builtins."""
        _, created = self.runtime.define_own_property(obj, name, value, site_key)
        self.counters.charge(CATEGORY_RUNTIME_OTHER, cost.PROPERTY_LOOKUP_BASE)
        if created:
            self.counters.charge(CATEGORY_RUNTIME_OTHER, cost.HIDDEN_CLASS_CREATE)

    def runtime_time_ms(self) -> float:
        return float(self._time_source() * 1000.0)

    @staticmethod
    def _throw_summary(value: object) -> str:
        """Readable form of a thrown value (Error objects show name: message)."""
        if isinstance(value, JSObject) and not isinstance(value, (JSArray, JSFunction)):
            found_name, name = value.get_own("name")
            found_message, message = value.get_own("message")
            if found_name or found_message:
                name_text = to_string(name) if found_name else "Error"
                message_text = to_string(message) if found_message else ""
                return f"{name_text}: {message_text}" if message_text else name_text
        return to_string(value)

    def guest_type_error(self, message: str) -> GuestThrow:
        return GuestThrow(self._make_guest_error("TypeError", message))

    def _make_guest_error(self, name: str, message: str) -> JSObject:
        error = self.runtime.new_object()
        # Use the error prototype chain so guest `e.toString()` works.
        error.hidden_class = self.runtime.hidden_classes.create_root(
            "builtin", f"builtin:thrown:{name}", prototype=self.runtime.error_prototype
        )
        self.runtime.define_own_property(error, "name", name, "native:error:name")
        self.runtime.define_own_property(
            error, "message", message, "native:error:message"
        )
        return error

    # -- property access with primitives ----------------------------------------

    def get_property(self, obj: object, name: str, site) -> object:
        """GET_PROP: primitives take uncached fast paths; objects go through
        the IC."""
        if isinstance(obj, JSObject):
            return self.ic.named_load(site, obj, name)
        if isinstance(obj, str):
            if name == "length":
                return float(len(obj))
            method = self.runtime.string_methods.get(name)
            if method is not None:
                return method
            return UNDEFINED
        if isinstance(obj, bool) or isinstance(obj, float):
            method = self.runtime.number_methods.get(name)
            if method is not None:
                return method
            return UNDEFINED
        raise self.guest_type_error(
            f"Cannot read properties of {to_string(obj)} (reading '{name}')"
        )

    def set_property(self, obj: object, name: str, value: object, site) -> None:
        if isinstance(obj, JSObject):
            self.ic.named_store(site, obj, name, value)
            return
        if obj is UNDEFINED or obj is NULL:
            raise self.guest_type_error(
                f"Cannot set properties of {to_string(obj)} (setting '{name}')"
            )
        # Writes to primitives are silently dropped (non-strict JS).

    # -- the dispatch loop -------------------------------------------------------

    def _execute(self, frame: Frame) -> object:
        code = frame.code
        instructions = code.instructions
        constants = code.constants
        names = code.names
        stack = frame.stack
        env = frame.env
        sites = frame.sites
        runtime = self.runtime
        counters = self.counters
        ic = self.ic

        pc = 0
        dispatched = 0  # batched DISPATCH charges

        try:
            while True:
                op, a, b = instructions[pc]
                pc += 1
                dispatched += 1
                try:
                    if op == Op.LOAD_CONST:
                        stack.append(constants[a])
                    elif op == Op.LOAD_LOCAL:
                        stack.append(env.slots[a])
                    elif op == Op.STORE_LOCAL:
                        env.slots[a] = stack.pop()
                    elif op == Op.GET_PROP:
                        obj = stack.pop()
                        stack.append(self.get_property(obj, names[a], sites[b]))
                    elif op == Op.SET_PROP:
                        value = stack.pop()
                        obj = stack.pop()
                        self.set_property(obj, names[a], value, sites[b])
                        stack.append(value)
                    elif op == Op.OBJ_LIT_PROP:
                        value = stack.pop()
                        obj = stack[-1]
                        self.set_property(obj, names[a], value, sites[b])
                    elif op == Op.LOAD_GLOBAL:
                        stack.append(ic.global_load(sites[b], names[a]))
                    elif op == Op.LOAD_GLOBAL_SOFT:
                        stack.append(ic.global_load(sites[b], names[a], soft=True))
                    elif op == Op.STORE_GLOBAL:
                        value = stack[-1]
                        ic.global_store(sites[b], names[a], value)
                    elif op == Op.DECLARE_GLOBAL:
                        ic.declare_global(sites[b], names[a])
                    elif op == Op.GET_INDEX:
                        key = stack.pop()
                        obj = stack.pop()
                        stack.append(self._keyed_get(obj, key, sites[a]))
                    elif op == Op.SET_INDEX:
                        value = stack.pop()
                        key = stack.pop()
                        obj = stack.pop()
                        self._keyed_set(obj, key, value, sites[a])
                        stack.append(value)
                    elif op == Op.LOAD_UNDEFINED:
                        stack.append(UNDEFINED)
                    elif op == Op.LOAD_NULL:
                        stack.append(NULL)
                    elif op == Op.LOAD_TRUE:
                        stack.append(True)
                    elif op == Op.LOAD_FALSE:
                        stack.append(False)
                    elif op == Op.LOAD_THIS:
                        stack.append(frame.this_value)
                    elif op == Op.LOAD_ENV:
                        stack.append(env.ancestor(a).slots[b])
                    elif op == Op.STORE_ENV:
                        env.ancestor(a).slots[b] = stack.pop()
                    elif op == Op.BINARY:
                        right = stack.pop()
                        left = stack.pop()
                        stack.append(self._binary(a, left, right))
                    elif op == Op.UNARY:
                        stack.append(self._unary(a, stack.pop()))
                    elif op == Op.TYPEOF:
                        stack.append(type_of(stack.pop()))
                    elif op == Op.JUMP:
                        pc = a
                    elif op == Op.JUMP_IF_FALSE:
                        if not to_boolean(stack.pop()):
                            pc = a
                    elif op == Op.JUMP_IF_TRUE:
                        if to_boolean(stack.pop()):
                            pc = a
                    elif op == Op.JUMP_IF_FALSE_KEEP:
                        if not to_boolean(stack[-1]):
                            pc = a
                    elif op == Op.JUMP_IF_TRUE_KEEP:
                        if to_boolean(stack[-1]):
                            pc = a
                    elif op == Op.CALL:
                        args = stack[len(stack) - a :]
                        del stack[len(stack) - a :]
                        callee = stack.pop()
                        stack.append(self.call_value(callee, UNDEFINED, args))
                    elif op == Op.CALL_METHOD:
                        args = stack[len(stack) - a :]
                        del stack[len(stack) - a :]
                        callee = stack.pop()
                        receiver = stack.pop()
                        stack.append(self.call_value(callee, receiver, args))
                    elif op == Op.NEW:
                        args = stack[len(stack) - a :]
                        del stack[len(stack) - a :]
                        ctor = stack.pop()
                        stack.append(self.construct(ctor, args))
                    elif op == Op.RETURN:
                        return stack.pop()
                    elif op == Op.MAKE_FUNCTION:
                        counters.charge(CATEGORY_RUNTIME_OTHER, cost.ALLOCATE_FUNCTION)
                        fn_code = constants[a]
                        assert isinstance(fn_code, CodeObject)
                        stack.append(runtime.new_function(fn_code, env))
                    elif op == Op.MAKE_OBJECT:
                        counters.charge(CATEGORY_RUNTIME_OTHER, cost.ALLOCATE_OBJECT)
                        stack.append(runtime.new_object())
                    elif op == Op.MAKE_ARRAY:
                        counters.charge(
                            CATEGORY_RUNTIME_OTHER,
                            cost.ALLOCATE_ARRAY + cost.NATIVE_PER_ELEMENT * a,
                        )
                        elements = stack[len(stack) - a :]
                        del stack[len(stack) - a :]
                        stack.append(runtime.new_array(elements))
                    elif op == Op.POP:
                        stack.pop()
                    elif op == Op.DUP:
                        stack.append(stack[-1])
                    elif op == Op.DUP2:
                        stack.extend(stack[-2:])
                    elif op == Op.SWAP:
                        stack[-1], stack[-2] = stack[-2], stack[-1]
                    elif op == Op.DELETE_PROP:
                        obj = stack.pop()
                        counters.charge(CATEGORY_RUNTIME_OTHER, cost.DICT_ACCESS)
                        if isinstance(obj, JSObject):
                            stack.append(runtime.delete_property(obj, names[a]))
                        else:
                            stack.append(True)
                    elif op == Op.DELETE_INDEX:
                        key = stack.pop()
                        obj = stack.pop()
                        counters.charge(CATEGORY_RUNTIME_OTHER, cost.DICT_ACCESS)
                        if isinstance(obj, JSObject):
                            stack.append(
                                runtime.delete_property(obj, to_property_key(key))
                            )
                        else:
                            stack.append(True)
                    elif op == Op.THROW:
                        raise GuestThrow(stack.pop())
                    elif op == Op.SETUP_TRY:
                        frame.try_stack.append((a, len(stack)))
                    elif op == Op.POP_TRY:
                        frame.try_stack.pop()
                    elif op == Op.FOR_IN_PREP:
                        obj = stack.pop()
                        if isinstance(obj, JSObject):
                            keys = obj.own_property_names()
                            counters.charge(
                                CATEGORY_RUNTIME_OTHER,
                                cost.DICT_ACCESS + cost.NATIVE_PER_ELEMENT * len(keys),
                            )
                            stack.append(ForInIterator(keys))
                        else:
                            stack.append(ForInIterator([]))
                    elif op == Op.FOR_IN_NEXT:
                        iterator = stack[-1]
                        assert isinstance(iterator, ForInIterator)
                        key = iterator.next_key()
                        if key is None:
                            pc = a
                        else:
                            stack.append(key)
                    else:  # pragma: no cover - all opcodes are handled
                        raise JSLRuntimeError(f"unknown opcode {op}")
                except GuestThrow as thrown:
                    if not frame.try_stack:
                        if thrown.position is None:
                            thrown.position = code.position_at(pc - 1)
                        thrown.trace.append(
                            f"at {code.name} ({code.position_at(pc - 1)})"
                        )
                        raise
                    target, depth = frame.try_stack.pop()
                    del stack[depth:]
                    stack.append(thrown.value)
                    pc = target
                except JSLRuntimeError as error:
                    # Engine-level errors become catchable guest Error objects
                    # named like their JS counterparts (JSLTypeError ->
                    # TypeError).
                    if not frame.try_stack:
                        if error.position is None:
                            error.position = code.position_at(pc - 1)
                        if not hasattr(error, "guest_trace"):
                            error.guest_trace = []  # type: ignore[attr-defined]
                        error.guest_trace.append(  # type: ignore[attr-defined]
                            f"at {code.name} ({code.position_at(pc - 1)})"
                        )
                        raise
                    target, depth = frame.try_stack.pop()
                    del stack[depth:]
                    name = type(error).__name__
                    if name.startswith("JSL"):
                        name = name[3:]
                    if name == "RuntimeError":
                        name = "Error"
                    stack.append(self._make_guest_error(name, error.message))
                    pc = target
        finally:
            counters.charge(CATEGORY_EXECUTE, cost.DISPATCH * dispatched)

    # -- keyed access helpers ---------------------------------------------------

    def _keyed_get(self, obj: object, key: object, site) -> object:
        if isinstance(obj, JSObject):
            return self.ic.keyed_load(site, obj, key)
        if isinstance(obj, str):
            if isinstance(key, float) and key == int(key) and 0 <= int(key) < len(obj):
                return obj[int(key)]
            return self.get_property(obj, to_property_key(key), site)
        raise self.guest_type_error(
            f"Cannot read properties of {to_string(obj)} (reading '{to_string(key)}')"
        )

    def _keyed_set(self, obj: object, key: object, value: object, site) -> None:
        if isinstance(obj, JSObject):
            self.ic.keyed_store(site, obj, key, value)
            return
        if obj is UNDEFINED or obj is NULL:
            raise self.guest_type_error(
                f"Cannot set properties of {to_string(obj)}"
            )
        # Primitive writes silently dropped.

    # -- operators ------------------------------------------------------------------

    def _binary(self, op: int, left: object, right: object) -> object:
        if op == BinOp.ADD:
            if isinstance(left, str) or isinstance(right, str):
                return to_string(left) + to_string(right)
            if isinstance(left, JSObject) or isinstance(right, JSObject):
                return to_string(left) + to_string(right)
            return to_number(left) + to_number(right)
        if op == BinOp.SUB:
            return to_number(left) - to_number(right)
        if op == BinOp.MUL:
            return to_number(left) * to_number(right)
        if op == BinOp.DIV:
            divisor = to_number(right)
            dividend = to_number(left)
            if divisor == 0.0:
                if dividend == 0.0 or dividend != dividend:
                    return float("nan")
                return float("inf") if dividend > 0 else float("-inf")
            return dividend / divisor
        if op == BinOp.MOD:
            divisor = to_number(right)
            dividend = to_number(left)
            if divisor == 0.0 or dividend != dividend or divisor != divisor:
                return float("nan")
            return float(
                dividend - divisor * int(dividend / divisor)
            )  # JS truncating remainder
        if op == BinOp.EQ:
            return loose_equals(left, right)
        if op == BinOp.NEQ:
            return not loose_equals(left, right)
        if op == BinOp.STRICT_EQ:
            return strict_equals(left, right)
        if op == BinOp.STRICT_NEQ:
            return not strict_equals(left, right)
        if op in (BinOp.LT, BinOp.GT, BinOp.LE, BinOp.GE):
            return self._compare(op, left, right)
        if op == BinOp.BIT_AND:
            return float(to_int32(left) & to_int32(right))
        if op == BinOp.BIT_OR:
            return float(to_int32(left) | to_int32(right))
        if op == BinOp.BIT_XOR:
            return float(to_int32(left) ^ to_int32(right))
        if op == BinOp.SHL:
            shifted = (to_int32(left) << (to_uint32(right) & 31)) & 0xFFFFFFFF
            if shifted >= 0x80000000:
                shifted -= 0x100000000
            return float(shifted)
        if op == BinOp.SHR:
            return float(to_int32(left) >> (to_uint32(right) & 31))
        if op == BinOp.USHR:
            return float(to_uint32(left) >> (to_uint32(right) & 31))
        if op == BinOp.IN:
            if not isinstance(right, JSObject):
                raise self.guest_type_error("'in' requires an object")
            self.counters.charge(CATEGORY_RUNTIME_OTHER, cost.PROPERTY_LOOKUP_BASE)
            name = to_property_key(left)
            if isinstance(right, JSArray) and name.isdigit():
                return 0 <= int(name) < len(right.array_elements)
            return self.runtime.lookup_property(right, name).kind != "absent"
        if op == BinOp.INSTANCEOF:
            if not isinstance(right, JSFunction):
                raise self.guest_type_error("Right-hand side of 'instanceof' is not callable")
            if not isinstance(left, JSObject):
                return False
            prototype = right.get_own("prototype")[1]
            current = left.hidden_class.prototype
            while current is not None:
                if current is prototype:
                    return True
                current = current.hidden_class.prototype
            return False
        raise JSLRuntimeError(f"unknown binary operator {op}")  # pragma: no cover

    @staticmethod
    def _compare(op: int, left: object, right: object) -> bool:
        if isinstance(left, str) and isinstance(right, str):
            if op == BinOp.LT:
                return left < right
            if op == BinOp.GT:
                return left > right
            if op == BinOp.LE:
                return left <= right
            return left >= right
        a = to_number(left)
        b = to_number(right)
        if a != a or b != b:  # NaN comparisons are always false
            return False
        if op == BinOp.LT:
            return a < b
        if op == BinOp.GT:
            return a > b
        if op == BinOp.LE:
            return a <= b
        return a >= b

    def _unary(self, op: int, operand: object) -> object:
        if op == UnOp.NEG:
            return -to_number(operand)
        if op == UnOp.PLUS:
            return to_number(operand)
        if op == UnOp.NOT:
            return not to_boolean(operand)
        if op == UnOp.BIT_NOT:
            return float(~to_int32(operand))
        raise JSLRuntimeError(f"unknown unary operator {op}")  # pragma: no cover
