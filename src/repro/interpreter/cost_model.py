"""Guest-instruction cost model.

The paper measures *dynamic instruction counts* with Pin on x86 (Figures 5
and 8).  Our substrate is a Python bytecode interpreter, so we substitute a
deterministic cost model: every VM action is charged a documented number of
"guest instructions" approximating what a native engine would execute.  The
absolute scale is arbitrary; what the experiments reproduce is the *shape* —
the fraction of work spent in IC miss handling and the relative reduction
RIC achieves — which depends only on the ratios below being realistic:
IC miss handling (runtime entry + layout lookup + handler generation +
ICVector update + hidden-class creation) costs two orders of magnitude more
than a bytecode dispatch or an IC hit, as it does in V8.
"""

from __future__ import annotations

#: Cost of dispatching and executing one ordinary bytecode.
DISPATCH = 4

#: Extra cost of an IC probe at an object access site (map load + compare).
IC_PROBE = 3

#: Executing a matched handler (the IC hit fast path).
HANDLER_EXECUTE = 6

#: Saving state and entering the runtime on an IC miss.
RUNTIME_ENTRY = 60

#: Base cost of a runtime property lookup...
PROPERTY_LOOKUP_BASE = 30
#: ...plus per own-layout entry scanned...
PROPERTY_LOOKUP_PER_PROPERTY = 4
#: ...plus per prototype hop walked.
PROPERTY_LOOKUP_PER_HOP = 25

#: Generating a specialised handler routine.
HANDLER_GENERATE = 90

#: Appending/updating an ICVector slot.
IC_UPDATE = 25

#: Creating a hidden class (allocate, copy layout, link transition).
HIDDEN_CLASS_CREATE = 110

#: Dictionary-mode (uncacheable) property access via the runtime.
DICT_ACCESS = 45

#: Cost of a native builtin call (beyond its per-element work).
NATIVE_CALL_BASE = 30
#: Per-element cost inside native builtins (push, join, ...).
NATIVE_PER_ELEMENT = 6

#: Allocating a guest object / array / function.
ALLOCATE_OBJECT = 40
ALLOCATE_ARRAY = 45
ALLOCATE_FUNCTION = 70

#: Guest function call / return sequence (frame setup, arg shuffling).
CALL_SETUP = 25

#: RIC reuse-run bookkeeping (paper §7.3: "negligible").
RIC_TOAST_LOOKUP = 12
RIC_VALIDATE = 10
RIC_PRELOAD_SLOT = 14

#: Fused superinstructions (bytecode/optimizer.py).  A fused instruction
#: charges exactly one DISPATCH through the VM's batched loop — no bespoke
#: cost constant — so its modeled win is the (width - 1) dispatches the
#: eliminated window instructions would have charged.  The widths below
#: document that accounting; tests/test_optimizer.py holds fused and
#: unfused twins to identical output while the dispatch counters differ
#: by exactly these eliminated instructions.
FUSED_INC_LOCAL_CONST_WIDTH = 6  # LOAD_LOCAL;LOAD_CONST;ADD;DUP;STORE_LOCAL;POP
FUSED_CMP_JUMP_WIDTH = 2  # BINARY <cmp>;JUMP_IF_FALSE/TRUE

#: Type-specialized (quickened) opcodes — repro/specialize/.  The typed
#: arithmetic/compare variants (ADD_INT, ADD_NUM, CMP_*_JUMP_*) are
#: width-neutral: their inline type guard rides inside the one DISPATCH
#: every bytecode already charges, so their modeled cost equals the
#: generic opcode's and their win is host-level (no operator dispatch
#: chain).  The specialized property opcodes are *cheaper* than the IC
#: hit they replace: a generic monomorphic GET_PROP/SET_PROP fast-path
#: hit pays IC_PROBE + HANDLER_EXECUTE (9) on top of its dispatch, while
#: GET_PROP_SLOT/SET_PROP_SLOT pay SPECIALIZED_PROP (one hidden-class
#: identity compare plus a direct slot access) — the quickening win the
#: bench's modeled-cost gate measures.
SPECIALIZED_PROP = 2

#: In-place demotion of a typed opcode after a guard failure: patch the
#: instruction (and the VM's threaded dispatch entry) back to the generic
#: form.  Charged to the "ric" category — deoptimization is specialization
#: machinery, not guest work — once per demoted site.
DEOPT_PATCH = 40

#: Cycles-per-instruction by instruction category, for the modeled
#: execution time (Figure 9).  The paper observes that the time reduction
#: slightly exceeds the instruction reduction "because the instructions
#: eliminated involve cache misses" — IC miss handling walks cold layout
#: tables and allocates, so it carries a higher CPI than straight-line
#: bytecode execution.
CPI = {
    "execute": 1.0,
    "ic_miss": 1.5,
    "runtime_other": 1.15,
    "ric": 1.2,
}

#: Modeled clock for converting cycles to milliseconds.
CLOCK_GHZ = 2.0


def modeled_time_ms(instructions_by_category: dict) -> float:
    """Convert a per-category instruction breakdown to modeled milliseconds."""
    cycles = sum(
        count * CPI.get(category, 1.0)
        for category, count in instructions_by_category.items()
    )
    return cycles / (CLOCK_GHZ * 1e6)
