"""Call frames, environments and guest exceptions."""

from __future__ import annotations

import typing

from repro.bytecode.code import CodeObject
from repro.runtime.values import UNDEFINED

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.ic.icvector import ICSite


class Environment:
    """Heap-allocated variable storage for one function activation.

    Environments outlive frames so closures can capture them; the chain of
    ``parent`` links mirrors lexical nesting, matched at compile time by
    the ``(depth, index)`` operands of LOAD_ENV/STORE_ENV.
    """

    __slots__ = ("slots", "parent")

    def __init__(self, size: int, parent: "Environment | None"):
        self.slots: list[object] = [UNDEFINED] * size
        self.parent = parent

    def ancestor(self, depth: int) -> "Environment":
        env: Environment = self
        for _ in range(depth):
            assert env.parent is not None, "compiler emitted bad env depth"
            env = env.parent
        return env


class GuestThrow(Exception):
    """A guest-level exception in flight (from ``throw`` or runtime errors
    converted to guest error objects).

    ``trace`` accumulates one "at <function> (<file:line:col>)" entry per
    frame the exception unwinds through — a guest stack trace."""

    def __init__(self, value: object):
        super().__init__(repr(value))
        self.value = value
        self.trace: list[str] = []
        #: Source position of the innermost unwound frame.
        self.position = None


class ForInIterator:
    """Host-side iterator for ``for (k in obj)``; lives only on the VM
    operand stack."""

    __slots__ = ("keys", "index")

    def __init__(self, keys: list[str]):
        self.keys = keys
        self.index = 0

    def next_key(self) -> str | None:
        if self.index >= len(self.keys):
            return None
        key = self.keys[self.index]
        self.index += 1
        return key


class Frame:
    """One activation of a code object.

    Beyond the activation state proper, a frame caches direct references to
    the pools the dispatch handlers touch on every instruction — the
    constant pool, the name pool and the environment's local-slot list —
    so the hot path pays one attribute load (``frame.slots``) instead of a
    chain (``frame.env.slots`` / ``frame.code.constants``).
    """

    __slots__ = (
        "code",
        "env",
        "this_value",
        "stack",
        "pc",
        "try_stack",
        "sites",
        "arith",
        "consts",
        "names",
        "slots",
        "return_value",
    )

    def __init__(
        self,
        code: CodeObject,
        env: Environment,
        this_value: object,
        sites: "list[ICSite]",
        arith: "list[int]",
    ):
        self.code = code
        self.env = env
        self.this_value = this_value
        self.stack: list[object] = []
        self.pc = 0
        #: (handler pc, stack depth) pairs for active try regions.
        self.try_stack: list[tuple[int, int]] = []
        self.sites = sites
        #: The ICVector's per-pc operand-type masks (type-feedback
        #: recorder; cached here like ``sites`` so the arithmetic hot
        #: path pays one attribute load).
        self.arith = arith
        #: Cached pool references (see class docstring).
        self.consts = code.constants
        self.names = code.names
        self.slots = env.slots
        #: Set by the RETURN handler just before the dispatch loop exits.
        self.return_value: object = None
