'''Typedarith workload: type-stable arithmetic + monomorphic field traffic.

Built for the bytecode specialization subsystem (``repro.specialize``):
every arithmetic site in the hot loops is type-stable — integer counters
and accumulators in one family of functions, float math in another — and
every property site is persistently monomorphic, so a run's extracted
``site_feedback`` quickens essentially all of its hot code.  The reuse
run then executes ADD_INT/MUL_NUM/CMP_INT_JUMP_IF_* instead of generic
dispatch, and GET_PROP_SLOT/SET_PROP_SLOT instead of IC probes, with
zero deopts (nothing here ever changes type or shape after warmup).

The contrast workload is ``polyshapes`` (shape-polymorphic, nothing to
specialize); together they bracket the specializer: this one shows the
full win, that one shows it costs nothing when it cannot apply.
'''

NAME = "typedarith"
DESCRIPTION = (
    "type-stable int/float arithmetic and monomorphic field traffic; "
    "fully quickenable, zero-deopt"
)

_VEC = """
function Vec(x, y) { this.x = x; this.y = y; }
function vadd(a, b) { return new Vec(a.x + b.x, a.y + b.y); }
function vscale(v, k) { return new Vec(v.x * k, v.y * k); }
function vdot(a, b) { return a.x * b.x + a.y * b.y; }
"""

_INT_KERNELS = """
function sumTo(n) {
  var total = 0;
  for (var i = 0; i < n; i = i + 1) { total = total + i; }
  return total;
}
function fib(n) {
  var a = 0;
  var b = 1;
  for (var i = 0; i < n; i = i + 1) {
    var t = a + b;
    a = b;
    b = t;
  }
  return a;
}
function countLowerHalf(n) {
  var count = 0;
  for (var i = 0; i < n; i = i + 1) {
    if (i * 2 < n) { count = count + 1; }
  }
  return count;
}
"""

_FLOAT_KERNELS = """
function geomSeries(ratio, terms) {
  var total = 0.0;
  var term = 1.5;
  for (var i = 0; i < terms; i = i + 1) {
    total = total + term;
    term = term * ratio;
  }
  return total;
}
function damped(steps) {
  var v = 100.5;
  var sum = 0.5;
  for (var i = 0; i < steps; i = i + 1) {
    v = v * 0.75;
    sum = sum + v;
  }
  return sum;
}
"""

_DRIVER = """
var ints = 0;
for (var round = 0; round < 20; round = round + 1) {
  ints = ints + sumTo(60) + fib(40) - countLowerHalf(50);
}

var floats = 0.5;
for (var round = 0; round < 20; round = round + 1) {
  floats = floats + geomSeries(0.5, 30) + damped(25);
}

var acc = new Vec(0, 0);
var unit = new Vec(3, 4);
var dots = 0;
for (var round = 0; round < 120; round = round + 1) {
  acc = vadd(acc, unit);
  acc = vscale(acc, 1);
  dots = dots + vdot(acc, unit);
  acc.x = acc.x - 1;
  acc.y = acc.y - 2;
}

console.log("ints:" + ints);
console.log("floats:" + floats);
console.log("vec:" + acc.x + "," + acc.y + " dots:" + dots);
"""

SOURCE = _VEC + _INT_KERNELS + _FLOAT_KERNELS + _DRIVER
