'''Underscore-like workload: a functional utility belt.

Initialization pattern mimicked: one export object (``_``) receiving ~50
function properties — a long chain of transitioning stores on a single
object — followed by a light self-check.  The paper's Underscore row has
the *lowest* fraction of context-independent handlers (38.1%): most of its
IC activity is the transition chain itself, which RIC cannot reuse.
'''

NAME = "underscorelike"
DESCRIPTION = "Functional utility library: one export object, many function properties"

SOURCE = r"""
// underscore-like utility belt initialization (IIFE module pattern)
var _ = (function () {
var _ = {};

_.identity = function (v) { return v; };
_.constant = function (v) { return function () { return v; }; };
_.noop = function () {};

_.each = function (list, fn) {
  if (list instanceof Array) {
    for (var i = 0; i < list.length; i++) { fn(list[i], i, list); }
  } else {
    for (var k in list) { fn(list[k], k, list); }
  }
  return list;
};

_.map = function (list, fn) {
  var out = [];
  _.each(list, function (v, k) { out.push(fn(v, k, list)); });
  return out;
};

_.filter = function (list, pred) {
  var out = [];
  _.each(list, function (v, k) { if (pred(v, k, list)) { out.push(v); } });
  return out;
};

_.reject = function (list, pred) {
  return _.filter(list, function (v, k) { return !pred(v, k, list); });
};

_.reduce = function (list, fn, memo) {
  _.each(list, function (v, k) { memo = fn(memo, v, k, list); });
  return memo;
};

_.find = function (list, pred) {
  var result;
  var found = false;
  _.each(list, function (v, k) {
    if (!found && pred(v, k, list)) { result = v; found = true; }
  });
  return result;
};

_.every = function (list, pred) {
  var ok = true;
  _.each(list, function (v, k) { if (!pred(v, k, list)) { ok = false; } });
  return ok;
};

_.some = function (list, pred) {
  var any = false;
  _.each(list, function (v, k) { if (pred(v, k, list)) { any = true; } });
  return any;
};

_.contains = function (list, item) {
  return _.some(list, function (v) { return v === item; });
};

_.pluck = function (list, key) {
  return _.map(list, function (v) { return v[key]; });
};

_.max = function (list) {
  return _.reduce(list, function (m, v) { return v > m ? v : m; }, -Infinity);
};

_.min = function (list) {
  return _.reduce(list, function (m, v) { return v < m ? v : m; }, Infinity);
};

_.size = function (list) {
  if (list instanceof Array) { return list.length; }
  var n = 0;
  for (var k in list) { n++; }
  return n;
};

_.first = function (list) { return list[0]; };
_.last = function (list) { return list[list.length - 1]; };
_.rest = function (list) { return list.slice(1); };
_.initial = function (list) { return list.slice(0, list.length - 1); };

_.compact = function (list) {
  return _.filter(list, function (v) { return !!v; });
};

_.flatten = function (list) {
  var out = [];
  _.each(list, function (v) {
    if (v instanceof Array) {
      _.each(_.flatten(v), function (x) { out.push(x); });
    } else {
      out.push(v);
    }
  });
  return out;
};

_.uniq = function (list) {
  var out = [];
  _.each(list, function (v) { if (!_.contains(out, v)) { out.push(v); } });
  return out;
};

_.union = function (a, b) { return _.uniq(a.concat(b)); };

_.intersection = function (a, b) {
  return _.filter(_.uniq(a), function (v) { return _.contains(b, v); });
};

_.difference = function (a, b) {
  return _.filter(a, function (v) { return !_.contains(b, v); });
};

_.zip = function (a, b) {
  var out = [];
  for (var i = 0; i < a.length; i++) { out.push([a[i], b[i]]); }
  return out;
};

_.range = function (start, stop, step) {
  if (stop === undefined) { stop = start; start = 0; }
  if (step === undefined) { step = 1; }
  var out = [];
  for (var v = start; v < stop; v += step) { out.push(v); }
  return out;
};

_.keys = function (obj) {
  var out = [];
  for (var k in obj) { out.push(k); }
  return out;
};

_.values = function (obj) {
  var out = [];
  for (var k in obj) { out.push(obj[k]); }
  return out;
};

_.pairs = function (obj) {
  var out = [];
  for (var k in obj) { out.push([k, obj[k]]); }
  return out;
};

_.invert = function (obj) {
  var out = {};
  for (var k in obj) { out[obj[k]] = k; }
  return out;
};

_.extend = function (target, source) {
  for (var k in source) { target[k] = source[k]; }
  return target;
};

_.defaults = function (target, source) {
  for (var k in source) {
    if (target[k] === undefined) { target[k] = source[k]; }
  }
  return target;
};

_.pick = function (obj, keys) {
  var out = {};
  _.each(keys, function (k) { if (k in obj) { out[k] = obj[k]; } });
  return out;
};

_.omit = function (obj, keys) {
  var out = {};
  for (var k in obj) {
    if (!_.contains(keys, k)) { out[k] = obj[k]; }
  }
  return out;
};

_.has = function (obj, key) { return obj.hasOwnProperty(key); };

_.isArray = function (v) { return v instanceof Array; };
_.isFunction = function (v) { return typeof v === "function"; };
_.isString = function (v) { return typeof v === "string"; };
_.isNumber = function (v) { return typeof v === "number"; };
_.isUndefined = function (v) { return v === undefined; };
_.isNull = function (v) { return v === null; };
_.isObject = function (v) { return typeof v === "object" && v !== null; };
_.isEmpty = function (v) { return _.size(v) === 0; };

_.once = function (fn) {
  var called = false;
  var result;
  return function () {
    if (!called) { called = true; result = fn(); }
    return result;
  };
};

_.memoize = function (fn) {
  var cache = {};
  return function (key) {
    if (!(key in cache)) { cache[key] = fn(key); }
    return cache[key];
  };
};

_.compose = function (f, g) {
  return function (x) { return f(g(x)); };
};

_.partial = function (fn, a) {
  return function (b) { return fn(a, b); };
};

_.times = function (n, fn) {
  var out = [];
  for (var i = 0; i < n; i++) { out.push(fn(i)); }
  return out;
};

_.sortedIndex = function (list, value) {
  var low = 0;
  var high = list.length;
  while (low < high) {
    var mid = Math.floor((low + high) / 2);
    if (list[mid] < value) { low = mid + 1; } else { high = mid; }
  }
  return low;
};

_.groupBy = function (list, fn) {
  var out = {};
  _.each(list, function (v) {
    var key = fn(v);
    if (out[key] === undefined) { out[key] = []; }
    out[key].push(v);
  });
  return out;
};

_.countBy = function (list, fn) {
  var out = {};
  _.each(list, function (v) {
    var key = fn(v);
    if (out[key] === undefined) { out[key] = 0; }
    out[key] = out[key] + 1;
  });
  return out;
};

_.sortBy = function (list, fn) {
  var decorated = _.map(list, function (v) { return { value: v, rank: fn(v) }; });
  decorated.sort(function (a, b) { return a.rank < b.rank ? -1 : (a.rank > b.rank ? 1 : 0); });
  return _.map(decorated, function (d) { return d.value; });
};

_.indexBy = function (list, fn) {
  var out = {};
  _.each(list, function (v) { out[fn(v)] = v; });
  return out;
};

_.where = function (list, attrs) {
  return _.filter(list, function (v) {
    for (var k in attrs) {
      if (v[k] !== attrs[k]) { return false; }
    }
    return true;
  });
};

_.findWhere = function (list, attrs) {
  var matches = _.where(list, attrs);
  return matches.length > 0 ? matches[0] : undefined;
};

_.chunk = function (list, size) {
  var out = [];
  for (var i = 0; i < list.length; i += size) {
    out.push(list.slice(i, i + size));
  }
  return out;
};

_.tap = function (value, fn) { fn(value); return value; };

_.result = function (obj, key) {
  var v = obj[key];
  return _.isFunction(v) ? v.call(obj) : v;
};

_.clone = function (obj) {
  if (_.isArray(obj)) { return obj.slice(0); }
  if (!_.isObject(obj)) { return obj; }
  return _.extend({}, obj);
};

_.defaultsDeep = function (target, source) {
  for (var k in source) {
    if (target[k] === undefined) {
      target[k] = source[k];
    } else if (_.isObject(target[k]) && _.isObject(source[k]) && !_.isArray(target[k])) {
      _.defaultsDeep(target[k], source[k]);
    }
  }
  return target;
};

// ---- the chaining wrapper (underscore's _(list).map(...).value() idiom) ----
function Chain(value) { this._wrapped = value; }

Chain.prototype.value = function () { return this._wrapped; };

_.chain = function (value) { return new Chain(value); };

_.mixinChain = function (names) {
  _.each(names, function (name) {
    Chain.prototype[name] = function (a, b) {
      this._wrapped = _[name](this._wrapped, a, b);
      return this;
    };
  });
};

_.mixinChain(["map", "filter", "reject", "sortBy", "first", "last", "uniq",
              "flatten", "compact", "pluck", "max", "min", "size"]);

// ---- light self-check, as libraries run on load ------------------------
var sample = _.range(0, 6);
var doubled = _.map(sample, function (v) { return v * 2; });
var evens = _.filter(sample, function (v) { return v % 2 === 0; });
var total = _.reduce(sample, function (m, v) { return m + v; }, 0);
var grouped = _.groupBy(sample, function (v) { return v % 3; });
var stats = { max: _.max(sample), min: _.min(sample), size: _.size(sample) };
var merged = _.extend({ a: 1 }, { b: 2, c: 3 });
var inverted = _.invert({ x: "u", y: "v" });
var people = [
  { name: "carol", dept: "eng", level: 3 },
  { name: "alice", dept: "ops", level: 2 },
  { name: "bob", dept: "eng", level: 1 }
];
var byName = _.indexBy(people, function (p) { return p.name; });
var engineers = _.where(people, { dept: "eng" });
var ranked = _.sortBy(people, function (p) { return p.level; });
var chained = _.chain(_.range(0, 9))
  .map(function (v) { return v * 3; })
  .filter(function (v) { return v % 2 === 0; })
  .value();
var cloned = _.clone({ a: 1 });
cloned.a = 2;
var deep = _.defaultsDeep({ ui: { theme: "dark" } }, { ui: { theme: "light", size: 12 } });
var selftest = _.every(
  [doubled.length === 6, evens.length === 3, total === 15,
   stats.max === 5, stats.min === 0, merged.c === 3, inverted.u === "x",
   _.size(grouped) === 3,
   byName.alice.dept === "ops", engineers.length === 2,
   ranked[0].name === "bob", chained.join(",") === "0,6,12,18,24",
   cloned.a === 2, deep.ui.theme === "dark", deep.ui.size === 12],
  _.identity);
console.log("underscore-like ready:", selftest);
return _;
})();
"""
