'''Handlebars-like workload: client-side template engine.

Initialization pattern mimicked: a tokenizer over template strings, an AST
of several node kinds (each an object-literal shape), a compiler emitting
opcode objects, helper registration, and rendering a few templates against
context objects.
'''

NAME = "handlebarslike"
DESCRIPTION = "Template engine: tokenizer, AST, compiler, helpers, render"

SOURCE = r"""
// handlebars-like template engine initialization (IIFE module pattern)
var Handlebars = (function () {
var Handlebars = {};
Handlebars.helpers = {};
Handlebars.partials = {};
Handlebars.templateCache = {};
Handlebars.compileCount = 0;

Handlebars.registerHelper = function (name, fn) {
  Handlebars.helpers[name] = { name: name, fn: fn, builtin: false };
};

Handlebars.registerPartial = function (name, template) {
  Handlebars.partials[name] = { name: name, source: template };
};

// ---- tokenizer -------------------------------------------------------------
function tokenize(template) {
  var tokens = [];
  var i = 0;
  var buffer = "";
  while (i < template.length) {
    var ch = template.charAt(i);
    if (ch === "{" && template.charAt(i + 1) === "{") {
      if (buffer.length > 0) {
        tokens.push({ kind: "text", value: buffer, pos: i - buffer.length });
        buffer = "";
      }
      var end = template.indexOf("}}", i);
      var inner = template.substring(i + 2, end);
      var trimmed = inner.trim();
      if (trimmed.charAt(0) === "!") {
        tokens.push({ kind: "comment", value: trimmed.substring(1), pos: i });
      } else if (trimmed.charAt(0) === "#") {
        tokens.push({ kind: "open", value: trimmed.substring(1), pos: i });
      } else if (trimmed.charAt(0) === "/") {
        tokens.push({ kind: "close", value: trimmed.substring(1), pos: i });
      } else if (trimmed.charAt(0) === ">") {
        tokens.push({ kind: "partial", value: trimmed.substring(1).trim(), pos: i });
      } else {
        tokens.push({ kind: "mustache", value: trimmed, pos: i });
      }
      i = end + 2;
    } else {
      buffer += ch;
      i++;
    }
  }
  if (buffer.length > 0) {
    tokens.push({ kind: "text", value: buffer, pos: template.length - buffer.length });
  }
  return tokens;
}

// ---- parser: several distinct AST node shapes ---------------------------------
function TextNode(value) {
  this.kind = "text";
  this.value = value;
}

function MustacheNode(path) {
  this.kind = "mustache";
  this.path = path.split(".");
  this.escaped = true;
}

function BlockNode(helperName, param) {
  this.kind = "block";
  this.helper = helperName;
  this.param = param;
  this.body = [];
}

function PartialNode(name) {
  this.kind = "partial";
  this.name = name;
}

function parseTokens(tokens) {
  var rootBody = [];
  var stack = [{ body: rootBody, helper: null }];
  for (var i = 0; i < tokens.length; i++) {
    var token = tokens[i];
    var top = stack[stack.length - 1];
    if (token.kind === "text") {
      top.body.push(new TextNode(token.value));
    } else if (token.kind === "mustache") {
      var node2 = new MustacheNode(token.value);
      if (token.value.charAt(0) === "&") {
        node2.escaped = false;
        node2.path = token.value.substring(1).trim().split(".");
      }
      top.body.push(node2);
    } else if (token.kind === "comment") {
      // comments compile to nothing
    } else if (token.kind === "partial") {
      top.body.push(new PartialNode(token.value));
    } else if (token.kind === "open") {
      var parts = token.value.split(" ");
      var block = new BlockNode(parts[0], parts.length > 1 ? parts[1] : "");
      top.body.push(block);
      stack.push({ body: block.body, helper: parts[0] });
    } else if (token.kind === "close") {
      if (stack.length < 2) { throw new Error("unbalanced close at " + token.pos); }
      stack.pop();
    }
  }
  if (stack.length !== 1) { throw new Error("unclosed block"); }
  return rootBody;
}

// ---- compiler: emit opcode objects ----------------------------------------------
function compileBody(body, opcodes) {
  for (var i = 0; i < body.length; i++) {
    var node = body[i];
    if (node.kind === "text") {
      opcodes.push({ op: "append", operand: node.value, cost: 1 });
    } else if (node.kind === "mustache") {
      opcodes.push({ op: "lookup", operand: node.path, cost: 2 });
      opcodes.push({ op: node.escaped ? "emitEscaped" : "emit", operand: null, cost: 1 });
    } else if (node.kind === "partial") {
      opcodes.push({ op: "invokePartial", operand: node.name, cost: 4 });
    } else if (node.kind === "block") {
      var inner = [];
      compileBody(node.body, inner);
      opcodes.push({ op: "block", operand: { helper: node.helper, param: node.param, program: inner }, cost: 3 });
    }
  }
  return opcodes;
}

function escapeHtml(value) {
  var text = "" + value;
  var out = "";
  for (var i = 0; i < text.length; i++) {
    var ch = text.charAt(i);
    if (ch === "<") { out += "&lt;"; }
    else if (ch === ">") { out += "&gt;"; }
    else if (ch === "&") { out += "&amp;"; }
    else if (ch === "\"") { out += "&quot;"; }
    else { out += ch; }
  }
  return out;
}

function resolvePath(context, path) {
  var value = context;
  for (var i = 0; i < path.length; i++) {
    if (value === undefined || value === null) { return ""; }
    value = value[path[i]];
  }
  return value === undefined || value === null ? "" : value;
}

function executeProgram(opcodes, context) {
  var out = "";
  var pendingValue = null;
  for (var i = 0; i < opcodes.length; i++) {
    var opcode = opcodes[i];
    if (opcode.op === "append") {
      out += opcode.operand;
    } else if (opcode.op === "lookup") {
      pendingValue = resolvePath(context, opcode.operand);
    } else if (opcode.op === "emit") {
      out += pendingValue;
    } else if (opcode.op === "emitEscaped") {
      out += escapeHtml(pendingValue);
    } else if (opcode.op === "invokePartial") {
      var partial = Handlebars.partials[opcode.operand];
      if (partial !== undefined) {
        out += Handlebars.compile(partial.source)(context);
      }
    } else if (opcode.op === "block") {
      var info = opcode.operand;
      var helper = Handlebars.helpers[info.helper];
      if (helper !== undefined) {
        out += helper.fn(resolvePath(context, [info.param]), info.program, context);
      }
    }
  }
  return out;
}

Handlebars.compile = function (template) {
  var cached = Handlebars.templateCache[template];
  if (cached !== undefined) { return cached; }
  Handlebars.compileCount++;
  var ast = parseTokens(tokenize(template));
  var opcodes = compileBody(ast, []);
  var renderer = function (context) { return executeProgram(opcodes, context); };
  Handlebars.templateCache[template] = renderer;
  return renderer;
};

// ---- builtin helpers -----------------------------------------------------------
Handlebars.registerHelper("each", function (items, program, context) {
  var out = "";
  if (items instanceof Array) {
    for (var i = 0; i < items.length; i++) {
      out += executeProgram(program, items[i]);
    }
  }
  return out;
});

Handlebars.registerHelper("if", function (value, program, context) {
  return value ? executeProgram(program, context) : "";
});

Handlebars.registerHelper("unless", function (value, program, context) {
  return value ? "" : executeProgram(program, context);
});

Handlebars.registerHelper("with", function (value, program, context) {
  return value ? executeProgram(program, value) : "";
});

Handlebars.registerHelper("repeat", function (value, program, context) {
  var out = "";
  var times = Number(value);
  for (var i = 0; i < times; i++) { out += executeProgram(program, context); }
  return out;
});

Handlebars.registerHelper("first", function (value, program, context) {
  if (value instanceof Array && value.length > 0) {
    return executeProgram(program, value[0]);
  }
  return "";
});

Handlebars.registerHelper("empty", function (value, program, context) {
  var isEmpty = value === undefined || value === null ||
    (value instanceof Array && value.length === 0) || value === "";
  return isEmpty ? executeProgram(program, context) : "";
});

// ---- initialization: register partials, compile and render templates -------------
Handlebars.registerPartial("userCard", "<card>{{name}} ({{role}})</card>");
Handlebars.registerPartial("footer", "<footer>{{site.title}}</footer>");

var listTemplate =
  "<h1>{{title}}</h1>{{#each members}}{{> userCard}}{{/each}}{{> footer}}";
var profileTemplate =
  "{{#if active}}<b>{{name}}</b> works on {{project.name}}{{/if}}" +
  "{{#unless active}}<i>inactive</i>{{/unless}}";
var nestedTemplate =
  "{{#with project}}{{name}}: {{#each tags}}[{{label}}]{{/each}}{{/with}}";

var renderList = Handlebars.compile(listTemplate);
var renderProfile = Handlebars.compile(profileTemplate);
var renderNested = Handlebars.compile(nestedTemplate);

// post-compile audit passes: fresh read sites over token/AST/opcode shapes
function opcodeStats(opcodes, stats) {
  for (var i = 0; i < opcodes.length; i++) {
    var opcode = opcodes[i];
    stats.count++;
    stats.cost += opcode.cost;
    if (opcode.op === "block") {
      stats.blocks++;
      opcodeStats(opcode.operand.program, stats);
    }
    if (opcode.operand === null) { stats.bare++; }
  }
  return stats;
}

function astDepth(body) {
  var depth = 1;
  for (var i = 0; i < body.length; i++) {
    var node = body[i];
    if (node.kind === "block") {
      var inner = 1 + astDepth(node.body);
      if (inner > depth) { depth = inner; }
    }
  }
  return depth;
}

var auditTokens = tokenize(listTemplate);
var auditAst = parseTokens(auditTokens);
var auditOpcodes = compileBody(auditAst, []);
var stats = opcodeStats(auditOpcodes, { count: 0, cost: 0, blocks: 0, bare: 0 });
var depth = astDepth(auditAst);
var tokenKinds = {};
for (var tk = 0; tk < auditTokens.length; tk++) {
  var kind = auditTokens[tk].kind;
  if (tokenKinds[kind] === undefined) { tokenKinds[kind] = 0; }
  tokenKinds[kind] = tokenKinds[kind] + 1;
}

var escaped = Handlebars.compile("{{content}} vs {{&content}}")({
  content: "<b>bold</b>"
});
var commented = Handlebars.compile("a{{! ignore me }}b")({});
var repeated = Handlebars.compile("{{#repeat times}}x{{/repeat}}")({ times: 3 });
var firstOf = Handlebars.compile("{{#first users}}{{name}}{{/first}}")({
  users: [{ name: "ada" }, { name: "bob" }]
});
var whenEmpty = Handlebars.compile("{{#empty items}}none{{/empty}}")({ items: [] });

var site = { title: "ric.example" };
var members = [
  { name: "ada", role: "eng" },
  { name: "grace", role: "eng" },
  { name: "alan", role: "research" }
];
var context1 = { title: "Team", members: members, site: site };
var html1 = renderList(context1);

var context2 = {
  name: "ada", active: true,
  project: { name: "engine", tags: [{ label: "vm" }, { label: "ic" }] }
};
var html2 = renderProfile(context2);
var html3 = renderNested(context2);

console.log(
  "handlebars-like ready:",
  html1.indexOf("ada") > 0 && html1.indexOf("footer") > 0 &&
  html2 === "<b>ada</b> works on engine" &&
  html3 === "engine: [vm][ic]" &&
  Handlebars.compileCount >= 4 && stats.count > 5 && depth >= 2 && stats.cost > 8 &&
  escaped === "&lt;b&gt;bold&lt;/b&gt; vs <b>bold</b>" &&
  commented === "ab" && repeated === "xxx" && firstOf === "ada" && whenEmpty === "none"
);
return Handlebars;
})();
"""
