'''JSFeat-like workload: computer-vision kernels.

Initialization pattern mimicked: matrix containers, convolution /
box-blur / Sobel kernels, a grayscale conversion and an integral image —
numeric inner loops over flat arrays.  This is the paper's *lowest*
initial-miss-rate library (18.96%): compute dominates, and the few object
shapes are hit over and over.
'''

NAME = "jsfeatlike"
DESCRIPTION = "Computer vision: matrices, convolution, Sobel, integral image"

SOURCE = r"""
// jsfeat-like computer vision library initialization (IIFE module pattern)
var jsfeat = (function () {
var jsfeat = {};
jsfeat.version = "0.jsl";
jsfeat.U8 = 1;
jsfeat.F32 = 2;

function Matrix(cols, rows, kind) {
  this.cols = cols;
  this.rows = rows;
  this.kind = kind;
  this.data = [];
  var n = cols * rows;
  for (var i = 0; i < n; i++) { this.data.push(0); }
}

Matrix.prototype.at = function (x, y) {
  return this.data[y * this.cols + x];
};

Matrix.prototype.put = function (x, y, v) {
  this.data[y * this.cols + x] = v;
};

Matrix.prototype.fillPattern = function (seed) {
  var state = seed;
  for (var i = 0; i < this.data.length; i++) {
    state = (state * 16807) % 2147483647;
    this.data[i] = state % 256;
  }
  return this;
};

Matrix.prototype.sum = function () {
  var total = 0;
  for (var i = 0; i < this.data.length; i++) { total += this.data[i]; }
  return total;
};

jsfeat.matrix = function (cols, rows, kind) {
  return new Matrix(cols, rows, kind);
};

// ---- grayscale ----------------------------------------------------------------
jsfeat.grayscale = function (rgb, out) {
  // rgb: matrix with 3 consecutive entries per pixel
  var pixels = out.cols * out.rows;
  for (var p = 0; p < pixels; p++) {
    var r = rgb.data[p * 3];
    var g = rgb.data[p * 3 + 1];
    var b = rgb.data[p * 3 + 2];
    out.data[p] = Math.round(0.299 * r + 0.587 * g + 0.114 * b);
  }
  return out;
};

// ---- box blur -------------------------------------------------------------------
jsfeat.boxBlur = function (src, out, radius) {
  var w = src.cols;
  var h = src.rows;
  for (var y = 0; y < h; y++) {
    for (var x = 0; x < w; x++) {
      var acc = 0;
      var count = 0;
      for (var dy = -radius; dy <= radius; dy++) {
        for (var dx = -radius; dx <= radius; dx++) {
          var sx = x + dx;
          var sy = y + dy;
          if (sx >= 0 && sx < w && sy >= 0 && sy < h) {
            acc += src.data[sy * w + sx];
            count++;
          }
        }
      }
      out.data[y * w + x] = acc / count;
    }
  }
  return out;
};

// ---- sobel edge detector -----------------------------------------------------------
jsfeat.sobel = function (src, out) {
  var w = src.cols;
  var h = src.rows;
  for (var y = 1; y < h - 1; y++) {
    for (var x = 1; x < w - 1; x++) {
      var base = y * w + x;
      var a = src.data[base - w - 1];
      var b = src.data[base - w];
      var c = src.data[base - w + 1];
      var d = src.data[base - 1];
      var f = src.data[base + 1];
      var g2 = src.data[base + w - 1];
      var hh = src.data[base + w];
      var ii = src.data[base + w + 1];
      var gx = -a - 2 * d - g2 + c + 2 * f + ii;
      var gy = -a - 2 * b - c + g2 + 2 * hh + ii;
      out.data[base] = Math.sqrt(gx * gx + gy * gy);
    }
  }
  return out;
};

// ---- integral image ------------------------------------------------------------------
jsfeat.integral = function (src, out) {
  var w = src.cols;
  var h = src.rows;
  for (var y = 0; y < h; y++) {
    var rowSum = 0;
    for (var x = 0; x < w; x++) {
      rowSum += src.data[y * w + x];
      var above = y > 0 ? out.data[(y - 1) * w + x] : 0;
      out.data[y * w + x] = rowSum + above;
    }
  }
  return out;
};

jsfeat.boxSum = function (integral, x0, y0, x1, y1) {
  var w = integral.cols;
  var a = x0 > 0 && y0 > 0 ? integral.data[(y0 - 1) * w + (x0 - 1)] : 0;
  var b = y0 > 0 ? integral.data[(y0 - 1) * w + x1] : 0;
  var c = x0 > 0 ? integral.data[y1 * w + (x0 - 1)] : 0;
  var d = integral.data[y1 * w + x1];
  return d - b - c + a;
};

// ---- resize (nearest neighbour) -----------------------------------------------
jsfeat.resample = function (src, out) {
  var xRatio = src.cols / out.cols;
  var yRatio = src.rows / out.rows;
  for (var y = 0; y < out.rows; y++) {
    for (var x = 0; x < out.cols; x++) {
      var sx = Math.floor(x * xRatio);
      var sy = Math.floor(y * yRatio);
      out.data[y * out.cols + x] = src.data[sy * src.cols + sx];
    }
  }
  return out;
};

// ---- binary threshold ------------------------------------------------------------
jsfeat.threshold = function (src, out, cutoff) {
  for (var i = 0; i < src.data.length; i++) {
    out.data[i] = src.data[i] >= cutoff ? 255 : 0;
  }
  return out;
};

// ---- histogram equalization --------------------------------------------------------
jsfeat.equalizeHistogram = function (src, out) {
  var counts = [];
  for (var b = 0; b < 256; b++) { counts.push(0); }
  for (var i = 0; i < src.data.length; i++) {
    counts[Math.floor(src.data[i]) & 255]++;
  }
  var cumulative = [];
  var running = 0;
  for (var c = 0; c < 256; c++) {
    running += counts[c];
    cumulative.push(running);
  }
  var total = src.data.length;
  for (var p = 0; p < src.data.length; p++) {
    out.data[p] = Math.round(
      (cumulative[Math.floor(src.data[p]) & 255] / total) * 255
    );
  }
  return out;
};

// ---- keypoint detector (toy FAST-ish corner score) --------------------------------------
function Keypoint(x, y, score) {
  this.x = x;
  this.y = y;
  this.score = score;
  this.angle = 0;
  this.level = 0;
}

jsfeat.detectCorners = function (src, threshold) {
  var w = src.cols;
  var h = src.rows;
  var corners = [];
  for (var y = 2; y < h - 2; y++) {
    for (var x = 2; x < w - 2; x++) {
      var center = src.data[y * w + x];
      var brighter = 0;
      var darker = 0;
      var ring = [
        src.data[(y - 2) * w + x], src.data[(y + 2) * w + x],
        src.data[y * w + x - 2], src.data[y * w + x + 2]
      ];
      for (var r = 0; r < ring.length; r++) {
        if (ring[r] > center + threshold) { brighter++; }
        if (ring[r] < center - threshold) { darker++; }
      }
      if (brighter >= 3 || darker >= 3) {
        corners.push(new Keypoint(x, y, Math.abs(ring[0] - center)));
      }
    }
  }
  return corners;
};

// ---- initialization: run each kernel once on a small frame --------------------------------
var W = 6;
var H = 5;
var rgb = jsfeat.matrix(W * 3, H, jsfeat.U8).fillPattern(1234567);
var gray = jsfeat.matrix(W, H, jsfeat.U8);
jsfeat.grayscale(rgb, gray);
var blurred = jsfeat.matrix(W, H, jsfeat.F32);
jsfeat.boxBlur(gray, blurred, 1);
var edges = jsfeat.matrix(W, H, jsfeat.F32);
jsfeat.sobel(blurred, edges);
var integralImg = jsfeat.matrix(W, H, jsfeat.F32);
jsfeat.integral(gray, integralImg);
var totalEnergy = edges.sum();
var quadrant = jsfeat.boxSum(integralImg, 0, 0, (W >> 1) - 1, (H >> 1) - 1);
var corners = jsfeat.detectCorners(gray, 4);

// build a small pyramid and audit matrix metadata at fresh access sites
jsfeat.pyramid = function (base, levels) {
  var out = [base];
  var current = base;
  for (var l = 1; l < levels; l++) {
    var next = new Matrix(Math.max(2, current.cols >> 1), Math.max(2, current.rows >> 1), current.kind);
    for (var y = 0; y < next.rows; y++) {
      for (var x = 0; x < next.cols; x++) {
        next.data[y * next.cols + x] = current.at(Math.min(x * 2, current.cols - 1), Math.min(y * 2, current.rows - 1));
      }
    }
    out.push(next);
    current = next;
  }
  return out;
};

function describeMatrix(m) {
  return m.cols + "x" + m.rows + "/" + m.kind + ":" + m.data.length;
}

function totalCells(mats) {
  var cells = 0;
  for (var i = 0; i < mats.length; i++) {
    cells += mats[i].cols * mats[i].rows;
  }
  return cells;
}

var half = jsfeat.matrix(3, 3, jsfeat.U8);
jsfeat.resample(gray, half);
var binary = jsfeat.matrix(W, H, jsfeat.U8);
jsfeat.threshold(gray, binary, 128);
var binarySum = binary.sum();
var equalized = jsfeat.matrix(W, H, jsfeat.U8);
jsfeat.equalizeHistogram(gray, equalized);

var pyramid = jsfeat.pyramid(gray, 3);
var descriptions = [];
for (var pl = 0; pl < pyramid.length; pl++) { descriptions.push(describeMatrix(pyramid[pl])); }
var strongest = null;
for (var ci = 0; ci < corners.length; ci++) {
  var kp = corners[ci];
  if (strongest === null || kp.score > strongest.score) { strongest = kp; }
}
console.log(
  "jsfeat-like ready:",
  totalEnergy > 0 && quadrant > 0 && gray.sum() > 0 &&
  integralImg.at(W - 1, H - 1) === gray.sum() && corners.length > 0 &&
  descriptions.length === 3 && totalCells(pyramid) > W * H && strongest.score >= 0 &&
  half.sum() > 0 && binarySum % 255 === 0 && equalized.sum() > gray.sum() / 2
);
return jsfeat;
})();
"""
