"""The seven synthetic library workloads (paper Table 3) and the two
synthetic websites (paper §6).

Each workload mimics the *initialization pattern* of one of the paper's
libraries — the object-shape and access-site structure, not the feature
set — so that the IC statistics RIC exploits (Table 1) come out with the
same signatures.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workloads import (
    angularlike,
    camanlike,
    handlebarslike,
    jquerylike,
    jsfeatlike,
    reactlike,
    underscorelike,
)
from repro.workloads.websites import (
    WEBSITE_A_ORDER,
    WEBSITE_B_ORDER,
    website_a,
    website_b,
    website_scripts,
)


@dataclass(frozen=True)
class Workload:
    """One library workload: its name, jsl source and description."""

    name: str
    source: str
    description: str

    @property
    def filename(self) -> str:
        return f"{self.name}.jsl"

    def scripts(self) -> list[tuple[str, str]]:
        return [(self.filename, self.source)]


_MODULES = [
    angularlike,
    camanlike,
    handlebarslike,
    jquerylike,
    jsfeatlike,
    reactlike,
    underscorelike,
]

#: Registry, in the paper's (alphabetical) table order.
WORKLOADS: dict[str, Workload] = {
    module.NAME: Workload(
        name=module.NAME, source=module.SOURCE, description=module.DESCRIPTION
    )
    for module in _MODULES
}

#: Paper Table 3 order.
WORKLOAD_NAMES = list(WORKLOADS)


def get_workload(name: str) -> Workload:
    """Look up a workload by name (KeyError lists the valid names)."""
    try:
        return WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: {', '.join(WORKLOADS)}"
        ) from None


__all__ = [
    "WEBSITE_A_ORDER",
    "WEBSITE_B_ORDER",
    "WORKLOADS",
    "WORKLOAD_NAMES",
    "Workload",
    "get_workload",
    "website_a",
    "website_b",
    "website_scripts",
]
