'''Caman-like workload: image-manipulation library.

Initialization pattern mimicked: a filter registry where each filter is a
small pixel kernel, a render pipeline applying queued filters over a
synthetic pixel buffer, and preset/blender tables.  Numeric loops over
pixels give this workload a higher hit-to-miss ratio than the framework
libraries (the paper's CamanJS has few hidden classes, 99, and modest
misses, 383).
'''

NAME = "camanlike"
DESCRIPTION = "Image filters: kernel registry, pixel pipeline, presets"

SOURCE = r"""
// caman-like image manipulation library initialization (IIFE module pattern)
var Caman = (function () {
var Caman = {};
Caman.version = "4.jsl";
Caman.filters = {};
Caman.presets = {};
Caman.blenders = {};

function clamp(v) {
  if (v < 0) { return 0; }
  if (v > 255) { return 255; }
  return v;
}

Caman.registerFilter = function (name, fn) {
  Caman.filters[name] = { name: name, apply: fn, uses: 0 };
};

Caman.registerBlender = function (name, fn) {
  Caman.blenders[name] = { name: name, blend: fn };
};

Caman.registerPreset = function (name, steps) {
  Caman.presets[name] = { name: name, steps: steps };
};

// ---- pixel kernels ------------------------------------------------------------
Caman.registerFilter("brightness", function (px, amount) {
  px.r = clamp(px.r + amount);
  px.g = clamp(px.g + amount);
  px.b = clamp(px.b + amount);
  return px;
});

Caman.registerFilter("contrast", function (px, amount) {
  var factor = (amount + 100) / 100;
  factor = factor * factor;
  px.r = clamp(((px.r / 255 - 0.5) * factor + 0.5) * 255);
  px.g = clamp(((px.g / 255 - 0.5) * factor + 0.5) * 255);
  px.b = clamp(((px.b / 255 - 0.5) * factor + 0.5) * 255);
  return px;
});

Caman.registerFilter("greyscale", function (px, amount) {
  var avg = 0.299 * px.r + 0.587 * px.g + 0.114 * px.b;
  px.r = avg;
  px.g = avg;
  px.b = avg;
  return px;
});

Caman.registerFilter("invert", function (px, amount) {
  px.r = 255 - px.r;
  px.g = 255 - px.g;
  px.b = 255 - px.b;
  return px;
});

Caman.registerFilter("sepia", function (px, amount) {
  var adjust = amount / 100;
  var r = px.r; var g = px.g; var b = px.b;
  px.r = clamp(r * (1 - 0.607 * adjust) + g * 0.769 * adjust + b * 0.189 * adjust);
  px.g = clamp(r * 0.349 * adjust + g * (1 - 0.314 * adjust) + b * 0.168 * adjust);
  px.b = clamp(r * 0.272 * adjust + g * 0.534 * adjust + b * (1 - 0.869 * adjust));
  return px;
});

Caman.registerFilter("saturation", function (px, amount) {
  var adjust = amount * -0.01;
  var max = Math.max(px.r, Math.max(px.g, px.b));
  if (px.r !== max) { px.r = px.r + (max - px.r) * adjust; }
  if (px.g !== max) { px.g = px.g + (max - px.g) * adjust; }
  if (px.b !== max) { px.b = px.b + (max - px.b) * adjust; }
  return px;
});

Caman.registerFilter("gamma", function (px, amount) {
  px.r = Math.pow(px.r / 255, amount) * 255;
  px.g = Math.pow(px.g / 255, amount) * 255;
  px.b = Math.pow(px.b / 255, amount) * 255;
  return px;
});

Caman.registerFilter("noiseFloor", function (px, amount) {
  if (px.r < amount) { px.r = amount; }
  if (px.g < amount) { px.g = amount; }
  if (px.b < amount) { px.b = amount; }
  return px;
});

Caman.registerFilter("hue", function (px, amount) {
  var shift = amount / 100;
  var r = px.r;
  px.r = clamp(r * (1 - shift) + px.g * shift);
  px.g = clamp(px.g * (1 - shift) + px.b * shift);
  px.b = clamp(px.b * (1 - shift) + r * shift);
  return px;
});

Caman.registerFilter("vibrance", function (px, amount) {
  var avg = (px.r + px.g + px.b) / 3;
  var max = Math.max(px.r, Math.max(px.g, px.b));
  var amt = ((Math.abs(max - avg) * 2 / 255) * amount) / 100;
  if (px.r !== max) { px.r = clamp(px.r + (max - px.r) * amt); }
  if (px.g !== max) { px.g = clamp(px.g + (max - px.g) * amt); }
  if (px.b !== max) { px.b = clamp(px.b + (max - px.b) * amt); }
  return px;
});

Caman.registerFilter("exposure", function (px, amount) {
  var factor = Math.pow(2, amount / 100);
  px.r = clamp(px.r * factor);
  px.g = clamp(px.g * factor);
  px.b = clamp(px.b * factor);
  return px;
});

Caman.registerFilter("channels", function (px, amount) {
  px.r = clamp(px.r + amount);
  px.b = clamp(px.b - amount);
  return px;
});

// ---- blenders -------------------------------------------------------------------
Caman.registerBlender("normal", function (a, b) { return b; });
Caman.registerBlender("multiply", function (a, b) { return (a * b) / 255; });
Caman.registerBlender("screen", function (a, b) { return 255 - ((255 - a) * (255 - b)) / 255; });
Caman.registerBlender("overlay", function (a, b) {
  return a < 128 ? (2 * a * b) / 255 : 255 - (2 * (255 - a) * (255 - b)) / 255;
});

// ---- presets --------------------------------------------------------------------
Caman.registerPreset("vintage", [
  { filter: "greyscale", amount: 0 },
  { filter: "contrast", amount: 5 },
  { filter: "sepia", amount: 100 },
  { filter: "brightness", amount: 10 }
]);
Caman.registerPreset("lomo", [
  { filter: "brightness", amount: 15 },
  { filter: "saturation", amount: -20 },
  { filter: "gamma", amount: 1.8 }
]);
Caman.registerPreset("clarity", [
  { filter: "contrast", amount: 20 },
  { filter: "noiseFloor", amount: 8 },
  { filter: "brightness", amount: 5 }
]);

Caman.registerPreset("sunrise", [
  { filter: "exposure", amount: 15 },
  { filter: "channels", amount: 12 },
  { filter: "vibrance", amount: 30 }
]);
Caman.registerPreset("crossProcess", [
  { filter: "exposure", amount: 5 },
  { filter: "hue", amount: 10 },
  { filter: "contrast", amount: 8 },
  { filter: "channels", amount: -6 }
]);

// ---- layers: a stack of blend operations over a base image ------------------------
function Layer(name, mode, opacity) {
  this.name = name;
  this.mode = mode;
  this.opacity = opacity;
  this.applied = false;
}

function LayerStack(base) {
  this.base = base;
  this.layers = [];
}

LayerStack.prototype.add = function (name, mode, opacity) {
  this.layers.push(new Layer(name, mode, opacity));
  return this;
};

LayerStack.prototype.flatten = function (other) {
  for (var i = 0; i < this.layers.length; i++) {
    var layer = this.layers[i];
    this.base.blendWith(other, layer.mode);
    layer.applied = true;
  }
  return this.base;
};

LayerStack.prototype.describe = function () {
  var parts = [];
  for (var i = 0; i < this.layers.length; i++) {
    var layer = this.layers[i];
    parts.push(layer.name + "/" + layer.mode + "@" + layer.opacity +
               (layer.applied ? "!" : "?"));
  }
  return parts.join(",");
};

// ---- the rendering pipeline ------------------------------------------------------
function CamanInstance(width, height) {
  this.width = width;
  this.height = height;
  this.pixels = [];
  this.queue = [];
  this.renderedPasses = 0;
  var seed = 7;
  for (var i = 0; i < width * height; i++) {
    seed = (seed * 1103515245 + 12345) % 2147483648;
    var px = {};
    px.r = seed % 256;
    px.g = (seed >> 8) % 256;
    px.b = (seed >> 16) % 128 + 64;
    px.a = 255;
    this.pixels.push(px);
  }
}

CamanInstance.prototype.enqueue = function (filterName, amount) {
  this.queue.push({ filter: filterName, amount: amount });
  return this;
};

CamanInstance.prototype.preset = function (name) {
  var preset = Caman.presets[name];
  for (var i = 0; i < preset.steps.length; i++) {
    var step = preset.steps[i];
    this.enqueue(step.filter, step.amount);
  }
  return this;
};

CamanInstance.prototype.render = function () {
  for (var q = 0; q < this.queue.length; q++) {
    var job = this.queue[q];
    var entry = Caman.filters[job.filter];
    entry.uses = entry.uses + 1;
    var kernel = entry.apply;
    for (var p = 0; p < this.pixels.length; p++) {
      kernel(this.pixels[p], job.amount);
    }
    this.renderedPasses++;
  }
  this.queue = [];
  return this;
};

CamanInstance.prototype.histogram = function () {
  var buckets = [0, 0, 0, 0, 0, 0, 0, 0];
  for (var p = 0; p < this.pixels.length; p++) {
    var px = this.pixels[p];
    var luma = (px.r + px.g + px.b) / 3;
    var bucket = Math.floor(luma / 32);
    if (bucket > 7) { bucket = 7; }
    buckets[bucket] = buckets[bucket] + 1;
  }
  return buckets;
};

CamanInstance.prototype.blendWith = function (other, mode) {
  var blender = Caman.blenders[mode].blend;
  var n = Math.min(this.pixels.length, other.pixels.length);
  for (var i = 0; i < n; i++) {
    var a = this.pixels[i];
    var b = other.pixels[i];
    a.r = clamp(blender(a.r, b.r));
    a.g = clamp(blender(a.g, b.g));
    a.b = clamp(blender(a.b, b.b));
  }
  return this;
};

// ---- initialization work: calibrate each kernel on a probe pixel, then a
// ---- tiny smoke render (real CamanJS defers pixel work past initialization)
var filterCount = 0;
var calibrated = 0;
for (var fname in Caman.filters) {
  filterCount++;
  var probe = { r: 120, g: 80, b: 200, a: 255 };
  var entry = Caman.filters[fname];
  entry.apply(probe, 10);
  if (probe.r >= 0 && probe.r <= 255) { calibrated++; }
}
var blenderCount = 0;
for (var bname in Caman.blenders) {
  blenderCount++;
  var blended = Caman.blenders[bname].blend(64, 192);
  if (blended < 0) { blenderCount = -1000; }
}
// registry audit: reads filter/preset/blender entries at fresh sites
function describePipeline() {
  var parts = [];
  for (var fn2 in Caman.filters) {
    var filterEntry = Caman.filters[fn2];
    parts.push(filterEntry.name + "(" + filterEntry.uses + ")");
  }
  for (var pn in Caman.presets) {
    var presetEntry = Caman.presets[pn];
    var steps = presetEntry.steps;
    var names = [];
    for (var s = 0; s < steps.length; s++) {
      names.push(steps[s].filter + "@" + steps[s].amount);
    }
    parts.push(presetEntry.name + "[" + names.join("|") + "]");
  }
  return parts.join(";");
}

var pipelineDescription = describePipeline();
var image = new CamanInstance(2, 1);
image.preset("vintage").render();
var other = new CamanInstance(2, 1);
other.preset("lomo").render();
image.blendWith(other, "overlay");
var stack = new LayerStack(image);
stack.add("warm", "multiply", 0.8).add("glow", "screen", 0.4);
stack.flatten(other);
var layerReport = stack.describe();

var sunriseProbe = new CamanInstance(2, 1);
sunriseProbe.preset("sunrise").render();
var crossProbe = new CamanInstance(2, 1);
crossProbe.preset("crossProcess").render();

var hist = image.histogram();
var histTotal = 0;
for (var hb = 0; hb < hist.length; hb++) { histTotal += hist[hb]; }
console.log(
  "caman-like ready:",
  histTotal === 2 && filterCount === 12 && calibrated === 12 &&
  blenderCount === 4 && image.renderedPasses === 4 && other.renderedPasses === 3 &&
  pipelineDescription.length > 40 &&
  layerReport === "warm/multiply@0.8!,glow/screen@0.4!" &&
  sunriseProbe.renderedPasses === 3 && crossProbe.renderedPasses === 4
);
return Caman;
})();
"""
