'''Polyshapes workload: polymorphic and megamorphic IC-tier exercise.

Unlike the seven library workloads (each mimicking one paper library's
initialization pattern), this one is built to sweep the IC tier machine:
five constructor families produce five distinct hidden classes that all
carry ``x``/``y``/``tag`` at *different* slot offsets, and a set of
accessor functions is partitioned by polymorphic degree — ``read2``/
``write2`` only ever see two shapes (POLY), ``read4``/``write4`` see
exactly ``POLY_LIMIT`` shapes (the deepest POLY tier), and ``read5``/
``write5`` see five and tip megamorphic.  The hot loops re-visit the
same shapes thousands of times, so the run's profile is dominated by
POLY-tier slot hits (and MEGA stub-cache hits at the 5-shape sites) —
exactly the feedback the v4 record's ``site_slots`` persists and a
Reuse run preloads.
'''

NAME = "polyshapes"
DESCRIPTION = "IC tier sweep: 2/3/4-shape POLY sites plus a 5-shape MEGA site"

# Each constructor pads with a different number of leading fields so x/y
# land at distinct offsets per shape — a shared accessor site then needs
# one ICVector slot (one load_field handler) per family.
_CTORS = """
function S0(i) { this.tag = 0; this.x = i; this.y = i + 1; }
function S1(i) { this.p0 = 1; this.tag = 1; this.x = i * 2; this.y = i; }
function S2(i) { this.p0 = 1; this.p1 = 2; this.tag = 2; this.x = i + 3; this.y = i * 2; }
function S3(i) { this.p0 = 1; this.p1 = 2; this.p2 = 3; this.tag = 3; this.x = i - 1; this.y = i + 4; }
function S4(i) { this.p0 = 1; this.p1 = 2; this.p2 = 3; this.p3 = 4; this.tag = 4; this.x = i + 5; this.y = i - 2; }
"""

# One read site and one write site per polymorphic degree.  Keeping them
# in separate functions keeps each site's shape population exact: readN
# probes an N-shape ICVector, writeN stores through an N-shape ICVector.
_ACCESSORS = """
function read2(o) { return o.x + o.y; }
function read3(o) { return o.x + o.y; }
function read4(o) { return o.x + o.y; }
function read5(o) { return o.x + o.y; }
function write2(o, v) { o.y = v + o.tag; }
function write3(o, v) { o.y = v + o.tag; }
function write4(o, v) { o.y = v + o.tag; }
function write5(o, v) { o.y = v + o.tag; }
"""

_DRIVER = """
function makePool(degree, size) {
  var pool = [];
  for (var i = 0; i < size; i = i + 1) {
    var k = i % degree;
    if (k === 0) { pool.push(new S0(i)); }
    else if (k === 1) { pool.push(new S1(i)); }
    else if (k === 2) { pool.push(new S2(i)); }
    else if (k === 3) { pool.push(new S3(i)); }
    else { pool.push(new S4(i)); }
  }
  return pool;
}

var pool2 = makePool(2, 16);
var pool3 = makePool(3, 18);
var pool4 = makePool(4, 16);
var pool5 = makePool(5, 20);

var sum2 = 0;
var sum3 = 0;
var sum4 = 0;
var sum5 = 0;
for (var round = 0; round < 40; round = round + 1) {
  for (var i = 0; i < pool2.length; i = i + 1) {
    write2(pool2[i], round);
    sum2 = sum2 + read2(pool2[i]);
  }
  for (var i = 0; i < pool3.length; i = i + 1) {
    write3(pool3[i], round);
    sum3 = sum3 + read3(pool3[i]);
  }
  for (var i = 0; i < pool4.length; i = i + 1) {
    write4(pool4[i], round);
    sum4 = sum4 + read4(pool4[i]);
  }
  for (var i = 0; i < pool5.length; i = i + 1) {
    write5(pool5[i], round);
    sum5 = sum5 + read5(pool5[i]);
  }
}

console.log("poly2:" + sum2);
console.log("poly3:" + sum3);
console.log("poly4:" + sum4);
console.log("mega5:" + sum5);
"""

SOURCE = _CTORS + _ACCESSORS + _DRIVER
