'''Angular-like workload: module system and dependency injection.

Initialization pattern mimicked: module registration, provider recipes
stored as config objects, an injector instantiating singletons through a
dependency graph, directive/filter registries, and a digest-cycle warmup
over scope objects.
'''

NAME = "angularlike"
DESCRIPTION = "MVC framework: modules, DI container, directives, digest loop"

SOURCE = r"""
// angular-like framework initialization (IIFE module pattern)
var angular = (function () {
var angular = {};
angular.modules = {};
angular.injectorCache = {};

function Module(name, requires) {
  this.name = name;
  this.requires = requires;
  this.providers = [];
  this.directives = [];
  this.filters = [];
  this.runBlocks = [];
  this.configBlocks = [];
}

Module.prototype.provider = function (name, recipe) {
  var entry = {};
  entry.name = name;
  entry.recipe = recipe;
  entry.kind = "provider";
  entry.eager = false;
  this.providers.push(entry);
  return this;
};

Module.prototype.factory = function (name, deps, fn) {
  var entry = {};
  entry.name = name;
  entry.recipe = { deps: deps, build: fn };
  entry.kind = "factory";
  entry.eager = false;
  this.providers.push(entry);
  return this;
};

Module.prototype.service = function (name, deps, ctor) {
  var entry = {};
  entry.name = name;
  entry.recipe = { deps: deps, build: ctor };
  entry.kind = "service";
  entry.eager = false;
  this.providers.push(entry);
  return this;
};

Module.prototype.value = function (name, value) {
  var entry = {};
  entry.name = name;
  entry.recipe = { deps: [], build: null, value: value };
  entry.kind = "value";
  entry.eager = true;
  this.providers.push(entry);
  return this;
};

Module.prototype.directive = function (name, fn) {
  this.directives.push({ name: name, compile: fn, restrict: "EA", priority: 0 });
  return this;
};

Module.prototype.filter = function (name, fn) {
  this.filters.push({ name: name, transform: fn });
  return this;
};

Module.prototype.run = function (fn) {
  this.runBlocks.push(fn);
  return this;
};

Module.prototype.config = function (fn) {
  this.configBlocks.push(fn);
  return this;
};

angular.module = function (name, requires) {
  if (requires === undefined) { return angular.modules[name]; }
  var mod = new Module(name, requires);
  angular.modules[name] = mod;
  return mod;
};

// ---- the injector -----------------------------------------------------------
function Injector(modules) {
  this.instances = {};
  this.recipes = {};
  this.pending = {};
  this.filterTable = {};
  this.directiveTable = {};
  for (var i = 0; i < modules.length; i++) {
    this.installModule(modules[i]);
  }
}

Injector.prototype.installModule = function (mod) {
  for (var p = 0; p < mod.providers.length; p++) {
    var entry = mod.providers[p];
    this.recipes[entry.name] = entry;
  }
  for (var d = 0; d < mod.directives.length; d++) {
    var dir = mod.directives[d];
    this.directiveTable[dir.name] = dir;
  }
  for (var f = 0; f < mod.filters.length; f++) {
    var filt = mod.filters[f];
    this.filterTable[filt.name] = filt;
  }
};

Injector.prototype.get = function (name) {
  if (this.instances.hasOwnProperty(name)) { return this.instances[name]; }
  if (this.pending[name]) { throw new Error("circular dependency: " + name); }
  var entry = this.recipes[name];
  if (entry === undefined) { throw new Error("unknown provider: " + name); }
  this.pending[name] = true;
  var instance;
  if (entry.kind === "value") {
    instance = entry.recipe.value;
  } else {
    var deps = entry.recipe.deps;
    var resolved = [];
    for (var i = 0; i < deps.length; i++) { resolved.push(this.get(deps[i])); }
    instance = entry.recipe.build.apply(null, resolved);
  }
  this.pending[name] = false;
  this.instances[name] = instance;
  return instance;
};

// ---- scopes and digest --------------------------------------------------------
function Scope(parent, id) {
  this.id = id;
  this.parent = parent;
  this.watchers = [];
  this.children = [];
  this.model = {};
  this.dirty = false;
}

Scope.prototype.watch = function (key, listener) {
  this.watchers.push({ key: key, listener: listener, last: undefined });
};

Scope.prototype.set = function (key, value) {
  this.model[key] = value;
  this.dirty = true;
};

Scope.prototype.digestOnce = function () {
  var changed = 0;
  for (var w = 0; w < this.watchers.length; w++) {
    var watcher = this.watchers[w];
    var current = this.model[watcher.key];
    if (current !== watcher.last) {
      watcher.listener(current, watcher.last);
      watcher.last = current;
      changed++;
    }
  }
  for (var c = 0; c < this.children.length; c++) {
    changed += this.children[c].digestOnce();
  }
  return changed;
};

Scope.prototype.newChild = function (id) {
  var child = new Scope(this, id);
  this.children.push(child);
  return child;
};

// ---- scope events ($on / $emit / $broadcast) --------------------------------
Scope.prototype.listeners = null;

Scope.prototype.on = function (eventName, handler) {
  if (this.eventTable === undefined) { this.eventTable = {}; }
  if (this.eventTable[eventName] === undefined) { this.eventTable[eventName] = []; }
  this.eventTable[eventName].push(handler);
};

Scope.prototype.emit = function (eventName, payload) {
  // bubbles up toward the root
  var current = this;
  var delivered = 0;
  while (current !== null) {
    if (current.eventTable !== undefined && current.eventTable[eventName] !== undefined) {
      var handlers = current.eventTable[eventName];
      for (var h = 0; h < handlers.length; h++) {
        handlers[h]({ name: eventName, targetScope: this, currentScope: current }, payload);
        delivered++;
      }
    }
    current = current.parent;
  }
  return delivered;
};

Scope.prototype.broadcast = function (eventName, payload) {
  // propagates down the tree
  var delivered = 0;
  if (this.eventTable !== undefined && this.eventTable[eventName] !== undefined) {
    var handlers = this.eventTable[eventName];
    for (var h = 0; h < handlers.length; h++) {
      handlers[h]({ name: eventName, targetScope: this, currentScope: this }, payload);
      delivered++;
    }
  }
  for (var c = 0; c < this.children.length; c++) {
    delivered += this.children[c].broadcast(eventName, payload);
  }
  return delivered;
};

// ---- the $interpolate-style service -----------------------------------------
function Interpolator(openDelim, closeDelim) {
  this.open = openDelim;
  this.close = closeDelim;
  this.compiled = {};
  this.compileCount = 0;
}

Interpolator.prototype.compile = function (template) {
  var cached = this.compiled[template];
  if (cached !== undefined) { return cached; }
  this.compileCount++;
  var parts = [];
  var index = 0;
  while (index < template.length) {
    var start = template.indexOf(this.open, index);
    if (start < 0) {
      parts.push({ kind: "text", text: template.substring(index) });
      break;
    }
    if (start > index) {
      parts.push({ kind: "text", text: template.substring(index, start) });
    }
    var end = template.indexOf(this.close, start);
    parts.push({
      kind: "expr",
      path: template.substring(start + this.open.length, end).trim()
    });
    index = end + this.close.length;
  }
  var interpolator = this;
  var fn = function (context) {
    var out = "";
    for (var p = 0; p < parts.length; p++) {
      var part = parts[p];
      if (part.kind === "text") { out += part.text; }
      else {
        var v = context[part.path];
        out += v === undefined ? "" : v;
      }
    }
    return out;
  };
  this.compiled[template] = fn;
  return fn;
};

// ---- build the application ------------------------------------------------------
var core = angular.module("core", []);
core.value("appName", "ric-demo");
core.value("version", "1.0");
core.factory("logger", [], function () {
  var buffer = [];
  return {
    log: function (msg) { buffer.push(msg); },
    count: function () { return buffer.length; }
  };
});
core.factory("http", ["logger"], function (logger) {
  return {
    pending: [],
    get: function (url) {
      logger.log("GET " + url);
      return { url: url, status: 200, data: null };
    }
  };
});
core.service("store", ["logger"], function (logger) {
  var data = {};
  return {
    put: function (k, v) { data[k] = v; logger.log("put " + k); },
    get: function (k) { return data[k]; }
  };
});
core.factory("i18n", [], function () {
  var table = { hello: "Hello", bye: "Goodbye", items: "Items", empty: "Nothing here" };
  return { t: function (k) { var v = table[k]; return v === undefined ? k : v; } };
});

var widgets = angular.module("widgets", ["core"]);
widgets.directive("appHeader", function (scope) { return "<header>" + scope.id + "</header>"; });
widgets.directive("appFooter", function (scope) { return "<footer/>"; });
widgets.directive("appList", function (scope) { return "<ul/>"; });
widgets.directive("appItem", function (scope) { return "<li/>"; });
widgets.filter("uppercase", function (s) { return String(s).toUpperCase(); });
widgets.filter("lowercase", function (s) { return String(s).toLowerCase(); });
widgets.filter("reverse", function (s) {
  var text = String(s);
  var out = "";
  for (var i = text.length - 1; i >= 0; i--) { out += text.charAt(i); }
  return out;
});

core.factory("interpolate", [], function () {
  return new Interpolator("{{", "}}");
});
core.value("config", { debug: false, locale: "en", pageSize: 25 });
core.factory("cache", [], function () {
  var entries = {};
  var hits = 0;
  return {
    put: function (k, v) { entries[k] = v; },
    get: function (k) { if (entries[k] !== undefined) { hits++; } return entries[k]; },
    stats: function () { return { hits: hits }; }
  };
});

widgets.directive("appModal", function (scope) { return "<modal/>"; });
widgets.directive("appTabs", function (scope) { return "<tabs/>"; });
widgets.directive("appBadge", function (scope) { return "<badge/>"; });
widgets.filter("currency", function (n) { return "$" + Number(n).toFixed(2); });
widgets.filter("limitTo", function (s) { return String(s).substring(0, 5); });

var app = angular.module("app", ["core", "widgets"]);
app.factory("session", ["store", "i18n"], function (store, i18n) {
  store.put("greeting", i18n.t("hello"));
  return { user: "anon", greeting: store.get("greeting") };
});
app.run(function (injector) {
  var logger = injector.get("logger");
  logger.log("app started");
});

// bootstrap: create the injector and eagerly instantiate everything
var injector = new Injector([core, widgets, app]);
angular.injectorCache.app = injector;
var names = ["appName", "version", "logger", "http", "store", "i18n", "session"];
var instances = [];
for (var n = 0; n < names.length; n++) {
  instances.push(injector.get(names[n]));
}
for (var r = 0; r < app.runBlocks.length; r++) {
  app.runBlocks[r](injector);
}

// warm up the digest cycle over a small scope tree
var rootScope = new Scope(null, 0);
var scopeSeq = 1;
for (var s = 0; s < 2; s++) {
  var child = rootScope.newChild(scopeSeq++);
  child.newChild(scopeSeq++);
}
var fired = 0;
rootScope.watch("user", function (now, old) { fired++; });
for (var c2 = 0; c2 < rootScope.children.length; c2++) {
  rootScope.children[c2].watch("items", function (now, old) { fired++; });
  rootScope.children[c2].set("items", c2);
}
rootScope.set("user", "alice");
var rounds = 0;
while (rootScope.digestOnce() > 0 && rounds < 10) { rounds++; }

// introspection pass: reads provider/directive/filter entries at fresh sites
function describeModule(mod) {
  var parts = [mod.name, "deps:" + mod.requires.length];
  for (var p = 0; p < mod.providers.length; p++) {
    var entry = mod.providers[p];
    parts.push(entry.kind + ":" + entry.name + (entry.eager ? "!" : ""));
  }
  for (var d = 0; d < mod.directives.length; d++) {
    var dir = mod.directives[d];
    parts.push("dir:" + dir.name + "/" + dir.restrict + "/" + dir.priority);
  }
  for (var f = 0; f < mod.filters.length; f++) {
    parts.push("filter:" + mod.filters[f].name);
  }
  return parts.join(",");
}

var manifest = [];
for (var modName in angular.modules) {
  manifest.push(describeModule(angular.modules[modName]));
}

// event-system warmup
var eventsSeen = [];
rootScope.on("app:start", function (event, payload) {
  eventsSeen.push("root:" + payload);
});
rootScope.children[0].on("app:start", function (event, payload) {
  eventsSeen.push("child:" + payload);
});
var emitted = rootScope.children[0].emit("app:start", "up");
var broadcasted = rootScope.broadcast("app:start", "down");

// interpolation warmup
var interpolate = injector.get("interpolate");
var greetTemplate = interpolate.compile("Hello {{user}}, you have {{count}} alerts");
var greeting2 = greetTemplate({ user: "ada", count: 3 });
var cachedTemplate = interpolate.compile("Hello {{user}}, you have {{count}} alerts");

var cache = injector.get("cache");
cache.put("k1", 100);
cache.get("k1");
cache.get("k1");

var session = injector.get("session");
var httpResult = injector.get("http").get("/api/items");
var banner = injector.get("appName") + " " + injector.get("version");
console.log(
  "angular-like ready:",
  session.greeting === "Hello" && httpResult.status === 200 &&
  banner === "ric-demo 1.0" && fired >= 3 && rounds >= 1 &&
  injector.get("logger").count() >= 3 && manifest.length === 3 &&
  emitted === 2 && broadcasted === 2 &&
  greeting2 === "Hello ada, you have 3 alerts" &&
  cachedTemplate === greetTemplate && interpolate.compileCount === 1 &&
  cache.stats().hits === 2 && injector.get("config").pageSize === 25
);
return angular;
})();
"""
