'''jQuery-like workload: DOM manipulation library over a synthetic DOM.

Initialization pattern mimicked: build a small synthetic DOM tree (element
nodes with attribute/style sub-objects), a wrapper type with a large
prototype of chainable methods, a selector mini-engine, event registry and
attribute/CSS hooks tables.  jQuery is the paper's second-largest workload
(271 hidden classes, 1547 misses).
'''

NAME = "jquerylike"
DESCRIPTION = "DOM library: synthetic DOM, chainable wrapper, selector engine"

SOURCE = r"""
// jquery-like DOM manipulation library initialization (IIFE module pattern)
var jQuery = (function () {

// ---- a synthetic DOM (the substrate a browser would provide) -----------------
var domIdCounter = 0;

function DomElement(tag) {
  this.tagName = tag;
  this.id = "";
  this.className = "";
  this.children = [];
  this.parent = null;
  this.attributes = {};
  this.style = {};
  this.listeners = {};
  this.textContent = "";
  this.uid = ++domIdCounter;
}

DomElement.prototype.appendChild = function (child) {
  child.parent = this;
  this.children.push(child);
  return child;
};

DomElement.prototype.setAttribute = function (name, value) {
  this.attributes[name] = value;
  if (name === "id") { this.id = value; }
  if (name === "class") { this.className = value; }
};

DomElement.prototype.getAttribute = function (name) {
  var v = this.attributes[name];
  return v === undefined ? null : v;
};

DomElement.prototype.hasClass = function (name) {
  var classes = this.className.split(" ");
  for (var i = 0; i < classes.length; i++) {
    if (classes[i] === name) { return true; }
  }
  return false;
};

function createDocument() {
  var doc = new DomElement("html");
  var body = doc.appendChild(new DomElement("body"));
  var header = body.appendChild(new DomElement("div"));
  header.setAttribute("id", "header");
  header.setAttribute("class", "container top");
  var nav = header.appendChild(new DomElement("ul"));
  nav.setAttribute("class", "nav");
  var labels = ["home", "docs", "blog"];
  for (var i = 0; i < labels.length; i++) {
    var li = nav.appendChild(new DomElement("li"));
    li.setAttribute("class", "nav-item");
    var a = li.appendChild(new DomElement("a"));
    a.setAttribute("href", "/" + labels[i]);
    a.textContent = labels[i];
  }
  var main = body.appendChild(new DomElement("div"));
  main.setAttribute("id", "main");
  main.setAttribute("class", "container");
  for (var s = 0; s < 2; s++) {
    var section = main.appendChild(new DomElement("section"));
    section.setAttribute("class", "card");
    var h2 = section.appendChild(new DomElement("h2"));
    h2.textContent = "Section " + s;
    var p = section.appendChild(new DomElement("p"));
    p.setAttribute("class", "text body");
    p.textContent = "content " + s;
  }
  var footer = body.appendChild(new DomElement("div"));
  footer.setAttribute("id", "footer");
  footer.setAttribute("class", "container bottom");
  return doc;
}

var document = createDocument();

// ---- the library itself --------------------------------------------------------
var jQuery = {};
jQuery.version = "3.jsl";
jQuery.fn = {};
jQuery.cssHooks = {};
jQuery.attrHooks = {};
jQuery.eventRegistry = [];
jQuery.readyCallbacks = [];

function walkDom(node, visit) {
  visit(node);
  for (var i = 0; i < node.children.length; i++) {
    walkDom(node.children[i], visit);
  }
}

function matchesSelector(node, selector) {
  var first = selector.charAt(0);
  if (first === "#") { return node.id === selector.substring(1); }
  if (first === ".") { return node.hasClass(selector.substring(1)); }
  return node.tagName === selector;
}

function querySelectorAll(root, selector) {
  var found = [];
  var parts = selector.split(" ");
  var last = parts[parts.length - 1];
  walkDom(root, function (node) {
    if (matchesSelector(node, last)) {
      // verify ancestors for compound selectors
      var ok = true;
      var ancestor = node.parent;
      for (var p = parts.length - 2; p >= 0; p--) {
        var matched = false;
        while (ancestor !== null) {
          if (matchesSelector(ancestor, parts[p])) { matched = true; break; }
          ancestor = ancestor.parent;
        }
        if (!matched) { ok = false; break; }
      }
      if (ok) { found.push(node); }
    }
  });
  return found;
}

function JQueryWrapper(elements, selector) {
  this.elements = elements;
  this.length = elements.length;
  this.selector = selector;
  this.prevObject = null;
}

jQuery.fn.init = function (selector) {
  var wrapper = new JQueryWrapper(querySelectorAll(document, selector), selector);
  return wrapper;
};

var $ = function (selector) { return jQuery.fn.init(selector); };

JQueryWrapper.prototype.each = function (fn) {
  for (var i = 0; i < this.elements.length; i++) {
    fn(i, this.elements[i]);
  }
  return this;
};

JQueryWrapper.prototype.addClass = function (name) {
  return this.each(function (i, el) {
    if (!el.hasClass(name)) {
      el.className = el.className.length > 0 ? el.className + " " + name : name;
    }
  });
};

JQueryWrapper.prototype.removeClass = function (name) {
  return this.each(function (i, el) {
    var classes = el.className.split(" ");
    var kept = [];
    for (var c = 0; c < classes.length; c++) {
      if (classes[c] !== name && classes[c].length > 0) { kept.push(classes[c]); }
    }
    el.className = kept.join(" ");
  });
};

JQueryWrapper.prototype.attr = function (name, value) {
  if (value === undefined) {
    if (this.elements.length === 0) { return null; }
    var hook = jQuery.attrHooks[name];
    var raw = this.elements[0].getAttribute(name);
    return hook !== undefined ? hook.get(raw) : raw;
  }
  return this.each(function (i, el) { el.setAttribute(name, value); });
};

JQueryWrapper.prototype.css = function (name, value) {
  if (value === undefined) {
    if (this.elements.length === 0) { return null; }
    var hook = jQuery.cssHooks[name];
    var raw = this.elements[0].style[name];
    if (raw === undefined) { raw = null; }
    return hook !== undefined ? hook.get(raw) : raw;
  }
  return this.each(function (i, el) { el.style[name] = value; });
};

JQueryWrapper.prototype.text = function (value) {
  if (value === undefined) {
    var out = "";
    this.each(function (i, el) { out += el.textContent; });
    return out;
  }
  return this.each(function (i, el) { el.textContent = value; });
};

JQueryWrapper.prototype.on = function (eventName, handler) {
  return this.each(function (i, el) {
    if (el.listeners[eventName] === undefined) { el.listeners[eventName] = []; }
    el.listeners[eventName].push(handler);
    jQuery.eventRegistry.push({ element: el, event: eventName, handler: handler });
  });
};

JQueryWrapper.prototype.trigger = function (eventName) {
  return this.each(function (i, el) {
    var handlers = el.listeners[eventName];
    if (handlers !== undefined) {
      for (var h = 0; h < handlers.length; h++) {
        handlers[h]({ type: eventName, target: el, timeStamp: h });
      }
    }
  });
};

JQueryWrapper.prototype.find = function (selector) {
  var found = [];
  this.each(function (i, el) {
    var sub = querySelectorAll(el, selector);
    for (var f = 0; f < sub.length; f++) { found.push(sub[f]); }
  });
  var wrapper = new JQueryWrapper(found, selector);
  wrapper.prevObject = this;
  return wrapper;
};

JQueryWrapper.prototype.parent = function () {
  var parents = [];
  this.each(function (i, el) {
    if (el.parent !== null) { parents.push(el.parent); }
  });
  var wrapper = new JQueryWrapper(parents, "<parent>");
  wrapper.prevObject = this;
  return wrapper;
};

JQueryWrapper.prototype.first = function () {
  var subset = this.elements.length > 0 ? [this.elements[0]] : [];
  var wrapper = new JQueryWrapper(subset, this.selector);
  wrapper.prevObject = this;
  return wrapper;
};

JQueryWrapper.prototype.filter = function (selector) {
  var kept = [];
  this.each(function (i, el) {
    if (matchesSelector(el, selector)) { kept.push(el); }
  });
  var wrapper = new JQueryWrapper(kept, selector);
  wrapper.prevObject = this;
  return wrapper;
};

JQueryWrapper.prototype.toggleClass = function (name) {
  return this.each(function (i, el) {
    if (el.hasClass(name)) {
      var classes = el.className.split(" ");
      var kept = [];
      for (var c = 0; c < classes.length; c++) {
        if (classes[c] !== name && classes[c].length > 0) { kept.push(classes[c]); }
      }
      el.className = kept.join(" ");
    } else {
      el.className = el.className.length > 0 ? el.className + " " + name : name;
    }
  });
};

// ---- the long tail of the jQuery API: defined at init, mostly unused on
// ---- any given page (each definition is a transitioning store) ---------------------
JQueryWrapper.prototype.html = function (value) {
  if (value === undefined) { return this.elements.length > 0 ? this.elements[0].textContent : null; }
  return this.each(function (i, el) { el.textContent = value; });
};
JQueryWrapper.prototype.val = function (value) {
  if (value === undefined) { return this.attr("value"); }
  return this.attr("value", value);
};
JQueryWrapper.prototype.prop = function (name, value) { return this.attr(name, value); };
JQueryWrapper.prototype.removeAttr = function (name) {
  return this.each(function (i, el) { delete el.attributes[name]; });
};
JQueryWrapper.prototype.show = function () { return this.css("display", "block"); };
JQueryWrapper.prototype.hide = function () { return this.css("display", "none"); };
JQueryWrapper.prototype.toggle = function () {
  return this.each(function (i, el) {
    el.style.display = el.style.display === "none" ? "block" : "none";
  });
};
JQueryWrapper.prototype.append = function (child) {
  return this.each(function (i, el) { el.appendChild(child); });
};
JQueryWrapper.prototype.empty = function () {
  return this.each(function (i, el) { el.children = []; });
};
JQueryWrapper.prototype.remove = function () {
  return this.each(function (i, el) {
    if (el.parent !== null) {
      var kept = [];
      for (var c = 0; c < el.parent.children.length; c++) {
        if (el.parent.children[c] !== el) { kept.push(el.parent.children[c]); }
      }
      el.parent.children = kept;
    }
  });
};
JQueryWrapper.prototype.children = function () {
  var all = [];
  this.each(function (i, el) {
    for (var c = 0; c < el.children.length; c++) { all.push(el.children[c]); }
  });
  var wrapper = new JQueryWrapper(all, "<children>");
  wrapper.prevObject = this;
  return wrapper;
};
JQueryWrapper.prototype.siblings = function () {
  var all = [];
  this.each(function (i, el) {
    if (el.parent === null) { return; }
    for (var c = 0; c < el.parent.children.length; c++) {
      if (el.parent.children[c] !== el) { all.push(el.parent.children[c]); }
    }
  });
  var wrapper = new JQueryWrapper(all, "<siblings>");
  wrapper.prevObject = this;
  return wrapper;
};
JQueryWrapper.prototype.eq = function (index) {
  var subset = index >= 0 && index < this.elements.length ? [this.elements[index]] : [];
  var wrapper = new JQueryWrapper(subset, this.selector);
  wrapper.prevObject = this;
  return wrapper;
};
JQueryWrapper.prototype.last = function () { return this.eq(this.elements.length - 1); };
JQueryWrapper.prototype.not = function (selector) {
  var kept = [];
  this.each(function (i, el) { if (!matchesSelector(el, selector)) { kept.push(el); } });
  var wrapper = new JQueryWrapper(kept, this.selector);
  wrapper.prevObject = this;
  return wrapper;
};
JQueryWrapper.prototype.has = function (selector) {
  var kept = [];
  this.each(function (i, el) {
    if (querySelectorAll(el, selector).length > 0) { kept.push(el); }
  });
  var wrapper = new JQueryWrapper(kept, this.selector);
  wrapper.prevObject = this;
  return wrapper;
};
JQueryWrapper.prototype.is = function (selector) {
  for (var i = 0; i < this.elements.length; i++) {
    if (matchesSelector(this.elements[i], selector)) { return true; }
  }
  return false;
};
JQueryWrapper.prototype.index = function () {
  if (this.elements.length === 0 || this.elements[0].parent === null) { return -1; }
  var siblings = this.elements[0].parent.children;
  for (var i = 0; i < siblings.length; i++) {
    if (siblings[i] === this.elements[0]) { return i; }
  }
  return -1;
};
JQueryWrapper.prototype.width = function (value) { return this.css("width", value); };
JQueryWrapper.prototype.height = function (value) { return this.css("height", value); };
JQueryWrapper.prototype.offset = function () {
  return { top: 0, left: 0 };
};
JQueryWrapper.prototype.position = function () {
  return { top: 0, left: 0, relative: true };
};
JQueryWrapper.prototype.one = function (eventName, handler) {
  var self = this;
  var fired = false;
  return this.on(eventName, function (event) {
    if (!fired) { fired = true; handler(event); }
  });
};
JQueryWrapper.prototype.off = function (eventName) {
  return this.each(function (i, el) { el.listeners[eventName] = undefined; });
};
JQueryWrapper.prototype.hover = function (over, out) {
  this.on("mouseenter", over);
  return this.on("mouseleave", out);
};
JQueryWrapper.prototype.focus = function (handler) { return this.on("focus", handler); };
JQueryWrapper.prototype.blur = function (handler) { return this.on("blur", handler); };
JQueryWrapper.prototype.click = function (handler) {
  if (handler === undefined) { return this.trigger("click"); }
  return this.on("click", handler);
};
JQueryWrapper.prototype.data = function (name, value) {
  return this.attr("data-" + name, value);
};
JQueryWrapper.prototype.get = function (index) {
  return index === undefined ? this.elements : this.elements[index];
};
JQueryWrapper.prototype.add = function (selector) {
  var merged = this.elements.concat(querySelectorAll(document, selector));
  var wrapper = new JQueryWrapper(merged, this.selector + "," + selector);
  wrapper.prevObject = this;
  return wrapper;
};
JQueryWrapper.prototype.end = function () {
  return this.prevObject !== null ? this.prevObject : this;
};
JQueryWrapper.prototype.size = function () { return this.length; };
JQueryWrapper.prototype.toArray = function () { return this.elements.slice(0); };
JQueryWrapper.prototype.map = function (fn) {
  var out = [];
  this.each(function (i, el) { out.push(fn(i, el)); });
  return out;
};
JQueryWrapper.prototype.contents = function () { return this.children(); };
JQueryWrapper.prototype.closest = function (selector) {
  var found = [];
  this.each(function (i, el) {
    var current = el;
    while (current !== null) {
      if (matchesSelector(current, selector)) { found.push(current); break; }
      current = current.parent;
    }
  });
  var wrapper = new JQueryWrapper(found, selector);
  wrapper.prevObject = this;
  return wrapper;
};

// ---- attribute and CSS hooks tables ------------------------------------------------
jQuery.attrHooks.href = {
  get: function (raw) { return raw === null ? null : "https://example.test" + raw; }
};
jQuery.attrHooks.tabindex = {
  get: function (raw) { return raw === null ? -1 : parseInt(raw, 10); }
};
jQuery.cssHooks.opacity = {
  get: function (raw) { return raw === null ? 1 : parseFloat(raw); }
};
jQuery.cssHooks.width = {
  get: function (raw) { return raw === null ? 0 : parseFloat(raw); }
};
jQuery.cssHooks.height = {
  get: function (raw) { return raw === null ? 0 : parseFloat(raw); }
};
jQuery.cssHooks.margin = {
  get: function (raw) { return raw === null ? "0px" : raw; }
};
jQuery.attrHooks.checked = {
  get: function (raw) { return raw === "checked" || raw === "true"; }
};
jQuery.attrHooks.disabled = {
  get: function (raw) { return raw !== null; }
};
jQuery.expr = {
  cacheLength: 50,
  match: { ID: "#", CLASS: ".", TAG: "*" },
  find: {},
  relative: { ">": { dir: "parentNode", first: true }, " ": { dir: "parentNode" } }
};
jQuery.support = {
  boxModel: true, opacity: true, cssFloat: true, checkOn: true,
  noCloneEvent: true, reliableMarginRight: true
};
jQuery.fx = { off: false, interval: 13, speeds: { slow: 600, fast: 200, _default: 400 } };

// ---- Deferred: jQuery's promise-lite (synchronous resolution model) -----------
function Deferred() {
  this.state = "pending";
  this.valueSlot = undefined;
  this.doneCallbacks = [];
  this.failCallbacks = [];
  this.alwaysCallbacks = [];
}

Deferred.prototype.done = function (fn) {
  if (this.state === "resolved") { fn(this.valueSlot); }
  else if (this.state === "pending") { this.doneCallbacks.push(fn); }
  return this;
};

Deferred.prototype.fail = function (fn) {
  if (this.state === "rejected") { fn(this.valueSlot); }
  else if (this.state === "pending") { this.failCallbacks.push(fn); }
  return this;
};

Deferred.prototype.always = function (fn) {
  if (this.state !== "pending") { fn(this.valueSlot); }
  else { this.alwaysCallbacks.push(fn); }
  return this;
};

Deferred.prototype.resolve = function (value) {
  if (this.state !== "pending") { return this; }
  this.state = "resolved";
  this.valueSlot = value;
  for (var i = 0; i < this.doneCallbacks.length; i++) { this.doneCallbacks[i](value); }
  for (var j = 0; j < this.alwaysCallbacks.length; j++) { this.alwaysCallbacks[j](value); }
  return this;
};

Deferred.prototype.reject = function (reason) {
  if (this.state !== "pending") { return this; }
  this.state = "rejected";
  this.valueSlot = reason;
  for (var i = 0; i < this.failCallbacks.length; i++) { this.failCallbacks[i](reason); }
  for (var j = 0; j < this.alwaysCallbacks.length; j++) { this.alwaysCallbacks[j](reason); }
  return this;
};

Deferred.prototype.then = function (onDone) {
  var next = new Deferred();
  this.done(function (value) { next.resolve(onDone(value)); });
  this.fail(function (reason) { next.reject(reason); });
  return next;
};

jQuery.Deferred = function () { return new Deferred(); };

jQuery.when = function (deferreds) {
  var combined = new Deferred();
  var remaining = deferreds.length;
  var results = [];
  if (remaining === 0) { return combined.resolve(results); }
  for (var i = 0; i < deferreds.length; i++) {
    (function (index) {
      deferreds[index].done(function (value) {
        results[index] = value;
        remaining--;
        if (remaining === 0) { combined.resolve(results); }
      });
      deferreds[index].fail(function (reason) { combined.reject(reason); });
    })(i);
  }
  return combined;
};

// a fake ajax built on Deferred (synchronous "network")
jQuery.ajaxResponses = {};
jQuery.ajax = function (url) {
  var deferred = new Deferred();
  var canned = jQuery.ajaxResponses[url];
  if (canned !== undefined) { deferred.resolve(canned); }
  else { deferred.reject({ status: 404, url: url }); }
  return deferred;
};

jQuery.ready = function (fn) {
  jQuery.readyCallbacks.push(fn);
  fn($);
};

// ---- initialization: typical page-setup work ----------------------------------------
var clicks = 0;
jQuery.ready(function ($) {
  $(".nav-item").addClass("initialized");
  $("#header").css("background", "white").css("color", "#333");
  $(".card").each(function (i, el) { el.style.order = i; });
  $(".card h2").addClass("title");
  $("#main .text").addClass("prose");
  $("a").on("click", function (event) { clicks++; });
  $("#footer").text("generated footer");
});

// feature-audit passes: fresh read sites over the DOM element shape
function outerHtml(node) {
  var out = "<" + node.tagName;
  if (node.id.length > 0) { out += " id=" + node.id; }
  if (node.className.length > 0) { out += " class=" + node.className; }
  out += ">";
  if (node.textContent.length > 0) { out += node.textContent; }
  for (var i = 0; i < node.children.length; i++) { out += outerHtml(node.children[i]); }
  return out + "</" + node.tagName + ">";
}

function domStats(node, stats) {
  stats.nodes++;
  if (node.parent !== null) { stats.attached++; }
  if (node.uid > 0) { stats.identified++; }
  stats.depth = Math.max(stats.depth, node.children.length);
  for (var i = 0; i < node.children.length; i++) { domStats(node.children[i], stats); }
  return stats;
}

var pageHtml = outerHtml(document);
var pageStats = domStats(document, { nodes: 0, attached: 0, identified: 0, depth: 0 });

// deferred/ajax warmup
jQuery.ajaxResponses["/api/user"] = { name: "ada", role: "eng" };
jQuery.ajaxResponses["/api/flags"] = { beta: true };
var userName = "";
var failStatus = 0;
var chainResult = 0;
jQuery.ajax("/api/user").done(function (data) { userName = data.name; });
jQuery.ajax("/missing").fail(function (error) { failStatus = error.status; });
jQuery.Deferred().resolve(20).then(function (v) { return v + 1; }).done(function (v) {
  chainResult = v;
});
var whenResults = null;
jQuery.when([jQuery.ajax("/api/user"), jQuery.ajax("/api/flags")]).done(function (rs) {
  whenResults = rs;
});

var navCount = $(".nav-item").length;
var titleText = $(".card h2").first().text();
var links = $("a");
links.trigger("click");
var firstHref = links.first().attr("href");
var headerColor = $("#header").css("color");
var initialized = $(".initialized").length;
$(".nav-item").toggleClass("active");
var actives = $(".active").length;

console.log(
  "jquery-like ready:",
  navCount === 3 && titleText === "Section 0" && clicks === 3 &&
  firstHref === "https://example.test/home" && headerColor === "#333" &&
  initialized === 3 && actives === 3 &&
  pageHtml.length > 100 && pageStats.nodes === pageStats.attached + 1 &&
  userName === "ada" && failStatus === 404 && chainResult === 21 &&
  whenResults !== null && whenResults[1].beta === true
);
return jQuery;
})();
"""
