'''Synthetic "websites" loading the seven libraries in different orders.

The paper (§6) evaluates robustness by generating RIC information on one
synthetic website and reusing it on another that loads the same libraries
in a different order — the scenario where per-library IC information is
shared across sites.  Global-object ICs are order-sensitive, which is why
RIC keeps them disabled.
'''

from __future__ import annotations

#: Library load order of the first synthetic website (records are extracted
#: from this one).
WEBSITE_A_ORDER = [
    "angularlike",
    "camanlike",
    "handlebarslike",
    "jquerylike",
    "jsfeatlike",
    "reactlike",
    "underscorelike",
]

#: Load order of the second website (reuses website A's record).
WEBSITE_B_ORDER = [
    "underscorelike",
    "reactlike",
    "jquerylike",
    "handlebarslike",
    "jsfeatlike",
    "camanlike",
    "angularlike",
]


def website_scripts(order: list[str]) -> list[tuple[str, str]]:
    """Build the (filename, source) script list for a website."""
    from repro.workloads import WORKLOADS

    return [(f"{name}.jsl", WORKLOADS[name].source) for name in order]


def website_a() -> list[tuple[str, str]]:
    return website_scripts(WEBSITE_A_ORDER)


def website_b() -> list[tuple[str, str]]:
    return website_scripts(WEBSITE_B_ORDER)
