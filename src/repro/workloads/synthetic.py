"""Parameterized synthetic workload generator.

The paper's Table 1 identifies *misses per hidden class* — how many distinct
object access sites encounter each hidden class — as the quantity RIC's
linking exploits (each dependent site is an avertable miss).  This module
generates libraries with that quantity as an explicit knob, enabling the
sensitivity analysis in ``experiments.sensitivity_sweep``:

* ``shapes`` — number of distinct constructors (hidden-class families);
* ``fields_per_shape`` — transition-chain length per family;
* ``sites_per_shape`` — distinct read passes over every family (the lever);
* ``instances`` — objects built per family (volume, not misses).

All generated programs are deterministic and self-checking.
"""

from __future__ import annotations


def generate_library(
    shapes: int = 10,
    fields_per_shape: int = 4,
    sites_per_shape: int = 3,
    instances: int = 3,
) -> str:
    """Generate a jsl library with the requested IC structure."""
    if min(shapes, fields_per_shape, sites_per_shape, instances) < 1:
        raise ValueError("all generator parameters must be >= 1")

    lines: list[str] = [
        "// generated synthetic library",
        "var synth = (function () {",
        "var exports = {};",
        "var objects = [];",
    ]

    for shape in range(shapes):
        fields = [f"f{shape}_{i}" for i in range(fields_per_shape)]
        params = ", ".join(f"v{i}" for i in range(fields_per_shape))
        body = " ".join(
            f"this.{field} = v{i};" for i, field in enumerate(fields)
        )
        lines.append(f"function Shape{shape}({params}) {{ {body} }}")

        # One read function per (shape, pass): a distinct set of access
        # sites over the same hidden class.
        for site_pass in range(sites_per_shape):
            reads = " + ".join(f"o.{field}" for field in fields)
            lines.append(
                f"function read{shape}_{site_pass}(o) {{ return {reads}; }}"
            )

    lines.append("var checks = 0;")
    for shape in range(shapes):
        args = ", ".join(str(shape + i + 1) for i in range(fields_per_shape))
        expected = sum(shape + i + 1 for i in range(fields_per_shape))
        lines.append(f"var batch{shape} = [];")
        lines.append(
            f"for (var i{shape} = 0; i{shape} < {instances}; i{shape}++) "
            f"{{ batch{shape}.push(new Shape{shape}({args})); }}"
        )
        for site_pass in range(sites_per_shape):
            lines.append(
                f"for (var j{shape}_{site_pass} = 0; "
                f"j{shape}_{site_pass} < batch{shape}.length; "
                f"j{shape}_{site_pass}++) {{ "
                f"if (read{shape}_{site_pass}(batch{shape}[j{shape}_{site_pass}]) === {expected}) "
                f"{{ checks++; }} }}"
            )
        lines.append(f"objects.push(batch{shape});")

    expected_checks = shapes * sites_per_shape * instances
    lines.extend(
        [
            f'console.log("synthetic ready:", checks === {expected_checks});',
            "exports.objects = objects;",
            "exports.checks = checks;",
            "return exports;",
            "})();",
        ]
    )
    return "\n".join(lines)


def generated_scripts(
    shapes: int = 10,
    fields_per_shape: int = 4,
    sites_per_shape: int = 3,
    instances: int = 3,
) -> list[tuple[str, str]]:
    """The (filename, source) form the Engine consumes; the filename encodes
    the parameters so code/record caches key correctly per configuration."""
    name = (
        f"synthetic_s{shapes}_f{fields_per_shape}"
        f"_p{sites_per_shape}_i{instances}.jsl"
    )
    return [
        (
            name,
            generate_library(shapes, fields_per_shape, sites_per_shape, instances),
        )
    ]
