'''React-like workload: component framework initialization.

Initialization pattern mimicked: a virtual-DOM node factory producing many
structurally identical objects, a component registry of spec objects, and
several tree-walking passes (mount, diff, serialize) that *read* the same
shapes at many distinct object access sites.  This is the paper's
highest-miss, highest-reuse library: React has the most hidden classes
(360), the most IC misses (2356) and the highest fraction of
context-independent handlers (82.3%) — reads of own fields dominate.
'''

NAME = "reactlike"
DESCRIPTION = "Component framework: vdom factories, spec registry, tree walks"

_COMPONENT_DEFS = []
for _i, (_name, _extra) in enumerate(
    [
        ("Text", "content: ''"),
        ("Image", "src: '', width: 0, height: 0"),
        ("Button", "label: '', disabled: false"),
        ("Link", "href: '', target: '_self'"),
        ("List", "items: [], ordered: false"),
        ("ListItem", "value: null"),
        ("Panel", "title: '', collapsed: false"),
        ("Grid", "rows: 0, cols: 0"),
        ("Cell", "row: 0, col: 0, span: 1"),
        ("Form", "action: '', method: 'get'"),
        ("Input", "name: '', value: '', kind: 'text'"),
        ("Select", "name: '', options: []"),
        ("Checkbox", "name: '', checked: false"),
        ("Modal", "title: '', visible: false, zIndex: 100"),
        ("Tooltip", "text: '', placement: 'top'"),
        ("Tabs", "active: 0, labels: []"),
        ("Badge", "count: 0, maxCount: 99"),
        ("Avatar", "src: '', size: 32, shape: 'circle'"),
        ("Spinner", "size: 16, speed: 1"),
        ("Card", "title: '', footer: '', elevated: true"),
        ("Table", "rows: [], striped: false"),
        ("TableRow", "cells: [], selected: false"),
        ("Menu", "items: [], anchor: 'left'"),
        ("MenuItem", "label: '', shortcut: ''"),
        ("Toolbar", "actions: [], dense: true"),
        ("Breadcrumb", "parts: [], separator: '/'"),
        ("Progress", "value: 0, max: 100"),
        ("Slider", "value: 50, step: 1"),
        ("Chip", "text: '', removable: false"),
        ("Divider", "vertical: false, inset: 0"),
        ("Drawer", "open: false, side: 'left'"),
        ("Snackbar", "message: '', duration: 3000"),
        ("Stepper", "steps: [], current: 0"),
        ("Rating", "stars: 0, outOf: 5"),
        ("Skeleton", "lines: 3, animated: true"),
    ]
):
    _first_prop = _extra.split(":")[0].strip()
    _COMPONENT_DEFS.append(
        f"""
registerComponent({{
  displayName: "{_name}",
  defaultProps: {{ {_extra} }},
  style: {{ margin{_i}: {_i}, padding{_i}: {_i * 2}, flag{_i}: true }},
  render: function (props, children) {{
    return h("{_name.lower()}", props, children);
  }}
}});
registerValidator("{_name}", function (comp) {{
  var defaults = comp.defaultProps;
  var style = comp.style;
  var weight = style.margin{_i} + style.padding{_i};
  if (style.flag{_i}) {{ weight += 1; }}
  if (defaults.{_first_prop} === undefined) {{ return -1; }}
  return weight;
}});
registerThemer("{_name}", function (comp) {{
  var style = comp.style;
  return "m" + style.margin{_i} + "p" + style.padding{_i} + (style.flag{_i} ? "+" : "-");
}});"""
    )

SOURCE = (
    r"""
// react-like component framework initialization (IIFE module pattern)
var React = (function () {
var React = {};
React.version = "16.jsl";
React.componentRegistry = {};
React.roots = [];
React.updateQueue = [];
React.idCounter = 0;

function nextId() {
  React.idCounter = React.idCounter + 1;
  return React.idCounter;
}

// The vnode factory: every call site allocates the same shape, so all
// vnodes share one hidden-class chain that is later *read* from dozens of
// distinct sites (mount/diff/serialize below).
function h(type, props, children) {
  var node = {};
  node.type = type;
  node.props = props === undefined ? null : props;
  node.children = children === undefined ? [] : children;
  node.key = null;
  node.ref = null;
  node.owner = null;
  node.depth = 0;
  return node;
}

function Component(spec) {
  this.displayName = spec.displayName;
  this.defaultProps = spec.defaultProps;
  this.style = spec.style;
  this.render = spec.render;
  this.mountCount = 0;
}

Component.prototype.resolveProps = function (props) {
  if (props === null || props === undefined) {
    // fast path: no overrides, share the defaults (React does the same
    // when no props object is supplied)
    return this.defaultProps;
  }
  var resolved = {};
  var defaults = this.defaultProps;
  for (var k in defaults) { resolved[k] = defaults[k]; }
  for (var p in props) { resolved[p] = props[p]; }
  return resolved;
};

Component.prototype.create = function (props, children) {
  this.mountCount = this.mountCount + 1;
  var node = this.render(this.resolveProps(props), children || []);
  node.owner = this.displayName;
  return node;
};

function registerComponent(spec) {
  var component = new Component(spec);
  React.componentRegistry[spec.displayName] = component;
  return component;
}

React.validators = {};
React.themers = {};

function registerValidator(name, fn) {
  React.validators[name] = fn;
}

function registerThemer(name, fn) {
  React.themers[name] = fn;
}
"""
    + "".join(_COMPONENT_DEFS)
    + r"""

// ---- instance creation: exercise every component ---------------------------
function componentNames() {
  var names = [];
  for (var k in React.componentRegistry) { names.push(k); }
  return names;
}

function buildTree(depth) {
  var names = componentNames();
  var root = React.componentRegistry.Panel.create({ title: "root" }, []);
  var current = root;
  for (var level = 0; level < depth; level++) {
    var rowChildren = [];
    for (var i = 0; i < names.length; i++) {
      var component = React.componentRegistry[names[i]];
      var child = component.create(null, []);
      child.key = names[i] + ":" + level;
      child.depth = level + 1;
      rowChildren.push(child);
    }
    var row = React.componentRegistry.Grid.create({ rows: 1, cols: rowChildren.length }, rowChildren);
    row.depth = level;
    current.children.push(row);
    current = row;
  }
  return root;
}

// ---- mount pass: reads vnode fields (sites distinct from diff's) ------------
function mountNode(node, container, depth) {
  var instance = {};
  instance.id = nextId();
  instance.type = node.type;
  instance.key = node.key;
  instance.propsSnapshot = node.props;
  instance.childCount = node.children.length;
  instance.parent = container;
  instance.depth = depth;
  var mounted = [];
  for (var i = 0; i < node.children.length; i++) {
    mounted.push(mountNode(node.children[i], instance, depth + 1));
  }
  instance.childInstances = mounted;
  return instance;
}

// ---- diff pass: a second, distinct family of read sites ----------------------
function diffNode(a, b) {
  var patches = 0;
  if (a.type !== b.type) { patches++; }
  if (a.key !== b.key) { patches++; }
  if (a.owner !== b.owner) { patches++; }
  var aProps = a.props;
  var bProps = b.props;
  if (aProps !== null && bProps !== null) {
    for (var k in aProps) {
      if (aProps[k] !== bProps[k]) { patches++; }
    }
  } else if (aProps !== bProps) {
    patches++;
  }
  var n = Math.min(a.children.length, b.children.length);
  for (var i = 0; i < n; i++) {
    patches += diffNode(a.children[i], b.children[i]);
  }
  patches += Math.abs(a.children.length - b.children.length);
  return patches;
}

// ---- serialize pass: a third family of read sites ------------------------------
function serializeNode(node) {
  var out = "<" + node.type;
  if (node.key !== null) { out += " key=" + node.key; }
  if (node.owner !== null) { out += " owner=" + node.owner; }
  var children = node.children;
  if (children.length === 0) { return out + "/>"; }
  out += ">";
  for (var i = 0; i < children.length; i++) {
    out += serializeNode(children[i]);
  }
  return out + "</" + node.type + ">";
}

function countNodes(node) {
  var n = 1;
  for (var i = 0; i < node.children.length; i++) {
    n += countNodes(node.children[i]);
  }
  return n;
}

function collectStyles() {
  var weights = [];
  var names = componentNames();
  for (var i = 0; i < names.length; i++) {
    var style = React.componentRegistry[names[i]].style;
    var weight = 0;
    for (var k in style) {
      var v = style[k];
      if (typeof v === "number") { weight += v; }
    }
    weights.push(weight);
  }
  return weights;
}

// ---- validation pass: reads spec fields at fresh sites ---------------------
function validateRegistry() {
  var problems = 0;
  var names = componentNames();
  for (var i = 0; i < names.length; i++) {
    var comp = React.componentRegistry[names[i]];
    if (typeof comp.render !== "function") { problems++; }
    if (comp.displayName.length === 0) { problems++; }
    if (comp.defaultProps === undefined) { problems++; }
    if (comp.mountCount < 0) { problems++; }
    if (comp.style === undefined) { problems++; }
  }
  return problems;
}

// ---- audit pass: a fourth family of vnode read sites --------------------------
function auditNode(node, report) {
  if (node.type.length === 0) { report.untyped++; }
  if (node.props !== null) { report.withProps++; }
  if (node.key !== null) { report.keyed++; }
  if (node.ref !== null) { report.withRef++; }
  if (node.owner !== null) { report.owned++; }
  if (node.depth >= 0) { report.total++; }
  for (var i = 0; i < node.children.length; i++) { auditNode(node.children[i], report); }
  return report;
}

// ---- snapshot pass: reads mounted-instance fields at fresh sites ---------------
function snapshotInstance(instance, acc) {
  acc.push(instance.type + "#" + instance.id + "@" + instance.depth + ":" + instance.childCount);
  if (instance.key !== null) { acc.push("key:" + instance.key); }
  for (var i = 0; i < instance.childInstances.length; i++) {
    snapshotInstance(instance.childInstances[i], acc);
  }
  return acc;
}

// ---- run the initialization --------------------------------------------------
var treeA = buildTree(2);
var treeB = buildTree(2);
var rootInstance = mountNode(treeA, null, 0);
React.roots.push(rootInstance);
var patches = diffNode(treeA, treeB);
var markup = serializeNode(treeA);
var totalNodes = countNodes(treeA);
var styleWeights = collectStyles();
var styleTotal = 0;
for (var sw = 0; sw < styleWeights.length; sw++) { styleTotal += styleWeights[sw]; }
var problems = validateRegistry();
var validatorScore = 0;
var themeTags = [];
var vnames = componentNames();
for (var vi = 0; vi < vnames.length; vi++) {
  var vname = vnames[vi];
  var comp2 = React.componentRegistry[vname];
  validatorScore += React.validators[vname](comp2);
  themeTags.push(React.themers[vname](comp2));
}
var audit = auditNode(treeA, { untyped: 0, withProps: 0, keyed: 0, withRef: 0, owned: 0, total: 0 });
var snapshot = snapshotInstance(rootInstance, []);
console.log(
  "react-like ready:",
  totalNodes > 30 && patches === 0 && markup.length > 200 && styleTotal > 0 &&
  problems === 0 && audit.total === totalNodes && snapshot.length >= totalNodes &&
  validatorScore > 0 && themeTags.length === 35
);
return React;
})();
"""
)
