"""A thread-safe LRU bounded by entry count *and* total payload bytes.

The daemon's serving tier: envelopes (already-serializable dicts) keyed
by :func:`repro.server.protocol.cache_key`.  Both bounds matter — record
count keeps the key space sane, byte budget keeps a few huge records
from evicting everything else.  Eviction is strictly least-recently-used
(gets and puts both refresh recency); evicted entries survive in the
daemon's write-through disk store, so eviction costs a re-load, never
data.
"""

from __future__ import annotations

import threading
from collections import OrderedDict


class LRUCache:
    """Byte- and count-bounded LRU over ``(envelope, nbytes)`` entries."""

    def __init__(self, max_records: int = 256, max_bytes: int = 64 * 1024 * 1024):
        if max_records < 1:
            raise ValueError("max_records must be >= 1")
        if max_bytes < 1:
            raise ValueError("max_bytes must be >= 1")
        self.max_records = max_records
        self.max_bytes = max_bytes
        self._entries: "OrderedDict[str, tuple[dict, int]]" = OrderedDict()
        self._lock = threading.Lock()
        self.bytes_used = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: str) -> dict | None:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry[0]

    def put(self, key: str, envelope: dict, nbytes: int) -> int:
        """Insert/refresh an entry; returns how many entries were evicted.

        An entry larger than the whole byte budget is refused outright
        (returns -1) rather than evicting the entire cache for nothing.
        """
        if nbytes > self.max_bytes:
            return -1
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self.bytes_used -= old[1]
            self._entries[key] = (envelope, nbytes)
            self.bytes_used += nbytes
            evicted = 0
            while (
                len(self._entries) > self.max_records
                or self.bytes_used > self.max_bytes
            ):
                _, (_, freed) = self._entries.popitem(last=False)
                self.bytes_used -= freed
                self.evictions += 1
                evicted += 1
            return evicted

    def evict(self, key: str) -> bool:
        with self._lock:
            entry = self._entries.pop(key, None)
            if entry is None:
                return False
            self.bytes_used -= entry[1]
            self.evictions += 1
            return True

    def clear(self) -> int:
        with self._lock:
            count = len(self._entries)
            self._entries.clear()
            self.bytes_used = 0
            self.evictions += count
            return count

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict:
        with self._lock:
            return {
                "records": len(self._entries),
                "bytes": self.bytes_used,
                "max_records": self.max_records,
                "max_bytes": self.max_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }
