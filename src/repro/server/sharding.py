"""``ShardedRecordStore`` — consistent-hash routing over a ricd fleet.

One engine process, N record-cache daemons: each record's key is placed
on a consistent-hash ring (:class:`HashRing`, SHA-1 points, virtual
nodes so load stays even at small N) and owned by the first R distinct
endpoints clockwise — the **preference list**.  PUTs fan out to all R
replicas; GETs ask the primary and fail over down the list, so one dead
shard degrades only its arc of the ring instead of the whole fleet.

Each endpoint is wrapped in its own :class:`~repro.server.client.
RemoteRecordStore`, which contributes the per-shard machinery this
router deliberately does not reimplement: retry budget, circuit
breaker, single connection per shard, envelope re-verification, and
epoch fencing.  The router composes their *stat-free* primitives
(``remote_get``/``remote_put``) and keeps its own **logical** stats —
one outcome per logical operation, however many replicas were probed —
so ``ric_remote_hits`` still means "records the fleet supplied", not
"wire round-trips that happened".  The exception is ``failovers``,
which counts replica hops explicitly: it is *the* signal that a shard
is absorbing its neighbour's arc.

All shard clients share one :class:`~repro.server.client.EpochClock`,
so a fleet epoch learned from any shard immediately fences stale hits
from every other shard — the property that makes ``--bump-epoch``
safe under partitions: a lagging replica can answer, but its pre-bump
records are refused client-side (and the gossiped epoch invalidates the
replica itself on contact).

The degradation ladder is unchanged from the single-daemon client: when
every replica of a key is unreachable the shared local fallback store
absorbs the request, the run completes with identical output, and only
``ric_remote_*`` counters move.  Satisfies
:class:`~repro.ric.store.RecordStoreProtocol`.
"""

from __future__ import annotations

import bisect
import hashlib
import logging
import threading
import typing

from repro.bytecode.cache import source_hash
from repro.ric.icrecord import ICRecord
from repro.ric.store import RecordStore
from repro.server.client import EpochClock, RemoteRecordStore, _GetFlight

logger = logging.getLogger(__name__)


class HashRing:
    """A consistent-hash ring with virtual nodes.

    Each endpoint contributes ``vnodes`` points (SHA-1 of
    ``"endpoint#i"``, first 8 bytes); a key hashes to a point and is
    owned by the next ``n`` *distinct* endpoints clockwise.  Virtual
    nodes keep arcs even for small fleets; consistent hashing keeps
    most keys in place when an endpoint joins or leaves (only the
    departed arc remaps — the property that makes a fleet resize cheap
    for a cache).
    """

    def __init__(self, endpoints, vnodes: int = 64):
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = vnodes
        # De-dup while preserving declaration order (the order only
        # matters for tie-free reproducibility of tests and docs).
        self._endpoints = list(dict.fromkeys(str(spec) for spec in endpoints))
        ring: "list[tuple[int, str]]" = []
        for endpoint in self._endpoints:
            for i in range(vnodes):
                ring.append((self._point(f"{endpoint}#{i}"), endpoint))
        ring.sort()
        self._ring = ring
        self._points = [point for point, _ in ring]

    @staticmethod
    def _point(label: str) -> int:
        digest = hashlib.sha1(label.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big")

    @property
    def endpoints(self) -> "list[str]":
        return list(self._endpoints)

    def __len__(self) -> int:
        return len(self._endpoints)

    def preference(self, key: str, n: int) -> "list[str]":
        """The first ``n`` distinct endpoints clockwise from ``key`` —
        replica 0 is the primary.  Returns fewer than ``n`` when the
        ring has fewer endpoints."""
        if not self._ring or n < 1:
            return []
        index = bisect.bisect_right(self._points, self._point(str(key)))
        chosen: "list[str]" = []
        for offset in range(len(self._ring)):
            endpoint = self._ring[(index + offset) % len(self._ring)][1]
            if endpoint not in chosen:
                chosen.append(endpoint)
                if len(chosen) >= n:
                    break
        return chosen

    def primary(self, key: str) -> "str | None":
        owners = self.preference(key, 1)
        return owners[0] if owners else None


class ShardedRecordStore:
    """Consistent-hash router over N ricd endpoints, replication R."""

    def __init__(
        self,
        endpoints,
        fallback: "RecordStore | None" = None,
        replication: int = 2,
        vnodes: int = 64,
        timeout_s: float = 0.5,
        retry_after_s: float = 1.0,
        retries: int = 1,
        backoff_s: float = 0.05,
        request_deadline_s: float = 2.0,
        retry_seed: "int | None" = None,
    ):
        self.ring = HashRing(endpoints, vnodes=vnodes)
        if not len(self.ring):
            raise ValueError("ShardedRecordStore needs at least one endpoint")
        self.fallback = fallback if fallback is not None else RecordStore()
        #: Effective replication factor, clamped to the fleet size.
        self.replication = max(1, min(replication, len(self.ring)))
        #: One fleet-wide epoch register shared by every shard client.
        self.epoch_clock = EpochClock()
        #: endpoint spec → its circuit-breakered client.  Clients get the
        #: shared fallback only so nothing builds a throwaway store; the
        #: router consults the fallback itself (remote_get/remote_put
        #: never touch it).
        self.clients: "dict[str, RemoteRecordStore]" = {
            spec: RemoteRecordStore(
                spec,
                fallback=self.fallback,
                timeout_s=timeout_s,
                retry_after_s=retry_after_s,
                retries=retries,
                backoff_s=backoff_s,
                request_deadline_s=request_deadline_s,
                retry_seed=retry_seed,
                epoch_clock=self.epoch_clock,
            )
            for spec in self.ring.endpoints
        }
        #: Logical stats: one outcome per logical op.  ``failovers``
        #: counts replica hops; ``retries``/``proto_mismatch`` are
        #: summed from the shard clients at snapshot time (they are
        #: counted where they happen).
        self.stats: "dict[str, int]" = {
            "hits": 0,
            "misses": 0,
            "fallbacks": 0,
            "evictions": 0,
            "puts": 0,
            "puts_rejected": 0,
            "retries": 0,
            "proto_mismatch": 0,
            "stale_epoch": 0,
            "failovers": 0,
        }
        self._stats_lock = threading.Lock()
        self._get_flights: "dict[tuple[str, str], _GetFlight]" = {}
        self._flight_lock = threading.Lock()
        #: Endpoints that missed the most recent :meth:`bump_epoch`
        #: broadcast (unreachable at the time).  Until they are re-bumped
        #: or gossip reaches them, a *fresh* client whose first contact
        #: is such a shard can still be served pre-bump records.
        self.last_bump_missed: "list[str]" = []

    # -- routing -------------------------------------------------------------

    def _route_key(self, filename: str, src_hash: str) -> str:
        return f"{filename}:{src_hash}"

    def owners(self, filename: str, source: str) -> "list[RemoteRecordStore]":
        """The preference list for one record: primary first, then the
        failover replicas."""
        key = self._route_key(filename, source_hash(source))
        return [
            self.clients[spec]
            for spec in self.ring.preference(key, self.replication)
        ]

    def _count(self, stat: str, amount: int = 1) -> None:
        with self._stats_lock:
            self.stats[stat] += amount

    # -- the store interface -------------------------------------------------

    def get(self, filename: str, source: str) -> "ICRecord | None":
        """Primary-then-replicas GET, single-flighted per record."""
        flight_key = (filename, source_hash(source))
        with self._flight_lock:
            flight = self._get_flights.get(flight_key)
            if flight is None:
                flight = _GetFlight()
                self._get_flights[flight_key] = flight
                leader = True
            else:
                leader = False
        if not leader:
            flight.event.wait()
            if flight.stat is not None:
                self._count(flight.stat)
            return flight.record
        try:
            record, stat = self._get_once(filename, source)
            flight.record = record
            flight.stat = stat
            return record
        finally:
            with self._flight_lock:
                self._get_flights.pop(flight_key, None)
            flight.event.set()

    def _get_once(
        self, filename: str, source: str
    ) -> "tuple[ICRecord | None, str]":
        for hop, client in enumerate(self.owners(filename, source)):
            if hop:
                self._count("failovers")
            outcome, record = client.remote_get(filename, source)
            if outcome == "hit":
                self._count("hits")
                # Write-back: what the fleet taught us survives it.
                self.fallback.put(filename, source, record)
                return record, "hits"
            if outcome == "miss":
                # A live owner's miss is authoritative: replicas hold
                # copies of the same arc, not extra records.  (A replica
                # that restarted empty re-warms via PUT fan-out.)
                self._count("misses")
                return self.fallback.get(filename, source), "misses"
            if outcome == "stale":
                # Epoch fencing: the record predates a fleet bump.  The
                # fallback's copy is equally pre-bump — answer nothing.
                self._count("stale_epoch")
                return None, "stale_epoch"
            # "error"/"mismatch": this shard is unusable — try the next
            # replica on the preference list.
        self._count("fallbacks")
        return self.fallback.get(filename, source), "fallbacks"

    def put(self, filename: str, source: str, record: ICRecord) -> None:
        """Write-through local, then fan out to every replica."""
        self.fallback.put(filename, source, record)
        stored = 0
        evicted_total = 0
        rejected = stale = False
        for client in self.owners(filename, source):
            outcome, evicted = client.remote_put(filename, source, record)
            if outcome == "stored":
                stored += 1
                evicted_total += evicted or 0
            elif outcome == "rejected":
                rejected = True
            elif outcome == "stale":
                stale = True
        # One logical outcome per PUT, best news wins: any replica
        # storing it means the fleet has it.
        if stored:
            self._count("puts")
            if evicted_total:
                self._count("evictions", evicted_total)
        elif stale:
            self._count("stale_epoch")
        elif rejected:
            self._count("puts_rejected")
        else:
            self._count("fallbacks")

    def records_for(self, scripts) -> "list[ICRecord]":
        found = []
        for filename, source in scripts:
            record = self.get(filename, source)
            if record is not None:
                found.append(record)
        return found

    def __len__(self) -> int:
        counts = [
            count
            for count in (
                client.remote_len() for client in self.clients.values()
            )
            if count is not None
        ]
        if not counts:
            return len(self.fallback)
        # Replicas hold copies, so a plain sum double-counts; the
        # per-shard maximum is the honest lower bound on distinct
        # records without a full key scan.
        return max(counts)

    def status(self) -> dict:
        """Fleet status: ring shape, per-shard remote STAT (``None`` for
        an unreachable shard), the router's logical stats, and the local
        fallback — shape documented in INTERNALS §12."""
        shards = []
        for spec in self.ring.endpoints:
            client = self.clients[spec]
            shards.append(
                {
                    "endpoint": spec,
                    "remote": client.remote_stat(),
                    "client": client.stats_snapshot(),
                }
            )
        return {
            "endpoints": self.ring.endpoints,
            "replication": self.replication,
            "epoch": self.epoch_clock.value,
            "shards": shards,
            "client": self.stats_snapshot(),
            "local": self.fallback.status(),
        }

    # -- extras --------------------------------------------------------------

    @property
    def load_errors(self) -> list:
        return self.fallback.load_errors

    @property
    def epoch(self) -> int:
        return self.epoch_clock.value

    def ping(self) -> bool:
        """True iff at least one shard answers — the fleet is 'up' as
        long as any arc is being served."""
        return any(client.ping() for client in self.clients.values())

    def bump_epoch(self, epoch: "int | None" = None) -> "int | None":
        """Fleet-wide invalidation broadcast (``ric-run --bump-epoch``).

        Learns the fleet's highest epoch (STAT every shard — the shared
        clock gossips it in), targets highest + 1 unless an explicit
        epoch is given, then sends ``EVICT_EPOCH`` to *every* endpoint —
        not just R owners, because every shard holds some arc.  Returns
        the new epoch if at least one shard acknowledged, else ``None``.
        A partitioned shard that missed the broadcast self-invalidates
        via gossip on its first contact with an up-to-date client — but
        a *fresh* client (epoch clock still 0) whose first contact is
        the laggard has no epoch to gossip, so endpoints that missed the
        broadcast are recorded in :attr:`last_bump_missed` and warned
        about: the operator should re-issue the bump once they rejoin.
        """
        if epoch is None:
            for client in self.clients.values():
                client.remote_stat()  # advances the shared clock
            epoch = self.epoch_clock.value + 1
        acknowledged: "int | None" = None
        missed: "list[str]" = []
        for spec, client in self.clients.items():
            result = client.bump_epoch(epoch)
            if result is not None:
                acknowledged = max(acknowledged or 0, result)
            else:
                missed.append(spec)
        self.last_bump_missed = missed
        if missed and acknowledged is not None:
            logger.warning(
                "epoch bump to %d missed %d of %d shards (%s); re-run "
                "--bump-epoch when they rejoin or their pre-bump records "
                "may be served to fresh clients",
                acknowledged,
                len(missed),
                len(self.clients),
                ", ".join(missed),
            )
        return acknowledged

    def evict_all(self) -> int:
        return sum(client.evict_all() for client in self.clients.values())

    def close(self) -> None:
        for client in self.clients.values():
            client.close()

    def stats_snapshot(self) -> "dict[str, int]":
        with self._stats_lock:
            snapshot = dict(self.stats)
        retries = proto_mismatch = 0
        for client in self.clients.values():
            client_stats = client.stats_snapshot()
            retries += client_stats.get("retries", 0)
            proto_mismatch += client_stats.get("proto_mismatch", 0)
        snapshot["retries"] = retries
        snapshot["proto_mismatch"] = proto_mismatch
        return snapshot


if typing.TYPE_CHECKING:  # the protocol conformance is a type-level claim
    from repro.ric.store import RecordStoreProtocol

    _store: "RecordStoreProtocol" = typing.cast(ShardedRecordStore, None)
