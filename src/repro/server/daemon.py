"""``ricd`` — the record-cache daemon behind ``ric-serve``.

One daemon process serves ICRecords (and thereby the warm-start they
buy) to many engine processes over a unix-domain socket.  Layering, top
to bottom:

1. **Socket tier** — a threaded unix-stream server speaking the
   length-prefixed JSON protocol of :mod:`repro.server.protocol`.  Each
   connection is one client engine; requests on a connection are handled
   sequentially, connections concurrently.  A malformed frame gets an
   error response and the connection is dropped — one confused client
   must not occupy a thread forever.
2. **Serving tier** — an in-memory :class:`~repro.server.lru.LRUCache`
   of *envelopes* (the checksummed on-disk form), bounded by record
   count and bytes.  Serving envelopes rather than records means zero
   re-serialization on the hot path and means the daemon never vouches
   for content: the client re-verifies everything.
3. **Admission gate** — a ``PUT`` is deserialized through
   :func:`~repro.ric.serialize.record_from_envelope` (checksum +
   structure) and then :func:`~repro.ric.validate.validate_record`.
   A record failing either is refused and counted
   (``puts_rejected``) — one client can never poison another through
   the daemon.
4. **Backing tier** — optional write-through to a directory-backed
   :class:`~repro.ric.store.RecordStore`: admitted records survive
   daemon restarts and LRU eviction; on an LRU miss the store is
   consulted before answering ``hit: false``.

Operational hardening (the supervision contract, INTERNALS §10):

* **Health** — ``STAT`` answers a ``health`` blob (uptime, inflight
  request count, draining/ready flags, LRU pressure) so an operator or
  supervisor can distinguish "alive", "loaded", and "shutting down"
  without guessing from traffic.
* **Per-connection I/O deadlines** — reads *and* writes carry socket
  timeouts (``read_timeout_s`` / ``write_timeout_s``), so a stalled or
  malicious client that stops mid-frame loses its connection instead of
  pinning a worker thread forever.
* **Graceful drain** — :meth:`RecordCacheDaemon.drain` (wired to
  SIGTERM in ``ric-serve``) stops accepting new connections, lets every
  in-flight request finish and its response flush, confirms the
  write-through store is durable, and only then tears the socket down.
  Connections idle at a frame boundary are closed; a client mid-frame
  gets its answer.  One bad apple cannot extend the drain forever: the
  drain deadline caps the wait, after which remaining connections are
  cut.
"""

from __future__ import annotations

import json
import logging
import os
import socket
import socketserver
import threading
import time
from pathlib import Path

from repro.ric.errors import RecordFormatError
from repro.ric.serialize import record_from_envelope, record_to_envelope
from repro.ric.store import RecordStore
from repro.ric.validate import validate_record
from repro.server import protocol
from repro.server.lru import LRUCache
from repro.server.protocol import ProtocolError

logger = logging.getLogger(__name__)


class _Server(socketserver.ThreadingMixIn, socketserver.UnixStreamServer):
    daemon_threads = True
    allow_reuse_address = True
    #: Set by RecordCacheDaemon after construction.
    ricd: "RecordCacheDaemon"


class _Handler(socketserver.BaseRequestHandler):
    def handle(self) -> None:
        daemon = self.server.ricd  # type: ignore[attr-defined]
        sock: socket.socket = self.request
        while True:
            if daemon.draining:
                # Frame boundary during a drain: stop taking new work on
                # this connection (in-flight frames were already
                # answered below).
                return
            sock.settimeout(daemon.read_timeout_s)
            try:
                message = protocol.read_frame(sock)
            except (ProtocolError, socket.timeout, OSError) as exc:
                self._try_send(sock, protocol.error_response(str(exc)))
                return
            if message is None:  # client closed cleanly
                return
            # From here to the response write this connection is
            # *inflight*: a drain waits for it (and only it) to finish.
            daemon._begin_request()
            try:
                try:
                    response = daemon.handle_request(message)
                except ProtocolError as exc:
                    self._try_send(sock, protocol.error_response(str(exc)))
                    return
                except Exception as exc:  # never let one request kill the thread
                    logger.exception("ricd: internal error")
                    self._try_send(
                        sock, protocol.error_response(f"internal error: {exc}")
                    )
                    return
                sock.settimeout(daemon.write_timeout_s)
                try:
                    protocol.write_frame(sock, response)
                except (socket.timeout, OSError):
                    return
            finally:
                daemon._end_request()

    @staticmethod
    def _try_send(sock: socket.socket, message: dict) -> None:
        try:
            protocol.write_frame(sock, message)
        except OSError:
            pass


class RecordCacheDaemon:
    """The shared record cache: LRU serving tier over a write-through store."""

    def __init__(
        self,
        socket_path: str | Path,
        directory: str | Path | None = None,
        max_records: int = 256,
        max_bytes: int = 64 * 1024 * 1024,
        connection_timeout_s: float = 30.0,
        read_timeout_s: float | None = None,
        write_timeout_s: float | None = None,
    ):
        self.socket_path = Path(socket_path)
        self.connection_timeout_s = connection_timeout_s
        #: Per-connection I/O deadlines; default to the legacy
        #: connection_timeout_s.  Writes get their own (usually shorter)
        #: deadline: a client that stops reading its response is stalled
        #: just like one that stops sending its request.
        self.read_timeout_s = (
            read_timeout_s if read_timeout_s is not None else connection_timeout_s
        )
        self.write_timeout_s = (
            write_timeout_s
            if write_timeout_s is not None
            else connection_timeout_s
        )
        self.cache = LRUCache(max_records=max_records, max_bytes=max_bytes)
        self.store = RecordStore(directory=directory) if directory else None
        #: Request-level counters (the cache keeps its own hit/miss/eviction
        #: tallies; these count what crossed the wire).
        self.requests = 0
        self.puts_accepted = 0
        self.puts_rejected = 0
        self.store_fallback_hits = 0
        self._server: _Server | None = None
        self._thread: threading.Thread | None = None
        self._lock = threading.Lock()
        #: Supervision state: monotonic birth time, inflight request
        #: count (condition-guarded so drain can wait on it), drain flag.
        self._started_monotonic = time.monotonic()
        self._inflight = 0
        self._inflight_cond = threading.Condition()
        self.draining = False

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Bind the socket and serve on a background thread."""
        if self._server is not None:
            raise RuntimeError("daemon already started")
        if self.socket_path.exists():
            self.socket_path.unlink()
        self.socket_path.parent.mkdir(parents=True, exist_ok=True)
        self._server = _Server(str(self.socket_path), _Handler)
        self._server.ricd = self
        self._thread = threading.Thread(
            target=self._server.serve_forever, name="ricd", daemon=True
        )
        self._thread.start()

    def serve_forever(self) -> None:
        """Foreground variant for the ``ric-serve`` CLI."""
        if self._server is None:
            if self.socket_path.exists():
                self.socket_path.unlink()
            self.socket_path.parent.mkdir(parents=True, exist_ok=True)
            self._server = _Server(str(self.socket_path), _Handler)
            self._server.ricd = self
        self._server.serve_forever()

    def stop(self) -> None:
        """Immediate stop: close the listener now; in-flight handler
        threads are daemonic and die with the process.  For the graceful
        variant see :meth:`drain`."""
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        if self.socket_path.exists():
            try:
                self.socket_path.unlink()
            except OSError:  # pragma: no cover - raced removal
                pass

    def drain(self, timeout_s: float = 10.0) -> bool:
        """Graceful shutdown: stop accepting, finish in-flight requests,
        confirm write-through durability, then tear down.

        Returns True when every in-flight request finished inside
        ``timeout_s`` (the SIGTERM → exit-0 path of ``ric-serve``);
        False when the deadline cut stragglers off.  Idempotent:
        concurrent/repeat calls fall through to :meth:`stop`.
        """
        with self._inflight_cond:
            already = self.draining
            self.draining = True
        server = self._server
        if server is not None and not already:
            # Stops the accept loop; existing handler threads continue.
            server.shutdown()
        deadline = time.monotonic() + timeout_s
        drained = True
        with self._inflight_cond:
            while self._inflight > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    drained = False
                    break
                self._inflight_cond.wait(remaining)
        # Write-through is synchronous (every admitted PUT hit the store
        # before its response went out), so once inflight is zero the
        # backing directory is durable; there is nothing left to flush.
        self.stop()
        return drained

    # -- inflight accounting (handler threads) --------------------------------

    def _begin_request(self) -> None:
        with self._inflight_cond:
            self._inflight += 1

    def _end_request(self) -> None:
        with self._inflight_cond:
            self._inflight -= 1
            if self._inflight == 0:
                self._inflight_cond.notify_all()

    def __enter__(self) -> "RecordCacheDaemon":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- request dispatch ----------------------------------------------------

    def handle_request(self, message: dict) -> dict:
        protocol.check_version(message)
        op = message.get("op")
        with self._lock:
            self.requests += 1
        if op == "GET":
            return self._handle_get(message)
        if op == "PUT":
            return self._handle_put(message)
        if op == "STAT":
            return self._handle_stat()
        if op == "EVICT":
            return self._handle_evict(message)
        if op == "PING":
            return protocol.ok_response(pong=True)
        raise ProtocolError(f"unknown op {op!r}")

    def _handle_get(self, message: dict) -> dict:
        filename, src_hash, version = protocol.key_fields(message)
        key = protocol.cache_key(filename, src_hash, version)
        envelope = self.cache.get(key)
        if envelope is None and self.store is not None:
            # LRU miss: the backing store may still have it (written by a
            # previous daemon incarnation or evicted under pressure).
            record = self.store.get_by_key(f"{filename}:{src_hash}")
            if record is not None:
                envelope = record_to_envelope(record)
                with self._lock:
                    self.store_fallback_hits += 1
                self.cache.put(key, envelope, _envelope_bytes(envelope))
        if envelope is None:
            return protocol.ok_response(hit=False)
        return protocol.ok_response(hit=True, envelope=envelope)

    def _handle_put(self, message: dict) -> dict:
        filename, src_hash, version = protocol.key_fields(message)
        envelope = message.get("envelope")
        if not isinstance(envelope, dict):
            raise ProtocolError("PUT without an object 'envelope'")
        # Admission gate: checksum + structural deserialization, then the
        # same validate_record pass the engine runs before trusting a
        # record.  A failure refuses the PUT — and only the PUT: the
        # connection stays usable, the cache untouched.
        try:
            record = record_from_envelope(envelope)
        except RecordFormatError as exc:
            with self._lock:
                self.puts_rejected += 1
            return protocol.ok_response(stored=False, error=str(exc))
        problems = validate_record(record)
        if problems:
            with self._lock:
                self.puts_rejected += 1
            return protocol.ok_response(
                stored=False,
                error=f"invalid record ({len(problems)} problems): "
                + "; ".join(problems[:3]),
            )
        key = protocol.cache_key(filename, src_hash, version)
        evicted = self.cache.put(key, envelope, _envelope_bytes(envelope))
        if evicted < 0:
            with self._lock:
                self.puts_rejected += 1
            return protocol.ok_response(
                stored=False, error="record larger than cache byte budget"
            )
        if self.store is not None:
            self.store.put_by_key(f"{filename}:{src_hash}", record)
        with self._lock:
            self.puts_accepted += 1
        return protocol.ok_response(stored=True, evicted=evicted)

    def _handle_stat(self) -> dict:
        return protocol.ok_response(
            cache=self.stats(),
            store=self.store_status(),
            health=self.health(),
        )

    def _handle_evict(self, message: dict) -> dict:
        if message.get("all"):
            return protocol.ok_response(evicted=self.cache.clear())
        filename, src_hash, version = protocol.key_fields(message)
        key = protocol.cache_key(filename, src_hash, version)
        return protocol.ok_response(evicted=int(self.cache.evict(key)))

    # -- introspection -------------------------------------------------------

    def stats(self) -> dict:
        blob = self.cache.stats()
        with self._lock:
            blob.update(
                requests=self.requests,
                puts_accepted=self.puts_accepted,
                puts_rejected=self.puts_rejected,
                store_fallback_hits=self.store_fallback_hits,
                pid=os.getpid(),
            )
        return blob

    def store_status(self) -> dict | None:
        return self.store.status() if self.store is not None else None

    def health(self) -> dict:
        """Health/readiness blob for STAT, supervisors, and operators.

        ``ready`` is the readiness gate (serving and not draining);
        ``pressure`` is LRU occupancy as fractions of both bounds, the
        early-warning signal that the serving tier is about to start
        evicting.
        """
        cache = self.cache
        with self._inflight_cond:
            inflight = self._inflight
            draining = self.draining
        return {
            "uptime_s": time.monotonic() - self._started_monotonic,
            "inflight": inflight,
            "draining": draining,
            "ready": self._server is not None and not draining,
            "pressure": {
                "records": len(cache),
                "max_records": cache.max_records,
                "records_frac": len(cache) / cache.max_records,
                "bytes": cache.bytes_used,
                "max_bytes": cache.max_bytes,
                "bytes_frac": cache.bytes_used / cache.max_bytes,
            },
        }


def _envelope_bytes(envelope: dict) -> int:
    return len(json.dumps(envelope, separators=(",", ":")).encode("utf-8"))
