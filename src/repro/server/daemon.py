"""``ricd`` — the record-cache daemon behind ``ric-serve``.

One daemon process serves ICRecords (and thereby the warm-start they
buy) to many engine processes over a unix-domain socket, a TCP port, or
both at once (``ric-serve --tcp HOST:PORT``) — same length-prefixed v1
frames, same 32 MiB cap, same per-connection deadlines on either
transport.  Layering, top to bottom:

1. **Socket tier** — threaded stream servers speaking the
   length-prefixed JSON protocol of :mod:`repro.server.protocol`.  Each
   connection is one client engine; requests on a connection are handled
   sequentially, connections concurrently.  A malformed frame gets an
   error response and the connection is dropped — one confused client
   must not occupy a thread forever.
2. **Serving tier** — an in-memory :class:`~repro.server.lru.LRUCache`
   of *envelopes* (the checksummed on-disk form), bounded by record
   count and bytes.  Serving envelopes rather than records means zero
   re-serialization on the hot path and means the daemon never vouches
   for content: the client re-verifies everything.
3. **Admission gate** — a ``PUT`` is deserialized through
   :func:`~repro.ric.serialize.record_from_envelope` (checksum +
   structure) and then :func:`~repro.ric.validate.validate_record`.
   A record failing either is refused and counted
   (``puts_rejected``) — one client can never poison another through
   the daemon.
4. **Backing tier** — optional write-through to a directory-backed
   :class:`~repro.ric.store.RecordStore`: admitted records survive
   daemon restarts and LRU eviction; on an LRU miss the store is
   consulted before answering ``hit: false``.

Fleet epoch (``EVICT_EPOCH``): the daemon carries a monotonically
increasing ``epoch`` (persisted to ``<dir>/.epoch`` when disk-backed).
Every cached entry remembers the epoch it was admitted under, every
response echoes the current epoch, and a bump — whether delivered by an
explicit ``EVICT_EPOCH`` broadcast or gossiped in on a ``GET``/``PUT``
from a client that learned a higher epoch elsewhere — drops every older
record from memory *and* the write-through store.  A record is a bundle
of code + execution state; when its source changes fleet-wide, it must
die everywhere, including on a shard that was partitioned during the
broadcast (the gossip path heals it on first contact).

Operational hardening (the supervision contract, INTERNALS §10):

* **Health** — ``STAT`` answers a ``health`` blob (uptime, inflight
  request count, draining/ready flags, LRU pressure) so an operator or
  supervisor can distinguish "alive", "loaded", and "shutting down"
  without guessing from traffic.
* **Per-connection I/O deadlines** — reads *and* writes carry socket
  timeouts (``read_timeout_s`` / ``write_timeout_s``), so a stalled or
  malicious client that stops mid-frame loses its connection instead of
  pinning a worker thread forever.
* **Graceful drain** — :meth:`RecordCacheDaemon.drain` (wired to
  SIGTERM in ``ric-serve``) stops accepting new connections, lets every
  in-flight request finish and its response flush, confirms the
  write-through store is durable, and only then tears the socket down.
  Connections idle at a frame boundary are closed; a client mid-frame
  gets its answer.  One bad apple cannot extend the drain forever: the
  drain deadline caps the wait, after which remaining connections are
  cut.
"""

from __future__ import annotations

import json
import logging
import os
import socket
import socketserver
import threading
import time
from pathlib import Path

from repro.ric.errors import RecordFormatError
from repro.ric.serialize import record_from_envelope, record_to_envelope
from repro.ric.store import RecordStore
from repro.ric.validate import validate_record
from repro.server import protocol
from repro.server.lru import LRUCache
from repro.server.protocol import ProtocolError

logger = logging.getLogger(__name__)


class _RicdServerMixin(socketserver.ThreadingMixIn):
    daemon_threads = True
    allow_reuse_address = True
    #: Set by RecordCacheDaemon after construction.
    ricd: "RecordCacheDaemon"


class _UnixServer(_RicdServerMixin, socketserver.UnixStreamServer):
    pass


class _TCPServer(_RicdServerMixin, socketserver.TCPServer):
    pass


class _Handler(socketserver.BaseRequestHandler):
    def handle(self) -> None:
        daemon = self.server.ricd  # type: ignore[attr-defined]
        sock: socket.socket = self.request
        daemon._track_connection(sock)
        try:
            self._serve(daemon, sock)
        finally:
            daemon._untrack_connection(sock)

    def _serve(self, daemon: "RecordCacheDaemon", sock: socket.socket) -> None:
        while True:
            if daemon.draining:
                # Frame boundary during a drain: stop taking new work on
                # this connection (in-flight frames were already
                # answered below).
                return
            sock.settimeout(daemon.read_timeout_s)
            try:
                message = protocol.read_frame(sock)
            except (ProtocolError, socket.timeout, OSError) as exc:
                self._try_send(sock, protocol.error_response(str(exc)))
                return
            if message is None:  # client closed cleanly
                return
            # From here to the response write this connection is
            # *inflight*: a drain waits for it (and only it) to finish.
            daemon._begin_request()
            try:
                try:
                    response = daemon.handle_request(message)
                except ProtocolError as exc:
                    self._try_send(sock, protocol.error_response(str(exc)))
                    return
                except Exception as exc:  # never let one request kill the thread
                    logger.exception("ricd: internal error")
                    self._try_send(
                        sock, protocol.error_response(f"internal error: {exc}")
                    )
                    return
                sock.settimeout(daemon.write_timeout_s)
                try:
                    protocol.write_frame(sock, response)
                except (socket.timeout, OSError):
                    return
            finally:
                daemon._end_request()

    @staticmethod
    def _try_send(sock: socket.socket, message: dict) -> None:
        try:
            protocol.write_frame(sock, message)
        except OSError:
            pass


class RecordCacheDaemon:
    """The shared record cache: LRU serving tier over a write-through store."""

    def __init__(
        self,
        socket_path: str | Path | None = None,
        directory: str | Path | None = None,
        max_records: int = 256,
        max_bytes: int = 64 * 1024 * 1024,
        connection_timeout_s: float = 30.0,
        read_timeout_s: float | None = None,
        write_timeout_s: float | None = None,
        tcp: str | tuple | None = None,
    ):
        self.socket_path = Path(socket_path) if socket_path is not None else None
        #: TCP listen address as ``(host, port)``; accepted as a
        #: ``"HOST:PORT"`` spec too.  Port 0 binds an ephemeral port —
        #: read :attr:`tcp_endpoint` after :meth:`start` for the real one.
        if isinstance(tcp, str):
            kind, address = protocol.parse_endpoint(
                tcp if "://" in tcp else f"tcp://{tcp}"
            )
            if kind != "tcp":
                raise ValueError(f"not a tcp address: {tcp!r}")
            tcp = address
        self.tcp_address: "tuple[str, int] | None" = tuple(tcp) if tcp else None
        if self.socket_path is None and self.tcp_address is None:
            raise ValueError("daemon needs a unix socket path, a tcp address, or both")
        self.connection_timeout_s = connection_timeout_s
        #: Per-connection I/O deadlines; default to the legacy
        #: connection_timeout_s.  Writes get their own (usually shorter)
        #: deadline: a client that stops reading its response is stalled
        #: just like one that stops sending its request.
        self.read_timeout_s = (
            read_timeout_s if read_timeout_s is not None else connection_timeout_s
        )
        self.write_timeout_s = (
            write_timeout_s
            if write_timeout_s is not None
            else connection_timeout_s
        )
        self.cache = LRUCache(max_records=max_records, max_bytes=max_bytes)
        self.store = RecordStore(directory=directory) if directory else None
        #: Fleet epoch: records admitted under an older epoch are dead.
        #: Disk-backed daemons persist it so a restart cannot resurrect
        #: pre-bump records from the write-through directory.
        self.epoch = self._load_epoch()
        #: Request-level counters (the cache keeps its own hit/miss/eviction
        #: tallies; these count what crossed the wire).
        self.requests = 0
        self.puts_accepted = 0
        self.puts_rejected = 0
        self.puts_stale_epoch = 0
        self.epoch_bumps = 0
        self.store_fallback_hits = 0
        #: Specialization-feedback aggregates over accepted PUTs (what the
        #: fleet's records would let a consumer quicken); see health().
        self.feedback_records = 0
        self.feedback_sites = 0
        self.feedback_tombstones = 0
        self._servers: "list[socketserver.BaseServer]" = []
        self._threads: "list[threading.Thread]" = []
        #: Live client connections, so :meth:`kill` can sever them.
        self._connections: "set[socket.socket]" = set()
        self._conn_lock = threading.Lock()
        self._stopped = threading.Event()
        self._lock = threading.Lock()
        #: Supervision state: monotonic birth time, inflight request
        #: count (condition-guarded so drain can wait on it), drain flag.
        self._started_monotonic = time.monotonic()
        self._inflight = 0
        self._inflight_cond = threading.Condition()
        self.draining = False

    # -- lifecycle -----------------------------------------------------------

    def _bind(self) -> None:
        """Create the listeners for every configured transport."""
        if self._servers:
            raise RuntimeError("daemon already started")
        if self.socket_path is not None:
            if self.socket_path.exists():
                self.socket_path.unlink()
            self.socket_path.parent.mkdir(parents=True, exist_ok=True)
            server: socketserver.BaseServer = _UnixServer(
                str(self.socket_path), _Handler
            )
            server.ricd = self  # type: ignore[attr-defined]
            self._servers.append(server)
        if self.tcp_address is not None:
            tcp_server = _TCPServer(
                (self.tcp_address[0], int(self.tcp_address[1])), _Handler
            )
            tcp_server.ricd = self  # type: ignore[attr-defined]
            # Rebind to the kernel-assigned port so "--tcp HOST:0" is
            # dialable (tests, parallel fleets on one box).
            self.tcp_address = tcp_server.server_address[:2]
            self._servers.append(tcp_server)

    @property
    def tcp_endpoint(self) -> "str | None":
        """Dialable ``HOST:PORT`` spec of the TCP listener, if any."""
        if self.tcp_address is None:
            return None
        return protocol.format_endpoint("tcp", self.tcp_address)

    @property
    def endpoints(self) -> "list[str]":
        """Every spec this daemon is reachable at."""
        specs = []
        if self.socket_path is not None:
            specs.append(str(self.socket_path))
        if self.tcp_endpoint is not None:
            specs.append(self.tcp_endpoint)
        return specs

    def start(self) -> None:
        """Bind all listeners and serve each on a background thread."""
        self._bind()
        self._stopped.clear()
        for server in self._servers:
            thread = threading.Thread(
                target=server.serve_forever, name="ricd", daemon=True
            )
            thread.start()
            self._threads.append(thread)

    def serve_forever(self) -> None:
        """Foreground variant for the ``ric-serve`` CLI: serves until
        :meth:`stop`/:meth:`drain` is called (from a signal handler)."""
        if not self._servers:
            self.start()
        self._stopped.wait()

    def stop(self) -> None:
        """Immediate stop: close every listener now; in-flight handler
        threads are daemonic and die with the process.  For the graceful
        variant see :meth:`drain`."""
        servers, self._servers = self._servers, []
        threads, self._threads = self._threads, []
        for server in servers:
            server.shutdown()
            server.server_close()
        for thread in threads:
            thread.join(timeout=5.0)
        self._stopped.set()
        if self.socket_path is not None and self.socket_path.exists():
            try:
                self.socket_path.unlink()
            except OSError:  # pragma: no cover - raced removal
                pass

    def kill(self) -> None:
        """Abrupt SIGKILL-equivalent stop for chaos testing: sever every
        live client connection mid-whatever (they see a reset/EOF, not a
        clean error response), then tear down the listeners.  Contrast
        :meth:`drain` (graceful) and :meth:`stop` (listeners only —
        existing in-process connections would keep being served)."""
        with self._conn_lock:
            connections, self._connections = list(self._connections), set()
        for sock in connections:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:  # pragma: no cover
                pass
        self.stop()

    def drain(self, timeout_s: float = 10.0) -> bool:
        """Graceful shutdown: stop accepting, finish in-flight requests,
        confirm write-through durability, then tear down.

        Returns True when every in-flight request finished inside
        ``timeout_s`` (the SIGTERM → exit-0 path of ``ric-serve``);
        False when the deadline cut stragglers off.  Idempotent:
        concurrent/repeat calls fall through to :meth:`stop`.
        """
        with self._inflight_cond:
            already = self.draining
            self.draining = True
        if not already:
            # Stops the accept loops; existing handler threads continue.
            for server in list(self._servers):
                server.shutdown()
        deadline = time.monotonic() + timeout_s
        drained = True
        with self._inflight_cond:
            while self._inflight > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    drained = False
                    break
                self._inflight_cond.wait(remaining)
        # Write-through is synchronous (every admitted PUT hit the store
        # before its response went out), so once inflight is zero the
        # backing directory is durable; there is nothing left to flush.
        self.stop()
        return drained

    # -- connection tracking (handler threads) -------------------------------

    def _track_connection(self, sock: socket.socket) -> None:
        with self._conn_lock:
            self._connections.add(sock)

    def _untrack_connection(self, sock: socket.socket) -> None:
        with self._conn_lock:
            self._connections.discard(sock)

    # -- inflight accounting (handler threads) --------------------------------

    def _begin_request(self) -> None:
        with self._inflight_cond:
            self._inflight += 1

    def _end_request(self) -> None:
        with self._inflight_cond:
            self._inflight -= 1
            if self._inflight == 0:
                self._inflight_cond.notify_all()

    def __enter__(self) -> "RecordCacheDaemon":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- epoch --------------------------------------------------------------

    def _epoch_path(self) -> "Path | None":
        if self.store is None or self.store.directory is None:
            return None
        return self.store.directory / ".epoch"

    def _load_epoch(self) -> int:
        path = self._epoch_path()
        if path is None or not path.exists():
            return 0
        try:
            payload = json.loads(path.read_text())
            epoch = payload.get("epoch")
            if isinstance(epoch, int) and not isinstance(epoch, bool) and epoch >= 0:
                return epoch
        except (OSError, ValueError):  # pragma: no cover - corrupt epoch file
            pass
        logger.warning("ricd: unreadable epoch file %s; starting at 0", path)
        return 0

    def _persist_epoch(self) -> None:
        path = self._epoch_path()
        if path is None:
            return
        try:
            from repro.ric.atomicio import atomic_write_text

            atomic_write_text(path, json.dumps({"epoch": self.epoch}))
        except OSError:  # pragma: no cover - epoch persistence best-effort
            logger.warning("ricd: could not persist epoch to %s", path)

    def _maybe_adopt_epoch(self, epoch) -> int:
        """Raise the fleet epoch to ``epoch`` if it is higher, dropping
        every record admitted under an older one (memory *and* disk —
        the write-through store would otherwise resurrect them after a
        restart or an LRU miss).  Returns how many records died."""
        if not isinstance(epoch, int) or isinstance(epoch, bool):
            return 0
        with self._lock:
            if epoch <= self.epoch:
                return 0
            self.epoch = epoch
            self.epoch_bumps += 1
        # All cached entries were admitted under a lower epoch, so the
        # clear is exact, not approximate.
        evicted = self.cache.clear()
        if self.store is not None:
            evicted += self.store.clear()
        self._persist_epoch()
        return evicted

    # -- request dispatch ----------------------------------------------------

    def handle_request(self, message: dict) -> dict:
        protocol.check_version(message)
        op = message.get("op")
        with self._lock:
            self.requests += 1
        if op == "GET":
            return self._handle_get(message)
        if op == "PUT":
            return self._handle_put(message)
        if op == "STAT":
            return self._handle_stat()
        if op == "EVICT":
            return self._handle_evict(message)
        if op == "EVICT_EPOCH":
            return self._handle_evict_epoch(message)
        if op == "PING":
            return protocol.ok_response(pong=True, epoch=self.epoch)
        raise ProtocolError(f"unknown op {op!r}")

    def _handle_get(self, message: dict) -> dict:
        # Gossip first: a client that knows a higher fleet epoch
        # invalidates this shard before anything is looked up.
        self._maybe_adopt_epoch(message.get("epoch"))
        filename, src_hash, version = protocol.key_fields(message)
        key = protocol.cache_key(filename, src_hash, version)
        entry = self.cache.get(key)
        if entry is None and self.store is not None:
            # LRU miss: the backing store may still have it (written by a
            # previous daemon incarnation or evicted under pressure).
            # Epoch bumps cleared the store too, so surviving disk
            # records are current-epoch by construction.
            record = self.store.get_by_key(f"{filename}:{src_hash}")
            if record is not None:
                envelope = record_to_envelope(record)
                with self._lock:
                    self.store_fallback_hits += 1
                entry = (envelope, self.epoch)
                self.cache.put(key, entry, _envelope_bytes(envelope))
        if entry is None:
            return protocol.ok_response(hit=False, epoch=self.epoch)
        envelope, record_epoch = entry
        if record_epoch < self.epoch:  # pragma: no cover - belt and braces
            # Bumps clear eagerly; this lazy check only fires if an old
            # entry somehow survived (e.g. a poked cache in tests).
            self.cache.evict(key)
            return protocol.ok_response(hit=False, epoch=self.epoch)
        return protocol.ok_response(
            hit=True,
            envelope=envelope,
            epoch=self.epoch,
            record_epoch=record_epoch,
        )

    def _handle_put(self, message: dict) -> dict:
        client_epoch = message.get("epoch")
        self._maybe_adopt_epoch(client_epoch)
        if (
            isinstance(client_epoch, int)
            and not isinstance(client_epoch, bool)
            and client_epoch < self.epoch
        ):
            # The record was extracted under source the fleet has since
            # invalidated: refuse it so a slow publisher cannot
            # resurrect pre-bump state.
            with self._lock:
                self.puts_stale_epoch += 1
            return protocol.ok_response(
                stored=False,
                stale_epoch=True,
                epoch=self.epoch,
                error=(
                    f"record epoch {client_epoch} predates fleet epoch "
                    f"{self.epoch}"
                ),
            )
        filename, src_hash, version = protocol.key_fields(message)
        envelope = message.get("envelope")
        if not isinstance(envelope, dict):
            raise ProtocolError("PUT without an object 'envelope'")
        # Admission gate: checksum + structural deserialization, then the
        # same validate_record pass the engine runs before trusting a
        # record.  A failure refuses the PUT — and only the PUT: the
        # connection stays usable, the cache untouched.
        try:
            record = record_from_envelope(envelope)
        except RecordFormatError as exc:
            with self._lock:
                self.puts_rejected += 1
            return protocol.ok_response(
                stored=False, error=str(exc), epoch=self.epoch
            )
        problems = validate_record(record)
        if problems:
            with self._lock:
                self.puts_rejected += 1
            return protocol.ok_response(
                stored=False,
                epoch=self.epoch,
                error=f"invalid record ({len(problems)} problems): "
                + "; ".join(problems[:3]),
            )
        key = protocol.cache_key(filename, src_hash, version)
        evicted = self.cache.put(
            key, (envelope, self.epoch), _envelope_bytes(envelope)
        )
        if evicted < 0:
            with self._lock:
                self.puts_rejected += 1
            return protocol.ok_response(
                stored=False,
                epoch=self.epoch,
                error="record larger than cache byte budget",
            )
        if self.store is not None:
            self.store.put_by_key(f"{filename}:{src_hash}", record)
        feedback_sites = len(record.site_feedback)
        feedback_tombstones = sum(
            1 for fb in record.site_feedback.values() if fb.mega
        )
        with self._lock:
            self.puts_accepted += 1
            if feedback_sites:
                self.feedback_records += 1
                self.feedback_sites += feedback_sites
                self.feedback_tombstones += feedback_tombstones
        return protocol.ok_response(stored=True, evicted=evicted, epoch=self.epoch)

    def _handle_stat(self) -> dict:
        return protocol.ok_response(
            cache=self.stats(),
            store=self.store_status(),
            health=self.health(),
            epoch=self.epoch,
        )

    def _handle_evict(self, message: dict) -> dict:
        if message.get("all"):
            return protocol.ok_response(evicted=self.cache.clear(), epoch=self.epoch)
        filename, src_hash, version = protocol.key_fields(message)
        key = protocol.cache_key(filename, src_hash, version)
        return protocol.ok_response(
            evicted=int(self.cache.evict(key)), epoch=self.epoch
        )

    def _handle_evict_epoch(self, message: dict) -> dict:
        epoch = message.get("epoch")
        if not isinstance(epoch, int) or isinstance(epoch, bool) or epoch < 0:
            raise ProtocolError(f"EVICT_EPOCH needs a non-negative int epoch, got {epoch!r}")
        evicted = self._maybe_adopt_epoch(epoch)
        return protocol.ok_response(epoch=self.epoch, evicted=evicted)

    # -- introspection -------------------------------------------------------

    def stats(self) -> dict:
        blob = self.cache.stats()
        with self._lock:
            blob.update(
                requests=self.requests,
                puts_accepted=self.puts_accepted,
                puts_rejected=self.puts_rejected,
                puts_stale_epoch=self.puts_stale_epoch,
                store_fallback_hits=self.store_fallback_hits,
                epoch=self.epoch,
                epoch_bumps=self.epoch_bumps,
                pid=os.getpid(),
            )
        return blob

    def store_status(self) -> dict | None:
        return self.store.status() if self.store is not None else None

    def health(self) -> dict:
        """Health/readiness blob for STAT, supervisors, and operators.

        ``ready`` is the readiness gate (serving and not draining);
        ``pressure`` is LRU occupancy as fractions of both bounds, the
        early-warning signal that the serving tier is about to start
        evicting.  ``version``/``protocol`` identify this daemon build
        for mixed-fleet rolling upgrades: a client seeing an unexpected
        pair knows *why* a verb just came back unknown.
        """
        from repro import __version__

        cache = self.cache
        with self._inflight_cond:
            inflight = self._inflight
            draining = self.draining
        return {
            "uptime_s": time.monotonic() - self._started_monotonic,
            "inflight": inflight,
            "draining": draining,
            "ready": bool(self._servers) and not draining,
            "version": __version__,
            "protocol": protocol.PROTOCOL_VERSION,
            "epoch": self.epoch,
            "endpoints": self.endpoints,
            "pressure": {
                "records": len(cache),
                "max_records": cache.max_records,
                "records_frac": len(cache) / cache.max_records,
                "bytes": cache.bytes_used,
                "max_bytes": cache.max_bytes,
                "bytes_frac": cache.bytes_used / cache.max_bytes,
            },
            "specialize": {
                "records_with_feedback": self.feedback_records,
                "feedback_sites": self.feedback_sites,
                "feedback_tombstones": self.feedback_tombstones,
            },
        }


def _envelope_bytes(envelope: dict) -> int:
    return len(json.dumps(envelope, separators=(",", ":")).encode("utf-8"))
