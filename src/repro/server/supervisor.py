"""Crash-restart supervision for ``ricd`` (``ric-serve --supervise``).

The daemon is deliberately allowed to die: one bad allocation, one
un-handled signal, one OOM kill must cost clients a reconnect (absorbed
by the :class:`~repro.server.client.RemoteRecordStore` retry budget),
not the sharing win for the rest of the day.  The supervisor closes
that loop:

* **Restart with backoff + jitter** — each crash waits
  ``backoff_base_s * 2**consecutive_crashes``, capped at
  ``backoff_cap_s``, with a uniform jitter fraction so a fleet of
  supervisors restarting against a shared broken dependency doesn't
  thunder in lockstep.
* **Healthy-runtime reset** — a child that stays up for
  ``healthy_after_s`` earns the backoff counter back to zero; a flaky
  dependency that recovers doesn't leave the daemon paying yesterday's
  penalty.
* **Restart-storm circuit breaker** — more than ``storm_threshold``
  crashes inside ``storm_window_s`` means restarting is not helping
  (bad config, missing directory, poisoned socket path): the supervisor
  gives up with a distinct exit so an operator or init system sees a
  persistent failure, not a busy loop.
* **Clean exits are final** — a child that exits 0 (e.g. after a
  SIGTERM-triggered drain) is done; the supervisor does not resurrect
  a daemon that was *asked* to stop.

Everything nondeterministic is injectable (``spawn``, ``sleep``,
``clock``, ``rng``), so the whole state machine is unit-testable in
milliseconds without ever forking a real daemon.
"""

from __future__ import annotations

import logging
import random
import subprocess
import threading
import typing

logger = logging.getLogger(__name__)

#: ``run()`` outcomes.
EXIT_CLEAN = "clean-exit"  # child exited 0; supervision complete
EXIT_STORM = "restart-storm"  # breaker tripped; restarting isn't helping
EXIT_STOPPED = "stopped"  # request_stop() ended supervision


class Supervisor:
    """Restart a child command until it exits cleanly or storms.

    ``spawn`` must return an object with ``wait()`` (blocking, returns
    the exit code), ``terminate()`` and ``kill()`` — the
    :class:`subprocess.Popen` surface.  The default spawns the real
    command; tests inject fakes.
    """

    def __init__(
        self,
        command: list[str],
        backoff_base_s: float = 0.25,
        backoff_cap_s: float = 8.0,
        jitter_frac: float = 0.5,
        healthy_after_s: float = 5.0,
        storm_window_s: float = 30.0,
        storm_threshold: int = 5,
        spawn: "typing.Callable[[list[str]], typing.Any] | None" = None,
        sleep: typing.Callable[[float], None] | None = None,
        clock: typing.Callable[[], float] | None = None,
        rng: random.Random | None = None,
    ):
        if storm_threshold < 1:
            raise ValueError("storm_threshold must be >= 1")
        self.command = list(command)
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self.jitter_frac = jitter_frac
        self.healthy_after_s = healthy_after_s
        self.storm_window_s = storm_window_s
        self.storm_threshold = storm_threshold
        self._spawn = spawn if spawn is not None else self._spawn_subprocess
        self._sleep = sleep if sleep is not None else self._interruptible_sleep
        self._clock = clock if clock is not None else self._monotonic
        self._rng = rng if rng is not None else random.Random()
        #: Crash timestamps inside the storm window (pruned as it slides).
        self._crash_times: list[float] = []
        self._consecutive_crashes = 0
        self.restarts = 0
        self._child: typing.Any = None
        self._stop = threading.Event()

    # -- injectable defaults -------------------------------------------------

    @staticmethod
    def _spawn_subprocess(command: list[str]):
        return subprocess.Popen(command)

    @staticmethod
    def _monotonic() -> float:
        import time

        return time.monotonic()

    def _interruptible_sleep(self, seconds: float) -> None:
        # Event.wait so request_stop() cuts a pending backoff short.
        self._stop.wait(seconds)

    # -- the state machine ---------------------------------------------------

    def backoff_s(self) -> float:
        """Backoff before the next restart: jittered exponential."""
        pause = self.backoff_base_s * (2 ** self._consecutive_crashes)
        pause = min(pause, self.backoff_cap_s)
        return pause * (1.0 + self.jitter_frac * self._rng.random())

    def _record_crash(self, now: float) -> bool:
        """Note a crash; True when the storm breaker trips."""
        self._crash_times.append(now)
        cutoff = now - self.storm_window_s
        self._crash_times = [t for t in self._crash_times if t >= cutoff]
        return len(self._crash_times) > self.storm_threshold

    def run(self) -> str:
        """Supervise until clean exit, storm, or :meth:`request_stop`.

        Returns one of :data:`EXIT_CLEAN`, :data:`EXIT_STORM`,
        :data:`EXIT_STOPPED`.
        """
        while not self._stop.is_set():
            started = self._clock()
            self._child = self._spawn(self.command)
            logger.info("supervisor: started %s", self.command)
            code = self._child.wait()
            now = self._clock()
            if self._stop.is_set():
                return EXIT_STOPPED
            if code == 0:
                logger.info("supervisor: child exited cleanly")
                return EXIT_CLEAN
            # Crash path.
            if now - started >= self.healthy_after_s:
                # It ran long enough to count as healthy before dying:
                # forgive the history, start the ladder over.
                self._consecutive_crashes = 0
            if self._record_crash(now):
                logger.error(
                    "supervisor: %d crashes in %.0fs — restart storm, giving up",
                    len(self._crash_times),
                    self.storm_window_s,
                )
                return EXIT_STORM
            pause = self.backoff_s()
            self._consecutive_crashes += 1
            self.restarts += 1
            logger.warning(
                "supervisor: child exited %s; restarting in %.2fs",
                code,
                pause,
            )
            self._sleep(pause)
        return EXIT_STOPPED

    def request_stop(self) -> None:
        """Stop supervising and forward termination to the child.

        The child gets SIGTERM (so a ricd child drains gracefully); the
        run loop then observes the stop flag and returns
        :data:`EXIT_STOPPED` without restarting.
        """
        self._stop.set()
        child = self._child
        if child is not None:
            try:
                child.terminate()
            except (OSError, AttributeError):  # already gone / fake child
                pass
