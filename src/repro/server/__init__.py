"""Cross-process ICRecord sharing: the record-cache daemon and its client.

The paper's §9 argument for RIC over snapshotting is that IC information
is kept *per script file*, so "the IC information for a library can be
shared by different applications".  A private per-process
:class:`~repro.ric.store.RecordStore` realizes that within one machine
account; this package realizes it *across processes*:

* :class:`RecordCacheDaemon` (the ``ricd`` behind ``ric-serve``) serves
  ICRecords to many engine processes over a unix-domain socket, with an
  in-memory LRU bounded by record count and bytes, write-through to an
  on-disk :class:`~repro.ric.store.RecordStore`, and a per-request
  :func:`~repro.ric.validate.validate_record` gate so one client can
  never poison another.
* :class:`RemoteRecordStore` plugs in wherever a ``RecordStore`` does
  (it satisfies :class:`~repro.ric.store.RecordStoreProtocol`) and
  degrades gracefully: on connect/timeout/protocol error it falls back
  to a local store, bumps the ``ric_remote_*`` counters, and never
  fails the run.

Wire format and degradation ladder: :mod:`repro.server.protocol` and
docs/INTERNALS.md §9.
"""

from repro.server.client import (
    RemoteRecordStore,
    RemoteStoreError,
    make_record_store,
)
from repro.server.daemon import RecordCacheDaemon
from repro.server.lru import LRUCache
from repro.server.supervisor import Supervisor
from repro.server.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    cache_key,
    read_frame,
    write_frame,
)

__all__ = [
    "LRUCache",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "RecordCacheDaemon",
    "RemoteRecordStore",
    "RemoteStoreError",
    "Supervisor",
    "cache_key",
    "make_record_store",
    "read_frame",
    "write_frame",
]
