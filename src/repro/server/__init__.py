"""Cross-process ICRecord sharing: the record-cache daemon and its client.

The paper's §9 argument for RIC over snapshotting is that IC information
is kept *per script file*, so "the IC information for a library can be
shared by different applications".  A private per-process
:class:`~repro.ric.store.RecordStore` realizes that within one machine
account; this package realizes it *across processes*:

* :class:`RecordCacheDaemon` (the ``ricd`` behind ``ric-serve``) serves
  ICRecords to many engine processes over a unix-domain socket, with an
  in-memory LRU bounded by record count and bytes, write-through to an
  on-disk :class:`~repro.ric.store.RecordStore`, and a per-request
  :func:`~repro.ric.validate.validate_record` gate so one client can
  never poison another.
* :class:`RemoteRecordStore` plugs in wherever a ``RecordStore`` does
  (it satisfies :class:`~repro.ric.store.RecordStoreProtocol`) and
  degrades gracefully: on connect/timeout/protocol error it falls back
  to a local store, bumps the ``ric_remote_*`` counters, and never
  fails the run.
* :class:`ShardedRecordStore` scales that to a *fleet*: a
  consistent-hash ring (:class:`HashRing`) of N daemons with
  replication factor R — PUT fan-out, GET failover, per-shard circuit
  breakers, and epoch-based fleet-wide invalidation (``EVICT_EPOCH`` +
  :class:`EpochClock` gossip) so invalidated records die on every
  shard and replica.

Wire format and degradation ladder: :mod:`repro.server.protocol` and
docs/INTERNALS.md §9 (single daemon) / §12 (fleet).
"""

from repro.server.client import (
    EpochClock,
    RemoteProtoMismatch,
    RemoteRecordStore,
    RemoteStoreError,
    make_record_store,
)
from repro.server.daemon import RecordCacheDaemon
from repro.server.lru import LRUCache
from repro.server.sharding import HashRing, ShardedRecordStore
from repro.server.supervisor import Supervisor
from repro.server.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    cache_key,
    connect_endpoint,
    format_endpoint,
    parse_endpoint,
    read_frame,
    write_frame,
)

__all__ = [
    "EpochClock",
    "HashRing",
    "LRUCache",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "RecordCacheDaemon",
    "RemoteProtoMismatch",
    "RemoteRecordStore",
    "RemoteStoreError",
    "ShardedRecordStore",
    "Supervisor",
    "cache_key",
    "connect_endpoint",
    "format_endpoint",
    "make_record_store",
    "parse_endpoint",
    "read_frame",
    "write_frame",
]
