"""The ricd wire protocol: length-prefixed JSON frames over a stream socket.

A frame is a 4-byte big-endian unsigned length followed by exactly that
many bytes of UTF-8 JSON::

    +----------------+---------------------------+
    | length (u32 BE)| JSON body (length bytes)  |
    +----------------+---------------------------+

The framing is transport-agnostic: the same v1 frames flow over a unix
domain socket (one box) or a TCP connection (a record-store fleet); see
:func:`parse_endpoint` for how an endpoint spec selects the transport.

Requests carry ``{"v": PROTOCOL_VERSION, "op": <verb>, ...}``; responses
``{"v": ..., "ok": true, ...}`` or ``{"v": ..., "ok": false, "error":
"..."}``.  The verbs:

``GET``
    ``{"key": [filename, source_hash, record_format_version]}`` →
    ``{"ok": true, "hit": true, "envelope": {...}}`` or ``hit: false``.
    The envelope is the *same checksummed envelope* the on-disk store
    uses (:func:`repro.ric.serialize.record_to_envelope`), so integrity
    travels end-to-end: the client re-verifies checksum + structure and
    never trusts the daemon.
``PUT``
    ``{"key": [...], "envelope": {...}}`` → ``{"ok": true, "stored":
    true, "evicted": n}``.  The daemon verifies the envelope and runs
    :func:`~repro.ric.validate.validate_record` before admitting it;
    a failing record is refused (``stored: false``), counted, and never
    served to another client.
``STAT``
    ``{}`` → ``{"ok": true, "cache": {...}, "store": {...}}`` — LRU
    counters plus the backing store's
    :meth:`~repro.ric.store.RecordStore.status`.
``EVICT``
    ``{"key": [...]}`` or ``{"all": true}`` → ``{"ok": true,
    "evicted": n}``.
``EVICT_EPOCH``
    ``{"epoch": n}`` → ``{"ok": true, "epoch": n', "evicted": m}``.
    Fleet-wide invalidation: raises the daemon's epoch to ``n`` (if
    higher) and drops every record admitted under an older epoch, in
    memory *and* in the write-through store — a record is a bundle of
    code + execution state and must die with its code.

Epoch gossip: ``GET``/``PUT`` requests may carry ``"epoch": n`` (the
client's known fleet epoch) and every response echoes the daemon's
current ``"epoch"``; either side seeing a higher epoch adopts it, so a
shard that missed an ``EVICT_EPOCH`` broadcast self-invalidates on the
first request from an up-to-date client, and a client that talked to an
up-to-date shard refuses stale hits from a lagging replica.

Both sides treat every inbound frame as hostile: oversized lengths,
short reads, non-JSON bodies, and schema surprises all raise the single
typed :class:`ProtocolError` (server: error response + connection close;
client: fall back to the local store).
"""

from __future__ import annotations

import json
import socket
import struct

#: Bump when the frame schema changes; both sides refuse other versions.
#: (New *verbs* and optional fields do not bump it — an old daemon
#: answers an unknown verb with a clean error the client counts as a
#: ``proto_mismatch``, which is what makes mixed-fleet rolling upgrades
#: safe.)
PROTOCOL_VERSION = 1

#: Upper bound on one frame's body.  Generous for ICRecords (the §7.3
#: overhead benchmark puts them in the tens of KB) while bounding what a
#: garbage length prefix can make either side allocate.
MAX_FRAME_BYTES = 32 * 1024 * 1024

_LENGTH = struct.Struct(">I")

#: The verbs the daemon understands.
VERBS = ("GET", "PUT", "STAT", "EVICT", "EVICT_EPOCH", "PING")


class ProtocolError(Exception):
    """Any violation of the frame format or message schema."""


# -- endpoints ---------------------------------------------------------------
#
# One spec grammar covers both transports, so every CLI flag, config knob
# and ring entry is just a string:
#
#   ``tcp://HOST:PORT``   explicit TCP
#   ``unix://PATH``       explicit unix socket
#   ``HOST:PORT``         TCP, when PORT is all digits and the spec has
#                         no path separator (bare paths win ambiguity)
#   anything else         a unix socket path


def parse_endpoint(spec) -> "tuple[str, object]":
    """Classify an endpoint spec: ``("tcp", (host, port))`` or
    ``("unix", path)``.  Raises :class:`ProtocolError` on a malformed
    explicit ``tcp://`` spec."""
    text = str(spec)
    if text.startswith("tcp://"):
        host, sep, port = text[len("tcp://"):].rpartition(":")
        if not sep or not port.isdigit():
            raise ProtocolError(f"malformed tcp endpoint {text!r}")
        return ("tcp", (host or "127.0.0.1", int(port)))
    if text.startswith("unix://"):
        return ("unix", text[len("unix://"):])
    host, sep, port = text.rpartition(":")
    if sep and host and port.isdigit() and "/" not in text and "\\" not in text:
        return ("tcp", (host, int(port)))
    return ("unix", text)


def is_tcp_endpoint(spec) -> bool:
    return parse_endpoint(spec)[0] == "tcp"


def format_endpoint(kind: str, address) -> str:
    """Render a parsed endpoint back to its canonical dialable spec."""
    if kind == "tcp":
        host, port = address[0], address[1]
        return f"{host}:{port}"
    return str(address)


def connect_endpoint(spec, timeout_s: float | None = None) -> socket.socket:
    """Dial an endpoint spec; returns a connected stream socket with the
    timeout applied.  ``OSError`` propagates (the client's degradation
    ladder owns transport trouble)."""
    kind, address = parse_endpoint(spec)
    if kind == "tcp":
        return socket.create_connection(address, timeout=timeout_s)
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    try:
        sock.settimeout(timeout_s)
        sock.connect(str(address))
    except BaseException:
        # Never leak the half-made socket: a refused connect must not
        # cost a file descriptor.
        sock.close()
        raise
    return sock


def cache_key(filename: str, src_hash: str, version: int) -> str:
    """The daemon-side cache key for one record.

    ``(filename, source_hash)`` is the store identity; the record format
    version rides along so engines speaking different ICRecord formats
    can share one daemon without ever deserializing each other's bytes.
    """
    return f"{filename}:{src_hash}:v{version}"


def key_fields(message: dict) -> tuple[str, str, int]:
    """Extract and schema-check the ``key`` triple of a request."""
    key = message.get("key")
    if (
        not isinstance(key, (list, tuple))
        or len(key) != 3
        or not isinstance(key[0], str)
        or not isinstance(key[1], str)
        or not isinstance(key[2], int)
        or isinstance(key[2], bool)
    ):
        raise ProtocolError(f"malformed key {key!r}")
    return key[0], key[1], key[2]


def encode_frame(message: dict) -> bytes:
    """Serialize one message to its on-wire frame."""
    body = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame body of {len(body)} bytes exceeds limit")
    return _LENGTH.pack(len(body)) + body


def _recv_exactly(sock: socket.socket, count: int) -> bytes:
    """Read exactly ``count`` bytes or raise :class:`ProtocolError`.

    A clean EOF at a frame boundary returns ``b""`` only via
    :func:`read_frame`; EOF *inside* a frame is a protocol violation.
    """
    chunks: list[bytes] = []
    remaining = count
    while remaining > 0:
        chunk = sock.recv(min(remaining, 65536))
        if not chunk:
            raise ProtocolError(
                f"connection closed mid-frame ({count - remaining}/{count} bytes)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(sock: socket.socket) -> dict | None:
    """Read one frame; ``None`` on clean EOF before any length byte.

    Raises :class:`ProtocolError` for truncation, oversized lengths,
    undecodable bodies, or a non-object payload.  ``socket.timeout`` and
    ``OSError`` propagate — transport trouble is the caller's concern
    (the client's degradation ladder, the server's per-connection guard).
    """
    first = sock.recv(1)
    if not first:
        return None
    header = first + _recv_exactly(sock, _LENGTH.size - 1)
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame length {length} exceeds {MAX_FRAME_BYTES}")
    body = _recv_exactly(sock, length)
    try:
        message = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError(f"frame body is not valid JSON: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(
            f"frame body must be a JSON object, got {type(message).__name__}"
        )
    return message


def write_frame(sock: socket.socket, message: dict) -> None:
    """Serialize and send one message."""
    sock.sendall(encode_frame(message))


def check_version(message: dict) -> None:
    """Refuse messages from a different protocol version."""
    if message.get("v") != PROTOCOL_VERSION:
        raise ProtocolError(
            f"protocol version {message.get('v')!r} "
            f"(expected {PROTOCOL_VERSION})"
        )


def request(op: str, **fields) -> dict:
    """Build a request message."""
    return {"v": PROTOCOL_VERSION, "op": op, **fields}


def ok_response(**fields) -> dict:
    return {"v": PROTOCOL_VERSION, "ok": True, **fields}


def error_response(error: str) -> dict:
    return {"v": PROTOCOL_VERSION, "ok": False, "error": error}
