"""``RemoteRecordStore`` — a RecordStore backed by a ricd daemon.

Satisfies :class:`~repro.ric.store.RecordStoreProtocol`, so the engine,
``ric-run`` and the bench harness use it wherever a local
:class:`~repro.ric.store.RecordStore` fits.  The daemon endpoint is a
unix socket path or a ``HOST:PORT`` TCP spec (see
:func:`repro.server.protocol.parse_endpoint`); for a multi-shard fleet
see :class:`~repro.server.sharding.ShardedRecordStore`, which routes
keys over a ring of these clients.  The defining property is
the **degradation ladder** (extending the PR 1 discipline from corrupt
*records* to a failing *transport*): a reuse run pointed at a dead,
slow, or lying daemon must behave exactly like one pointed at its local
store — never raise, never change program output, only lose some of the
speedup, visibly:

1. remote answer, client-reverified (checksum + ``validate_record``
   via :func:`~repro.ric.serialize.record_from_envelope`) → use it,
   count ``hits``;
2. remote answers *miss* → count ``misses``, consult the local
   fallback store;
3. transport or protocol trouble (connect refused, timeout, garbage
   frame, version skew, poisoned envelope) → first spend the bounded
   **retry budget**: up to ``retries`` fresh-connection attempts with
   jittered exponential backoff, all inside the per-request deadline
   ``request_deadline_s`` (a blip — daemon restart, dropped socket —
   costs a few milliseconds, not the whole sharing win).  Only when
   the budget is exhausted does the failure surface: count
   ``fallbacks``, consult the local fallback store, and open the
   circuit breaker: for ``retry_after_s`` every request goes straight
   to the fallback so a dead daemon costs one timeout, not one per
   record.

Remote records are written through to the fallback store on the way
past, so anything learned from the daemon survives its death.  The
``stats`` dict feeds the per-run ``ric_remote_*`` counters
(:class:`~repro.stats.counters.Counters`) via the engine.

Thread-safety: one client is shared by every concurrent session of an
engine (executor layer), so ``stats`` mutations sit behind their own
lock (the transport lock already serializes the wire).  GETs are
**single-flight** per (filename, source hash): when N cold sessions ask
for the same script's record at once, one thread does the network
round-trip and the rest share its result — each joiner still counts the
same ``stats`` outcome, so per-request accounting stays truthful while
the daemon sees one GET.  The circuit breaker is likewise shared: a
dead daemon costs the fleet one timeout, not one per session.
"""

from __future__ import annotations

import logging
import random
import socket
import threading
import time
import typing
from pathlib import Path

from repro.bytecode.cache import source_hash
from repro.ric.errors import RecordFormatError
from repro.ric.icrecord import ICRecord
from repro.ric.serialize import (
    ICRECORD_FORMAT_VERSION,
    record_from_envelope,
    record_to_envelope,
)
from repro.ric.store import RecordStore
from repro.server import protocol
from repro.server.protocol import ProtocolError

logger = logging.getLogger(__name__)


class RemoteStoreError(Exception):
    """Transport- or protocol-level failure talking to the daemon."""


class RemoteProtoMismatch(RemoteStoreError):
    """The daemon answered cleanly but does not speak this dialect —
    an unknown verb or a different protocol version.  The mixed-fleet
    rolling-upgrade signal: the daemon is *alive* (no breaker trip, no
    retry burn), just older/newer than this client.  Counted as
    ``proto_mismatch`` in :attr:`RemoteRecordStore.stats` and folded
    into the run's ``ric_remote_proto_mismatch`` counter."""


class EpochClock:
    """A thread-safe max-register for the fleet epoch.

    Every daemon response echoes the daemon's epoch; every client
    request carries the highest epoch its clock has seen.  Shared by all
    shard clients of a :class:`~repro.server.sharding.ShardedRecordStore`,
    so an epoch learned from one shard immediately protects GETs against
    stale replicas of every other shard."""

    __slots__ = ("_value", "_lock")

    def __init__(self, value: int = 0):
        self._value = int(value)
        self._lock = threading.Lock()

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    def advance(self, epoch) -> bool:
        """Adopt a higher epoch; returns True if the clock moved.
        Non-int and lower values are ignored (old daemons send none)."""
        if not isinstance(epoch, int) or isinstance(epoch, bool):
            return False
        with self._lock:
            if epoch <= self._value:
                return False
            self._value = epoch
            return True


class _GetFlight:
    """One in-progress GET that concurrent callers can join."""

    __slots__ = ("event", "record", "stat")

    def __init__(self):
        self.event = threading.Event()
        self.record: "ICRecord | None" = None
        self.stat: "str | None" = None


class RemoteRecordStore:
    """Daemon-first record store with local fallback and a circuit breaker."""

    def __init__(
        self,
        socket_path: str | Path,
        fallback: "RecordStore | None" = None,
        timeout_s: float = 0.5,
        retry_after_s: float = 1.0,
        retries: int = 1,
        backoff_s: float = 0.05,
        request_deadline_s: float = 2.0,
        retry_seed: int | None = None,
        epoch_clock: "EpochClock | None" = None,
    ):
        #: The endpoint spec — a unix socket path or ``HOST:PORT`` /
        #: ``tcp://``/``unix://`` form.  The name predates TCP support and
        #: is kept for API stability.
        self.socket_path = str(socket_path)
        self.fallback = fallback if fallback is not None else RecordStore()
        self.timeout_s = timeout_s
        self.retry_after_s = retry_after_s
        #: Bounded retry budget: transient transport failures absorbed
        #: per request before the circuit breaker opens.
        self.retries = max(0, retries)
        self.backoff_s = backoff_s
        self.request_deadline_s = request_deadline_s
        self._retry_rng = random.Random(retry_seed)
        #: Fleet epoch gossip register; shared across shard clients when
        #: this store sits inside a ShardedRecordStore.
        self._epoch_clock = epoch_clock if epoch_clock is not None else EpochClock()
        #: hits/misses are remote answers; fallbacks are requests that the
        #: transport failed and the local store absorbed; evictions is the
        #: daemon-reported eviction total our PUTs triggered; retries is
        #: transient failures the retry budget absorbed invisibly;
        #: proto_mismatch is clean refusals from a daemon speaking another
        #: dialect; stale_epoch is hits/puts refused by epoch fencing.
        self.stats: dict[str, int] = {
            "hits": 0,
            "misses": 0,
            "fallbacks": 0,
            "evictions": 0,
            "puts": 0,
            "puts_rejected": 0,
            "retries": 0,
            "proto_mismatch": 0,
            "stale_epoch": 0,
        }
        self._sock: socket.socket | None = None
        self._lock = threading.Lock()
        #: Guards ``stats`` (mutated on paths that don't hold the
        #: transport lock, and read by snapshots mid-flight).
        self._stats_lock = threading.Lock()
        #: In-progress GETs other threads can join (single-flight).
        self._get_flights: "dict[tuple[str, str], _GetFlight]" = {}
        self._flight_lock = threading.Lock()
        self._dead_until = 0.0

    def _count(self, stat: str, amount: int = 1) -> None:
        with self._stats_lock:
            self.stats[stat] += amount

    # -- transport ----------------------------------------------------------

    @property
    def epoch(self) -> int:
        """Highest fleet epoch this client has learned via gossip."""
        return self._epoch_clock.value

    def _connect(self) -> socket.socket:
        return protocol.connect_endpoint(self.socket_path, self.timeout_s)

    def _close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover
                pass
            self._sock = None

    def _request(self, message: dict) -> dict:
        """One request/response exchange; raises :class:`RemoteStoreError`
        on any transport or protocol failure.

        Transient transport failures first consume the bounded retry
        budget (``retries`` fresh-connection attempts with jittered
        exponential backoff, all inside ``request_deadline_s``); only an
        exhausted budget surfaces the error and opens the breaker.
        """
        with self._lock:
            if time.monotonic() < self._dead_until:
                raise RemoteStoreError("circuit breaker open")
            deadline = time.monotonic() + self.request_deadline_s
            attempt = 0
            while True:
                try:
                    if self._sock is None:
                        self._sock = self._connect()
                    protocol.write_frame(self._sock, message)
                    response = protocol.read_frame(self._sock)
                    if response is None:
                        raise ProtocolError(
                            "daemon closed connection mid-request"
                        )
                    protocol.check_version(response)
                except (OSError, socket.timeout, ProtocolError) as exc:
                    self._close()
                    now = time.monotonic()
                    if attempt < self.retries and now < deadline:
                        # Jittered exponential backoff, clamped to the
                        # per-request deadline so retrying never costs
                        # more time than giving up would.
                        pause = self.backoff_s * (2**attempt)
                        pause *= 1.0 + self._retry_rng.random()
                        pause = min(pause, max(0.0, deadline - now))
                        attempt += 1
                        self._count("retries")
                        if pause > 0:
                            time.sleep(pause)
                        continue
                    self._dead_until = time.monotonic() + self.retry_after_s
                    raise RemoteStoreError(str(exc)) from exc
                if response.get("ok") is not True:
                    # A clean error response is a server-side refusal, not
                    # transport trouble: don't retry, don't trip the
                    # breaker, but do drop the connection (the server
                    # closes after errors).
                    self._close()
                    error = str(response.get("error", "unknown error"))
                    if error.startswith("unknown op") or "protocol version" in error:
                        # Mixed-fleet dialect skew: the daemon is alive but
                        # older/newer than us.  Log-and-count rather than
                        # fail opaquely so rolling upgrades stay observable.
                        self._count("proto_mismatch")
                        logger.warning(
                            "ricd at %s refused %s: %s (protocol mismatch)",
                            self.socket_path,
                            message.get("op"),
                            error,
                        )
                        raise RemoteProtoMismatch(error)
                    raise RemoteStoreError(error)
                self._epoch_clock.advance(response.get("epoch"))
                return response

    # -- shard-level primitives ----------------------------------------------
    #
    # ``remote_get``/``remote_put`` are the *stat-free* remote-only ops a
    # ShardedRecordStore composes: no fallback consult, no stats counting
    # (except proto_mismatch inside ``_request``), just one outcome per
    # wire exchange.  The ladder of outcomes is what the router needs to
    # decide failover: "error" (transport/breaker) means try a replica,
    # everything else is an authoritative answer from a live shard.

    def remote_get(
        self, filename: str, source: str
    ) -> "tuple[str, ICRecord | None]":
        """One remote-only GET.  Returns ``(outcome, record)`` where the
        outcome is ``"hit"`` (verified record), ``"miss"``, ``"stale"``
        (the shard served a record admitted before the fleet epoch this
        client knows — a lagging replica must not resurrect it),
        ``"mismatch"`` (dialect skew), or ``"error"`` (transport/breaker
        failure, or an envelope that failed re-verification)."""
        key = [filename, source_hash(source), ICRECORD_FORMAT_VERSION]
        try:
            response = self._request(
                protocol.request("GET", key=key, epoch=self._epoch_clock.value)
            )
        except RemoteProtoMismatch:
            return ("mismatch", None)
        except RemoteStoreError:
            return ("error", None)
        if not response.get("hit"):
            return ("miss", None)
        record_epoch = response.get("record_epoch")
        if (
            isinstance(record_epoch, int)
            and not isinstance(record_epoch, bool)
            and record_epoch < self._epoch_clock.value
        ):
            return ("stale", None)
        try:
            # Never trust the daemon: full checksum + structural
            # re-verification, exactly as if the envelope came off disk.
            record = record_from_envelope(response.get("envelope"))
        except RecordFormatError:
            return ("error", None)
        return ("hit", record)

    def remote_put(
        self, filename: str, source: str, record: ICRecord
    ) -> "tuple[str, int | None]":
        """One remote-only PUT.  Returns ``(outcome, evicted)``: outcome
        is ``"stored"`` (evicted = daemon-side evictions it caused),
        ``"rejected"`` (admission gate refused the record), ``"stale"``
        (epoch fencing refused it), ``"mismatch"``, or ``"error"``."""
        key = [filename, source_hash(source), ICRECORD_FORMAT_VERSION]
        envelope = record_to_envelope(record)
        try:
            response = self._request(
                protocol.request(
                    "PUT",
                    key=key,
                    envelope=envelope,
                    epoch=self._epoch_clock.value,
                )
            )
        except RemoteProtoMismatch:
            return ("mismatch", None)
        except RemoteStoreError:
            return ("error", None)
        if response.get("stored"):
            evicted = response.get("evicted")
            if isinstance(evicted, int) and not isinstance(evicted, bool):
                return ("stored", max(evicted, 0))
            return ("stored", 0)
        if response.get("stale_epoch"):
            return ("stale", None)
        return ("rejected", None)

    def bump_epoch(self, epoch: "int | None" = None) -> "int | None":
        """Raise the daemon's fleet epoch (the ``--bump-epoch`` admin
        path).  With no explicit target, first learns the daemon's
        current epoch via STAT and bumps to highest-known + 1.  Returns
        the daemon's new epoch, or ``None`` if it was unreachable;
        never raises."""
        if epoch is None:
            try:
                self._request(protocol.request("STAT"))
            except RemoteStoreError:
                pass  # clock keeps whatever it already knew
            epoch = self._epoch_clock.value + 1
        try:
            response = self._request(
                protocol.request("EVICT_EPOCH", epoch=epoch)
            )
        except RemoteStoreError:
            return None
        new_epoch = response.get("epoch")
        if isinstance(new_epoch, int) and not isinstance(new_epoch, bool):
            return new_epoch
        return None

    # -- the store interface -------------------------------------------------

    def get(self, filename: str, source: str) -> ICRecord | None:
        """Single-flighted GET: concurrent requests for one script share
        one network round-trip (each still counted in ``stats``)."""
        flight_key = (filename, source_hash(source))
        with self._flight_lock:
            flight = self._get_flights.get(flight_key)
            if flight is None:
                flight = _GetFlight()
                self._get_flights[flight_key] = flight
                leader = True
            else:
                leader = False
        if not leader:
            flight.event.wait()
            if flight.stat is not None:
                self._count(flight.stat)
            return flight.record
        try:
            record, stat = self._get_once(filename, source)
            flight.record = record
            flight.stat = stat
            return record
        finally:
            with self._flight_lock:
                self._get_flights.pop(flight_key, None)
            flight.event.set()

    def _get_once(
        self, filename: str, source: str
    ) -> "tuple[ICRecord | None, str]":
        """One real GET; returns ``(record, stat_key)`` where the stat
        key names the outcome bucket (already counted for the caller)."""
        outcome, record = self.remote_get(filename, source)
        if outcome == "hit":
            self._count("hits")
            # Write-back: what the daemon taught us survives its death.
            self.fallback.put(filename, source, record)
            return record, "hits"
        if outcome == "miss":
            self._count("misses")
            return self.fallback.get(filename, source), "misses"
        if outcome == "stale":
            # The fleet invalidated this record's epoch; the local
            # fallback's copy (written back pre-bump) is equally dead,
            # so do NOT consult it — answer "no record".
            self._count("stale_epoch")
            return None, "stale_epoch"
        # "error" and "mismatch": the local store absorbs the request.
        self._count("fallbacks")
        return self.fallback.get(filename, source), "fallbacks"

    def put(self, filename: str, source: str, record: ICRecord) -> None:
        self.fallback.put(filename, source, record)
        outcome, evicted = self.remote_put(filename, source, record)
        if outcome == "stored":
            self._count("puts")
            if evicted:
                self._count("evictions", evicted)
        elif outcome == "rejected":
            self._count("puts_rejected")
        elif outcome == "stale":
            self._count("stale_epoch")
        else:
            self._count("fallbacks")

    def records_for(self, scripts) -> list[ICRecord]:
        found = []
        for filename, source in scripts:
            record = self.get(filename, source)
            if record is not None:
                found.append(record)
        return found

    def remote_stat(self) -> "dict | None":
        """One STAT round-trip; ``None`` when the daemon is unreachable
        (itself a useful status).  Advances the epoch clock via gossip."""
        try:
            response = self._request(protocol.request("STAT"))
        except RemoteStoreError:
            return None
        return {
            "cache": response.get("cache"),
            "store": response.get("store"),
            "health": response.get("health"),
            "epoch": response.get("epoch"),
        }

    def remote_len(self) -> "int | None":
        """The daemon's serving-tier record count; ``None`` if down."""
        stat = self.remote_stat()
        if stat is None:
            return None
        cache = stat.get("cache")
        if isinstance(cache, dict) and isinstance(cache.get("records"), int):
            return cache["records"]
        return None

    def __len__(self) -> int:
        count = self.remote_len()
        return count if count is not None else len(self.fallback)

    def status(self) -> dict:
        """Remote STAT plus the local fallback's status; shape documented
        in INTERNALS §9.  ``remote: None`` means the daemon is unreachable
        — itself a useful status."""
        return {
            "socket": self.socket_path,
            "remote": self.remote_stat(),
            "client": self.stats_snapshot(),
            "local": self.fallback.status(),
        }

    # -- extras --------------------------------------------------------------

    @property
    def load_errors(self) -> list:
        return self.fallback.load_errors

    def ping(self) -> bool:
        """True iff the daemon answers; never raises."""
        try:
            return bool(self._request(protocol.request("PING")).get("pong"))
        except RemoteStoreError:
            return False

    def evict_all(self) -> int:
        """Ask the daemon to drop its serving tier (admin/testing)."""
        try:
            response = self._request(protocol.request("EVICT", all=True))
        except RemoteStoreError:
            return 0
        evicted = response.get("evicted")
        return evicted if isinstance(evicted, int) else 0

    def close(self) -> None:
        with self._lock:
            self._close()

    def stats_snapshot(self) -> dict[str, int]:
        with self._stats_lock:
            return dict(self.stats)


def make_record_store(
    socket_path: "str | Path | list | tuple | None",
    directory: "str | Path | None" = None,
    timeout_s: float = 0.5,
    retry_after_s: float = 1.0,
    retries: int = 1,
    backoff_s: float = 0.05,
    request_deadline_s: float = 2.0,
    replication: int = 2,
):
    """Store selection in one place: plain local store when no endpoint
    is configured, remote-with-fallback for one endpoint, and a
    consistent-hash :class:`~repro.server.sharding.ShardedRecordStore`
    for several (a list/tuple of specs or one comma-separated string).
    """
    local = RecordStore(directory=directory)
    if socket_path is None:
        return local
    if isinstance(socket_path, (list, tuple)):
        endpoints = [str(spec) for spec in socket_path]
    else:
        endpoints = [part.strip() for part in str(socket_path).split(",")]
    endpoints = [spec for spec in endpoints if spec]
    if not endpoints:
        return local
    if len(endpoints) == 1:
        return RemoteRecordStore(
            endpoints[0],
            fallback=local,
            timeout_s=timeout_s,
            retry_after_s=retry_after_s,
            retries=retries,
            backoff_s=backoff_s,
            request_deadline_s=request_deadline_s,
        )
    from repro.server.sharding import ShardedRecordStore

    return ShardedRecordStore(
        endpoints,
        fallback=local,
        replication=replication,
        timeout_s=timeout_s,
        retry_after_s=retry_after_s,
        retries=retries,
        backoff_s=backoff_s,
        request_deadline_s=request_deadline_s,
    )


if typing.TYPE_CHECKING:  # the protocol conformance is a type-level claim
    from repro.ric.store import RecordStoreProtocol

    _store: "RecordStoreProtocol" = typing.cast(RemoteRecordStore, None)
