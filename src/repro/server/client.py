"""``RemoteRecordStore`` — a RecordStore backed by a ricd daemon.

Satisfies :class:`~repro.ric.store.RecordStoreProtocol`, so the engine,
``ric-run`` and the bench harness use it wherever a local
:class:`~repro.ric.store.RecordStore` fits.  The defining property is
the **degradation ladder** (extending the PR 1 discipline from corrupt
*records* to a failing *transport*): a reuse run pointed at a dead,
slow, or lying daemon must behave exactly like one pointed at its local
store — never raise, never change program output, only lose some of the
speedup, visibly:

1. remote answer, client-reverified (checksum + ``validate_record``
   via :func:`~repro.ric.serialize.record_from_envelope`) → use it,
   count ``hits``;
2. remote answers *miss* → count ``misses``, consult the local
   fallback store;
3. transport or protocol trouble (connect refused, timeout, garbage
   frame, version skew, poisoned envelope) → first spend the bounded
   **retry budget**: up to ``retries`` fresh-connection attempts with
   jittered exponential backoff, all inside the per-request deadline
   ``request_deadline_s`` (a blip — daemon restart, dropped socket —
   costs a few milliseconds, not the whole sharing win).  Only when
   the budget is exhausted does the failure surface: count
   ``fallbacks``, consult the local fallback store, and open the
   circuit breaker: for ``retry_after_s`` every request goes straight
   to the fallback so a dead daemon costs one timeout, not one per
   record.

Remote records are written through to the fallback store on the way
past, so anything learned from the daemon survives its death.  The
``stats`` dict feeds the per-run ``ric_remote_*`` counters
(:class:`~repro.stats.counters.Counters`) via the engine.

Thread-safety: one client is shared by every concurrent session of an
engine (executor layer), so ``stats`` mutations sit behind their own
lock (the transport lock already serializes the wire).  GETs are
**single-flight** per (filename, source hash): when N cold sessions ask
for the same script's record at once, one thread does the network
round-trip and the rest share its result — each joiner still counts the
same ``stats`` outcome, so per-request accounting stays truthful while
the daemon sees one GET.  The circuit breaker is likewise shared: a
dead daemon costs the fleet one timeout, not one per session.
"""

from __future__ import annotations

import random
import socket
import threading
import time
import typing
from pathlib import Path

from repro.bytecode.cache import source_hash
from repro.ric.errors import RecordFormatError
from repro.ric.icrecord import ICRecord
from repro.ric.serialize import (
    ICRECORD_FORMAT_VERSION,
    record_from_envelope,
    record_to_envelope,
)
from repro.ric.store import RecordStore
from repro.server import protocol
from repro.server.protocol import ProtocolError


class RemoteStoreError(Exception):
    """Transport- or protocol-level failure talking to the daemon."""


class _GetFlight:
    """One in-progress GET that concurrent callers can join."""

    __slots__ = ("event", "record", "stat")

    def __init__(self):
        self.event = threading.Event()
        self.record: "ICRecord | None" = None
        self.stat: "str | None" = None


class RemoteRecordStore:
    """Daemon-first record store with local fallback and a circuit breaker."""

    def __init__(
        self,
        socket_path: str | Path,
        fallback: "RecordStore | None" = None,
        timeout_s: float = 0.5,
        retry_after_s: float = 1.0,
        retries: int = 1,
        backoff_s: float = 0.05,
        request_deadline_s: float = 2.0,
        retry_seed: int | None = None,
    ):
        self.socket_path = str(socket_path)
        self.fallback = fallback if fallback is not None else RecordStore()
        self.timeout_s = timeout_s
        self.retry_after_s = retry_after_s
        #: Bounded retry budget: transient transport failures absorbed
        #: per request before the circuit breaker opens.
        self.retries = max(0, retries)
        self.backoff_s = backoff_s
        self.request_deadline_s = request_deadline_s
        self._retry_rng = random.Random(retry_seed)
        #: hits/misses are remote answers; fallbacks are requests that the
        #: transport failed and the local store absorbed; evictions is the
        #: daemon-reported eviction total our PUTs triggered; retries is
        #: transient failures the retry budget absorbed invisibly.
        self.stats: dict[str, int] = {
            "hits": 0,
            "misses": 0,
            "fallbacks": 0,
            "evictions": 0,
            "puts": 0,
            "puts_rejected": 0,
            "retries": 0,
        }
        self._sock: socket.socket | None = None
        self._lock = threading.Lock()
        #: Guards ``stats`` (mutated on paths that don't hold the
        #: transport lock, and read by snapshots mid-flight).
        self._stats_lock = threading.Lock()
        #: In-progress GETs other threads can join (single-flight).
        self._get_flights: "dict[tuple[str, str], _GetFlight]" = {}
        self._flight_lock = threading.Lock()
        self._dead_until = 0.0

    def _count(self, stat: str, amount: int = 1) -> None:
        with self._stats_lock:
            self.stats[stat] += amount

    # -- transport ----------------------------------------------------------

    def _connect(self) -> socket.socket:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(self.timeout_s)
        sock.connect(self.socket_path)
        return sock

    def _close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover
                pass
            self._sock = None

    def _request(self, message: dict) -> dict:
        """One request/response exchange; raises :class:`RemoteStoreError`
        on any transport or protocol failure.

        Transient transport failures first consume the bounded retry
        budget (``retries`` fresh-connection attempts with jittered
        exponential backoff, all inside ``request_deadline_s``); only an
        exhausted budget surfaces the error and opens the breaker.
        """
        with self._lock:
            if time.monotonic() < self._dead_until:
                raise RemoteStoreError("circuit breaker open")
            deadline = time.monotonic() + self.request_deadline_s
            attempt = 0
            while True:
                try:
                    if self._sock is None:
                        self._sock = self._connect()
                    protocol.write_frame(self._sock, message)
                    response = protocol.read_frame(self._sock)
                    if response is None:
                        raise ProtocolError(
                            "daemon closed connection mid-request"
                        )
                    protocol.check_version(response)
                except (OSError, socket.timeout, ProtocolError) as exc:
                    self._close()
                    now = time.monotonic()
                    if attempt < self.retries and now < deadline:
                        # Jittered exponential backoff, clamped to the
                        # per-request deadline so retrying never costs
                        # more time than giving up would.
                        pause = self.backoff_s * (2**attempt)
                        pause *= 1.0 + self._retry_rng.random()
                        pause = min(pause, max(0.0, deadline - now))
                        attempt += 1
                        self._count("retries")
                        if pause > 0:
                            time.sleep(pause)
                        continue
                    self._dead_until = time.monotonic() + self.retry_after_s
                    raise RemoteStoreError(str(exc)) from exc
                if response.get("ok") is not True:
                    # A clean error response is a server-side refusal, not
                    # transport trouble: don't retry, don't trip the
                    # breaker, but do drop the connection (the server
                    # closes after errors).
                    self._close()
                    raise RemoteStoreError(
                        str(response.get("error", "unknown error"))
                    )
                return response

    # -- the store interface -------------------------------------------------

    def get(self, filename: str, source: str) -> ICRecord | None:
        """Single-flighted GET: concurrent requests for one script share
        one network round-trip (each still counted in ``stats``)."""
        flight_key = (filename, source_hash(source))
        with self._flight_lock:
            flight = self._get_flights.get(flight_key)
            if flight is None:
                flight = _GetFlight()
                self._get_flights[flight_key] = flight
                leader = True
            else:
                leader = False
        if not leader:
            flight.event.wait()
            if flight.stat is not None:
                self._count(flight.stat)
            return flight.record
        try:
            record, stat = self._get_once(filename, source)
            flight.record = record
            flight.stat = stat
            return record
        finally:
            with self._flight_lock:
                self._get_flights.pop(flight_key, None)
            flight.event.set()

    def _get_once(
        self, filename: str, source: str
    ) -> "tuple[ICRecord | None, str]":
        """One real GET; returns ``(record, stat_key)`` where the stat
        key names the outcome bucket (already counted for the caller)."""
        key = [filename, source_hash(source), ICRECORD_FORMAT_VERSION]
        try:
            response = self._request(protocol.request("GET", key=key))
        except RemoteStoreError:
            self._count("fallbacks")
            return self.fallback.get(filename, source), "fallbacks"
        if not response.get("hit"):
            self._count("misses")
            return self.fallback.get(filename, source), "misses"
        try:
            # Never trust the daemon: full checksum + structural
            # re-verification, exactly as if the envelope came off disk.
            record = record_from_envelope(response.get("envelope"))
        except RecordFormatError:
            self._count("fallbacks")
            return self.fallback.get(filename, source), "fallbacks"
        self._count("hits")
        # Write-back: what the daemon taught us survives its death.
        self.fallback.put(filename, source, record)
        return record, "hits"

    def put(self, filename: str, source: str, record: ICRecord) -> None:
        self.fallback.put(filename, source, record)
        key = [filename, source_hash(source), ICRECORD_FORMAT_VERSION]
        envelope = record_to_envelope(record)
        try:
            response = self._request(
                protocol.request("PUT", key=key, envelope=envelope)
            )
        except RemoteStoreError:
            self._count("fallbacks")
            return
        if response.get("stored"):
            self._count("puts")
            evicted = response.get("evicted")
            if isinstance(evicted, int) and not isinstance(evicted, bool):
                self._count("evictions", max(evicted, 0))
        else:
            self._count("puts_rejected")

    def records_for(self, scripts) -> list[ICRecord]:
        found = []
        for filename, source in scripts:
            record = self.get(filename, source)
            if record is not None:
                found.append(record)
        return found

    def __len__(self) -> int:
        try:
            response = self._request(protocol.request("STAT"))
        except RemoteStoreError:
            return len(self.fallback)
        cache = response.get("cache")
        if isinstance(cache, dict) and isinstance(cache.get("records"), int):
            return cache["records"]
        return len(self.fallback)

    def status(self) -> dict:
        """Remote STAT plus the local fallback's status; shape documented
        in INTERNALS §9.  ``remote: None`` means the daemon is unreachable
        — itself a useful status."""
        remote: dict | None = None
        try:
            response = self._request(protocol.request("STAT"))
            remote = {
                "cache": response.get("cache"),
                "store": response.get("store"),
                "health": response.get("health"),
            }
        except RemoteStoreError:
            pass
        return {
            "socket": self.socket_path,
            "remote": remote,
            "client": self.stats_snapshot(),
            "local": self.fallback.status(),
        }

    # -- extras --------------------------------------------------------------

    @property
    def load_errors(self) -> list:
        return self.fallback.load_errors

    def ping(self) -> bool:
        """True iff the daemon answers; never raises."""
        try:
            return bool(self._request(protocol.request("PING")).get("pong"))
        except RemoteStoreError:
            return False

    def evict_all(self) -> int:
        """Ask the daemon to drop its serving tier (admin/testing)."""
        try:
            response = self._request(protocol.request("EVICT", all=True))
        except RemoteStoreError:
            return 0
        evicted = response.get("evicted")
        return evicted if isinstance(evicted, int) else 0

    def close(self) -> None:
        with self._lock:
            self._close()

    def stats_snapshot(self) -> dict[str, int]:
        with self._stats_lock:
            return dict(self.stats)


def make_record_store(
    socket_path: "str | Path | None",
    directory: "str | Path | None" = None,
    timeout_s: float = 0.5,
    retry_after_s: float = 1.0,
    retries: int = 1,
    backoff_s: float = 0.05,
    request_deadline_s: float = 2.0,
) -> "RemoteRecordStore | RecordStore":
    """Store selection in one place: remote-with-fallback when a socket
    is configured, plain local store otherwise."""
    local = RecordStore(directory=directory)
    if socket_path is None:
        return local
    return RemoteRecordStore(
        socket_path,
        fallback=local,
        timeout_s=timeout_s,
        retry_after_s=retry_after_s,
        retries=retries,
        backoff_s=backoff_s,
        request_deadline_s=request_deadline_s,
    )


if typing.TYPE_CHECKING:  # the protocol conformance is a type-level claim
    from repro.ric.store import RecordStoreProtocol

    _store: "RecordStoreProtocol" = typing.cast(RemoteRecordStore, None)
