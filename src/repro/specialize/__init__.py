"""Persisted type feedback → bytecode quickening.

This package closes the loop the rest of the RIC machinery opens: the VM
cheaply records per-site operand-type profiles during every run
(:mod:`repro.specialize.feedback`), extraction persists them in the
ICRecord's ``site_feedback`` section (format v5), and the next run's
artifact build spends them by rewriting generic opcodes into typed
variants with inline guards (:mod:`repro.specialize.quicken`).  A guard
failure deoptimizes the site back to its generic opcode in place and
demotes it in the feedback state, so the *following* extraction persists
a tombstone and the site is never re-specialized — the same
profile→persist→reuse→invalidate lifecycle the paper applies to IC
state, extended to type feedback.
"""

from repro.specialize.feedback import (
    NUMERIC_MASK,
    arith_site_key,
    collect_arith_feedback,
    demotion_tombstones,
    operand_type_bits,
)
from repro.specialize.quicken import (
    GENERIC_FORM,
    TYPED_OPS,
    count_specialized_sites,
    merge_site_feedback,
    quicken_code,
)

__all__ = [
    "NUMERIC_MASK",
    "arith_site_key",
    "collect_arith_feedback",
    "demotion_tombstones",
    "operand_type_bits",
    "GENERIC_FORM",
    "TYPED_OPS",
    "count_specialized_sites",
    "merge_site_feedback",
    "quicken_code",
]
