"""The quickening pass: rewrite generic bytecode into typed variants.

Runs at artifact-build (or session pre-flight) time, never during
execution.  Given a code tree and a trusted record's ``site_feedback``
map, it produces a **clone** of the tree in which every site with a
stable persisted profile carries its typed opcode:

* ``BINARY ADD/SUB/MUL`` whose operand mask stayed within the numeric
  bits becomes ``ADD_INT`` (integral-only ADD) or ``ADD_NUM`` /
  ``SUB_NUM`` / ``MUL_NUM``;
* fused ``CMP_JUMP_IF_*`` with a numeric mask becomes its
  ``CMP_INT_JUMP_IF_*`` / ``CMP_NUM_JUMP_IF_*`` twin (stacking on the
  superinstruction fusion — one dispatch, typed guard, compare, branch);
* ``GET_PROP`` / ``SET_PROP`` at persistently monomorphic sites become
  ``GET_PROP_SLOT`` / ``SET_PROP_SLOT``, direct-offset accesses guarded
  by one hidden-class identity check, with the original name operand
  parked in the clone's ``spec_table`` for deopt.

The rewrite is strictly 1:1 and in place: instruction count, pcs, jump
targets, source positions and feedback-slot numbering are all preserved,
which is what makes the run-time deopt a single-element patch.  Shared
pools (names, positions, feedback_slots) are aliased, not copied; the
instruction list is fresh wherever a typed opcode landed (it is the one
thing deopt mutates).  A tree with nothing to specialize is returned
unchanged — callers can compare identity to detect a no-op.

Quickened clones never enter the bytecode disk cache; they are derived
state, rebuilt from (cached code, record) whenever either changes.
"""

from __future__ import annotations

import typing

from repro.bytecode.code import CodeObject
from repro.bytecode.opcodes import BinOp, Op
from repro.ric.icrecord import (
    FEEDBACK_ARITH,
    FEEDBACK_INT,
    FEEDBACK_PROP_LOAD,
    FEEDBACK_PROP_STORE,
    SiteFeedback,
)
from repro.specialize.feedback import (
    ARITH_BINOPS,
    CMP_BINOPS,
    NUMERIC_MASK,
    arith_site_key,
)

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.ric.icrecord import ICRecord

#: Every opcode the quickening pass can emit.
TYPED_OPS = frozenset(
    (
        int(Op.ADD_INT),
        int(Op.ADD_NUM),
        int(Op.SUB_NUM),
        int(Op.MUL_NUM),
        int(Op.CMP_INT_JUMP_IF_FALSE),
        int(Op.CMP_INT_JUMP_IF_TRUE),
        int(Op.CMP_NUM_JUMP_IF_FALSE),
        int(Op.CMP_NUM_JUMP_IF_TRUE),
        int(Op.GET_PROP_SLOT),
        int(Op.SET_PROP_SLOT),
    )
)

#: Typed opcode -> the generic opcode its deopt patches back in.  (The
#: prop ops additionally restore their name operand from ``spec_table``;
#: see the VM's deopt helpers.)
GENERIC_FORM: dict[int, int] = {
    int(Op.ADD_INT): int(Op.BINARY),
    int(Op.ADD_NUM): int(Op.BINARY),
    int(Op.SUB_NUM): int(Op.BINARY),
    int(Op.MUL_NUM): int(Op.BINARY),
    int(Op.CMP_INT_JUMP_IF_FALSE): int(Op.CMP_JUMP_IF_FALSE),
    int(Op.CMP_INT_JUMP_IF_TRUE): int(Op.CMP_JUMP_IF_TRUE),
    int(Op.CMP_NUM_JUMP_IF_FALSE): int(Op.CMP_JUMP_IF_FALSE),
    int(Op.CMP_NUM_JUMP_IF_TRUE): int(Op.CMP_JUMP_IF_TRUE),
    int(Op.GET_PROP_SLOT): int(Op.GET_PROP),
    int(Op.SET_PROP_SLOT): int(Op.SET_PROP),
}

_NUM_ARITH_OP = {
    int(BinOp.ADD): int(Op.ADD_NUM),
    int(BinOp.SUB): int(Op.SUB_NUM),
    int(BinOp.MUL): int(Op.MUL_NUM),
}

_CMP_VARIANTS = {
    # generic fused op -> (INT variant, NUM variant)
    int(Op.CMP_JUMP_IF_FALSE): (
        int(Op.CMP_INT_JUMP_IF_FALSE),
        int(Op.CMP_NUM_JUMP_IF_FALSE),
    ),
    int(Op.CMP_JUMP_IF_TRUE): (
        int(Op.CMP_INT_JUMP_IF_TRUE),
        int(Op.CMP_NUM_JUMP_IF_TRUE),
    ),
}


def merge_site_feedback(
    records: "typing.Iterable[ICRecord]",
) -> dict[str, SiteFeedback]:
    """Union the feedback maps of several trusted records.

    Keys are globally unique (they embed file:line:col), so per-file
    records are disjoint by construction; on a genuine collision a
    tombstone wins — a site any record demoted stays demoted.
    """
    merged: dict[str, SiteFeedback] = {}
    for record in records:
        for key, fb in record.site_feedback.items():
            if fb.mega or key not in merged:
                merged[key] = fb
    return merged


def _arith_replacement(binop: int, mask: int) -> int | None:
    if not mask or mask & ~NUMERIC_MASK:
        return None
    if binop == int(BinOp.ADD) and not mask & ~FEEDBACK_INT:
        return int(Op.ADD_INT)
    return _NUM_ARITH_OP.get(binop)


def _rewrite(
    code: CodeObject, feedback: dict[str, SiteFeedback]
) -> "tuple[list[tuple[int, int, int]] | None, list[tuple[int, int]], int]":
    """One code object's rewritten instruction list (None if untouched),
    its spec table, and the number of sites specialized."""
    new_instructions: list[tuple[int, int, int]] | None = None
    spec_table: list[tuple[int, int]] = []
    count = 0
    for pc, (op, a, b) in enumerate(code.instructions):
        replacement: tuple[int, int, int] | None = None
        if op == Op.BINARY and a in ARITH_BINOPS:
            fb = feedback.get(arith_site_key(code, pc))
            if (
                fb is not None
                and not fb.mega
                and fb.kind == FEEDBACK_ARITH
                and fb.op == a
            ):
                typed = _arith_replacement(a, fb.types)
                if typed is not None:
                    replacement = (typed, a, b)
        elif op in _CMP_VARIANTS and b in CMP_BINOPS:
            fb = feedback.get(arith_site_key(code, pc))
            if (
                fb is not None
                and not fb.mega
                and fb.kind == FEEDBACK_ARITH
                and fb.op == b
                and fb.types
                and not fb.types & ~NUMERIC_MASK
            ):
                int_only = not fb.types & ~FEEDBACK_INT
                replacement = (_CMP_VARIANTS[op][0 if int_only else 1], a, b)
        elif op == Op.GET_PROP:
            fb = feedback.get(code.feedback_slots[b].site_key)
            if (
                fb is not None
                and not fb.mega
                and fb.kind == FEEDBACK_PROP_LOAD
                and fb.offset >= 0
            ):
                spec_table.append((a, fb.offset))
                replacement = (int(Op.GET_PROP_SLOT), len(spec_table) - 1, b)
        elif op == Op.SET_PROP:
            fb = feedback.get(code.feedback_slots[b].site_key)
            if (
                fb is not None
                and not fb.mega
                and fb.kind == FEEDBACK_PROP_STORE
                and fb.offset >= 0
                # Prototype stores invalidate constructor hidden classes;
                # the typed store skips that check, so never specialize
                # them (the generic fast path stays).
                and code.names[a] != "prototype"
            ):
                spec_table.append((a, fb.offset))
                replacement = (int(Op.SET_PROP_SLOT), len(spec_table) - 1, b)
        if replacement is not None:
            if new_instructions is None:
                new_instructions = list(code.instructions)
            new_instructions[pc] = replacement
            count += 1
    return new_instructions, spec_table, count


def quicken_code(
    code: CodeObject, feedback: dict[str, SiteFeedback]
) -> "tuple[CodeObject, int]":
    """Quicken a code tree against a feedback map.

    Returns ``(quickened clone, sites specialized)``; the original tree
    is returned (count 0 possible per subtree) whenever nothing applies,
    and is never mutated.
    """
    if not feedback:
        return code, 0
    total = 0

    def walk(node: CodeObject) -> CodeObject:
        nonlocal total
        new_instructions, spec_table, count = _rewrite(node, feedback)
        new_constants: list[object] | None = None
        for index, constant in enumerate(node.constants):
            if isinstance(constant, CodeObject):
                quickened = walk(constant)
                if quickened is not constant:
                    if new_constants is None:
                        new_constants = list(node.constants)
                    new_constants[index] = quickened
        if count == 0 and new_constants is None:
            return node
        total += count
        return CodeObject(
            name=node.name,
            filename=node.filename,
            params=node.params,
            position=node.position,
            # A fresh list only where a typed op landed: deopt patches
            # instruction lists in place, and only lists that hold typed
            # ops can ever be patched.
            instructions=(
                new_instructions
                if new_instructions is not None
                else node.instructions
            ),
            positions=node.positions,
            constants=(
                new_constants if new_constants is not None else node.constants
            ),
            names=node.names,
            local_names=node.local_names,
            feedback_slots=node.feedback_slots,
            decl_key=node.decl_key,
            spec_table=spec_table,
        )

    quickened = walk(code)
    return quickened, total


def count_specialized_sites(code: CodeObject) -> int:
    """How many typed opcodes a (possibly quickened) tree currently holds.

    Counts live sites only: a deopt patch removes the typed opcode, so
    re-counting after a run shows the surviving specialization degree.
    """
    return sum(
        1
        for node in code.iter_code_objects()
        for op, _, _ in node.instructions
        if op in TYPED_OPS
    )
