"""The type-feedback recorder: operand classification and persistence.

The VM's arithmetic handlers call :func:`operand_type_bits` on every
BINARY / fused-compare dispatch and OR the result into the ICVector's
per-pc ``arith`` mask list — one list index, one attribute load, one
``|=`` on the hot path.  Extraction reads the accumulated masks through
:func:`collect_arith_feedback` and turns stable profiles into
``site_feedback`` entries (and unstable ones into tombstones) for the
quickening pass to spend on the next run.

Type bits are shared with the wire format
(:mod:`repro.ric.icrecord`'s ``FEEDBACK_*`` constants): a mask recorded
here round-trips through a v5 record unchanged.
"""

from __future__ import annotations

import typing

from repro.bytecode.opcodes import BinOp, Op
from repro.ric.icrecord import (
    FEEDBACK_ARITH,
    FEEDBACK_BOOL,
    FEEDBACK_FLOAT,
    FEEDBACK_INT,
    FEEDBACK_OBJ,
    FEEDBACK_OTHER,
    FEEDBACK_PROP_LOAD,
    FEEDBACK_PROP_STORE,
    FEEDBACK_STR,
    SiteFeedback,
)
from repro.runtime.objects import JSObject

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.bytecode.code import CodeObject
    from repro.ic.icvector import FeedbackState

#: Masks entirely inside this set are specializable number arithmetic.
NUMERIC_MASK = FEEDBACK_INT | FEEDBACK_FLOAT

#: BINARY operators the quickening pass has typed variants for.
ARITH_BINOPS = frozenset((int(BinOp.ADD), int(BinOp.SUB), int(BinOp.MUL)))

#: Comparison operators appearing in fused CMP_JUMP_IF_* instructions
#: (mirrors the optimizer's fusion set) — all have typed variants.
CMP_BINOPS = frozenset(
    (
        int(BinOp.EQ),
        int(BinOp.NEQ),
        int(BinOp.STRICT_EQ),
        int(BinOp.STRICT_NEQ),
        int(BinOp.LT),
        int(BinOp.GT),
        int(BinOp.LE),
        int(BinOp.GE),
    )
)

#: Typed arithmetic opcodes imply their own mask: code that still carries
#: one at extraction time ran its guard successfully every time, which is
#: exactly the profile that produced it.  Used to re-synthesize feedback
#: when extracting from a quickened run (the generic recorder never saw
#: those dispatches).
SYNTHESIZED_MASKS: dict[int, int] = {
    int(Op.ADD_INT): FEEDBACK_INT,
    int(Op.ADD_NUM): NUMERIC_MASK,
    int(Op.SUB_NUM): NUMERIC_MASK,
    int(Op.MUL_NUM): NUMERIC_MASK,
    int(Op.CMP_INT_JUMP_IF_FALSE): FEEDBACK_INT,
    int(Op.CMP_INT_JUMP_IF_TRUE): FEEDBACK_INT,
    int(Op.CMP_NUM_JUMP_IF_FALSE): NUMERIC_MASK,
    int(Op.CMP_NUM_JUMP_IF_TRUE): NUMERIC_MASK,
}

_TYPED_ARITH_BINOP: dict[int, int] = {
    int(Op.ADD_INT): int(BinOp.ADD),
    int(Op.ADD_NUM): int(BinOp.ADD),
    int(Op.SUB_NUM): int(BinOp.SUB),
    int(Op.MUL_NUM): int(BinOp.MUL),
}


def operand_type_bits(left: object, right: object) -> int:
    """Classify a binary operation's operand pair into feedback bits.

    All jsl numbers are Python floats; integral floats (the common case
    for loop counters and indices) get their own bit so int-only sites
    can claim the tighter ADD_INT/CMP_INT guards.  ``bool`` is *not* a
    float here (guests doing ``true + 1`` coerce) and objects cover the
    whole JSObject hierarchy, including arrays and functions.
    """
    t = type(left)
    if t is float:
        bits = FEEDBACK_INT if left.is_integer() else FEEDBACK_FLOAT
    elif t is str:
        bits = FEEDBACK_STR
    elif t is bool:
        bits = FEEDBACK_BOOL
    elif isinstance(left, JSObject):
        bits = FEEDBACK_OBJ
    else:
        bits = FEEDBACK_OTHER
    t = type(right)
    if t is float:
        return bits | (FEEDBACK_INT if right.is_integer() else FEEDBACK_FLOAT)
    if t is str:
        return bits | FEEDBACK_STR
    if t is bool:
        return bits | FEEDBACK_BOOL
    if isinstance(right, JSObject):
        return bits | FEEDBACK_OBJ
    return bits | FEEDBACK_OTHER


def arith_site_key(code: "CodeObject", pc: int) -> str:
    """Stable cross-execution identity of one arithmetic site.

    ``decl_key`` is the function's declaration position (file:line:col
    plus name) and the pc is stable because compilation and optimization
    are deterministic for identical source — and records are only ever
    trusted for content-matched scripts (``script_keys``).
    """
    return f"{code.decl_key}@{pc}:arith"


def collect_arith_feedback(
    feedback: "FeedbackState",
    filename: str | None = None,
) -> dict[str, SiteFeedback]:
    """Distill this run's recorded operand masks into persistable entries.

    Per arithmetic site: a mask entirely within :data:`NUMERIC_MASK`
    becomes a positive entry (the quickening pass picks INT or NUM
    variants from the exact bits); a mask mixing numbers with any other
    class becomes a tombstone (type-unstable — specializing it would
    deopt); a purely non-numeric mask (string concatenation, ``+`` on
    objects) is simply omitted — nothing to specialize, nothing to
    protect against.  Sites still carrying a typed opcode (this was a
    quickened run) re-synthesize the mask their guard proved.

    ``filename`` restricts output to sites declared in one file, for
    per-script records.
    """
    out: dict[str, SiteFeedback] = {}
    for vector in feedback.all_vectors():
        code = vector.code
        if filename is not None and code.filename != filename:
            continue
        masks = vector.arith
        for pc, (op, a, b) in enumerate(code.instructions):
            synthesized = 0
            if op == Op.BINARY and a in ARITH_BINOPS:
                binop = a
            elif (
                op in (Op.CMP_JUMP_IF_FALSE, Op.CMP_JUMP_IF_TRUE)
                and b in CMP_BINOPS
            ):
                binop = b
            elif op in _TYPED_ARITH_BINOP:
                binop = _TYPED_ARITH_BINOP[op]
                synthesized = SYNTHESIZED_MASKS[op]
            elif op in SYNTHESIZED_MASKS:  # typed compare-and-jump
                binop = b
                synthesized = SYNTHESIZED_MASKS[op]
            else:
                continue
            mask = masks[pc] | synthesized
            if not mask:
                continue  # site never executed
            key = arith_site_key(code, pc)
            if not mask & ~NUMERIC_MASK:
                out[key] = SiteFeedback(
                    kind=FEEDBACK_ARITH, op=int(binop), types=mask
                )
            elif mask & NUMERIC_MASK:
                out[key] = SiteFeedback(kind=FEEDBACK_ARITH, mega=True)
    return out


def demotion_tombstones(
    demoted: set[str],
    filename: str | None = None,
) -> typing.Iterator[tuple[str, SiteFeedback]]:
    """Tombstones for every site whose typed guard failed this run.

    The site kind is recoverable from the key shape (arith keys end in
    ``:arith``, property keys in the SiteKind value).  Tombstones
    override whatever the recorder re-learned post-deopt: a site that
    thrashed once must not ping-pong back into specialization on the
    next extraction.
    """
    for key in sorted(demoted):
        if filename is not None and not key.startswith(f"{filename}:"):
            continue
        if key.endswith(":arith"):
            kind = FEEDBACK_ARITH
        elif key.endswith(":named_store"):
            kind = FEEDBACK_PROP_STORE
        else:
            kind = FEEDBACK_PROP_LOAD
        yield key, SiteFeedback(kind=kind, mega=True)
