"""repro — Reusable Inline Caching for JavaScript Performance.

A complete Python reproduction of Choi, Shull & Torrellas (PLDI 2019):
a JavaScript-subset language (jsl) with a bytecode VM, V8-style hidden
classes and out-of-line inline caching, plus RIC — extraction of
context-independent IC information after an Initial run and its validated
reuse in subsequent runs.

Quickstart::

    from repro import Engine

    engine = Engine()
    measurement = engine.measure_workload(open("lib.jsl").read(), name="lib")
    print(measurement.instruction_reduction)   # RIC's Figure-8 saving
"""

from repro.core.config import RICConfig
from repro.core.engine import Engine, WorkloadMeasurement
from repro.ric.extraction import extract_icrecord
from repro.ric.icrecord import ICRecord
from repro.ric.serialize import load_icrecord, record_size_bytes, save_icrecord

__version__ = "1.0.0"

__all__ = [
    "Engine",
    "ICRecord",
    "RICConfig",
    "WorkloadMeasurement",
    "extract_icrecord",
    "load_icrecord",
    "record_size_bytes",
    "save_icrecord",
    "__version__",
]
