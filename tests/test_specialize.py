"""The bytecode-specialization subsystem: feedback, quickening, deopt.

Covers every layer the subsystem touches, bottom-up:

* the type-feedback recorder (operand classification, mask accumulation,
  distillation into persistable entries and tombstones),
* the quickening pass (typed-opcode rewriting, 1:1 structural guarantees,
  nested code objects, the ``spec_table``, prototype-store exclusion,
  tombstones, multi-record merge),
* the v5 ``site_feedback`` wire section (round-trip, validation walls,
  the build-time refusal of structurally damaged records),
* the run-time deopt chain — the acceptance scenario: train a library
  record under one application, reuse it under a *different* application
  that shape-shifts the site, watch the guard fail exactly once, the
  demotion persist as a tombstone, and the next reuse stay generic,
* the stale-specialization lifecycle: a freshly published record marks
  the cached artifact's pinned record stale, and the record-upgrade
  flight rebuilds quickened code from the artifact's *generic* tree.
"""

from __future__ import annotations

import json

from repro.bytecode.cache import CodeCache
from repro.bytecode.compiler import compile_source
from repro.bytecode.opcodes import BinOp, Op
from repro.core.artifacts import (
    ArtifactBuilder,
    ArtifactCache,
    quicken_artifact_code,
)
from repro.core.config import RICConfig
from repro.core.engine import Engine
from repro.ric.icrecord import (
    FEEDBACK_ARITH,
    FEEDBACK_BOOL,
    FEEDBACK_FLOAT,
    FEEDBACK_INT,
    FEEDBACK_OTHER,
    FEEDBACK_PROP_LOAD,
    FEEDBACK_PROP_STORE,
    FEEDBACK_STR,
    ICRecord,
    SiteFeedback,
)
from repro.ric.serialize import record_from_json, record_to_json
from repro.ric.store import RecordStore
from repro.ric.validate import validate_record
from repro.specialize.feedback import (
    NUMERIC_MASK,
    arith_site_key,
    collect_arith_feedback,
    demotion_tombstones,
    operand_type_bits,
)
from repro.specialize.quicken import (
    TYPED_OPS,
    count_specialized_sites,
    merge_site_feedback,
    quicken_code,
)
from tests.helpers import run_jsl

# -- helpers --------------------------------------------------------------------


def _ops(code) -> set[int]:
    """Every opcode appearing anywhere in a code tree."""
    return {
        int(op)
        for node in code.iter_code_objects()
        for op, _, _ in node.instructions
    }


def _clone_record(record: ICRecord) -> ICRecord:
    """Deep copy through the wire format (also exercises serialization)."""
    return record_from_json(json.loads(json.dumps(record_to_json(record))))


INT_LOOP = """
function total(n) {
  var s = 0;
  for (var i = 0; i < n; i++) { s = s + i * 2; }
  return s;
}
console.log(total(25));
"""


# -- the recorder ---------------------------------------------------------------


class TestOperandTypeBits:
    def test_integral_floats_claim_the_int_bit(self):
        assert operand_type_bits(1.0, 2.0) == FEEDBACK_INT

    def test_fractional_floats_are_float(self):
        assert operand_type_bits(1.5, 2.0) == FEEDBACK_FLOAT | FEEDBACK_INT
        assert operand_type_bits(0.25, 0.75) == FEEDBACK_FLOAT

    def test_strings_and_bools_are_not_numeric(self):
        assert operand_type_bits("a", 1.0) == FEEDBACK_STR | FEEDBACK_INT
        # true + 1 coerces in the guest: bool must not look like a number.
        assert operand_type_bits(True, 1.0) == FEEDBACK_BOOL | FEEDBACK_INT
        assert operand_type_bits(None, 3.0) == FEEDBACK_OTHER | FEEDBACK_INT

    def test_numeric_mask_covers_exactly_int_and_float(self):
        assert NUMERIC_MASK == FEEDBACK_INT | FEEDBACK_FLOAT
        assert not operand_type_bits(1.0, 2.5) & ~NUMERIC_MASK


class TestFeedbackCollection:
    def test_int_stable_site_yields_positive_entry(self):
        result = run_jsl(INT_LOOP)
        feedback = collect_arith_feedback(result.feedback)
        adds = [
            fb
            for fb in feedback.values()
            if not fb.mega and fb.op == int(BinOp.ADD)
        ]
        assert adds, f"no ADD entry in {feedback}"
        assert all(fb.types == FEEDBACK_INT for fb in adds)
        assert all(fb.kind == FEEDBACK_ARITH for fb in feedback.values())

    def test_mixed_type_site_yields_tombstone(self):
        result = run_jsl(
            "function join(a, b) { return a + b; }\n"
            "console.log(join(1, 2));\n"
            'console.log(join("x", "y"));\n'
        )
        feedback = collect_arith_feedback(result.feedback)
        tombstones = [fb for fb in feedback.values() if fb.mega]
        assert len(tombstones) == 1

    def test_pure_string_sites_are_omitted(self):
        result = run_jsl(
            'function shout(s) { return s + "!"; }\nconsole.log(shout("hi"));\n'
        )
        assert collect_arith_feedback(result.feedback) == {}

    def test_unexecuted_sites_are_omitted(self):
        result = run_jsl(
            "function dead(a) { return a + a; }\nconsole.log(1);\n"
        )
        assert collect_arith_feedback(result.feedback) == {}

    def test_filename_filter_restricts_output(self):
        result = run_jsl(INT_LOOP)
        assert collect_arith_feedback(result.feedback, filename="other.jsl") == {}
        assert collect_arith_feedback(result.feedback, filename="test.jsl")

    def test_demotion_tombstones_recover_kind_from_key_shape(self):
        demoted = {
            "lib.jsl:1:1#f@3:arith",
            "lib.jsl:2:2#g@4:named_store",
            "lib.jsl:5:5#h@6:named_load",
        }
        entries = dict(demotion_tombstones(demoted))
        assert entries["lib.jsl:1:1#f@3:arith"].kind == FEEDBACK_ARITH
        assert entries["lib.jsl:2:2#g@4:named_store"].kind == FEEDBACK_PROP_STORE
        assert entries["lib.jsl:5:5#h@6:named_load"].kind == FEEDBACK_PROP_LOAD
        assert all(fb.mega for fb in entries.values())

    def test_demotion_tombstones_respect_filename_filter(self):
        demoted = {"lib.jsl:1:1#f@3:arith", "app.jsl:1:1#g@3:arith"}
        only = dict(demotion_tombstones(demoted, filename="lib.jsl"))
        assert list(only) == ["lib.jsl:1:1#f@3:arith"]


# -- the quickening pass --------------------------------------------------------


class TestQuickenCode:
    def _feedback_for(self, source: str):
        result = run_jsl(source)
        code = compile_source(source, "test.jsl")
        return code, collect_arith_feedback(result.feedback)

    def test_empty_feedback_is_identity(self):
        code = compile_source(INT_LOOP, "test.jsl")
        quickened, count = quicken_code(code, {})
        assert quickened is code and count == 0

    def test_irrelevant_feedback_is_identity(self):
        code = compile_source(INT_LOOP, "test.jsl")
        stray = {
            "elsewhere.jsl:1:1#f@0:arith": SiteFeedback(
                kind=FEEDBACK_ARITH, op=int(BinOp.ADD), types=FEEDBACK_INT
            )
        }
        quickened, count = quicken_code(code, stray)
        assert quickened is code and count == 0

    def test_int_stable_add_becomes_add_int(self):
        code, feedback = self._feedback_for(INT_LOOP)
        quickened, count = quicken_code(code, feedback)
        assert count > 0
        assert int(Op.ADD_INT) in _ops(quickened)
        assert int(Op.MUL_NUM) in _ops(quickened)  # i * 2 is numeric-stable
        assert count == count_specialized_sites(quickened)

    def test_original_tree_is_never_mutated(self):
        code, feedback = self._feedback_for(INT_LOOP)
        before = [
            list(node.instructions) for node in code.iter_code_objects()
        ]
        quicken_code(code, feedback)
        after = [list(node.instructions) for node in code.iter_code_objects()]
        assert before == after
        assert count_specialized_sites(code) == 0

    def test_rewrite_is_one_to_one_and_pools_are_aliased(self):
        code, feedback = self._feedback_for(INT_LOOP)
        quickened, _ = quicken_code(code, feedback)
        originals = list(code.iter_code_objects())
        clones = list(quickened.iter_code_objects())
        assert len(originals) == len(clones)
        for original, clone in zip(originals, clones):
            assert len(original.instructions) == len(clone.instructions)
            assert clone.names is original.names
            assert clone.positions is original.positions
            assert clone.feedback_slots is original.feedback_slots
            assert clone.decl_key == original.decl_key

    def test_nested_code_objects_are_quickened(self):
        source = """
function outer(n) {
  function inner(k) { return k + 7; }
  var s = 0;
  for (var i = 0; i < n; i++) { s = s + inner(i); }
  return s;
}
console.log(outer(20));
"""
        code, feedback = self._feedback_for(source)
        quickened, count = quicken_code(code, feedback)
        assert count >= 2  # inner's add and outer's accumulation at least
        nested_ops = set()
        for node in quickened.iter_code_objects():
            if node.name == "inner":
                nested_ops = {int(op) for op, _, _ in node.instructions}
        assert int(Op.ADD_INT) in nested_ops

    def test_tombstone_blocks_the_rewrite(self):
        code, feedback = self._feedback_for(INT_LOOP)
        tombstoned = {
            key: SiteFeedback(kind=FEEDBACK_ARITH, mega=True)
            for key in feedback
        }
        quickened, count = quicken_code(code, tombstoned)
        assert quickened is code and count == 0

    def test_op_mismatch_blocks_the_rewrite(self):
        # Feedback claiming SUB at an ADD site must not apply: the key
        # matches but the operator does not (defense against stale or
        # hand-damaged records).
        code, feedback = self._feedback_for(INT_LOOP)
        crossed = {
            key: SiteFeedback(
                kind=FEEDBACK_ARITH, op=int(BinOp.SUB), types=fb.types
            )
            for key, fb in feedback.items()
            if fb.op == int(BinOp.ADD)
        }
        quickened, count = quicken_code(code, crossed)
        assert quickened is code and count == 0

    def test_quickened_code_runs_identically_with_typed_hits(self):
        source = INT_LOOP
        code, feedback = self._feedback_for(source)
        quickened, count = quicken_code(code, feedback)
        assert count > 0

        # Execute the quickened clone through the same harness the
        # generic run used and compare observable behaviour.
        from repro.ic.icvector import FeedbackState
        from repro.ic.miss import ICRuntime
        from repro.interpreter.vm import VM
        from repro.runtime.builtins import install_builtins
        from repro.runtime.context import Runtime
        from repro.stats.counters import Counters

        generic = run_jsl(source)
        runtime = Runtime(seed=42)
        install_builtins(runtime)
        counters = Counters()
        state = FeedbackState()
        state.register_script(quickened)
        vm = VM(runtime, counters, ICRuntime(runtime, counters), state)
        vm.run_code(quickened)
        assert runtime.console_output == generic.runtime.console_output
        assert counters.specialized_hits > 0
        assert counters.deopts == 0


class TestQuickenProperties:
    """Property-site quickening needs real extraction (hcids, offsets),
    so these go through the engine: run, extract, quicken the cached code."""

    SOURCE = """
function Pt(x, y) { this.x = x; this.y = y; }
Pt.prototype.sum = function () { return this.x + this.y; };
function getx(p) { return p.x; }
function setx(p, v) { p.x = v; }
var pts = [];
for (var i = 0; i < 12; i++) { pts.push(new Pt(i, i * 2)); }
var acc = 0;
for (var j = 0; j < pts.length; j++) {
  setx(pts[j], getx(pts[j]) + 1);
  acc = acc + pts[j].sum();
}
console.log(acc);
"""

    def _record_and_code(self):
        engine = Engine(config=RICConfig(specialize=True), seed=6)
        engine.run([("app.jsl", self.SOURCE)], name="props")
        record = engine.extract_icrecord()
        code = engine.compile("app.jsl", self.SOURCE)
        return record, code

    def test_monomorphic_sites_get_slot_opcodes_and_spec_table(self):
        record, code = self._record_and_code()
        prop_entries = {
            key: fb
            for key, fb in record.site_feedback.items()
            if fb.kind in (FEEDBACK_PROP_LOAD, FEEDBACK_PROP_STORE)
            and not fb.mega
        }
        assert prop_entries, "extraction produced no property feedback"
        assert all(fb.hcid >= 0 and fb.offset >= 0 for fb in prop_entries.values())

        quickened, count = quicken_code(code, record.site_feedback)
        assert count > 0
        assert int(Op.GET_PROP_SLOT) in _ops(quickened)
        assert int(Op.SET_PROP_SLOT) in _ops(quickened)
        for node in quickened.iter_code_objects():
            for op, a, b in node.instructions:
                if op in (Op.GET_PROP_SLOT, Op.SET_PROP_SLOT):
                    name_index, offset = node.spec_table[a]
                    assert 0 <= name_index < len(node.names)
                    assert offset >= 0
                    assert 0 <= b < len(node.feedback_slots)

    def test_prototype_stores_are_never_specialized(self):
        # `Alt.prototype = {...}` is a store *to* "prototype" — the one
        # named-store shape the pass must never specialize (the typed
        # store skips constructor hidden-class invalidation).
        source = self.SOURCE + (
            "function Alt(x) { this.x = x; }\n"
            'Alt.prototype = { tag: "alt" };\n'
            "console.log(new Alt(1).tag);\n"
        )
        engine = Engine(config=RICConfig(specialize=True), seed=6)
        engine.run([("app.jsl", source)], name="proto")
        record = engine.extract_icrecord()
        code = engine.compile("app.jsl", source)
        quickened, _ = quicken_code(code, record.site_feedback)
        for node in quickened.iter_code_objects():
            for op, a, _ in node.instructions:
                if op == Op.SET_PROP_SLOT:
                    name_index, _ = node.spec_table[a]
                    assert node.names[name_index] != "prototype"
            # The prototype store itself must still be a generic SET_PROP.
            generic_stores = [
                node.names[a]
                for op, a, _ in node.instructions
                if op == Op.SET_PROP
            ]
            if "prototype" in node.names:
                assert "prototype" in generic_stores


class TestMergeSiteFeedback:
    def _record_with(self, feedback: dict) -> ICRecord:
        record = ICRecord()
        record.site_feedback = feedback
        return record

    def test_disjoint_maps_union(self):
        a = self._record_with(
            {"k1": SiteFeedback(kind=FEEDBACK_ARITH, op=1, types=1)}
        )
        b = self._record_with(
            {"k2": SiteFeedback(kind=FEEDBACK_ARITH, op=2, types=2)}
        )
        merged = merge_site_feedback([a, b])
        assert set(merged) == {"k1", "k2"}

    def test_tombstone_wins_in_either_order(self):
        positive = SiteFeedback(kind=FEEDBACK_ARITH, op=1, types=1)
        tombstone = SiteFeedback(kind=FEEDBACK_ARITH, mega=True)
        a = self._record_with({"k": positive})
        b = self._record_with({"k": tombstone})
        assert merge_site_feedback([a, b])["k"].mega
        assert merge_site_feedback([b, a])["k"].mega

    def test_first_positive_entry_is_kept(self):
        first = SiteFeedback(kind=FEEDBACK_ARITH, op=1, types=1)
        second = SiteFeedback(kind=FEEDBACK_ARITH, op=1, types=3)
        a = self._record_with({"k": first})
        b = self._record_with({"k": second})
        assert merge_site_feedback([a, b])["k"] is first


# -- the wire format (v5) -------------------------------------------------------


class TestSiteFeedbackWireFormat:
    def _extracted_record(self) -> ICRecord:
        engine = Engine(config=RICConfig(specialize=True), seed=3)
        engine.run([("app.jsl", TestQuickenProperties.SOURCE)], name="wire")
        return engine.extract_icrecord()

    def test_round_trip_preserves_site_feedback(self):
        record = self._extracted_record()
        assert record.site_feedback, "extraction produced no feedback"
        assert validate_record(record) == []
        round_tripped = _clone_record(record)
        assert round_tripped.site_feedback == record.site_feedback

    def test_tombstones_survive_the_round_trip(self):
        record = self._extracted_record()
        record.site_feedback["doomed"] = SiteFeedback(
            kind=FEEDBACK_ARITH, mega=True
        )
        assert _clone_record(record).site_feedback["doomed"].mega is True

    def test_validation_rejects_unknown_kind(self):
        record = self._extracted_record()
        record.site_feedback["bad"] = SiteFeedback(kind="vectorized")
        problems = validate_record(record)
        assert any("unknown kind" in p for p in problems)

    def test_validation_rejects_mask_outside_known_bits(self):
        record = self._extracted_record()
        record.site_feedback["bad"] = SiteFeedback(
            kind=FEEDBACK_ARITH, op=int(BinOp.ADD), types=1 << 10
        )
        problems = validate_record(record)
        assert any("type mask" in p for p in problems)

    def test_validation_rejects_out_of_range_hcid(self):
        record = self._extracted_record()
        record.site_feedback["bad"] = SiteFeedback(
            kind=FEEDBACK_PROP_LOAD, hcid=10**6, offset=0
        )
        problems = validate_record(record)
        assert any("hcid" in p for p in problems)

    def test_validation_rejects_negative_offset(self):
        record = self._extracted_record()
        record.site_feedback["bad"] = SiteFeedback(
            kind=FEEDBACK_PROP_STORE, hcid=0, offset=-3
        )
        problems = validate_record(record)
        assert any("offset" in p for p in problems)

    def test_build_time_quickening_refuses_damaged_records(self):
        engine = Engine(config=RICConfig(specialize=True), seed=3)
        source = TestQuickenProperties.SOURCE
        engine.run([("app.jsl", source)], name="wire")
        record = engine.extract_per_script_records()["app.jsl"]
        code = engine.compile("app.jsl", source)
        key = record.script_keys[0]

        exec_code, generic, count = quicken_artifact_code(code, key, record)
        assert count > 0 and generic is code

        record.site_feedback["bad"] = SiteFeedback(kind="vectorized")
        exec_code, generic, count = quicken_artifact_code(code, key, record)
        assert exec_code is code and generic is None and count == 0

    def test_build_time_quickening_requires_script_trust(self):
        engine = Engine(config=RICConfig(specialize=True), seed=3)
        source = TestQuickenProperties.SOURCE
        engine.run([("app.jsl", source)], name="wire")
        record = engine.extract_per_script_records()["app.jsl"]
        code = engine.compile("app.jsl", source)
        exec_code, generic, count = quicken_artifact_code(
            code, "app.jsl:not-the-hash", record
        )
        assert exec_code is code and generic is None and count == 0


# -- the deopt chain (acceptance) -----------------------------------------------


LIB = "function add(a, b) { return a + b; }\n"

APP_NUMERIC = """
var total = 0;
for (var i = 0; i < 40; i++) { total = add(total, i); }
console.log("total:", total);
"""

APP_STRINGS = """
var s = "";
for (var i = 0; i < 10; i++) { s = add(s, "x"); }
console.log("len:", s.length);
"""


class TestDeoptChain:
    """Cold -> train -> reuse-under-shape-shift -> deopt -> tombstone ->
    reuse-again-without-respecializing.  The guard fails exactly once,
    behaviour never changes, and the demotion is persistent."""

    def test_full_chain(self):
        engine = Engine(config=RICConfig(specialize=True), seed=11)

        # 1. Train: the library's add site sees only ints.
        engine.run(
            [("lib.jsl", LIB), ("app1.jsl", APP_NUMERIC)], name="train"
        )
        lib_record = engine.extract_per_script_records()["lib.jsl"]
        positives = {
            key: fb
            for key, fb in lib_record.site_feedback.items()
            if not fb.mega
        }
        assert len(positives) == 1
        (site_key,) = positives
        assert positives[site_key].types == FEEDBACK_INT

        # 2. Reuse the per-file record under a *different* application
        # that pushes strings through the same site: the ADD_INT guard
        # fails on the first dispatch, patches back to generic, and the
        # run completes untouched.
        scripts = [("lib.jsl", LIB), ("app2.jsl", APP_STRINGS)]
        deopt_run = engine.run(scripts, name="shift", icrecord=lib_record)
        assert deopt_run.counters.specialized_sites == 1
        assert deopt_run.counters.deopts == 1
        assert deopt_run.counters.despecialized_sites == 1

        plain = Engine(config=RICConfig(specialize=True), seed=11).run(scripts, name="plain")
        assert deopt_run.console_output == plain.console_output

        # 3. The next extraction persists the demotion as a tombstone.
        lib_record2 = engine.extract_per_script_records()["lib.jsl"]
        assert lib_record2.site_feedback[site_key].mega is True

        # 4. Reusing the tombstoned record never re-specializes the site:
        # no typed opcodes, no guards, no deopts — permanently generic.
        settled = engine.run(scripts, name="settled", icrecord=lib_record2)
        assert settled.counters.specialized_sites == 0
        assert settled.counters.deopts == 0
        assert settled.console_output == plain.console_output

    def test_stable_reuse_never_deopts(self):
        """The control arm: reusing the trained record under the *same*
        application keeps the typed opcode hot for the whole run."""
        engine = Engine(config=RICConfig(specialize=True), seed=11)
        scripts = [("lib.jsl", LIB), ("app1.jsl", APP_NUMERIC)]
        engine.run(scripts, name="train")
        lib_record = engine.extract_per_script_records()["lib.jsl"]
        reused = engine.run(scripts, name="reuse", icrecord=lib_record)
        assert reused.counters.specialized_sites == 1
        assert reused.counters.specialized_hits > 0
        assert reused.counters.deopts == 0


# -- the stale-specialization lifecycle -----------------------------------------


class TestStaleSpecialization:
    """A record published after an artifact was built must not leave the
    cached quickened code pinned to the old feedback: ``refresh_record``
    marks it stale and the next fetch runs a record-upgrade flight that
    rebuilds from the artifact's *generic* tree."""

    SOURCE = TestQuickenProperties.SOURCE

    def _seed_record(self) -> ICRecord:
        engine = Engine(config=RICConfig(specialize=True), seed=7)
        engine.run([("app.jsl", self.SOURCE)], name="seed")
        return engine.extract_per_script_records()["app.jsl"]

    def test_upgrade_flight_rebuilds_from_generic_code(self):
        record = self._seed_record()
        store = RecordStore()
        store.put("app.jsl", self.SOURCE, record)
        cache = ArtifactCache(
            ArtifactBuilder(CodeCache(), record_store=store, specialize=True)
        )

        first, _ = cache.get_or_build("app.jsl", self.SOURCE, fetch_record=True)
        assert first.specialized_sites > 0
        assert first.generic_code is not None
        assert count_specialized_sites(first.code) == first.specialized_sites
        assert count_specialized_sites(first.generic_code) == 0

        # Publishing a fully tombstoned record alone changes nothing:
        # artifacts are immutable and the cache still serves the old one.
        demoted = _clone_record(record)
        for key, fb in list(demoted.site_feedback.items()):
            demoted.site_feedback[key] = SiteFeedback(kind=fb.kind, mega=True)
        store.put("app.jsl", self.SOURCE, demoted)
        assert cache.get_or_build(
            "app.jsl", self.SOURCE, fetch_record=True
        )[0] is first

        # refresh_record is the signal: the next fetch re-asks the store
        # and re-quickens from the generic tree — every demoted site
        # comes out generic.
        assert cache.refresh_record("app.jsl", self.SOURCE) is True
        second, frontend_skipped = cache.get_or_build(
            "app.jsl", self.SOURCE, fetch_record=True
        )
        assert frontend_skipped is True  # one store GET, no recompile
        assert second is not first
        assert second.code is first.generic_code
        assert second.specialized_sites == 0
        assert count_specialized_sites(second.code) == 0

        # The stale flag is consumed: the upgraded artifact is now served.
        assert cache.get_or_build(
            "app.jsl", self.SOURCE, fetch_record=True
        )[0] is second

    def test_refresh_record_is_a_noop_for_unknown_artifacts(self):
        cache = ArtifactCache(ArtifactBuilder(CodeCache()))
        assert cache.refresh_record("ghost.jsl", "var x = 1;") is False

    def test_publish_records_triggers_requickening(self):
        """The engine-level wiring: ``publish_records`` marks every
        published script stale, so a warm artifact picks up the fresh
        feedback on its next record fetch."""
        store = RecordStore()
        engine = Engine(
            config=RICConfig(specialize=True), record_store=store, seed=5
        )
        engine.run([("app.jsl", self.SOURCE)], name="w")

        # Warm the artifact with a record fetch while the store is empty:
        # nothing to specialize yet.
        before = engine.artifacts.get_or_build(
            "app.jsl", self.SOURCE, fetch_record=True
        )[0]
        assert before.specialized_sites == 0

        assert engine.publish_records() >= 1
        after = engine.artifacts.get_or_build(
            "app.jsl", self.SOURCE, fetch_record=True
        )[0]
        assert after.specialized_sites > 0
        assert after.code is not before.code
